"""Appendix B.1 — throughput and latency under the line-rate service
model: iGuard (all detection in the data plane) vs a HorusEye-style
design whose classification-time packets detour to the control plane.

Expected shape: iGuard ≈ line rate on a 40 Gbps link (paper: 39.6 Gbps,
a 66.47% improvement over HorusEye) at a fixed ~533 ns pipeline latency.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_REPLAY, BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.datasets.splits import make_trace_split
from repro.eval.harness import build_pipeline
from repro.switch.runner import replay_trace, throughput_latency_model


def throughput_rows():
    config = bench_testbed_config()
    inline_tputs, detour_tputs, latencies = [], [], []
    for i, attack in enumerate(HEADLINE_ATTACKS[:3]):
        split = make_trace_split(
            attack, n_benign_flows=config.n_benign_flows, seed=BENCH_SEED + i
        )
        pipeline, _controller, _model = build_pipeline(
            "iguard", split, config=config, seed=BENCH_SEED + i
        )
        result = replay_trace(split.test_trace, pipeline, mode=BENCH_REPLAY)
        inline = throughput_latency_model(result, offered_gbps=40.0)
        detour = throughput_latency_model(
            result, offered_gbps=40.0, control_plane_detection=True
        )
        inline_tputs.append(inline.achieved_gbps)
        detour_tputs.append(detour.achieved_gbps)
        latencies.append(inline.mean_latency_ns)
    return (
        float(np.mean(inline_tputs)),
        float(np.mean(detour_tputs)),
        float(np.mean(latencies)),
    )


def test_appb1_throughput_latency(benchmark):
    inline, detour, latency = single_round(benchmark, throughput_rows)
    improvement = 100.0 * (inline - detour) / detour
    print()
    print("App B.1 — throughput & latency (40 Gbps offered)")
    print(f"  iGuard (in-data-plane):      {inline:6.2f} Gbps @ {latency:.1f} ns/pkt")
    print(f"  control-plane detection:     {detour:6.2f} Gbps")
    print(f"  improvement: {improvement:+.1f}%  (paper: +66.47%, 39.6 Gbps, 532.8 ns)")
    assert inline > 38.0
    assert inline > detour
    assert latency == pytest.approx(532.8)
