"""Faulted soak: the ops surface under sustained serve + scrape load.

A sharded cluster serves the same ≥10k-packet trace for several rounds
under an active fault schedule while a scraper thread hammers the HTTP
ops endpoint (``/metrics``, ``/healthz``, ``/shards``, ``/events``)
continuously and one ``POST /control/retrain`` is issued mid-soak.
The harness holds three invariants a long-lived deployment depends on:

* **monotonic counters** — across every scrape of the run, no counter
  ever decreases and the event cursor never runs backwards (a torn
  read, a registry reset, or a lost lock would all show up here);
* **bounded steady-state memory** — the process high-water RSS after
  the warm-up round may not keep climbing round over round (leaking
  event records, tickets, or per-scrape garbage would);
* **the scrape tax is small** — per-poll ``/metrics`` latency is
  recorded (mean/p95/max) so a regression that makes scraping stall
  the GIL shows up as a number, not an anecdote.

Emits ``BENCH_soak.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_soak.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_SOAK_FLOWS`` (benign flows, default 600),
``REPRO_BENCH_SOAK_ROUNDS`` (serve rounds, default 3),
``REPRO_BENCH_SOAK_SHARDS`` (default 2), ``REPRO_BENCH_SOAK_POLL_S``
(scrape interval, default 0.02), ``REPRO_BENCH_SOAK_FAULTS`` (fault
spec, default ``seed=11;digest_loss:p=0.05``),
``REPRO_BENCH_SOAK_RSS_GROWTH`` (max allowed post-warm-up high-water
growth, default 0.30), ``REPRO_BENCH_SEED``.
"""

import json
import os
import resource
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_batch_replay import build_workload
from benchmarks.common import bench_seed, host_info
from repro.cluster import ClusterService
from repro.ops import OpsServer
from repro.runtime import RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry

SOAK_FLOWS = int(os.environ.get("REPRO_BENCH_SOAK_FLOWS", "600"))
SOAK_ROUNDS = int(os.environ.get("REPRO_BENCH_SOAK_ROUNDS", "3"))
SOAK_SHARDS = int(os.environ.get("REPRO_BENCH_SOAK_SHARDS", "2"))
POLL_S = float(os.environ.get("REPRO_BENCH_SOAK_POLL_S", "0.02"))
FAULT_SPEC = os.environ.get(
    "REPRO_BENCH_SOAK_FAULTS", "seed=11;digest_loss:p=0.05"
)
RSS_GROWTH_LIMIT = float(os.environ.get("REPRO_BENCH_SOAK_RSS_GROWTH", "0.30"))
CONTROL_TOKEN = "soak-secret"
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_soak.json"


class ArtifactsRetrainer:
    """Serves the pre-compiled tables for every retrain — the soak
    exercises the runtime + ops control plane, not model fitting."""

    def __init__(self, artifacts) -> None:
        self.artifacts = artifacts

    def __len__(self) -> int:
        return 10**6

    def observe(self, chunk_trace) -> None:
        pass

    def retrain(self):
        return self.artifacts


class Scraper:
    """Background poller holding the monotonicity ledger.

    Every poll reads ``/metrics`` and checks each counter (and the event
    cursor) against the last observed value; one of the rotating side
    endpoints is hit alongside, so the whole read surface stays under
    load for the entire soak.
    """

    SIDE_PATHS = ("/healthz", "/shards", "/events?n=10", "/metrics?format=prometheus")

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url
        self.stop = threading.Event()
        self.thread = threading.Thread(target=self._run, name="soak-scraper")
        self.latencies: list = []
        self.violations: list = []
        self.polls = 0
        self.errors = 0
        self._last_counters: dict = {}
        self._last_seq = -1

    def _get_json(self, path: str):
        with urllib.request.urlopen(self.base_url + path, timeout=10) as resp:
            return json.loads(resp.read().decode())

    def _get_raw(self, path: str) -> None:
        with urllib.request.urlopen(self.base_url + path, timeout=10) as resp:
            resp.read()

    def _check(self, doc: dict) -> None:
        for name, value in doc.get("counters", {}).items():
            last = self._last_counters.get(name)
            if last is not None and value < last:
                self.violations.append(
                    {"counter": name, "before": last, "after": value}
                )
            self._last_counters[name] = value
        seq = doc.get("last_seq", -1)
        if seq < self._last_seq:
            self.violations.append(
                {"counter": "<last_seq>", "before": self._last_seq, "after": seq}
            )
        self._last_seq = max(self._last_seq, seq)

    def _run(self) -> None:
        i = 0
        while not self.stop.is_set():
            start = time.perf_counter()
            try:
                doc = self._get_json("/metrics")
            except OSError:
                self.errors += 1
                continue
            self.latencies.append(time.perf_counter() - start)
            self._check(doc)
            self.polls += 1
            try:
                self._get_raw(self.SIDE_PATHS[i % len(self.SIDE_PATHS)])
            except OSError:
                self.errors += 1
            i += 1
            self.stop.wait(POLL_S)

    def __enter__(self) -> "Scraper":
        self.thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop.set()
        self.thread.join(timeout=30)


def _post_control(base_url: str, verb: str) -> dict:
    req = urllib.request.Request(
        f"{base_url}/control/{verb}",
        method="POST",
        headers={"X-Repro-Token": CONTROL_TOKEN},
    )
    with urllib.request.urlopen(req, timeout=10) as resp:
        return json.loads(resp.read().decode())


def _rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run():
    trace, make_pipeline = build_workload(
        seed=bench_seed("soak"), n_flows=SOAK_FLOWS
    )
    pipeline = make_pipeline()
    retrainer = ArtifactsRetrainer(pipeline._live_tables())
    config = RuntimeConfig(
        chunk_size=2000,
        drift_threshold=0.0,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )
    registry = MetricRegistry(max_events=512)
    rounds = []
    fault_counts: dict = {}
    control_outcomes = []
    rss_after_warmup = None

    with ClusterService(
        pipeline,
        n_shards=SOAK_SHARDS,
        config=config,
        executor="inprocess",
        retrainer=retrainer,
        faults_spec=FAULT_SPEC,
        seed=bench_seed("soak") % 1000,
    ) as cluster:
        with OpsServer(cluster, registry=registry, token=CONTROL_TOKEN) as srv:
            with Scraper(srv.url) as scraper:
                with use_registry(registry):
                    for round_idx in range(SOAK_ROUNDS):
                        if round_idx == 1:
                            # Mid-soak control verb, through the full
                            # HTTP path; it applies at the next round's
                            # first chunk boundary.
                            _post_control(srv.url, "retrain")
                        start = time.perf_counter()
                        report = cluster.serve(trace)
                        elapsed = time.perf_counter() - start
                        rounds.append(
                            {
                                "round": round_idx,
                                "n_packets": report.n_packets,
                                "pps": round(report.n_packets / elapsed, 1),
                                "rss_kb": _rss_kb(),
                            }
                        )
                        for name, count in report.fault_counts.items():
                            fault_counts[name] = fault_counts.get(name, 0) + count
                        control_outcomes.extend(
                            {"verb": t["verb"], "outcome": t["outcome"]}
                            for t in report.control_events
                        )
                        if round_idx == 0:
                            rss_after_warmup = _rss_kb()

    latencies_ms = np.asarray(scraper.latencies) * 1e3
    final_rss = rounds[-1]["rss_kb"]
    rss_growth = (final_rss - rss_after_warmup) / rss_after_warmup

    out = {
        "host": host_info(),
        "n_packets_per_round": len(trace),
        "rounds": rounds,
        "n_rounds": SOAK_ROUNDS,
        "n_shards": SOAK_SHARDS,
        "fault_spec": FAULT_SPEC,
        "fault_counts": fault_counts,
        "control_outcomes": control_outcomes,
        "scrape": {
            "polls": scraper.polls,
            "errors": scraper.errors,
            "interval_s": POLL_S,
            "latency_ms_mean": round(float(latencies_ms.mean()), 3)
            if scraper.polls
            else None,
            "latency_ms_p95": round(float(np.percentile(latencies_ms, 95)), 3)
            if scraper.polls
            else None,
            "latency_ms_max": round(float(latencies_ms.max()), 3)
            if scraper.polls
            else None,
        },
        "monotonic_violations": scraper.violations,
        "rss_kb_after_warmup": rss_after_warmup,
        "rss_kb_final": final_rss,
        "rss_growth_post_warmup": round(rss_growth, 4),
        "rss_growth_limit": RSS_GROWTH_LIMIT,
    }
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_soak(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    scrape = report["scrape"]
    print()
    print(
        f"Soak — {report['n_rounds']} rounds x "
        f"{report['n_packets_per_round']} packets, {report['n_shards']} shards, "
        f"faults '{report['fault_spec']}'"
    )
    for row in report["rounds"]:
        print(
            f"  round {row['round']}: {row['pps']:>10.0f} pps  "
            f"rss {row['rss_kb']} kB"
        )
    print(
        f"  scrapes: {scrape['polls']} polls, mean {scrape['latency_ms_mean']} ms, "
        f"p95 {scrape['latency_ms_p95']} ms"
    )
    print(
        f"  rss growth after warm-up: {100 * report['rss_growth_post_warmup']:.1f}% "
        f"(limit {100 * report['rss_growth_limit']:.0f}%)"
    )
    # The three soak invariants.
    assert report["monotonic_violations"] == []
    assert report["rss_growth_post_warmup"] <= report["rss_growth_limit"]
    assert scrape["polls"] >= 10, "scraper barely ran; soak too short to mean anything"
    # The schedule fired and the mid-soak control verb applied.
    assert sum(report["fault_counts"].values()) > 0
    assert {"verb": "retrain", "outcome": "swapped"} in report["control_outcomes"]


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
