"""Table 1 — average switch resource consumption across attacks:
TCAM / SRAM / sALUs / VLIWs / stages for iGuard vs the iForest [15]
deployment.

Expected shape: identical SRAM/sALU/VLIW/stages (same pipeline), with
iGuard consuming *less TCAM* because τ_split-stopped trees produce fewer
whitelist rules (paper: 13.34% vs 16.47% TCAM, both 12 stages).
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.eval.harness import run_testbed_experiment


def average_resources():
    config = bench_testbed_config()
    rows = {}
    for model in ("iforest", "iguard"):
        reports = []
        for i, attack in enumerate(HEADLINE_ATTACKS):
            r = run_testbed_experiment(
                attack, model, config=config, seed=BENCH_SEED + i
            )
            reports.append(r.resources)
        rows[model] = {
            "tcam": float(np.mean([r.tcam_pct for r in reports])),
            "sram": float(np.mean([r.sram_pct for r in reports])),
            "salu": float(np.mean([r.salu_pct for r in reports])),
            "vliw": float(np.mean([r.vliw_pct for r in reports])),
            "stages": reports[0].stages,
        }
    return rows


def test_table1_resources(benchmark):
    rows = single_round(benchmark, average_resources)
    print()
    print("Table 1 — average resource consumption (5 headline attacks)")
    print(f"{'model':<12s} {'TCAM':>8s} {'SRAM':>8s} {'sALUs':>8s} {'VLIWs':>8s} {'stages':>7s}")
    for model, r in rows.items():
        name = "iForest [15]" if model == "iforest" else "iGuard"
        print(f"{name:<12s} {r['tcam']:7.2f}% {r['sram']:7.2f}% "
              f"{r['salu']:7.2f}% {r['vliw']:7.2f}% {r['stages']:7d}")
    # Paper's shape: same pipeline, lower-or-equal TCAM for iGuard.
    assert rows["iguard"]["tcam"] <= rows["iforest"]["tcam"]
    assert rows["iguard"]["stages"] == rows["iforest"]["stages"] == 12
    assert rows["iguard"]["salu"] == rows["iforest"]["salu"]
