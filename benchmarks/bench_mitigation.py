"""Mitigation efficacy: the policy engine measured across the foundry.

Serves three attack scenarios (``pulse_wave_syn``,
``amplification_campaign``, ``botnet_rampup``) through
:class:`repro.runtime.OnlineDetectionService` twice each — once under
the bit-transparent ``monitor_only`` policy (the no-enforcement
baseline: every verdict is observed, nothing is installed) and once
under an enforcing drop policy — and reports, per campaign:

* ``attack_leaked_packets`` / ``attack_dropped_packets`` /
  ``benign_dropped_packets`` — the engine's ground-truth efficacy
  meter (collateral damage is a first-class number, not a footnote);
* ``time_to_block_s`` — campaign-level containment latency: timestamp
  of the first packet the data plane actually dropped under the policy
  minus the timestamp of the first attack packet offered.  This is the
  end-to-end number an operator feels (detection warm-up included),
  not the per-flow verdict→install latency the engine histograms;
* serve throughput, so enforcement overhead is visible next to the
  efficacy it buys.

Both runs set ``drop_on_malicious=False`` and
``install_blacklist=False`` so the policy engine is the *only* path to
enforcement — the deltas below are attributable to the policy alone.

The pytest assertion demands the drop policy reduce
``attack_leaked_packets`` versus monitor-only on at least two of the
three campaigns, with benign collateral held under the policy's guard
budget (or the guard tripped, which is the bound doing its job).

Emits ``BENCH_mitigation.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_mitigation.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_MITIGATION_PRESETS`` (comma-separated
scenario presets), ``REPRO_BENCH_MITIGATION_DURATION`` (scenario
duration seconds, default 30), ``REPRO_BENCH_MITIGATION_FLOWS``
(training flows, default 80), ``REPRO_BENCH_MITIGATION_POLICY`` (the
enforcing policy spec), ``REPRO_BENCH_SEED``.
"""

import json
import os
import sys
import time
from pathlib import Path
from types import SimpleNamespace

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.common import bench_seed, host_info, require_host_info
from repro.mitigation import attach_policy, parse_policy
from repro.runtime import OnlineDetectionService, RuntimeConfig
from repro.scenarios import parse_scenario

PRESETS = tuple(
    p.strip()
    for p in os.environ.get(
        "REPRO_BENCH_MITIGATION_PRESETS",
        "pulse_wave_syn,amplification_campaign,botnet_rampup",
    ).split(",")
    if p.strip()
)
DURATION = float(os.environ.get("REPRO_BENCH_MITIGATION_DURATION", "30"))
TRAIN_FLOWS = int(os.environ.get("REPRO_BENCH_MITIGATION_FLOWS", "80"))
CHUNK_SIZE = int(os.environ.get("REPRO_BENCH_MITIGATION_CHUNK", "1000"))
#: The enforcing arm of the comparison; the baseline arm is always the
#: bit-transparent ``monitor_only`` preset.
DROP_POLICY = os.environ.get(
    "REPRO_BENCH_MITIGATION_POLICY", "drop_fast;idle_timeout=10;memory=60"
)
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_mitigation.json"


def _num(x: float) -> str:
    return str(int(x)) if float(x) == int(x) else str(x)


def _serve_under(preset, policy_spec, seed):
    """Serve one scenario under one policy; return the efficacy row."""
    scenario = parse_scenario(f"{preset};duration={_num(DURATION)};seed={seed}")
    stream = scenario.stream()
    split = SimpleNamespace(
        train_flows=stream.training_flows(TRAIN_FLOWS, seed=seed)
    )
    from repro.eval.harness import build_pipeline

    pipeline, controller, _model = build_pipeline("iguard", split, seed=seed)
    # The engine must be the only enforcement path: no inline drops, no
    # controller-owned permanent blacklist installs.
    pipeline.config.drop_on_malicious = False
    controller.install_blacklist = False
    engine = attach_policy(pipeline, policy_spec)

    service = OnlineDetectionService(
        pipeline,
        config=RuntimeConfig(chunk_size=CHUNK_SIZE, drift_threshold=0.0),
    )
    start = time.perf_counter()
    report = service.serve(scenario.stream())
    elapsed = time.perf_counter() - start

    first_attack_ts = next(
        (d.packet.timestamp for d in report.decisions if d.packet.malicious),
        None,
    )
    # First *attack* packet the data plane shed — a false-positive
    # block of a benign flow (possible before the campaign even starts)
    # must not count as containment.
    first_enforced_ts = next(
        (
            d.packet.timestamp
            for d in report.decisions
            if d.packet.malicious and (d.path == "red" or d.rate_limited)
        ),
        None,
    )
    time_to_block = (
        round(first_enforced_ts - first_attack_ts, 6)
        if first_attack_ts is not None and first_enforced_ts is not None
        else None
    )
    counters = engine.telemetry_counters()
    return {
        "policy": engine.policy.to_spec(),
        "n_packets": report.n_packets,
        "n_chunks": report.n_chunks,
        "pps": round(report.n_packets / elapsed, 1),
        "attack_leaked_packets": engine.meter.attack_leaked,
        "attack_dropped_packets": engine.meter.attack_dropped,
        "benign_dropped_packets": engine.meter.benign_dropped,
        "blocks_installed": counters.get("mitigation.blocks_installed", 0),
        "rate_limits_installed": counters.get(
            "mitigation.rate_limits_installed", 0
        ),
        "expiries": counters.get("mitigation.expiries", 0),
        "guard_tripped": engine.guard_tripped,
        "time_to_block_s": time_to_block,
    }


def run():
    drop_policy = parse_policy(DROP_POLICY)
    campaigns = {}
    for preset in PRESETS:
        seed = bench_seed(f"mitigation:{preset}")
        monitor = _serve_under(preset, "monitor_only", seed)
        drop = _serve_under(preset, DROP_POLICY, seed)
        # Same scenario, same seed, same model — the offered attack
        # volume is identical, so leakage deltas are the policy's.
        assert monitor["n_packets"] == drop["n_packets"]
        leaked_monitor = monitor["attack_leaked_packets"]
        leaked_drop = drop["attack_leaked_packets"]
        campaigns[preset] = {
            "monitor_only": monitor,
            "drop": drop,
            "leakage_reduction": round(
                1.0 - leaked_drop / leaked_monitor, 4
            ) if leaked_monitor else None,
        }

    report = {
        "host": host_info(),
        "presets": list(PRESETS),
        "duration_s": DURATION,
        "train_flows": TRAIN_FLOWS,
        "chunk_size": CHUNK_SIZE,
        "drop_policy": drop_policy.to_spec(),
        "guard_budget": drop_policy.guard.benign_drop_budget,
        "campaigns": campaigns,
    }
    require_host_info(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_mitigation_efficacy(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    budget = report["guard_budget"]
    print()
    print(f"Mitigation efficacy — {report['drop_policy']}")
    reduced = 0
    for preset, row in report["campaigns"].items():
        mon, drop = row["monitor_only"], row["drop"]
        ttb = drop["time_to_block_s"]
        print(
            f"  {preset:<24} leaked {mon['attack_leaked_packets']:>7} -> "
            f"{drop['attack_leaked_packets']:>7}  "
            f"benign dropped {drop['benign_dropped_packets']:>5}  "
            f"time-to-block "
            f"{'n/a' if ttb is None else f'{ttb:.3f}s'}"
        )
        # Monitor is bit-transparent: it must never drop anything.
        assert mon["benign_dropped_packets"] == 0
        assert mon["attack_dropped_packets"] == 0
        if drop["attack_leaked_packets"] < mon["attack_leaked_packets"]:
            reduced += 1
        # Collateral bound: under budget, or the guard latched — in
        # which case the overshoot is at most the accounting
        # granularity of one replay chunk.
        assert (
            drop["benign_dropped_packets"] <= budget or drop["guard_tripped"]
        ), (
            f"{preset}: benign collateral "
            f"{drop['benign_dropped_packets']} over budget {budget} "
            f"without tripping the guard"
        )
        if drop["blocks_installed"]:
            assert drop["time_to_block_s"] is not None
            assert drop["time_to_block_s"] >= 0.0
    # The headline claim: enforcement reduces leakage on most campaigns.
    assert reduced >= 2, (
        f"drop policy reduced leakage on only {reduced}/"
        f"{len(report['campaigns'])} campaigns"
    )


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
