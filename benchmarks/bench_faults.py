"""Fault-injection cost model: disabled-hook overhead and recovery latency.

Two questions decide whether the fault layer can stay compiled into the
serving runtime:

* **Disabled-hook overhead** — the cost of a fully disabled fault plan
  (every injector at p=0, the digest channel interposed but
  pass-through) relative to a serve with no plan at all.  The budget is
  <2%: below that, production runs can keep the hooks resident and
  chaos runs differ only by a spec string.

  The layer adds *no per-packet work* — only a per-chunk hook and a
  per-digest channel hop — so the overhead is measured analytically:
  each hook is micro-timed over thousands of iterations (stable even on
  noisy machines), multiplied by how often the serve invokes it, and
  divided by the serve's wall time.  An end-to-end A/B pps comparison
  is also recorded, but purely as information: shared-machine timing
  noise on sub-second serves exceeds the 2% budget, so the analytic
  number is the one gated on.
* **Recovery latency** — after a one-shot state-destroying fault
  (store pressure, register saturation), how many chunks until the
  per-chunk verdicts re-converge with the fault-free run.  For the
  digest-channel faults, which corrupt no switch state, the divergence
  they cause is reported instead.

Emits ``BENCH_faults.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_faults.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_FAULTS_FLOWS`` (benign flows, default 600),
``REPRO_BENCH_FAULTS_CHUNK`` (chunk size, default 2048),
``REPRO_BENCH_SEED``.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_batch_replay import build_workload
from benchmarks.common import bench_seed
from repro.faults import FaultPlan
from repro.runtime import StreamDriver

FAULT_FLOWS = int(os.environ.get("REPRO_BENCH_FAULTS_FLOWS", "600"))
CHUNK_SIZE = int(os.environ.get("REPRO_BENCH_FAULTS_CHUNK", "2048"))
REPEATS = 5
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

#: Every injector armed at p=0: hooks execute, nothing ever fires.
DISABLED_SPEC = (
    "digest_loss:p=0;digest_dup:p=0;digest_reorder:p=0;digest_delay:p=0;"
    "store_pressure:p=0;register_saturation:p=0;retrain_failure:p=0;"
    "artifact_corruption:p=0;table_install_flake:p=0"
)

#: One-shot state faults measured for chunks-to-recover.
RECOVERY_SPECS = {
    "store_pressure": "seed=7;store_pressure:at={at},fraction=0.5",
    "register_saturation": "seed=7;register_saturation:at={at},fraction=0.5",
}

#: Sustained digest faults measured for verdict divergence.
DIVERGENCE_SPECS = {
    "digest_loss": "seed=7;digest_loss:p=0.5",
    "digest_dup": "seed=7;digest_dup:p=0.5",
    "digest_reorder": "seed=7;digest_reorder:p=0.5",
    "digest_delay": "seed=7;digest_delay:p=0.5,chunks=2",
}


def _stream_chunks(trace, make_pipeline, plan=None):
    """Per-chunk prediction arrays (and the pipeline) for one serve."""
    pipeline = make_pipeline()
    driver = StreamDriver(pipeline, chunk_size=CHUNK_SIZE, faults=plan)
    if plan is not None:
        plan.install(pipeline)
    preds = [chunk.replay.y_pred for chunk in driver.run(trace)]
    if plan is not None:
        plan.finalize()
    return preds, pipeline


def _one_round(trace, make_pipeline, spec):
    """Wall-clock pps of a single serve with a fresh pipeline (and a
    fresh plan — injector RNGs are stateful)."""
    plan = None if spec is None else FaultPlan.from_spec(spec)
    pipeline = make_pipeline()
    driver = StreamDriver(pipeline, chunk_size=CHUNK_SIZE, faults=plan)
    if plan is not None:
        plan.install(pipeline)
    start = time.perf_counter()
    for _chunk in driver.run(trace):
        pass
    return len(trace) / (time.perf_counter() - start)


def _measure_overhead(trace, make_pipeline, repeats=REPEATS):
    """Best-of-*repeats* pps with and without the disabled fault plan.

    The two variants are interleaved round-by-round so slow machine
    drift (thermal, noisy neighbours) biases neither side; best-of
    filters out the remaining one-sided stalls."""
    _one_round(trace, make_pipeline, None)  # warm-up, not timed
    base_best = hooked_best = 0.0
    for _ in range(repeats):
        base_best = max(base_best, _one_round(trace, make_pipeline, None))
        hooked_best = max(
            hooked_best, _one_round(trace, make_pipeline, DISABLED_SPEC)
        )
    return base_best, hooked_best


def _measure_hook_cost(make_pipeline, iters=20000):
    """Per-invocation cost of the two disabled hooks, micro-timed.

    ``on_chunk_end`` runs once per chunk (every chunk injector draws or
    declines, the channel ages an empty queue); the digest channel's
    ``send`` runs once per emitted digest (four pass-through Bernoulli
    declines, then delivery).  The channel is detached from the
    pipeline for the send timing so only the *added* layer is measured
    — controller delivery happens identically in a plan-free serve."""
    from repro.datasets.packet import FiveTuple
    from repro.switch.pipeline import Digest

    plan = FaultPlan.from_spec(DISABLED_SPEC)
    pipeline = make_pipeline()
    plan.install(pipeline)

    start = time.perf_counter()
    for i in range(iters):
        plan.on_chunk_end(pipeline, i)
    per_chunk = (time.perf_counter() - start) / iters

    channel = plan.channel
    channel.pipeline = None  # measure the hop, not the delivery
    digest = Digest(
        five_tuple=FiveTuple(0x0A000001, 0x0A000002, 40000, 80, 6),
        label=1,
        timestamp=0.0,
    )
    start = time.perf_counter()
    for _ in range(iters):
        channel.send(digest)
    per_digest = (time.perf_counter() - start) / iters
    return per_chunk, per_digest


def _chunks_to_recover(fault_chunks, base_chunks, at, tol=0.01):
    """Chunks after *at* until per-chunk verdicts re-converge (mismatch
    fraction <= *tol*); also the peak mismatch while diverged."""
    peak = 0.0
    for i in range(at + 1, len(base_chunks)):
        mismatch = float(np.mean(fault_chunks[i] != base_chunks[i]))
        peak = max(peak, mismatch)
        if mismatch <= tol:
            return i - at, peak
    return None, peak  # never re-converged within the trace


def run():
    trace, make_pipeline = build_workload(
        seed=bench_seed("faults"), n_flows=FAULT_FLOWS
    )
    base_chunks, base_pipeline = _stream_chunks(trace, make_pipeline)
    n_chunks = len(base_chunks)
    at = max(1, n_chunks // 3)  # fault lands with room to recover

    # Hooks-resident-but-disabled must serve bit-identical verdicts.
    disabled_chunks, _dp = _stream_chunks(
        trace, make_pipeline, FaultPlan.from_spec(DISABLED_SPEC)
    )
    for a, b in zip(disabled_chunks, base_chunks):
        assert (a == b).all(), "disabled fault plan changed verdicts"

    base_pps, hooked_pps = _measure_overhead(trace, make_pipeline)
    per_chunk_s, per_digest_s = _measure_hook_cost(make_pipeline)
    serve_s = len(trace) / base_pps
    digests = base_pipeline.digests_emitted
    hook_s = per_chunk_s * n_chunks + per_digest_s * digests
    overhead = 1.0 + hook_s / serve_s

    recovery = {}
    for name, template in RECOVERY_SPECS.items():
        plan = FaultPlan.from_spec(template.format(at=at))
        chunks, _fp = _stream_chunks(trace, make_pipeline, plan)
        fired = sum(i.fired for i in plan.injectors)
        assert fired > 0, f"{name} never fired"
        to_recover, peak = _chunks_to_recover(chunks, base_chunks, at)
        recovery[name] = {
            "fault_chunk": at,
            "chunks_to_recover": to_recover,
            "peak_divergence": round(peak, 4),
        }

    # Digest faults corrupt no switch state, so data-plane verdicts stay
    # put (the flow-label register decides; the blacklist only
    # short-circuits repeat offenders).  Their footprint is on the
    # controller: lost digests are blacklist entries never installed.
    divergence = {}
    base_flat = np.concatenate(base_chunks)
    for name, spec in DIVERGENCE_SPECS.items():
        plan = FaultPlan.from_spec(spec)
        chunks, fault_pipeline = _stream_chunks(trace, make_pipeline, plan)
        divergence[name] = {
            "verdict_divergence": round(
                float(np.mean(np.concatenate(chunks) != base_flat)), 4
            ),
            "blacklist_installs": fault_pipeline.blacklist.installs,
            "blacklist_installs_base": base_pipeline.blacklist.installs,
            "faults_fired": sum(i.fired for i in plan.injectors),
        }

    from benchmarks.common import host_info

    report = {
        "host": host_info(),
        "n_packets": len(trace),
        "n_chunks": n_chunks,
        "chunk_size": CHUNK_SIZE,
        "base_pps": round(base_pps, 1),
        "disabled_hooks_pps": round(hooked_pps, 1),
        "hook_cost_per_chunk_us": round(1e6 * per_chunk_s, 3),
        "hook_cost_per_digest_us": round(1e6 * per_digest_s, 3),
        "digests_emitted": digests,
        "disabled_hook_overhead": round(overhead, 6),
        "overhead_budget": 1.02,
        "overhead_ok": bool(overhead <= 1.02),
        "recovery": recovery,
        "divergence": divergence,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_fault_layer_cost(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    print()
    print(f"Fault layer — {report['n_packets']} packets in "
          f"{report['n_chunks']} chunks of {report['chunk_size']}")
    print(f"  no hooks:       {report['base_pps']:>10.0f} pps")
    print(f"  disabled hooks: {report['disabled_hooks_pps']:>10.0f} pps (A/B, "
          f"informational)")
    print(f"  hook cost: {report['hook_cost_per_chunk_us']:.2f} us/chunk + "
          f"{report['hook_cost_per_digest_us']:.2f} us/digest "
          f"-> {report['disabled_hook_overhead']:.4f}x overhead")
    for name, r in report["recovery"].items():
        print(f"  {name}: recovered in {r['chunks_to_recover']} chunks "
              f"(peak divergence {r['peak_divergence']:.1%})")
    for name, d in report["divergence"].items():
        print(f"  {name}: verdict divergence {d['verdict_divergence']:.2%}, "
              f"blacklist {d['blacklist_installs']} vs "
              f"{d['blacklist_installs_base']} "
              f"({d['faults_fired']} faults fired)")
    assert report["overhead_ok"], (
        f"disabled hooks cost {report['disabled_hook_overhead']:.3f}x "
        f"(budget {report['overhead_budget']}x)"
    )


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
