"""Appendix B.2 — control-plane digest overhead.

iGuard digests carry only a 5-tuple + 1-bit label (14 B); designs that
detect in the control plane must attach ~52 B of FL features per digest.
The paper's figures: 21 KB/s vs 110 KB/s at 50k digests / 30 s — a 5.2×
reduction.  We reproduce both the absolute model (paper's digest counts)
and the replay-measured digest rate of the simulated pipeline.
"""

import pytest

from benchmarks.common import BENCH_REPLAY, BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.splits import make_trace_split
from repro.eval.harness import build_pipeline
from repro.switch.controller import FEATURE_DIGEST_EXTRA_BYTES
from repro.switch.pipeline import Digest
from repro.switch.runner import replay_trace


def test_appb2_paper_model(benchmark):
    """The paper's arithmetic: 50k digests in a 30 s window."""

    def run():
        n_digests, window = 50_000, 30.0
        iguard_kbps = n_digests * Digest.WIRE_BYTES / 1000.0 / window
        horuseye_kbps = (
            n_digests * (Digest.WIRE_BYTES + FEATURE_DIGEST_EXTRA_BYTES) / 1000.0 / window
        )
        return iguard_kbps, horuseye_kbps

    iguard_kbps, horuseye_kbps = single_round(benchmark, run)
    ratio = horuseye_kbps / iguard_kbps
    print()
    print("App B.2 — control-plane overhead (50k digests / 30 s)")
    print(f"  iGuard:          {iguard_kbps:6.1f} KB/s   (paper: 21 KB/s)")
    print(f"  feature digests: {horuseye_kbps:6.1f} KB/s   (paper: 110 KB/s)")
    print(f"  ratio: {ratio:.2f}x  (paper: 5.2x)")
    assert ratio > 4.0


def test_appb2_replay_measured(benchmark):
    """Digest volume actually produced by replaying a test trace."""

    def run():
        config = bench_testbed_config()
        split = make_trace_split("Mirai", n_benign_flows=config.n_benign_flows,
                                 seed=BENCH_SEED)
        pipeline, controller, _ = build_pipeline("iguard", split, config=config,
                                                 seed=BENCH_SEED)
        replay_trace(split.test_trace, pipeline, mode=BENCH_REPLAY)
        window = max(split.test_trace.duration, 1e-9)
        return controller.stats, window

    stats, window = single_round(benchmark, run)
    print()
    print(f"  replay: {stats.digests_received} digests in {window:.1f} s "
          f"→ {stats.overhead_kbps(window):.3f} KB/s "
          f"(feature-digest equivalent {stats.horuseye_equivalent_bytes()/1000.0/window:.3f} KB/s)")
    assert stats.digests_received > 0
