"""Scenario foundry: generation throughput, O(chunk) memory, serve-through.

Three claims the streaming generator (:mod:`repro.scenarios`) must keep:

* *generation pps* — packets/sec of the chunked engine itself
  (``iter_chunks``), no pipeline attached, plus label conservation
  across two different consumer chunk sizes (chunking is pure
  buffering, so per-chunk ground-truth totals must agree exactly);
* *O(chunk) peak RSS* — a subprocess streams the same scenario at two
  trace lengths (4x apart by default) and reports ``ru_maxrss``; the
  long run must NOT cost proportionally more memory than the short one,
  which is the whole point of windowed generation — hundred-million
  packet campaigns without a hundred-million-packet buffer;
* *serve-through pps* — end-to-end packets/sec of a live scenario
  stream through ``OnlineDetectionService.serve`` with a pipeline
  trained on the scenario's own benign mix, the ``repro serve
  --scenario`` path.

Emits ``BENCH_scenarios.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_scenarios.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_SCENARIO`` (preset or DSL spec, default
``pulse_wave_syn``), ``REPRO_BENCH_SCENARIO_DURATION`` (generation /
serve seconds of scenario time, default 20), and
``REPRO_BENCH_SCENARIO_RSS_DURATIONS`` (comma pair for the memory
probe, default ``8,32``).
"""

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.common import host_info
from repro.scenarios import parse_scenario

SCENARIO = os.environ.get("REPRO_BENCH_SCENARIO", "pulse_wave_syn")
DURATION = float(os.environ.get("REPRO_BENCH_SCENARIO_DURATION", "20"))
RSS_DURATIONS = tuple(
    float(s)
    for s in os.environ.get("REPRO_BENCH_SCENARIO_RSS_DURATIONS", "8,32").split(",")
)
CHUNK = 4096
REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_PATH = REPO_ROOT / "BENCH_scenarios.json"

#: Run in a fresh interpreter so ``ru_maxrss`` reflects one streaming
#: pass and nothing else the benchmark process has ever allocated.
_RSS_CHILD = """
import resource, sys
from repro.scenarios import parse_scenario

spec, duration, chunk = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
s = parse_scenario(spec).scaled(duration_s=duration)
n = sum(len(c) for c in s.stream().iter_chunks(chunk))
print(n, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _scenario(duration):
    return parse_scenario(SCENARIO).scaled(duration_s=duration)


def _measure_generation():
    s = _scenario(DURATION)
    start = time.perf_counter()
    n_packets = n_attack = 0
    for chunk in s.stream().iter_chunks(CHUNK):
        n_packets += len(chunk)
        n_attack += sum(p.malicious for p in chunk.packets)
    elapsed = time.perf_counter() - start
    # Label conservation: a different consumer chunk size must see the
    # exact same ground-truth totals (chunking is pure buffering).
    other = sum(
        sum(p.malicious for p in c.packets)
        for c in s.stream().iter_chunks(CHUNK // 8)
    )
    assert other == n_attack, f"labels not conserved: {other} != {n_attack}"
    return {
        "chunk_size": CHUNK,
        "n_packets": n_packets,
        "n_attack_packets": n_attack,
        "pps": round(n_packets / elapsed, 1),
        "labels_conserved": True,
    }


def _measure_rss():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    rows = {}
    for label, duration in zip(("short", "long"), RSS_DURATIONS):
        out = subprocess.run(
            [sys.executable, "-c", _RSS_CHILD, SCENARIO, str(duration), str(CHUNK)],
            env=env, capture_output=True, text=True, check=True,
        )
        n_packets, maxrss = (int(v) for v in out.stdout.split())
        rows[label] = {
            "duration_s": duration,
            "n_packets": n_packets,
            "ru_maxrss_kb": maxrss,
        }
    packet_ratio = rows["long"]["n_packets"] / rows["short"]["n_packets"]
    rss_ratio = rows["long"]["ru_maxrss_kb"] / rows["short"]["ru_maxrss_kb"]
    rows["packet_ratio"] = round(packet_ratio, 2)
    rows["rss_ratio"] = round(rss_ratio, 3)
    return rows


def _measure_serve():
    from repro.eval.harness import build_pipeline
    from repro.runtime import OnlineDetectionService, RuntimeConfig

    s = _scenario(DURATION)
    stream = s.stream()
    split = SimpleNamespace(train_flows=stream.training_flows(120, seed=9))
    pipeline, _controller, _model = build_pipeline("iforest", split, seed=9)
    service = OnlineDetectionService(
        pipeline, config=RuntimeConfig(chunk_size=CHUNK, drift_threshold=0.0)
    )
    start = time.perf_counter()
    report = service.serve(s.stream())
    elapsed = time.perf_counter() - start
    return {
        "model": "iforest",
        "chunk_size": CHUNK,
        "n_packets": report.n_packets,
        "n_chunks": report.n_chunks,
        "pps": round(report.n_packets / elapsed, 1),
    }


def run():
    report = {
        "host": host_info(),
        "scenario": SCENARIO,
        "duration_s": DURATION,
        "generation": _measure_generation(),
        "peak_rss": _measure_rss(),
        "serve_through": _measure_serve(),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_scenario_foundry(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    gen, rss, serve = (
        report["generation"], report["peak_rss"], report["serve_through"]
    )
    print()
    print(f"Scenario foundry — {report['scenario']}, "
          f"{report['duration_s']}s of scenario time")
    print(f"  generation: {gen['n_packets']} packets at {gen['pps']:>10.0f} pps")
    print(f"  peak RSS:   {rss['short']['n_packets']} -> "
          f"{rss['long']['n_packets']} packets "
          f"({rss['packet_ratio']:.1f}x) grows RSS {rss['rss_ratio']:.2f}x")
    print(f"  serve:      {serve['n_packets']} packets through "
          f"{serve['n_chunks']} chunks at {serve['pps']:>10.0f} pps")
    assert gen["labels_conserved"]
    # The O(chunk) claim: 4x the trace must not cost anywhere near 4x
    # the memory — the stream holds one window plus one chunk at a time.
    assert rss["packet_ratio"] > 2.5
    assert rss["rss_ratio"] < 1.5, (
        f"peak RSS grew {rss['rss_ratio']:.2f}x over a "
        f"{rss['packet_ratio']:.1f}x longer trace — generation is "
        "buffering the whole trace, not streaming it"
    )
    assert serve["pps"] > 0


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
