"""Ablation — the τ_split stopping criterion (§3.3.2's TCAM mechanism).

τ_split stops iTree growth once a node's decision samples are heavily
skewed toward one class.  Larger tolerances stop earlier → fewer leaves
→ fewer whitelist rules → lower TCAM (the paper credits exactly this for
Table 1's lower TCAM), at some cost in fidelity.
"""

import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IGUARD, single_round
from repro.core.iguard import IGuard
from repro.datasets.splits import make_attack_split
from repro.eval.metrics import macro_f1

TAUS = (0.0, 0.02, 0.1)


def tau_sweep():
    split = make_attack_split("Mirai", n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)
    rows = {}
    oracle = None
    for tau in TAUS:
        params = dict(FIXED_IGUARD)
        params["tau_split"] = tau
        model = IGuard(
            oracle=oracle, oracle_prefit=oracle is not None, seed=BENCH_SEED, **params
        ).fit(split.x_train)
        oracle = model.oracle  # reuse the trained ensemble across points
        ruleset = model.to_rules(max_cells=2048, seed=BENCH_SEED)
        rows[tau] = {
            "leaves": model.forest_.n_leaves(),
            "rules": len(ruleset),
            "f1": macro_f1(split.y_test, model.predict(split.x_test)),
        }
    return rows


def test_ablation_tau_split(benchmark):
    rows = single_round(benchmark, tau_sweep)
    print()
    print("Ablation — τ_split vs tree size / rule count / detection")
    print(f"{'tau_split':>10s} {'leaves':>8s} {'rules':>7s} {'macroF1':>9s}")
    for tau, r in rows.items():
        print(f"{tau:>10.3f} {r['leaves']:>8d} {r['rules']:>7d} {r['f1']:>9.3f}")
    # Earlier stopping must shrink the forest (the TCAM mechanism).
    assert rows[TAUS[-1]]["leaves"] <= rows[TAUS[0]]["leaves"]
