"""§3.2.3 consistency check — agreement C between the distilled iForest
and its compiled whitelist rules on test samples.

The paper reports C = 0.992-0.996 averaged across attacks; the
refinement compiler should land ≳ 0.9 at the default cell budget and
approach the paper's figure as the budget grows.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IGUARD, single_round
from repro.core.iguard import IGuard
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.datasets.splits import make_attack_split


def consistency_for(attack: str, max_cells: int):
    split = make_attack_split(attack, n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)
    model = IGuard(seed=BENCH_SEED, **FIXED_IGUARD).fit(split.x_train)
    ruleset = model.to_rules(max_cells=max_cells, seed=BENCH_SEED)
    return model.consistency(ruleset, split.x_test), len(ruleset)


def test_consistency_across_attacks(benchmark):
    def run():
        rows = {}
        for attack in HEADLINE_ATTACKS[:3]:
            rows[attack] = consistency_for(attack, max_cells=4096)
        return rows

    rows = single_round(benchmark, run)
    print()
    print("Consistency C between distilled forest and whitelist rules")
    values = []
    for attack, (c, n_rules) in rows.items():
        print(f"  {attack:<12s} C={c:.4f}  ({n_rules} rules)")
        values.append(c)
    mean_c = float(np.mean(values))
    print(f"  mean C = {mean_c:.4f}  (paper: 0.992-0.996)")
    assert mean_c > 0.8


def test_consistency_improves_with_budget(benchmark):
    def run():
        return {
            cells: consistency_for("Mirai", max_cells=cells)[0]
            for cells in (256, 1024, 4096)
        }

    by_budget = single_round(benchmark, run)
    print()
    print("Consistency vs cell budget (Mirai):")
    for cells, c in by_budget.items():
        print(f"  max_cells={cells:<6d} C={c:.4f}")
    assert by_budget[4096] >= by_budget[256] - 0.02
