"""Table 2 — black-box low-rate and poisoning adversarial attacks:
iGuard vs iForest on the testbed under UDP/TCP DDoS at 1/100 rate and
Mirai training-set poisoning at 2% / 10%.

Expected shape: iGuard stays far ahead of iForest (paper: improvements
of 22-57 percentage points across macro F1 / ROCAUC / PRAUC).
"""

import pytest

from benchmarks.common import BENCH_SEED, bench_testbed_config, single_round
from repro.eval.harness import run_adversarial_experiment

CASES = [
    ("Low rate (UDPDDoS 1/100)", "UDP DDoS", "lowrate_100"),
    ("Low rate (TCPDDoS 1/100)", "TCP DDoS", "lowrate_100"),
    ("Poison (Mirai 2%)", "Mirai", "poison_2pct"),
    ("Poison (Mirai 10%)", "Mirai", "poison_10pct"),
]

_ROWS = {}


@pytest.mark.parametrize("label,attack,variant", CASES)
def test_table2_lowrate_poison(benchmark, label, attack, variant):
    config = bench_testbed_config()

    def run():
        out = {}
        for model in ("iforest", "iguard"):
            r = run_adversarial_experiment(
                attack, model, variant, config=config, seed=BENCH_SEED
            )
            out[model] = r.metrics
        return out

    metrics = single_round(benchmark, run)
    _ROWS[label] = metrics
    print()
    print(f"Table 2 [{label}] (macro F1 / ROCAUC / PRAUC)")
    for model, m in metrics.items():
        name = "iForest [15]" if model == "iforest" else "iGuard"
        print(f"  {name:<12s} {100*m.macro_f1:5.1f}% / {100*m.roc_auc:5.1f}% / {100*m.pr_auc:5.1f}%")
    assert metrics["iguard"].macro_f1 >= metrics["iforest"].macro_f1 - 0.05


def test_table2_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("per-case benches did not run")
    print()
    print("Table 2 — adversarial low-rate & poisoning (F1/ROC/PR, %)")
    for label, metrics in _ROWS.items():
        cells = "  ".join(
            f"{m}:{100*v.macro_f1:.0f}/{100*v.roc_auc:.0f}/{100*v.pr_auc:.0f}"
            for m, v in metrics.items()
        )
        print(f"  {label:<28s} {cells}")
