"""Ablation — autoencoder-guided training vs distillation alone.

The §3.2 "challenge": distilling AE knowledge into a *conventional*
iForest's leaves fails when leaves mix benign and malicious regions;
guided training is what makes leaves skewed enough to label.  We compare
full iGuard with a distilled-but-unguided variant (random iForest
structure, AE-labelled leaves).
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IGUARD, single_round
from repro.core.distillation import DistilledForest
from repro.core.guided_forest import GuidedIsolationForest
from repro.core.iguard import IGuard, _LogSpaceOracle
from repro.datasets.splits import make_attack_split
from repro.eval.metrics import detection_metrics
from repro.forest.iforest import IsolationForest
from repro.utils.transforms import signed_log1p


class _UnguidedAdapter:
    """Give a conventional iForest the guided-forest protocol so the
    distillation code can label its leaves."""

    def __init__(self, forest: IsolationForest, x_log: np.ndarray):
        from repro.utils.box import Box

        self.forest = forest
        self.trees_ = forest.trees_
        self.n_features_ = forest.n_features_
        self.k_aug = FIXED_IGUARD["k_aug"]
        self.feature_box_ = Box.from_data(x_log, pad=0.05)

    def split_boundaries(self):
        merged = [set() for _ in range(self.n_features_)]
        for tree in self.trees_:
            for f, values in enumerate(tree.split_boundaries()):
                merged[f].update(values)
        return [sorted(v) for v in merged]


def guidance_ablation():
    split = make_attack_split("Mirai", n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)

    guided = IGuard(seed=BENCH_SEED, **FIXED_IGUARD).fit(split.x_train)
    m_guided = detection_metrics(
        split.y_test, guided.predict(split.x_test), guided.vote_fraction(split.x_test)
    )

    # Unguided: conventional iForest structure in log space, distilled leaves.
    x_log = signed_log1p(split.x_train)
    forest = IsolationForest(
        n_trees=FIXED_IGUARD["n_trees"],
        subsample_size=FIXED_IGUARD["subsample_size"],
        seed=BENCH_SEED,
    ).fit(x_log)
    adapter = _UnguidedAdapter(forest, x_log)
    oracle = _LogSpaceOracle(guided.oracle, distil_margin=FIXED_IGUARD["distil_margin"])
    distilled = DistilledForest.__new__(DistilledForest)
    distilled.forest = adapter
    distilled.n_features_ = adapter.n_features_
    distilled.distilled_ = False
    distilled.distil(x_log, oracle, seed=BENCH_SEED)
    x_test_log = signed_log1p(split.x_test)
    m_unguided = detection_metrics(
        split.y_test,
        distilled.predict(x_test_log),
        distilled.vote_fraction(x_test_log),
    )
    return m_guided, m_unguided


def test_ablation_guidance(benchmark):
    m_guided, m_unguided = single_round(benchmark, guidance_ablation)
    print()
    print("Ablation — guided training vs distillation-only")
    print(f"  guided iGuard:      F1={m_guided.macro_f1:.3f} ROC={m_guided.roc_auc:.3f} PR={m_guided.pr_auc:.3f}")
    print(f"  unguided distilled: F1={m_unguided.macro_f1:.3f} ROC={m_unguided.roc_auc:.3f} PR={m_unguided.pr_auc:.3f}")
    # Guidance is the point of the paper: it must not hurt, and usually helps.
    assert m_guided.roc_auc >= m_unguided.roc_auc - 0.05
