"""Extension bench — multi-checkpoint classification (paper fn 9).

The paper's future-work proposal: classify at 2-3 packet-count points
and block a flow judged malicious at *any* point, to catch attacks that
manifest after the single threshold n.  We compare the single-threshold
pipeline (n=8) against checkpoints {8, 24} on the evasion adversary —
the workload where single-point classification at a short horizon is
weakest (EXPERIMENTS.md, Table 3).
"""

import pytest

from benchmarks.common import BENCH_REPLAY, BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.adversarial import evasion_flows
from repro.datasets.splits import TraceSplit, make_trace_split
from repro.datasets.trace import flows_to_trace
from repro.eval.harness import run_testbed_experiment
from repro.eval.metrics import detection_metrics
from repro.switch.controller import Controller
from repro.switch.multipoint import MultiCheckpointPipeline, build_checkpoint_rules
from repro.switch.pipeline import PipelineConfig
from repro.switch.runner import replay_trace

CHECKPOINTS = (8, 24)


def _evasion_split(attack: str, seed: int) -> TraceSplit:
    config = bench_testbed_config()
    split = make_trace_split(attack, n_benign_flows=config.n_benign_flows, seed=seed)
    flows = list(split.test_trace.flows().values())
    benign = [f for f in flows if not any(p.malicious for p in f)]
    malicious = evasion_flows(
        [f for f in flows if any(p.malicious for p in f)], 0.5, seed=seed + 1
    )
    return TraceSplit(
        train_flows=split.train_flows,
        val_flows=split.val_flows,
        val_labels=split.val_labels,
        test_trace=flows_to_trace(benign + malicious),
        attack_name=split.attack_name,
    )


def multipoint_vs_single():
    config = bench_testbed_config()
    split = _evasion_split("TCP DDoS", BENCH_SEED)

    single = run_testbed_experiment(
        "TCP DDoS", "iguard", config=config, split=split, seed=BENCH_SEED
    )

    checkpoints = build_checkpoint_rules(
        split.train_flows,
        CHECKPOINTS,
        timeout=config.timeout,
        iguard_params=config.iguard_params,
        rule_cells=config.rule_cells,
        seed=BENCH_SEED,
    )
    pipeline = MultiCheckpointPipeline(
        checkpoints,
        config=PipelineConfig(timeout=config.timeout, n_slots=config.n_slots),
    )
    Controller(pipeline)
    # MultiCheckpointPipeline overrides the packet walk; mode="batch"
    # transparently falls back to the scalar engine its walk defines.
    replay = replay_trace(split.test_trace, pipeline, mode=BENCH_REPLAY)
    multi = detection_metrics(replay.y_true, replay.y_pred, replay.y_pred.astype(float))
    return single.metrics, multi, pipeline.checkpoint_flags


def test_extension_multipoint(benchmark):
    single, multi, flags = single_round(benchmark, multipoint_vs_single)
    print()
    print("Extension (fn 9) — multi-checkpoint vs single-threshold, evasion TCP DDoS")
    print(f"  single n=8:          F1={single.macro_f1:.3f} ROC={single.roc_auc:.3f} "
          f"PR={single.pr_auc:.3f}")
    print(f"  checkpoints {CHECKPOINTS}: F1={multi.macro_f1:.3f} ROC={multi.roc_auc:.3f} "
          f"PR={multi.pr_auc:.3f}")
    print(f"  malicious verdicts per checkpoint: {flags}")
    # Any-point blocking can only add detections; it must not end up
    # meaningfully below the single-threshold design.
    assert multi.macro_f1 >= single.macro_f1 - 0.05
