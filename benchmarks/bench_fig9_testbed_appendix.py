"""Figure 9 (appendix) — testbed detection on the remaining 10 attacks,
same protocol and expected shape as Figure 6 (improvements of 5-48.3%
macro F1, 26-70% PRAUC, 2-55.7% ROCAUC)."""

import pytest

from benchmarks.bench_fig6_testbed_detection import testbed_pair
from benchmarks.common import single_round
from repro.datasets.attacks import APPENDIX_ATTACKS
from repro.eval.reporting import format_improvement_summary, format_metric_table

_RESULTS = {}


@pytest.mark.parametrize("attack", APPENDIX_ATTACKS)
def test_fig9_testbed_detection(benchmark, attack):
    results = single_round(benchmark, lambda: testbed_pair(attack))
    metrics = {m: r.metrics for m, r in results.items()}
    _RESULTS[attack] = metrics
    print()
    print(format_metric_table({attack: metrics}, models=["iforest", "iguard"],
                              title=f"Fig 9 [{attack}]"))
    # Per-attack outcomes vary with scale/seed (see EXPERIMENTS.md); the
    # paper's ordering claim is asserted on the average in the summary.
    assert 0.0 <= metrics["iguard"].macro_f1 <= 1.0


def test_fig9_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("per-attack benches did not run")
    print()
    print(format_metric_table(_RESULTS, models=["iforest", "iguard"],
                              title="Fig 9 — all appendix attacks (testbed)"))
    print(format_improvement_summary(_RESULTS, "iforest", "iguard"))
    mean_ig = sum(m["iguard"].macro_f1 for m in _RESULTS.values()) / len(_RESULTS)
    mean_if = sum(m["iforest"].macro_f1 for m in _RESULTS.values()) / len(_RESULTS)
    assert mean_ig > mean_if
