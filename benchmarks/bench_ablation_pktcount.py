"""Ablation — packet-count threshold n and timeout δ (§3.3.1, fn 9).

The switch truncates FL features at n packets (or δ idle seconds), so n
trades early decisions against feature reliability.  The sweep shows the
per-packet detection of the deployed pipeline as n varies.
"""

import pytest

from benchmarks.common import BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.splits import make_trace_split
from repro.eval.harness import run_testbed_experiment

NS = (4, 8, 16)


def n_sweep():
    rows = {}
    for n in NS:
        config = bench_testbed_config()
        config.pkt_count_threshold = n
        r = run_testbed_experiment("Mirai", "iguard", config=config, seed=BENCH_SEED)
        rows[n] = r
    return rows


def test_ablation_pktcount(benchmark):
    rows = single_round(benchmark, n_sweep)
    print()
    print("Ablation — packet-count threshold n (testbed, Mirai)")
    print(f"{'n':>4s} {'macroF1':>9s} {'blue-path':>10s} {'brown-path':>11s}")
    for n, r in rows.items():
        paths = r.replay.path_counts()
        print(f"{n:>4d} {r.metrics.macro_f1:>9.3f} {paths.get('blue', 0):>10d} "
              f"{paths.get('brown', 0):>11d}")
    # Larger n means more early (brown-path) packets before classification.
    assert rows[NS[-1]].replay.path_counts().get("brown", 0) >= rows[NS[0]].replay.path_counts().get("brown", 0)
