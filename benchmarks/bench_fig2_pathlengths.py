"""Figure 2 — expected-path-length distributions of a tuned conventional
iForest overlap heavily between benign and malicious samples (the
paper's motivation for iGuard), shown for the 5 headline attacks.

Prints, per attack, the benign/malicious expected-path-length means and
the histogram overlap coefficient; the paper's claim is a *significant*
overlap (coefficient well above zero) on every attack.
"""

import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IFOREST, single_round
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.datasets.splits import make_attack_split
from repro.eval.reporting import format_distribution_summary, histogram_overlap
from repro.forest.iforest import IsolationForest


def path_length_overlap(attack: str):
    split = make_attack_split(attack, n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)
    forest = IsolationForest(seed=BENCH_SEED, **FIXED_IFOREST).fit(split.x_train)
    epl = forest.expected_path_length(split.x_test)
    benign = epl[split.y_test == 0]
    malicious = epl[split.y_test == 1]
    return benign, malicious, histogram_overlap(benign, malicious)


@pytest.mark.parametrize("attack", HEADLINE_ATTACKS)
def test_fig2_pathlength_overlap(benchmark, attack):
    benign, malicious, overlap = single_round(
        benchmark, lambda: path_length_overlap(attack)
    )
    print()
    print(format_distribution_summary(f"Fig 2 [{attack}]", benign, malicious))
    # The motivation claim: distributions overlap substantially.
    assert overlap > 0.05
