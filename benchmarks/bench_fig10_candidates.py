"""Figure 10 (App. A) — candidate comparison for guiding iForest:
kNN, PCA, iForest, X-means, VAE, and Magnifier, macro F1 on the test
set, fine-tuned (threshold) on the validation set.

Expected shape: Magnifier (and the VAE close behind) outperform the
classic detectors on average — the reason the paper picks Magnifier as
iGuard's oracle.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IFOREST, single_round
from repro.baselines import KNNDetector, PCADetector, XMeansDetector
from repro.datasets.attacks import ALL_ATTACKS
from repro.datasets.splits import make_attack_split
from repro.eval.gridsearch import tune_detector_threshold
from repro.eval.metrics import macro_f1
from repro.forest.iforest import IsolationForest
from repro.nn.autoencoder import MagnifierAutoencoder
from repro.nn.vae import VariationalAutoencoder

#: A representative subset keeps the bench fast; REPRO_BENCH_FLOWS and
#: this tuple can be widened to the full 15 attacks.
CANDIDATE_ATTACKS = ("Mirai", "Aidra", "UDP DDoS", "OS scan", "Keylogging", "Data theft")

CANDIDATES = ("kNN", "PCA", "iForest", "X-means", "VAE", "Magnifier")


def _score_based(detector, split):
    detector.fit(split.x_train)
    t = tune_detector_threshold(
        detector.anomaly_scores(split.x_val),
        split.y_val,
        scores_train=detector.anomaly_scores(split.x_train),
    )
    pred = (detector.anomaly_scores(split.x_test) > t).astype(int)
    return macro_f1(split.y_test, pred)


def candidate_f1s(attack: str):
    split = make_attack_split(attack, n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)
    out = {}
    out["kNN"] = _score_based(KNNDetector(k=5), split)
    out["PCA"] = _score_based(PCADetector(), split)
    out["X-means"] = _score_based(XMeansDetector(seed=BENCH_SEED), split)
    forest = IsolationForest(seed=BENCH_SEED, **FIXED_IFOREST).fit(split.x_train)
    out["iForest"] = macro_f1(split.y_test, forest.predict(split.x_test))
    out["VAE"] = _score_based(
        VariationalAutoencoder(epochs=120, seed=BENCH_SEED), split
    )
    out["Magnifier"] = _score_based(
        MagnifierAutoencoder(epochs=150, seed=BENCH_SEED), split
    )
    return out


_RESULTS = {}


@pytest.mark.parametrize("attack", CANDIDATE_ATTACKS)
def test_fig10_candidates(benchmark, attack):
    f1s = single_round(benchmark, lambda: candidate_f1s(attack))
    _RESULTS[attack] = f1s
    print()
    print(f"Fig 10 [{attack}] macro F1: " + "  ".join(
        f"{name}={f1s[name]:.3f}" for name in CANDIDATES
    ))


def test_fig10_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("per-attack benches did not run")
    print()
    print("Fig 10 — candidate macro F1 (rows: attacks)")
    header = f"{'attack':<14s}" + "".join(f"{c:>11s}" for c in CANDIDATES)
    print(header)
    means = {c: [] for c in CANDIDATES}
    for attack, f1s in _RESULTS.items():
        print(f"{attack:<14s}" + "".join(f"{f1s[c]:>11.3f}" for c in CANDIDATES))
        for c in CANDIDATES:
            means[c].append(f1s[c])
    avg = {c: float(np.mean(v)) for c, v in means.items()}
    print(f"{'Average':<14s}" + "".join(f"{avg[c]:>11.3f}" for c in CANDIDATES))
    # Paper's selection criterion: the reconstruction-based detectors lead.
    # On our synthetic traffic PCA can tie or edge out Magnifier because the
    # benign manifold is linear in log space by construction (see
    # EXPERIMENTS.md); the reproduced claim is Magnifier's clear win over
    # the isolation/clustering detectors.
    assert avg["Magnifier"] > avg["X-means"]
    assert avg["Magnifier"] > avg["iForest"]
    assert avg["Magnifier"] >= max(avg.values()) - 0.12
