"""Cluster scale-out: pps-vs-shards curve and two-phase swap barrier.

Routes one ≥100k-packet trace through :class:`repro.cluster.ClusterService`
at increasing shard counts and measures:

* the *scaling curve* — steady-state packets/sec of the full routed
  replay (partition + shard replays + global-order merge) per shard
  count, under the multiprocess executor by default;
* the *swap barrier* — wall clock of the cluster-wide two-phase table
  update (stage on every shard, commit on every shard), the window in
  which a real control plane would be writing N switches' TCAM entries.

* the *transport race* — per-shard routed-replay throughput of the
  pipe+pickle transport vs the zero-copy shared-memory descriptor
  transport at a fixed shard count.  Unlike the scaling curve this is
  core-count independent: shm drops the per-packet pickle/unpickle tax
  on the coordinator's critical path, so it must win even (especially)
  on a 1-core host, and the pytest assertion demands it
  unconditionally.

The ≥2× at-4-shards claim is only physical on hosts with ≥4 usable
cores; the emitted ``BENCH_cluster.json`` embeds the
:func:`benchmarks.common.host_info` block precisely so curves from
different hosts aren't compared blind, and the pytest assertion gates on
it.  Verdict equality across shard counts *and* transports is asserted
unconditionally — neither scaling nor the transport may buy divergence.

Emits ``BENCH_cluster.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_cluster.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_CLUSTER_FLOWS`` (benign flows, default 2400
→ ~100k packets), ``REPRO_BENCH_CLUSTER_SHARDS`` (comma-separated shard
counts, default ``1,2,4``), ``REPRO_BENCH_CLUSTER_EXECUTOR``
(``multiprocess`` default, ``inprocess`` for deterministic profiling),
``REPRO_BENCH_SEED``.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_batch_replay import build_workload
from benchmarks.common import bench_seed, host_info, multicore_gate, require_host_info
from repro.cluster import ClusterService
from repro.runtime import RuntimeConfig

CLUSTER_FLOWS = int(os.environ.get("REPRO_BENCH_CLUSTER_FLOWS", "2400"))
SHARD_COUNTS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_CLUSTER_SHARDS", "1,2,4").split(",")
)
EXECUTOR = os.environ.get("REPRO_BENCH_CLUSTER_EXECUTOR", "multiprocess")
#: The two multiprocess transports raced head-to-head (same fleet
#: shape, only the data path differs).
TRANSPORTS = ("multiprocess", "shm")
#: Shard count at which the transports are raced.
TRANSPORT_SHARDS = int(os.environ.get("REPRO_BENCH_CLUSTER_RACE_SHARDS", "2"))
N_SWAPS = 5
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"


def _measure_replay(trace, make_pipeline, n_shards, repeats, executor=None):
    """Best-of-*repeats* routed-replay pps on a fresh cluster each round."""
    best_pps, y_pred = 0.0, None
    for _ in range(repeats):
        config = RuntimeConfig(drift_threshold=0.0)
        with ClusterService(
            make_pipeline(),
            n_shards=n_shards,
            config=config,
            executor=executor or EXECUTOR,
        ) as cluster:
            start = time.perf_counter()
            merged = cluster.replay(trace)
            elapsed = time.perf_counter() - start
        best_pps = max(best_pps, len(trace) / elapsed)
        y_pred = merged.y_pred
    return best_pps, y_pred


def _measure_swap_barrier(make_pipeline, n_shards, n_swaps):
    """Two-phase stage+commit of the live generation, *n_swaps* times."""
    template = make_pipeline()
    artifacts = template._live_tables()
    barriers = []
    with ClusterService(
        template, n_shards=n_shards, config=RuntimeConfig(drift_threshold=0.0),
        executor=EXECUTOR,
    ) as cluster:
        for _ in range(n_swaps):
            event = cluster.swap(artifacts)
            assert not event.rolled_back
            barriers.append(event.duration_s)
    return barriers


def run(repeats=3):
    trace, make_pipeline = build_workload(
        seed=bench_seed("cluster"), n_flows=CLUSTER_FLOWS
    )
    shards = {}
    reference_pred = None
    for n in SHARD_COUNTS:
        pps, y_pred = _measure_replay(trace, make_pipeline, n, repeats)
        barriers = _measure_swap_barrier(make_pipeline, n, N_SWAPS)
        if reference_pred is None:
            reference_pred = y_pred
        else:
            # Scaling must not change a single verdict.
            assert (y_pred == reference_pred).all(), f"{n} shards diverged"
        shards[str(n)] = {
            "pps": round(pps, 1),
            "speedup_vs_1": None,
            "swap_barrier_ms_mean": round(1e3 * float(np.mean(barriers)), 4),
            "swap_barrier_ms_max": round(1e3 * float(np.max(barriers)), 4),
        }
    base = shards[str(SHARD_COUNTS[0])]["pps"]
    for entry in shards.values():
        entry["speedup_vs_1"] = round(entry["pps"] / base, 3)

    # Transport race: pipe+pickle vs shared-memory descriptors, same
    # shard count, same trace, same fleet shape.
    transports = {}
    for transport in TRANSPORTS:
        pps, y_pred = _measure_replay(
            trace, make_pipeline, TRANSPORT_SHARDS, repeats, executor=transport
        )
        assert (y_pred == reference_pred).all(), f"{transport} diverged"
        transports[transport] = {
            "transport": transport,
            "n_shards": TRANSPORT_SHARDS,
            "pps": round(pps, 1),
            "speedup_vs_pipe": None,
        }
    pipe_pps = transports["multiprocess"]["pps"]
    for entry in transports.values():
        entry["speedup_vs_pipe"] = round(entry["pps"] / pipe_pps, 3)

    report = {
        "host": host_info(),
        "n_packets": len(trace),
        "n_flows": len(trace.bidirectional_flows()),
        "executor": EXECUTOR,
        "transport": EXECUTOR,
        "shard_counts": list(SHARD_COUNTS),
        "shards": shards,
        "transports": transports,
        "n_swaps_timed": N_SWAPS,
        # The asserts above already enforced this; recorded so
        # downstream consumers of the JSON can check it without
        # rerunning.
        "verdicts_identical": True,
    }
    require_host_info(report)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_cluster_scaling(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    n_cores = require_host_info(report)["n_cores"]
    print()
    print(f"Cluster scale-out — {report['n_packets']} packets, "
          f"{report['executor']} executor, {n_cores} usable cores")
    for n in report["shard_counts"]:
        row = report["shards"][str(n)]
        print(f"  {n} shard(s): {row['pps']:>10.0f} pps "
              f"({row['speedup_vs_1']:.2f}x)  "
              f"swap barrier mean {row['swap_barrier_ms_mean']:.3f} ms")
    race = report["transports"]
    print(f"  transport race @ {race['shm']['n_shards']} shards: "
          f"pipe {race['multiprocess']['pps']:>10.0f} pps vs "
          f"shm {race['shm']['pps']:>10.0f} pps "
          f"({race['shm']['speedup_vs_pipe']:.2f}x)")
    # Core-count independent: the descriptor transport removes the
    # coordinator's pickle/unpickle tax, so it must win even at 1 core.
    assert race["shm"]["pps"] > race["multiprocess"]["pps"]
    # The parallel-speedup claim needs the cores to exist; the host
    # block in BENCH_cluster.json records why it was (not) asserted.
    if (
        report["executor"] == "multiprocess"
        and "4" in report["shards"]
        and multicore_gate(report, 4, "scaling")
    ):
        assert report["shards"]["4"]["speedup_vs_1"] >= 2.0


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
