"""Figure 7 (appendix) — expected-path-length overlap for the remaining
10 attacks, same construction as Figure 2."""

import pytest

from benchmarks.bench_fig2_pathlengths import path_length_overlap
from benchmarks.common import single_round
from repro.datasets.attacks import APPENDIX_ATTACKS
from repro.eval.reporting import format_distribution_summary


@pytest.mark.parametrize("attack", APPENDIX_ATTACKS)
def test_fig7_pathlength_overlap(benchmark, attack):
    benign, malicious, overlap = single_round(
        benchmark, lambda: path_length_overlap(attack)
    )
    print()
    print(format_distribution_summary(f"Fig 7 [{attack}]", benign, malicious))
    assert overlap > 0.05
