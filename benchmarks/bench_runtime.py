"""Serving-runtime cost model: streaming throughput and swap pause.

The serving runtime chops a trace into chunks and replays each through
the live tables (:class:`repro.runtime.StreamDriver`); between chunks it
may stage a new table generation and flip it atomically
(``stage_tables`` + ``hot_swap``).  Two costs matter for deployment:

* the *chunking overhead* — steady-state packets/sec of the chunked
  stream versus the one-shot batch replay of the same trace;
* the *swap pause* — wall clock of stage + flip, the window during
  which a real control plane would be writing TCAM entries.

Emits ``BENCH_runtime.json`` at the repo root.  Runs standalone
(``PYTHONPATH=src python benchmarks/bench_runtime.py``) or under
pytest-benchmark.

Scale knobs: ``REPRO_BENCH_RUNTIME_FLOWS`` (benign flows, default 600),
``REPRO_BENCH_RUNTIME_CHUNK`` (chunk size, default 4096),
``REPRO_BENCH_SEED``.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.bench_batch_replay import build_workload
from benchmarks.common import bench_seed
from repro.runtime import StreamDriver
from repro.switch.runner import replay_trace

RUNTIME_FLOWS = int(os.environ.get("REPRO_BENCH_RUNTIME_FLOWS", "600"))
CHUNK_SIZE = int(os.environ.get("REPRO_BENCH_RUNTIME_CHUNK", "4096"))
N_SWAPS = 5
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"


def _measure_oneshot(trace, make_pipeline, repeats):
    best_pps, last = 0.0, None
    for _ in range(repeats):
        pipeline = make_pipeline()
        start = time.perf_counter()
        result = replay_trace(trace, pipeline, mode="batch")
        best_pps = max(best_pps, len(trace) / (time.perf_counter() - start))
        last = result
    return best_pps, last


def _measure_stream(trace, make_pipeline, repeats):
    best_pps, last = 0.0, None
    for _ in range(repeats):
        pipeline = make_pipeline()
        driver = StreamDriver(pipeline, chunk_size=CHUNK_SIZE)
        preds = []
        start = time.perf_counter()
        for chunk in driver.run(trace):
            preds.append(chunk.replay.y_pred)
        best_pps = max(best_pps, len(trace) / (time.perf_counter() - start))
        last = (driver, np.concatenate(preds))
    return best_pps, last


def _measure_swap_pause(make_pipeline, n_swaps):
    """Stage + flip the pipeline's own table generation *n_swaps* times."""
    pipeline = make_pipeline()
    tables = pipeline._live_tables()
    pauses = []
    for _ in range(n_swaps):
        start = time.perf_counter()
        pipeline.stage_tables(
            tables.fl_rules,
            tables.fl_quantizer,
            pl_rules=tables.pl_rules,
            pl_quantizer=tables.pl_quantizer,
        )
        pipeline.hot_swap()
        pauses.append(time.perf_counter() - start)
    assert pipeline.table_swaps == n_swaps
    return pauses


def run(repeats=3):
    trace, make_pipeline = build_workload(
        seed=bench_seed("runtime"), n_flows=RUNTIME_FLOWS
    )
    oneshot_pps, oneshot = _measure_oneshot(trace, make_pipeline, repeats)
    stream_pps, (driver, stream_pred) = _measure_stream(trace, make_pipeline, repeats)

    # Streaming is only a cost model if it serves the same verdicts.
    assert (stream_pred == oneshot.y_pred).all(), "stream diverged from one-shot"

    from benchmarks.common import host_info

    pauses = _measure_swap_pause(make_pipeline, N_SWAPS)
    report = {
        "host": host_info(),
        "n_packets": len(trace),
        "n_chunks": driver.chunks_processed,
        "chunk_size": CHUNK_SIZE,
        "oneshot_pps": round(oneshot_pps, 1),
        "stream_pps": round(stream_pps, 1),
        "chunking_overhead": round(oneshot_pps / stream_pps, 3),
        "swap_pause_ms_mean": round(1e3 * float(np.mean(pauses)), 4),
        "swap_pause_ms_max": round(1e3 * float(np.max(pauses)), 4),
        "n_swaps_timed": N_SWAPS,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_runtime_serving_cost(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    print()
    print(f"Serving runtime — {report['n_packets']} packets in "
          f"{report['n_chunks']} chunks of {report['chunk_size']}")
    print(f"  one-shot: {report['oneshot_pps']:>10.0f} pps")
    print(f"  stream:   {report['stream_pps']:>10.0f} pps "
          f"({report['chunking_overhead']:.2f}x overhead)")
    print(f"  swap pause: mean {report['swap_pause_ms_mean']:.3f} ms, "
          f"max {report['swap_pause_ms_max']:.3f} ms")
    # The swap pause must stay far below one chunk's serving time.
    chunk_serve_ms = 1e3 * report["chunk_size"] / report["stream_pps"]
    assert report["swap_pause_ms_max"] < chunk_serve_ms


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
