"""Shared benchmark machinery.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding experiment protocol and prints the same rows or
series the paper reports (see EXPERIMENTS.md for the paper-vs-measured
record).  pytest-benchmark measures a single round — these are
experiment harnesses, not micro-benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_FLOWS``  — benign flows per dataset (default 320).
* ``REPRO_BENCH_SEED``   — experiment seed (default 2024).
* ``REPRO_BENCH_GRID``   — ``fixed`` (default: pre-searched best
  configurations, fast) or ``full`` (re-run the paper's grid search).
* ``REPRO_BENCH_REPLAY`` — data-plane replay engine, ``batch``
  (default, vectorised) or ``scalar`` (the reference walk).
* ``REPRO_BENCH_TELEMETRY`` — ``on`` (default) records each benchmark
  under a fresh metric registry and writes
  ``<REPRO_BENCH_TELEMETRY_DIR>/<bench>.telemetry.json`` next to the
  printed table; ``off`` runs with the no-op registry.
* ``REPRO_BENCH_TELEMETRY_DIR`` — report directory (default
  ``telemetry/`` under the repo root).
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
from typing import Dict, Optional

from repro.eval.gridsearch import grid_search_iforest, grid_search_iguard
from repro.eval.harness import TestbedConfig, run_cpu_experiment
from repro.eval.metrics import DetectionMetrics, detection_metrics
from repro.eval.reporting import format_stage_times
from repro.nn.ensemble import AutoencoderEnsemble
from repro.telemetry import load_report, run_report

BENCH_FLOWS = int(os.environ.get("REPRO_BENCH_FLOWS", "320"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2024"))
BENCH_GRID = os.environ.get("REPRO_BENCH_GRID", "fixed")
BENCH_REPLAY = os.environ.get("REPRO_BENCH_REPLAY", "batch")
BENCH_TELEMETRY = os.environ.get("REPRO_BENCH_TELEMETRY", "on")
BENCH_TELEMETRY_DIR = os.environ.get(
    "REPRO_BENCH_TELEMETRY_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "telemetry"),
)

#: Pre-searched best versions (REPRO_BENCH_GRID=full re-derives them).
FIXED_IFOREST = {"n_trees": 100, "subsample_size": 128, "contamination": 0.15}
FIXED_IGUARD = {
    "n_trees": 11,
    "subsample_size": 96,
    "k_aug": 96,
    "tau_split": 0.0,
    "threshold_margin": 2.0,
    "distil_margin": 1.2,
}

#: Compact grids used when REPRO_BENCH_GRID=full.
FULL_IFOREST_GRID = {
    "n_trees": (50, 100),
    "subsample_size": (64, 128),
    "contamination": (0.05, 0.1, 0.15, 0.2),
}
FULL_IGUARD_GRID = {
    "n_trees": (11,),
    "subsample_size": (96,),
    "k_aug": (96,),
    "threshold_margin": (1.6, 2.0),
    "distil_margin": (1.0, 1.2),
}


def host_info() -> Dict:
    """Machine-readable host block embedded in every ``BENCH_*.json``.

    Throughput and scaling numbers are only comparable across runs when
    the host is recorded next to them — ``n_cores`` is the *usable*
    core count (cgroup/affinity-aware where the platform exposes it),
    which is what bounds any pps-vs-shards curve.
    """
    if hasattr(os, "sched_getaffinity"):
        n_cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover — platforms without affinity introspection
        n_cores = os.cpu_count() or 1
    return {
        "n_cores": n_cores,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def require_host_info(report: Dict) -> Dict:
    """Assert *report* embeds the :func:`host_info` block and return it.

    Every ``BENCH_*.json`` must carry the host block — throughput,
    scaling, and efficacy numbers are meaningless to compare without
    knowing the machine that produced them.  Benchmarks call this on
    the report they are about to write (and in their pytest assertions)
    so a refactor that drops the block fails loudly instead of shipping
    an anonymous JSON.
    """
    host = report.get("host")
    assert isinstance(host, dict) and "n_cores" in host, (
        "benchmark report is missing the host_info() block; embed "
        "common.host_info() under the 'host' key"
    )
    return host


def multicore_gate(report: Dict, min_cores: int, claim: str = "multi-core") -> bool:
    """Gate a parallel-speedup assertion on usable core count.

    Returns True when the report's host block shows at least
    *min_cores* usable cores (the claim is physical — assert it);
    otherwise prints the standard skip line and returns False.  Shared
    by every benchmark making a cores-dependent claim so the skip
    criterion and its paper trail stay uniform.
    """
    host = require_host_info(report)
    n_cores = int(host["n_cores"])
    if n_cores >= min_cores:
        return True
    print(f"  ({claim} assertion skipped: {n_cores} usable cores < {min_cores})")
    return False


def bench_seed(name: str) -> int:
    """Per-benchmark seed derived from ``REPRO_BENCH_SEED`` and *name*.

    Seeding every benchmark straight from the process-wide seed made
    distinct benchmarks (and distinct attacks within one) replay the
    exact same random streams — identical benign flows, identical split
    permutations — so their results were correlated draws rather than
    independent ones.  Mixing the benchmark name into the seed keeps
    each benchmark on its own stream while staying reproducible for a
    fixed ``REPRO_BENCH_SEED``.
    """
    digest = hashlib.sha256(f"{BENCH_SEED}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def bench_testbed_config() -> TestbedConfig:
    """Testbed configuration shared by all switch benchmarks."""
    return TestbedConfig(
        n_benign_flows=BENCH_FLOWS,
        rule_cells=1024,
        replay_mode=BENCH_REPLAY,
        iforest_params=dict(FIXED_IFOREST),
        iguard_params=dict(FIXED_IGUARD),
    )


def cpu_models_on_attack(attack: str, seed: Optional[int] = None) -> Dict[str, DetectionMetrics]:
    """Fit the three CPU models on one attack and return test metrics.

    With the default ``fixed`` mode the pre-searched configurations are
    used directly (the oracle is still trained per dataset); ``full``
    mode re-runs the grid search as the paper describes.
    """
    from repro.core.iguard import IGuard
    from repro.datasets.splits import make_attack_split
    from repro.eval.gridsearch import tune_detector_threshold
    from repro.forest.iforest import IsolationForest

    seed = bench_seed(f"cpu:{attack}") if seed is None else seed
    if BENCH_GRID == "full":
        result = run_cpu_experiment(
            attack,
            n_benign_flows=BENCH_FLOWS,
            iforest_grid=FULL_IFOREST_GRID,
            iguard_grid=FULL_IGUARD_GRID,
            seed=seed,
        )
        return result.metrics

    split = make_attack_split(attack, n_benign_flows=BENCH_FLOWS, seed=seed)
    metrics: Dict[str, DetectionMetrics] = {}

    forest = IsolationForest(seed=seed, **FIXED_IFOREST).fit(split.x_train)
    metrics["iforest"] = detection_metrics(
        split.y_test, forest.predict(split.x_test), forest.decision_function(split.x_test)
    )

    oracle = AutoencoderEnsemble(seed=seed).fit(split.x_train)
    scores_val = oracle.anomaly_scores(split.x_val)
    scores_train = oracle.anomaly_scores(split.x_train)
    threshold = tune_detector_threshold(scores_val, split.y_val, scores_train=scores_train)
    scores_test = oracle.anomaly_scores(split.x_test)
    metrics["magnifier"] = detection_metrics(
        split.y_test, (scores_test > threshold).astype(int), scores_test
    )

    oracle.calibrate(split.x_train, margin=FIXED_IGUARD["threshold_margin"])
    model = IGuard(
        oracle=oracle, oracle_prefit=True, seed=seed, **FIXED_IGUARD
    ).fit(split.x_train)
    metrics["iguard"] = detection_metrics(
        split.y_test, model.predict(split.x_test), model.vote_fraction(split.x_test)
    )
    return metrics


def _bench_name(benchmark, fn) -> str:
    """Report stem: the test name (with parametrisation), filesystem-safe."""
    name = getattr(benchmark, "name", None) or getattr(fn, "__module__", "bench")
    return "".join(c if c.isalnum() or c in "._-" else "-" for c in name).strip("-")


def single_round(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value.

    With ``REPRO_BENCH_TELEMETRY=on`` the round executes under a fresh
    metric registry; the structured report lands in
    ``REPRO_BENCH_TELEMETRY_DIR`` and a one-line stage-time summary is
    printed after the run.
    """
    if BENCH_TELEMETRY != "on":
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    name = _bench_name(benchmark, fn)
    os.makedirs(BENCH_TELEMETRY_DIR, exist_ok=True)
    path = os.path.join(BENCH_TELEMETRY_DIR, f"{name}.telemetry.json")
    meta = {
        "benchmark": name,
        "flows": BENCH_FLOWS,
        "seed": BENCH_SEED,
        "grid": BENCH_GRID,
        "replay": BENCH_REPLAY,
    }
    with run_report(path, meta=meta):
        value = benchmark.pedantic(fn, rounds=1, iterations=1)
    print(f"telemetry: {path}", file=sys.stderr)
    print(format_stage_times(load_report(path)), file=sys.stderr)
    return value
