"""Figure 5 — CPU detection comparison on the 5 headline attacks:
iForest vs Magnifier vs iGuard (macro F1 / PRAUC / ROCAUC).

Expected shape (paper §4.1): iGuard ≈ Magnifier, and iGuard improves
over iForest by 1.8-62.9% macro F1, 5.7-72.2% PRAUC, 1.8-62.8% ROCAUC.
"""

import pytest

from benchmarks.common import cpu_models_on_attack, single_round
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.eval.reporting import format_improvement_summary, format_metric_table

_RESULTS = {}


@pytest.mark.parametrize("attack", HEADLINE_ATTACKS)
def test_fig5_cpu_detection(benchmark, attack):
    metrics = single_round(benchmark, lambda: cpu_models_on_attack(attack))
    _RESULTS[attack] = metrics
    print()
    print(
        format_metric_table(
            {attack: metrics}, models=["iforest", "magnifier", "iguard"],
            title=f"Fig 5 [{attack}]",
        )
    )
    # Shape assertions: the distilled model tracks its oracle and beats
    # the conventional iForest on ranking quality.
    assert metrics["iguard"].roc_auc >= metrics["iforest"].roc_auc - 0.1


def test_fig5_summary(benchmark):
    """Aggregate improvement summary across whatever attacks ran."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("per-attack benches did not run")
    print()
    print(format_metric_table(_RESULTS, models=["iforest", "magnifier", "iguard"],
                              title="Fig 5 — all headline attacks"))
    print(format_improvement_summary(_RESULTS, "iforest", "iguard"))
