"""Figure 6 — testbed (switch) detection on the 5 headline attacks:
iGuard vs the HorusEye-style iForest deployment, per-packet metrics
through the simulated data plane.

Expected shape (paper §4.2.1): iGuard improves macro F1 by 5-48%,
ROCAUC by 2-55.7%, PRAUC by 26-70%; both models score below their CPU
figures (only 13 FL features are extractable in the data plane).
"""

import pytest

from benchmarks.common import BENCH_SEED, bench_testbed_config, single_round
from repro.datasets.attacks import HEADLINE_ATTACKS
from repro.datasets.splits import make_trace_split
from repro.eval.harness import run_testbed_experiment
from repro.eval.reporting import format_improvement_summary, format_metric_table

_RESULTS = {}


def testbed_pair(attack: str):
    config = bench_testbed_config()
    split = make_trace_split(attack, n_benign_flows=config.n_benign_flows, seed=BENCH_SEED)
    out = {}
    for model in ("iforest", "iguard"):
        out[model] = run_testbed_experiment(
            attack, model, config=config, split=split, seed=BENCH_SEED + 1
        )
    return out


@pytest.mark.parametrize("attack", HEADLINE_ATTACKS)
def test_fig6_testbed_detection(benchmark, attack):
    results = single_round(benchmark, lambda: testbed_pair(attack))
    metrics = {m: r.metrics for m, r in results.items()}
    _RESULTS[attack] = metrics
    print()
    print(format_metric_table({attack: metrics}, models=["iforest", "iguard"],
                              title=f"Fig 6 [{attack}]"))
    for model, r in results.items():
        print(f"  {model}: rules={r.n_rules} tcam={r.resources.tcam_pct:.2f}% "
              f"reward={r.reward:.3f} paths={r.replay.path_counts()}")
    # Per-attack outcomes vary with scale/seed; the ordering claim is
    # asserted on the average in the summary.
    assert 0.0 <= metrics["iguard"].macro_f1 <= 1.0


def test_fig6_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("per-attack benches did not run")
    print()
    print(format_metric_table(_RESULTS, models=["iforest", "iguard"],
                              title="Fig 6 — all headline attacks (testbed)"))
    print(format_improvement_summary(_RESULTS, "iforest", "iguard"))
    mean_ig = sum(m["iguard"].macro_f1 for m in _RESULTS.values()) / len(_RESULTS)
    mean_if = sum(m["iforest"].macro_f1 for m in _RESULTS.values()) / len(_RESULTS)
    assert mean_ig > mean_if
