"""Ablation — data-augmentation size k (§4.1 fn 10's grid dimension).

k controls how many synthetic probes each node/leaf receives.  Too few
probes let off-manifold regions slip into benign leaves unnoticed; more
probes tighten the forest at linear training cost.
"""

import pytest

from benchmarks.common import BENCH_FLOWS, BENCH_SEED, FIXED_IGUARD, single_round
from repro.core.iguard import IGuard
from repro.datasets.splits import make_attack_split
from repro.eval.metrics import detection_metrics

KS = (16, 48, 96)


def k_sweep():
    split = make_attack_split("Mirai", n_benign_flows=BENCH_FLOWS, seed=BENCH_SEED)
    rows = {}
    oracle = None
    for k in KS:
        params = dict(FIXED_IGUARD)
        params["k_aug"] = k
        model = IGuard(
            oracle=oracle, oracle_prefit=oracle is not None, seed=BENCH_SEED, **params
        ).fit(split.x_train)
        oracle = model.oracle
        m = detection_metrics(
            split.y_test, model.predict(split.x_test), model.vote_fraction(split.x_test)
        )
        rows[k] = m
    return rows


def test_ablation_augmentation(benchmark):
    rows = single_round(benchmark, k_sweep)
    print()
    print("Ablation — augmentation size k vs detection quality")
    print(f"{'k':>5s} {'macroF1':>9s} {'ROCAUC':>8s} {'PRAUC':>8s}")
    for k, m in rows.items():
        print(f"{k:>5d} {m.macro_f1:>9.3f} {m.roc_auc:>8.3f} {m.pr_auc:>8.3f}")
    # More probes should not make ranking quality collapse.
    assert rows[KS[-1]].roc_auc >= rows[KS[0]].roc_auc - 0.1
