"""Batch vs scalar replay throughput on a ~100k-packet trace.

The workload mirrors the paper's deployment premise: traffic is
dominated by benign IoT flows, a small attack share gets classified and
blacklisted, and the whitelist carries a wide benign region compiled
from benign training features.  The scalar engine pays a per-packet
numpy round trip for every PL/FL score; the batch engine precomputes
hashes, quantized features, and whitelist verdicts for the whole trace
and resolves only the sequential switch state per packet.

Emits ``BENCH_batch_replay.json`` at the repo root with both rates and
the speedup.  Runs standalone (``PYTHONPATH=src python
benchmarks/bench_batch_replay.py``) or under pytest-benchmark.

Scale knobs: ``REPRO_BENCH_REPLAY_FLOWS`` (benign flows, default 1150 —
about 100k packets), ``REPRO_BENCH_SEED``.
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone: put the repo root on sys.path
    sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.common import bench_seed
from repro.core.rules import BENIGN, MALICIOUS, RuleSet, WhitelistRule
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.datasets.trace import flows_to_trace
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.packet_features import extract_first_packets
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import Controller
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.utils.box import Box

REPLAY_FLOWS = int(os.environ.get("REPRO_BENCH_REPLAY_FLOWS", "1150"))
#: Deployment knob n — within the paper's studied range; larger n keeps
#: flows on the PL-scored brown path longer (the realistic hot path).
PKT_COUNT_THRESHOLD = 16
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_batch_replay.json"


def _rules(x_benign, x_attack):
    """Wide benign whitelist from benign training features, shadowed by
    a narrow malicious band around the attack mass (first-match)."""
    lo = np.minimum(np.min(x_benign, 0), np.min(x_attack, 0)) - 1.0
    hi = np.maximum(np.max(x_benign, 0), np.max(x_attack, 0)) + 1.0
    mal = WhitelistRule(
        box=Box(
            tuple(np.percentile(x_attack, 25, axis=0)),
            tuple(np.percentile(x_attack, 75, axis=0)),
        ),
        label=MALICIOUS,
    )
    ben = WhitelistRule(
        box=Box(tuple(np.min(x_benign, 0) - 0.5), tuple(np.max(x_benign, 0) + 0.5)),
        label=BENIGN,
    )
    return RuleSet(
        [mal, ben], outer_box=Box(tuple(lo), tuple(hi)), default_label=MALICIOUS
    )


def build_workload(seed=None, n_flows=None):
    seed = bench_seed("batch_replay") if seed is None else seed
    n_flows = REPLAY_FLOWS if n_flows is None else n_flows
    benign = generate_benign_flows(n_flows, seed=seed)
    attack = generate_attack_flows("Mirai", max(10, n_flows // 40), seed=seed + 1)
    trace = flows_to_trace(benign + attack)

    n, timeout = PKT_COUNT_THRESHOLD, 5.0
    fx = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=n, timeout=timeout
    )
    x_fb, _ = fx.extract_flows(benign)
    x_fm, _ = fx.extract_flows(attack)
    x_pb, _ = extract_first_packets(benign, per_flow=2)
    x_pm, _ = extract_first_packets(attack, per_flow=2)
    fl_q = IntegerQuantizer(bits=12, space="log").fit(np.vstack([x_fb, x_fm]))
    pl_q = IntegerQuantizer(bits=12, space="log").fit(np.vstack([x_pb, x_pm]))
    fl_rules = _rules(x_fb, x_fm).quantize(fl_q)
    pl_rules = _rules(x_pb, x_pm).quantize(pl_q)

    def make_pipeline():
        pipe = SwitchPipeline(
            fl_rules=fl_rules,
            fl_quantizer=fl_q,
            pl_rules=pl_rules,
            pl_quantizer=pl_q,
            config=PipelineConfig(
                pkt_count_threshold=n, timeout=timeout, n_slots=8192,
                blacklist_capacity=4096,
            ),
        )
        Controller(pipe)
        return pipe

    return trace, make_pipeline


def measure(trace, make_pipeline, mode, repeats=3):
    """Best-of-*repeats* packets/sec on a fresh pipeline each round."""
    best_pps, last = 0.0, None
    for _ in range(repeats):
        pipeline = make_pipeline()
        start = time.perf_counter()
        result = replay_trace(trace, pipeline, mode=mode)
        elapsed = time.perf_counter() - start
        best_pps = max(best_pps, len(trace) / elapsed)
        last = (pipeline, result)
    return best_pps, last


def run(repeats=3):
    trace, make_pipeline = build_workload()
    batch_pps, (p_b, r_b) = measure(trace, make_pipeline, "batch", repeats)
    scalar_pps, (p_s, r_s) = measure(trace, make_pipeline, "scalar", repeats)

    # The speedup only counts if the engines agree.
    assert p_b.path_counts == p_s.path_counts, "engines diverged on path counts"
    assert (r_b.y_pred == r_s.y_pred).all(), "engines diverged on verdicts"

    from benchmarks.common import host_info

    report = {
        "host": host_info(),
        "n_packets": len(trace),
        "n_flows": len(trace.bidirectional_flows()),
        "malicious_fraction": round(trace.malicious_fraction(), 4),
        "pkt_count_threshold": PKT_COUNT_THRESHOLD,
        "path_counts": {k: v for k, v in p_s.path_counts.items() if v},
        "scalar_pps": round(scalar_pps, 1),
        "batch_pps": round(batch_pps, 1),
        "speedup": round(batch_pps / scalar_pps, 2),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_batch_replay_speedup(benchmark):
    from benchmarks.common import single_round

    report = single_round(benchmark, run)
    print()
    print(f"Batch replay — {report['n_packets']} packets, "
          f"{report['n_flows']} flows, n={report['pkt_count_threshold']}")
    print(f"  scalar: {report['scalar_pps']:>10.0f} pps")
    print(f"  batch:  {report['batch_pps']:>10.0f} pps")
    print(f"  speedup: {report['speedup']:.2f}x  (target ≥ 5x)")
    assert report["speedup"] >= 5.0


if __name__ == "__main__":
    out = run()
    print(json.dumps(out, indent=2))
