"""Table 3 — black-box evasion attacks: malicious flows padded with
benign-mimicking packets at 1:2 and 1:4 benign:malicious ratios
(UDP/TCP DDoS).

Paper's shape: iGuard retains high detection (72-100% F1) while the
conventional iForest collapses (33-42%).

Reproduction status (see EXPERIMENTS.md): PARTIAL.  On our synthetic
traffic the padded flows land, at the 8-packet truncation horizon,
in a pocket adjacent to the benign manifold that the autoencoder
ensemble only flags at thresholds tight enough to destroy the clean
operating point, so the fixed-configuration iGuard passes them while
the baseline's volume-based rules happen to catch the inflated size
dispersion.  The bench therefore reports both models without asserting
the paper's ordering; the low-rate and poisoning rows of Table 2
reproduce the paper's shape."""

import pytest

from benchmarks.common import BENCH_SEED, bench_testbed_config, single_round
from repro.eval.harness import run_adversarial_experiment

CASES = [
    ("Evasion (UDPDDoS 1:2)", "UDP DDoS", "evasion_1to2"),
    ("Evasion (TCPDDoS 1:2)", "TCP DDoS", "evasion_1to2"),
    ("Evasion (UDPDDoS 1:4)", "UDP DDoS", "evasion_1to4"),
    ("Evasion (TCPDDoS 1:4)", "TCP DDoS", "evasion_1to4"),
]

_ROWS = {}


@pytest.mark.parametrize("label,attack,variant", CASES)
def test_table3_evasion(benchmark, label, attack, variant):
    config = bench_testbed_config()

    def run():
        out = {}
        for model in ("iforest", "iguard"):
            r = run_adversarial_experiment(
                attack, model, variant, config=config, seed=BENCH_SEED
            )
            out[model] = r.metrics
        return out

    metrics = single_round(benchmark, run)
    _ROWS[label] = metrics
    print()
    print(f"Table 3 [{label}] (macro F1 / ROCAUC / PRAUC)")
    for model, m in metrics.items():
        name = "iForest [15]" if model == "iforest" else "iGuard"
        print(f"  {name:<12s} {100*m.macro_f1:5.1f}% / {100*m.roc_auc:5.1f}% / {100*m.pr_auc:5.1f}%")
    # No ordering assertion: see the module docstring / EXPERIMENTS.md.
    assert 0.0 <= metrics["iguard"].macro_f1 <= 1.0
    assert 0.0 <= metrics["iforest"].macro_f1 <= 1.0


def test_table3_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("per-case benches did not run")
    print()
    print("Table 3 — adversarial evasion (F1/ROC/PR, %)")
    for label, metrics in _ROWS.items():
        cells = "  ".join(
            f"{m}:{100*v.macro_f1:.0f}/{100*v.roc_auc:.0f}/{100*v.pr_auc:.0f}"
            for m, v in metrics.items()
        )
        print(f"  {label:<28s} {cells}")
