"""Figure 8 (appendix) — CPU detection on the remaining 10 attacks,
same protocol and expected shape as Figure 5."""

import pytest

from benchmarks.common import cpu_models_on_attack, single_round
from repro.datasets.attacks import APPENDIX_ATTACKS
from repro.eval.reporting import format_improvement_summary, format_metric_table

_RESULTS = {}


@pytest.mark.parametrize("attack", APPENDIX_ATTACKS)
def test_fig8_cpu_detection(benchmark, attack):
    metrics = single_round(benchmark, lambda: cpu_models_on_attack(attack))
    _RESULTS[attack] = metrics
    print()
    print(
        format_metric_table(
            {attack: metrics}, models=["iforest", "magnifier", "iguard"],
            title=f"Fig 8 [{attack}]",
        )
    )
    assert metrics["iguard"].roc_auc >= metrics["iforest"].roc_auc - 0.1


def test_fig8_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("per-attack benches did not run")
    print()
    print(format_metric_table(_RESULTS, models=["iforest", "magnifier", "iguard"],
                              title="Fig 8 — all appendix attacks"))
    print(format_improvement_summary(_RESULTS, "iforest", "iguard"))
