"""The observability tax is zero: a run scraped continuously over HTTP
produces decisions and telemetry bit-identical to an unobserved run.

Two fresh services serve the identical stream — one plain, one with the
ops endpoint attached and a polling thread hammering every GET endpoint
throughout the run.  Everything deterministic must match exactly:
per-packet decisions, every counter, every gauge, every event (modulo
wall-clock duration fields), and every histogram's observation count.
Only wall-clock quantities (histogram sums of ``*_s`` timings, event
durations) may differ, because two runs of *anything* differ there.
"""

import threading
import urllib.request

import numpy as np
import pytest

from repro.ops import OpsServer
from repro.runtime import OnlineDetectionService, RuntimeConfig
from repro.telemetry import MetricRegistry, build_report, use_registry
from tests.faults.common import (
    StubRetrainer,
    compile_artifacts,
    fresh_pipeline,
    make_split,
)

N_CHUNKS = 8

#: Event keys that carry wall-clock durations — the only permitted
#: divergence between an observed and an unobserved run.
VOLATILE_EVENT_KEYS = ("duration_s", "elapsed_s", "pause_s")

GET_PATHS = (
    "/healthz",
    "/metrics",
    "/metrics?format=prometheus",
    "/shards",
    "/events?n=5",
)


@pytest.fixture(scope="module")
def split():
    # device_mix shift + cadence retrains: the run actually swaps
    # tables, so the comparison covers the interesting code paths.
    return make_split(seed=31, n_benign_flows=60, shift="device_mix")


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def _poll_forever(base_url, stop):
    while not stop.is_set():
        for path in GET_PATHS:
            try:
                with urllib.request.urlopen(base_url + path, timeout=5) as resp:
                    resp.read()
            except OSError:
                if stop.is_set():
                    return
    # One final sweep after serve() returned, against the final state.
    for path in GET_PATHS:
        try:
            with urllib.request.urlopen(base_url + path, timeout=5) as resp:
                resp.read()
        except OSError:
            return


def _serve(split, artifacts, observed):
    pipeline = fresh_pipeline(artifacts)
    n_packets = len(split.stream_trace.packets)
    config = RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,
        cadence=3,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )
    service = OnlineDetectionService(
        pipeline, retrainer=StubRetrainer(artifacts), config=config
    )
    registry = MetricRegistry()
    with use_registry(registry):
        if not observed:
            report = service.serve(split.stream_trace)
        else:
            stop = threading.Event()
            with OpsServer(service) as srv:
                poller = threading.Thread(
                    target=_poll_forever, args=(srv.url, stop)
                )
                poller.start()
                try:
                    report = service.serve(split.stream_trace)
                finally:
                    stop.set()
                    poller.join(timeout=30)
    return report, build_report(registry)


def _normalise_events(events):
    return [
        {k: v for k, v in e.items() if k not in VOLATILE_EVENT_KEYS}
        for e in events
    ]


@pytest.fixture(scope="module")
def runs(split, artifacts):
    plain = _serve(split, artifacts, observed=False)
    observed = _serve(split, artifacts, observed=True)
    return plain, observed


class TestObservedRunIsBitIdentical:
    def test_decisions_identical(self, runs):
        (plain_report, _), (obs_report, _) = runs
        assert plain_report.n_packets == obs_report.n_packets
        assert np.array_equal(plain_report.y_pred, obs_report.y_pred)
        assert np.array_equal(plain_report.y_true, obs_report.y_true)
        assert plain_report.decisions == obs_report.decisions

    def test_control_flow_identical(self, runs):
        (plain_report, _), (obs_report, _) = runs
        assert plain_report.retrains == obs_report.retrains
        assert plain_report.n_swaps == obs_report.n_swaps
        assert plain_report.retrains > 0  # the comparison has teeth
        assert [e.chunk_index for e in plain_report.swap_events] == [
            e.chunk_index for e in obs_report.swap_events
        ]
        # No control verbs were posted, so scraping alone queued none.
        assert obs_report.control_events == []

    def test_counters_and_gauges_identical(self, runs):
        (_, plain_doc), (_, obs_doc) = runs
        assert plain_doc["counters"] == obs_doc["counters"]
        assert plain_doc["gauges"] == obs_doc["gauges"]

    def test_histogram_populations_identical(self, runs):
        (_, plain_doc), (_, obs_doc) = runs
        assert set(plain_doc["histograms"]) == set(obs_doc["histograms"])
        for name, h in plain_doc["histograms"].items():
            assert h["count"] == obs_doc["histograms"][name]["count"], name

    def test_event_log_identical_modulo_durations(self, runs):
        (_, plain_doc), (_, obs_doc) = runs
        assert _normalise_events(plain_doc["events"]) == _normalise_events(
            obs_doc["events"]
        )
        assert plain_doc["dropped_events"] == obs_doc["dropped_events"]
