"""The mitigation slice of the ops surface: ``GET /mitigation`` and
``POST /control/unblock/<flow>`` against the stub service."""

import json

import pytest

from repro.ops import TOKEN_HEADER, OpsServer
from repro.telemetry import MetricRegistry
from tests.ops.common import StubService, get_json, http_post

AUTH = {TOKEN_HEADER: "hunter2"}


class MitigationStub(StubService):
    """Stub exposing the one extra method the endpoint reads."""

    def __init__(self, mitigation=None, **overrides):
        super().__init__(**overrides)
        self._mitigation = mitigation

    def mitigation_status(self):
        return self._mitigation


@pytest.fixture()
def registry():
    return MetricRegistry()


def _serve(stub, registry):
    return OpsServer(stub, registry=registry, token="hunter2")


class TestMitigationEndpoint:
    def test_live_policy_document_served(self, registry):
        doc = {
            "policy": "name=drop_fast;ladder=drop;idle_timeout=30;memory=120",
            "guard": {"tripped": False, "remaining": 500},
            "active": {"drop": 3, "rate_limit": 0, "monitor": 1},
        }
        with _serve(MitigationStub(mitigation=doc), registry) as srv:
            status, body = get_json(srv.url + "/mitigation")
        assert status == 200
        assert body == doc

    def test_404_when_no_policy_attached(self, registry):
        with _serve(MitigationStub(mitigation=None), registry) as srv:
            status, body = get_json(srv.url + "/mitigation")
        assert status == 404
        assert "no mitigation policy" in body["error"]

    def test_404_when_service_predates_mitigation(self, registry):
        # A service without the method at all (plain StubService) must
        # behave like one with no policy, not crash the server.
        with _serve(StubService(), registry) as srv:
            status, _ = get_json(srv.url + "/mitigation")
        assert status == 404


class TestUnblockVerb:
    def test_unblock_queues_ticket_with_flow(self, registry):
        stub = MitigationStub()
        with _serve(stub, registry) as srv:
            status, body = http_post(
                srv.url + "/control/unblock/167772161-167837698-5000-80-17",
                headers=AUTH,
            )
        assert status == 202
        ticket = json.loads(body)["ticket"]
        assert ticket["verb"] == "unblock"
        assert ticket["flow"] == "167772161-167837698-5000-80-17"
        assert stub.requests[-1]["flow"] == "167772161-167837698-5000-80-17"

    def test_unblock_without_flow_is_400(self, registry):
        with _serve(MitigationStub(), registry) as srv:
            status, body = http_post(srv.url + "/control/unblock", headers=AUTH)
        assert status == 400
        assert "flow key" in json.loads(body)["error"]

    def test_unblock_requires_token(self, registry):
        with _serve(MitigationStub(), registry) as srv:
            status, _ = http_post(srv.url + "/control/unblock/1-2-3-4-5")
        assert status == 403
