"""Endpoint behaviour of :class:`repro.ops.OpsServer` against a stub
service: routing, auth, cursors, SSE follow, and the Prometheus
exposition — everything that doesn't need a live stream."""

import json
import threading

import pytest

from repro.ops import TOKEN_HEADER, OpsServer, histogram_quantile, render_prometheus
from repro.telemetry import MetricRegistry
from tests.ops.common import StubService, get_json, http_get, http_post


@pytest.fixture()
def registry():
    reg = MetricRegistry()
    reg.counter("switch.path.red").inc(7)
    reg.counter("cluster.shard.0.switch.table.swaps").inc(2)
    reg.counter("cluster.shard.1.switch.table.swaps").inc(1)
    reg.gauge("runtime.drift.score").set(0.125)
    reg.histogram("runtime.swap_pause_s", edges=[0.001, 0.01, 0.1]).observe_many(
        [0.002, 0.005, 0.05]
    )
    reg.event("serve.start", attack="Mirai")
    reg.event("runtime.swap", chunk=3)
    return reg


@pytest.fixture()
def server(registry):
    stub = StubService()
    with OpsServer(stub, registry=registry, token="hunter2") as srv:
        yield srv, stub


class TestReadSurface:
    def test_healthz(self, server):
        srv, _ = server
        status, doc = get_json(srv.url + "/healthz")
        assert status == 200
        assert doc["status"] == "serving"
        assert doc["generation"] == 1
        assert doc["n_chunks"] == 4
        assert doc["uptime_s"] > 0

    def test_metrics_json_is_snapshot_plus_ops(self, server, registry):
        srv, _ = server
        status, doc = get_json(srv.url + "/metrics")
        assert status == 200
        assert doc["counters"] == registry.counters_dict()
        assert doc["gauges"] == registry.gauges_dict()
        assert doc["ops"]["n_packets"] == 400
        assert [e["kind"] for e in doc["events"]] == ["serve.start", "runtime.swap"]

    def test_metrics_prometheus(self, server):
        srv, _ = server
        status, body, headers = http_get(srv.url + "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_switch_path_red_total counter" in body
        assert "repro_switch_path_red_total 7" in body
        # Shard-tagged counters become labelled series of one metric.
        assert 'repro_cluster_switch_table_swaps_total{shard="0"} 2' in body
        assert 'repro_cluster_switch_table_swaps_total{shard="1"} 1' in body
        assert "repro_runtime_drift_score 0.125" in body
        assert 'repro_runtime_swap_pause_s_bucket{le="+Inf"} 3' in body
        assert "repro_runtime_swap_pause_s_count 3" in body

    def test_shards_groups_the_registry_namespace(self, server):
        srv, _ = server
        status, doc = get_json(srv.url + "/shards")
        assert status == 200
        assert doc["n_shards"] == 2
        by_id = {s["shard"]: s for s in doc["shards"]}
        assert by_id[0]["metrics"]["switch.table.swaps"] == 2
        assert by_id[0]["generation"] == 2
        assert by_id[1]["generation"] == 1
        assert by_id[0]["packets"] == 250
        assert not by_id[1]["drained"]

    def test_events_tail_and_cursor(self, server):
        srv, _ = server
        status, doc = get_json(srv.url + "/events?n=1")
        assert status == 200
        assert [e["kind"] for e in doc["events"]] == ["runtime.swap"]
        assert doc["last_seq"] == 1
        status, doc = get_json(srv.url + "/events?since_seq=0")
        assert [e["kind"] for e in doc["events"]] == ["runtime.swap"]
        status, doc = get_json(srv.url + "/events?since_seq=1")
        assert doc["events"] == []

    def test_events_rejects_garbage_params(self, server):
        srv, _ = server
        status, doc = get_json(srv.url + "/events?n=bogus")
        assert status == 400

    def test_events_follow_streams_new_events(self, server, registry):
        srv, _ = server
        cursor = registry.last_seq

        def emit_late():
            registry.event("late.event", marker=42)

        timer = threading.Timer(0.05, emit_late)
        timer.start()
        try:
            status, body, headers = http_get(
                srv.url + f"/events?follow=1&since_seq={cursor}"
            )
        finally:
            timer.join()
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        assert f"id: {cursor + 1}" in body
        record = json.loads(body.split("data: ", 1)[1].split("\n")[0])
        assert record["kind"] == "late.event"
        assert record["marker"] == 42

    def test_unknown_path_404s(self, server):
        srv, _ = server
        status, doc = get_json(srv.url + "/nope")
        assert status == 404


class TestControlSurface:
    def test_token_required(self, server):
        srv, stub = server
        status, body = http_post(srv.url + "/control/retrain")
        assert status == 403
        assert stub.requests == []

    def test_token_header_accepted(self, server):
        srv, stub = server
        status, body = http_post(
            srv.url + "/control/retrain", {TOKEN_HEADER: "hunter2"}
        )
        assert status == 202
        doc = json.loads(body)
        assert doc["accepted"] is True
        assert doc["ticket"]["verb"] == "retrain"
        assert doc["ticket"]["source"] == "http"
        assert [r["verb"] for r in stub.requests] == ["retrain"]

    def test_bearer_token_accepted(self, server):
        srv, stub = server
        status, _ = http_post(
            srv.url + "/control/rollback", {"Authorization": "Bearer hunter2"}
        )
        assert status == 202
        assert stub.requests[-1]["verb"] == "rollback"

    def test_wrong_token_rejected(self, server):
        srv, stub = server
        status, _ = http_post(srv.url + "/control/retrain", {TOKEN_HEADER: "nope"})
        assert status == 403
        assert stub.requests == []

    def test_drain_takes_a_shard_index(self, server):
        srv, stub = server
        status, body = http_post(
            srv.url + "/control/drain/1", {TOKEN_HEADER: "hunter2"}
        )
        assert status == 202
        assert json.loads(body)["ticket"]["shard"] == 1
        status, _ = http_post(srv.url + "/control/drain", {TOKEN_HEADER: "hunter2"})
        assert status == 400
        status, _ = http_post(
            srv.url + "/control/drain/x", {TOKEN_HEADER: "hunter2"}
        )
        assert status == 400

    def test_unknown_verb_400s(self, server):
        srv, _ = server
        status, _ = http_post(srv.url + "/control/explode", {TOKEN_HEADER: "hunter2"})
        assert status == 400

    def test_no_token_configured_means_open(self, registry):
        with OpsServer(StubService(), registry=registry) as srv:
            status, _ = http_post(srv.url + "/control/retrain")
            assert status == 202


class TestPrometheusRendering:
    def test_quantile_estimation_brackets_the_data(self):
        reg = MetricRegistry()
        h = reg.histogram("q.test", edges=[1.0, 2.0, 4.0, 8.0])
        h.observe_many([0.5, 1.5, 1.6, 3.0, 3.5, 5.0, 6.0, 7.0])
        summary = reg.histograms_dict()["q.test"]
        p50 = histogram_quantile(summary, 0.5)
        p99 = histogram_quantile(summary, 0.99)
        assert 1.0 <= p50 <= 4.0
        assert 4.0 <= p99 <= 7.0
        assert histogram_quantile({"count": 0}, 0.5) != histogram_quantile(
            {"count": 0}, 0.5
        )  # NaN for empty

    def test_buckets_are_cumulative_and_close_at_inf(self):
        reg = MetricRegistry()
        reg.histogram("lat", edges=[1.0, 10.0]).observe_many([0.5, 5.0, 50.0])
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": reg.histograms_dict()}
        )
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text

    def test_names_are_sanitised(self):
        text = render_prometheus(
            {"counters": {"a.b-c.d": 1}, "gauges": {}, "histograms": {}}
        )
        assert "repro_a_b_c_d_total 1" in text
