"""Shared plumbing for the ops-surface tests: tiny HTTP helpers and a
stub service implementing just the two methods :class:`repro.ops.OpsServer`
calls (``ops_status`` / ``request_control``), so endpoint behaviour can
be tested without serving a real stream."""

import json
import urllib.error
import urllib.request


def http_get(url, headers=None):
    req = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read().decode(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode(), dict(err.headers)


def http_post(url, headers=None):
    req = urllib.request.Request(url, method="POST", headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def get_json(url, headers=None):
    status, body, _ = http_get(url, headers=headers)
    return status, json.loads(body)


class StubService:
    """Minimal OpsControlMixin look-alike with scripted status."""

    def __init__(self, **status_overrides):
        self.requests = []
        self.status = {
            "serving": True,
            "uptime_s": 1.5,
            "n_chunks": 4,
            "n_packets": 400,
            "drift_signals": 1,
            "retrains": 1,
            "swaps": 1,
            "rollbacks": 0,
            "last_chunk": {"index": 3, "n_packets": 100, "duration_s": 0.01},
            "swap_events": [],
            "control_events": [],
            "pending_controls": [],
            "kind": "cluster",
            "n_shards": 2,
            "generation": 1,
            "drained_shards": [],
            "shard_packets": [250, 150],
        }
        self.status.update(status_overrides)

    def ops_status(self):
        return dict(self.status)

    def request_control(self, verb, shard=None, source="api", flow=None):
        if verb not in ("retrain", "rollback", "drain", "unblock"):
            raise ValueError(f"unknown control verb {verb!r}")
        ticket = {
            "id": len(self.requests),
            "verb": verb,
            "shard": shard,
            "source": source,
            "flow": flow,
            "status": "queued",
        }
        self.requests.append(ticket)
        return dict(ticket)
