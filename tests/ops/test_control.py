"""Control-verb equivalence: the HTTP surface adds nothing.

The core claim: a ``POST /control/rollback`` lands the service in
exactly the state a direct in-process rollback (the drift loop's own
path) produces — bit-identical decisions on the remaining stream, same
table generation, same counters.  The HTTP layer only *enqueues*; the
serving thread applies every verb at a chunk boundary through the same
machinery, so observing or steering a run over HTTP can never create a
third behaviour.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.cluster.router import FlowShardRouter
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.ops import TOKEN_HEADER, OpsServer
from repro.runtime import OnlineDetectionService, RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    PKT_COUNT_THRESHOLD,
    TIMEOUT,
    StubRetrainer,
    compile_artifacts,
    fresh_pipeline,
    make_split,
)
from tests.ops.common import get_json, http_post
from tests.runtime.common import percentile_rules

N_CHUNKS = 6


@pytest.fixture(scope="module")
def split():
    return make_split(seed=23, n_benign_flows=50)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


@pytest.fixture(scope="module")
def second_generation(split, artifacts):
    """A distinct-but-valid table generation to hot-swap over gen 0,
    giving every service under test something to roll back from."""
    fx = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=PKT_COUNT_THRESHOLD, timeout=TIMEOUT
    )
    x, _ = fx.extract_flows(split.train_flows)
    quantizer = IntegerQuantizer(bits=12, space="log").fit(
        np.vstack([x, x * 1.5 + 1.0])
    )
    return percentile_rules(x * 1.08).quantize(quantizer), quantizer


def make_service(split, artifacts, second_generation, pre_swapped=True):
    pipeline = fresh_pipeline(artifacts)
    if pre_swapped:
        rules2, quantizer2 = second_generation
        pipeline.stage_tables(rules2, quantizer2)
        pipeline.hot_swap()
        assert pipeline.can_rollback
    n_packets = len(split.stream_trace.packets)
    config = RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )
    return OnlineDetectionService(
        pipeline, retrainer=StubRetrainer(artifacts), config=config
    )


def serve(service, split):
    with use_registry(MetricRegistry()):
        return service.serve(split.stream_trace)


class TestRollbackEquivalence:
    def test_http_rollback_matches_direct_request(
        self, split, artifacts, second_generation
    ):
        """Same rollback, three routes — direct pipeline call (what a
        failed swap validation does), in-process ticket, HTTP POST — all
        three must serve the stream with bit-identical decisions."""
        # Route 1: the drift loop's own primitive, applied up front.
        direct = make_service(split, artifacts, second_generation)
        direct.pipeline.rollback()
        direct_report = serve(direct, split)

        # Route 2: an in-process control ticket, applied at chunk 0's
        # boundary by the serving thread.
        ticketed = make_service(split, artifacts, second_generation)
        ticketed.request_control("rollback", source="direct")
        ticketed_report = serve(ticketed, split)

        # Route 3: the same ticket via a real HTTP POST.
        http = make_service(split, artifacts, second_generation)
        with OpsServer(http, token="t0k3n") as srv:
            status, _ = http_post(
                srv.url + "/control/rollback", {TOKEN_HEADER: "t0k3n"}
            )
            assert status == 202
            http_report = serve(http, split)

        # Tickets applied through the same path report the same outcome.
        for report in (ticketed_report, http_report):
            (event,) = report.control_events
            assert event["verb"] == "rollback"
            assert event["outcome"] == "rolled_back"
            assert event["chunk"] == 0
            assert event["status"] == "applied"

        # All three land on the rolled-back generation...
        assert ticketed.pipeline.table_rollbacks == 1
        assert http.pipeline.table_rollbacks == 1
        # ...chunk 0 ran on gen 1 for routes 2/3 (the ticket applies at
        # the first boundary, not before the stream starts), after which
        # every remaining packet must decide identically to route 1.
        offset = ticketed_report.chunk_stats[0].n_packets
        assert np.array_equal(
            ticketed_report.y_pred[offset:], direct_report.y_pred[offset:]
        )
        # And routes 2 and 3 are identical over the whole stream: the
        # HTTP hop changes nothing about where or how the verb applies.
        assert np.array_equal(ticketed_report.y_pred, http_report.y_pred)
        assert ticketed_report.decisions == http_report.decisions

    def test_rollback_without_history_is_skipped(
        self, split, artifacts, second_generation
    ):
        service = make_service(split, artifacts, second_generation, pre_swapped=False)
        service.request_control("rollback")
        report = serve(service, split)
        (event,) = report.control_events
        assert event["outcome"] == "skipped:no_previous_generation"
        assert service.pipeline.table_rollbacks == 0

    def test_mid_serve_post_applies_at_a_chunk_boundary(
        self, split, artifacts, second_generation
    ):
        """A POST issued while serve() is mid-stream is picked up at the
        next boundary; the server thread never touches the pipeline."""
        service = make_service(split, artifacts, second_generation)
        report_box = {}

        def run():
            report_box["report"] = serve(service, split)

        with OpsServer(service) as srv:
            thread = threading.Thread(target=run)
            thread.start()
            try:
                deadline = time.monotonic() + 30.0
                posted = False
                while time.monotonic() < deadline and thread.is_alive():
                    _, doc = get_json(srv.url + "/healthz")
                    if doc["serving"]:
                        status, _ = http_post(srv.url + "/control/rollback")
                        assert status == 202
                        posted = True
                        break
                    time.sleep(0.001)
            finally:
                thread.join(timeout=120)
        assert not thread.is_alive()
        if not posted:
            pytest.skip("stream finished before the POST landed")
        report = report_box["report"]
        applied = [t for t in report.control_events if t["verb"] == "rollback"]
        pending = [t for t in service.pending_controls()]
        # The ticket either applied at some boundary or the stream ended
        # first and it stayed queued — it must never vanish or apply off
        # a boundary.
        if applied:
            (event,) = applied
            assert 0 <= event["chunk"] < report.n_chunks
            assert event["outcome"] in ("rolled_back", "skipped:no_previous_generation")
            assert service.pipeline.table_rollbacks <= 1
        else:
            assert len(pending) == 1


class TestRetrainVerb:
    def test_manual_retrain_swaps_through_the_drift_path(
        self, split, artifacts, second_generation
    ):
        service = make_service(split, artifacts, second_generation)
        with OpsServer(service, token="t") as srv:
            status, _ = http_post(srv.url + "/control/retrain", {TOKEN_HEADER: "t"})
            assert status == 202
            registry = MetricRegistry()
            with use_registry(registry):
                report = service.serve(split.stream_trace)
        (event,) = report.control_events
        assert event["verb"] == "retrain"
        assert event["outcome"] == "swapped"
        assert report.retrains == 1
        (swap,) = report.swap_events
        assert swap.reason == "manual"
        assert swap.chunk_index == 0
        # The applied ticket is also in the telemetry event log.
        kinds = [e["kind"] for e in registry.events]
        assert "ops.control" in kinds

    def test_retrain_respects_max_swaps(self, split, artifacts, second_generation):
        service = make_service(split, artifacts, second_generation)
        service.config.max_swaps = 0
        service.request_control("retrain")
        report = serve(service, split)
        (event,) = report.control_events
        assert event["outcome"] == "skipped:max_swaps"
        assert report.retrains == 0


class TestDrainVerb:
    def test_router_drain_remaps_deterministically(self):
        router = FlowShardRouter(n_shards=3, salt=11)
        fields = np.column_stack(
            [
                np.arange(64, dtype=np.int64) + 10,
                np.arange(64, dtype=np.int64) * 3 + 1,
                np.full(64, 6000, dtype=np.int64),
                np.arange(64, dtype=np.int64) * 7,
                np.full(64, 6, dtype=np.int64),
            ]
        )
        before = router.shard_indices_fields(fields)
        router.drain(1)
        after = router.shard_indices_fields(fields)
        # Undrained flows keep their shard; drained ones land on an
        # active shard, by a pure function of the tuple (stable across
        # calls).
        assert not np.any(after == 1)
        moved = before == 1
        assert np.array_equal(after[~moved], before[~moved])
        assert np.array_equal(after, router.shard_indices_fields(fields))
        router.undrain(1)
        assert np.array_equal(router.shard_indices_fields(fields), before)

    def test_router_refuses_to_drain_the_last_shard(self):
        router = FlowShardRouter(n_shards=2, salt=3)
        router.drain(0)
        with pytest.raises(ValueError, match="last active shard"):
            router.drain(1)
        with pytest.raises(ValueError, match="must be in"):
            router.drain(5)

    def test_drain_on_single_service_is_unsupported(
        self, split, artifacts, second_generation
    ):
        service = make_service(split, artifacts, second_generation)
        service.request_control("drain", shard=0)
        report = serve(service, split)
        (event,) = report.control_events
        assert event["outcome"] == "unsupported:not_a_cluster"

    def test_cluster_drain_diverts_traffic(self, split, artifacts):
        pipeline = fresh_pipeline(artifacts)
        n_packets = len(split.stream_trace.packets)
        config = RuntimeConfig(
            chunk_size=-(-n_packets // N_CHUNKS),
            drift_threshold=0.0,
            stage_backoff_s=0.0,
        )
        registry = MetricRegistry()
        with ClusterService(
            pipeline,
            n_shards=2,
            config=config,
            executor="inprocess",
            retrainer=StubRetrainer(artifacts),
            seed=5,
        ) as cluster:
            with OpsServer(cluster, registry=registry, token="t") as srv:
                status, _ = http_post(
                    srv.url + "/control/drain/1", {TOKEN_HEADER: "t"}
                )
                assert status == 202
                with use_registry(registry):
                    report = cluster.serve(split.stream_trace)
                _, shards_doc = get_json(srv.url + "/shards")
        (event,) = report.control_events
        assert event["outcome"] == "drained"
        assert event["shard"] == 1
        assert cluster.router.drained == {1}
        # Shard 1 saw chunk 0 only (the ticket applies at its boundary);
        # everything after was rerouted to shard 0.
        assert report.shard_packets[1] < report.shard_packets[0]
        assert registry.gauges_dict()["cluster.drained_shards"] == 1.0
        assert shards_doc["shards"][1]["drained"] is True
