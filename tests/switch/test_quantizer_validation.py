"""Installation-time validation of (rules, quantizer) pairs.

A whitelist table whose rules were compiled against one quantizer but
which is fed codes from another still "works" — it just scores garbage.
:class:`SwitchPipeline` must reject such pairs at construction with a
:class:`ValueError` instead of silently mis-scoring every packet.
"""

import numpy as np
import pytest

from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.packet_features import PACKET_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.utils.box import Box

N_FL = len(SWITCH_FEATURES)
N_PL = len(PACKET_FEATURES)


def _ruleset(n_features):
    lows = (0.0,) * n_features
    highs = (1e6,) * n_features
    rule = WhitelistRule(box=Box(lows, highs), label=BENIGN)
    return RuleSet([rule], outer_box=Box(lows, highs))


def _quantizer(n_features, bits=16, lo=0.0, hi=1e6):
    domain = np.vstack([np.full(n_features, lo), np.full(n_features, hi)])
    return IntegerQuantizer(bits=bits).fit(domain)


def _build(fl_rules, fl_q, pl_rules=None, pl_q=None):
    return SwitchPipeline(
        fl_rules=fl_rules,
        fl_quantizer=fl_q,
        pl_rules=pl_rules,
        pl_quantizer=pl_q,
        config=PipelineConfig(n_slots=8),
    )


class TestQuantizerValidation:
    def test_matching_pair_accepted(self):
        q = _quantizer(N_FL)
        pl_q = _quantizer(N_PL)
        pipe = _build(
            _ruleset(N_FL).quantize(q), q, _ruleset(N_PL).quantize(pl_q), pl_q
        )
        assert pipe.fl_table is not None and pipe.pl_table is not None

    def test_bits_mismatch_rejected(self):
        q16 = _quantizer(N_FL, bits=16)
        q12 = _quantizer(N_FL, bits=12)
        with pytest.raises(ValueError, match="bits"):
            _build(_ruleset(N_FL).quantize(q16), q12)

    def test_unfitted_quantizer_rejected(self):
        q = _quantizer(N_FL)
        with pytest.raises(ValueError, match="fitted"):
            _build(_ruleset(N_FL).quantize(q), IntegerQuantizer(bits=16))

    def test_feature_width_mismatch_rejected(self):
        q_fl = _quantizer(N_FL)
        q_pl = _quantizer(N_PL)  # fitted for 4 features, rules match 13
        with pytest.raises(ValueError, match="features"):
            _build(_ruleset(N_FL).quantize(q_fl), q_pl)

    def test_refit_quantizer_fingerprint_mismatch_rejected(self):
        """Same bits and width, different codebook: only the fingerprint
        can catch this — the exact failure mode of re-fitting a quantizer
        after rule compilation."""
        q_compile = _quantizer(N_FL, hi=1e6)
        q_refit = _quantizer(N_FL, hi=2e6)
        assert q_compile.fingerprint() != q_refit.fingerprint()
        with pytest.raises(ValueError, match="fingerprint"):
            _build(_ruleset(N_FL).quantize(q_compile), q_refit)

    def test_pl_pair_validated_too(self):
        q = _quantizer(N_FL)
        pl_compile = _quantizer(N_PL, hi=1e6)
        pl_refit = _quantizer(N_PL, hi=5e5)
        with pytest.raises(ValueError, match="PL"):
            _build(
                _ruleset(N_FL).quantize(q), q,
                _ruleset(N_PL).quantize(pl_compile), pl_refit,
            )

    def test_pl_rules_without_quantizer_rejected(self):
        q = _quantizer(N_FL)
        pl_q = _quantizer(N_PL)
        with pytest.raises(ValueError, match="pl_quantizer"):
            _build(_ruleset(N_FL).quantize(q), q, _ruleset(N_PL).quantize(pl_q), None)

    def test_handbuilt_rules_without_fingerprint_accepted(self):
        """QuantizedRuleSets built by hand (no recorded fingerprint) skip
        the codebook check but still face the bits/width checks."""
        q = _quantizer(N_FL)
        qrs = _ruleset(N_FL).quantize(q)
        assert qrs.quantizer_fingerprint is not None
        qrs.quantizer_fingerprint = None
        pipe = _build(qrs, _quantizer(N_FL, hi=2e6))  # different codebook
        assert pipe.fl_table is not None

    def test_fingerprint_stable_and_sensitive(self):
        a = _quantizer(N_FL)
        b = _quantizer(N_FL)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != _quantizer(N_FL, bits=12).fingerprint()
        log_q = IntegerQuantizer(bits=16, space="log").fit(
            np.vstack([np.zeros(N_FL), np.full(N_FL, 1e6)])
        )
        assert a.fingerprint() != log_q.fingerprint()

    def test_unfitted_fingerprint_raises(self):
        with pytest.raises(Exception):
            IntegerQuantizer(bits=16).fingerprint()
