"""Tests for the P4-16 artifact generator."""

import json

import pytest

from repro.core.rules import BENIGN, MALICIOUS, QuantizedRule, QuantizedRuleSet
from repro.switch.p4gen import (
    generate_p4_program,
    generate_table_entries,
    write_artifacts,
)

NAMES = ("pkt_count", "size_mean", "ipd-mean")


def _ruleset():
    rules = [
        QuantizedRule(lows=(1, 10, 1), highs=(100, 200, 50), label=BENIGN),
        QuantizedRule(lows=(1, 1, 1), highs=(65534, 65534, 65534), label=MALICIOUS),
    ]
    return QuantizedRuleSet(rules, bits=16)


class TestProgram:
    def test_contains_pipeline_blocks(self):
        src = generate_p4_program(_ruleset(), NAMES)
        for token in ("parser IngressParser", "table blacklist", "table whitelist",
                      "V1Switch", "bit<16>"):
            assert token in src

    def test_feature_fields_sanitised(self):
        src = generate_p4_program(_ruleset(), NAMES)
        assert "feature_t ipd_mean;" in src
        assert "hdr.features.size_mean : range;" in src

    def test_table_sized_to_rules(self):
        src = generate_p4_program(_ruleset(), NAMES)
        assert "size = 2;" in src

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="feature names"):
            generate_p4_program(_ruleset(), ("just-one",))

    def test_deterministic(self):
        assert generate_p4_program(_ruleset(), NAMES) == generate_p4_program(
            _ruleset(), NAMES
        )


class TestEntries:
    def test_one_entry_per_rule_in_priority_order(self):
        entries = generate_table_entries(_ruleset(), NAMES)
        assert len(entries) == 2
        assert [e["priority"] for e in entries] == [0, 1]

    def test_match_ranges_and_actions(self):
        entries = generate_table_entries(_ruleset(), NAMES)
        assert entries[0]["match"]["pkt_count"] == {"range": [1, 100]}
        assert entries[0]["action"] == "set_benign"
        assert entries[1]["action"] == "set_malicious"

    def test_write_artifacts_round_trip(self, tmp_path):
        p4 = tmp_path / "iguard.p4"
        entries = tmp_path / "entries.json"
        write_artifacts(_ruleset(), str(p4), str(entries), NAMES)
        assert "table whitelist" in p4.read_text()
        loaded = json.loads(entries.read_text())
        assert loaded[0]["table"] == "Ingress.whitelist"
