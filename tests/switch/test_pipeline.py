"""Tests for the six-path data-plane pipeline (Fig 4)."""

import numpy as np
import pytest

from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import Controller
from repro.switch.pipeline import (
    ACTION_DROP,
    ACTION_FORWARD,
    PATH_BLUE,
    PATH_BROWN,
    PATH_ORANGE,
    PATH_PURPLE,
    PATH_RED,
    PipelineConfig,
    SwitchPipeline,
)
from repro.utils.box import Box

SIZE_MEAN_IDX = SWITCH_FEATURES.index("size_mean")
N_FEATURES = len(SWITCH_FEATURES)


def _fl_ruleset():
    """Benign ⟺ size_mean < 500; all other features unconstrained."""
    lows = [0.0] * N_FEATURES
    highs = [1e6] * N_FEATURES
    b_highs = list(highs)
    b_highs[SIZE_MEAN_IDX] = 500.0
    outer = Box(tuple(lows), tuple(highs))
    rule = WhitelistRule(box=Box(tuple(lows), tuple(b_highs)), label=BENIGN)
    return RuleSet([rule], outer_box=outer)


def _quantizer():
    domain = np.vstack([np.zeros(N_FEATURES), np.full(N_FEATURES, 1e6)])
    return IntegerQuantizer(bits=16).fit(domain)


def _pipeline(n=4, timeout=5.0, n_slots=64, with_controller=True):
    q = _quantizer()
    pipe = SwitchPipeline(
        fl_rules=_fl_ruleset().quantize(q),
        fl_quantizer=q,
        config=PipelineConfig(
            pkt_count_threshold=n, timeout=timeout, n_slots=n_slots
        ),
    )
    controller = Controller(pipe) if with_controller else None
    return pipe, controller


def _flow(ft, n, size, start=0.0, gap=0.1, malicious=False):
    return [
        Packet(ft, start + i * gap, size, malicious=malicious) for i in range(n)
    ]


FT_A = FiveTuple(1, 2, 100, 80, PROTO_UDP)
FT_B = FiveTuple(3, 4, 200, 80, PROTO_UDP)


class TestPaths:
    def test_brown_then_blue_for_benign_flow(self):
        pipe, _ = _pipeline(n=4)
        decisions = [pipe.process(p) for p in _flow(FT_A, 4, size=100)]
        assert [d.path for d in decisions] == [PATH_BROWN] * 3 + [PATH_BLUE]
        assert decisions[-1].predicted_malicious == 0
        assert all(d.action == ACTION_FORWARD for d in decisions)

    def test_purple_after_classification(self):
        pipe, _ = _pipeline(n=4)
        flow = _flow(FT_A, 6, size=100)
        decisions = [pipe.process(p) for p in flow]
        assert decisions[4].path == PATH_PURPLE
        assert decisions[5].predicted_malicious == 0

    def test_malicious_flow_blacklisted_then_red(self):
        pipe, controller = _pipeline(n=4)
        decisions = [pipe.process(p) for p in _flow(FT_A, 6, size=900, malicious=True)]
        assert decisions[3].path == PATH_BLUE
        assert decisions[3].predicted_malicious == 1
        assert decisions[3].action == ACTION_DROP
        # Controller installed a blacklist rule; later packets take red.
        assert decisions[4].path == PATH_RED
        assert decisions[5].action == ACTION_DROP
        assert controller.stats.blacklist_installs == 1

    def test_digest_emitted_at_classification(self):
        pipe, controller = _pipeline(n=4)
        for p in _flow(FT_A, 4, size=100):
            pipe.process(p)
        assert pipe.digests_emitted == 1
        assert controller.stats.digests_received == 1

    def test_timeout_classifies_with_partial_state(self):
        pipe, _ = _pipeline(n=10, timeout=2.0)
        flow = _flow(FT_A, 3, size=100, gap=0.1)
        late = Packet(FT_A, 10.0, 100)  # idle gap >> timeout
        for p in flow:
            pipe.process(p)
        decision = pipe.process(late)
        assert decision.path == PATH_BLUE
        assert decision.digest is not None

    def test_orange_collision_with_decided_resident(self):
        pipe, _ = _pipeline(n=2, n_slots=1)
        # Classify FT_A (occupies slot, decided).
        for p in _flow(FT_A, 2, size=100):
            pipe.process(p)
        # Fill the second hash table too.
        pipe.process(Packet(FT_B, 1.0, 100))
        # A third flow now collides.
        ft_c = FiveTuple(5, 6, 300, 80, PROTO_UDP)
        decision = pipe.process(Packet(ft_c, 2.0, 100))
        assert decision.path == PATH_ORANGE

    def test_path_counters_accumulate(self):
        pipe, _ = _pipeline(n=4)
        for p in _flow(FT_A, 6, size=100):
            pipe.process(p)
        counts = pipe.path_counts
        assert counts[PATH_BROWN] == 3
        assert counts[PATH_BLUE] == 1
        assert counts[PATH_PURPLE] == 2

    def test_forward_only_mode(self):
        q = _quantizer()
        pipe = SwitchPipeline(
            fl_rules=_fl_ruleset().quantize(q),
            fl_quantizer=q,
            config=PipelineConfig(pkt_count_threshold=4, drop_on_malicious=False),
        )
        decisions = [pipe.process(p) for p in _flow(FT_A, 4, size=900)]
        assert decisions[-1].predicted_malicious == 1
        assert decisions[-1].action == ACTION_FORWARD


class TestControllerIntegration:
    def test_malicious_storage_released(self):
        pipe, controller = _pipeline(n=4)
        for p in _flow(FT_A, 4, size=900):
            pipe.process(p)
        assert controller.stats.storage_releases == 1
        assert pipe.store.lookup(FT_A) is None

    def test_benign_flow_not_blacklisted(self):
        pipe, controller = _pipeline(n=4)
        for p in _flow(FT_A, 4, size=100):
            pipe.process(p)
        assert controller.stats.blacklist_installs == 0

    def test_digest_byte_accounting(self):
        pipe, controller = _pipeline(n=4)
        for p in _flow(FT_A, 4, size=100):
            pipe.process(p)
        assert controller.stats.digest_bytes == 14
        assert controller.stats.horuseye_equivalent_bytes() == 14 + 52
