"""Regenerate the golden-trace fixtures from the scalar engine.

Run only after an intentional pipeline-semantics change, then review the
fixture diff packet by packet::

    PYTHONPATH=src python tests/switch/golden/regenerate.py
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from switch.test_golden_traces import (  # noqa: E402
    GOLDEN_DIR,
    SCENARIOS,
    observed_outcome,
    replay_scenario,
)


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(SCENARIOS):
        config_kwargs, packet_specs = SCENARIOS[name]
        expected = observed_outcome(*replay_scenario(name, mode="scalar"))
        payload = {
            "scenario": name,
            "config": config_kwargs,
            "packets": packet_specs,
            "expected": expected,
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path} ({expected['path_counts']})")


if __name__ == "__main__":
    main()
