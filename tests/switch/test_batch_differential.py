"""Differential lock between the scalar and batch replay engines.

The batch engine (:mod:`repro.switch.batch`) must be **bit-identical**
to the scalar six-path walk on every profile: same per-packet path
assignment, actions, verdicts, digest streams, and every pipeline /
storage / controller counter.  Any semantic drift in either engine
fails here before it can skew an experiment.
"""

import numpy as np
import pytest

from repro.core.rules import BENIGN, MALICIOUS, RuleSet, WhitelistRule
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.datasets.packet import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.datasets.trace import Trace, flows_to_trace
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.packet_features import extract_first_packets
from repro.features.scaling import IntegerQuantizer
from repro.switch.batch import (
    RangeIntervalMatcher,
    TraceArrays,
    bi_hash_batch,
    replay_arrays,
)
from repro.switch.controller import Controller
from repro.switch.hashing import bi_hash
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.telemetry import MetricRegistry, use_registry
from repro.utils.box import Box

#: Registry profiles the engines are locked over — a pure benign mix
#: plus scan, flood, and DDoS attack shapes (packet sizes, rates, and
#: flow counts differ enough to exercise every execution path).
PROFILES = ("benign", "Mirai", "Bashlite", "UDP DDoS", "TCP DDoS", "HTTP DDoS")


def _percentile_rules(x):
    """Two-rule whitelist over *x*: a narrow MALICIOUS band (p40–p60)
    shadowing a wide BENIGN band (p5–p95), default MALICIOUS — chosen to
    produce a mix of verdicts, hence blacklist installs and red paths."""
    outer = Box(tuple(np.min(x, axis=0) - 1.0), tuple(np.max(x, axis=0) + 1.0))
    mal = WhitelistRule(
        box=Box(
            tuple(np.percentile(x, 40, axis=0)), tuple(np.percentile(x, 60, axis=0))
        ),
        label=MALICIOUS,
    )
    ben = WhitelistRule(
        box=Box(
            tuple(np.percentile(x, 5, axis=0)), tuple(np.percentile(x, 95, axis=0))
        ),
        label=BENIGN,
    )
    return RuleSet([mal, ben], outer_box=outer, default_label=MALICIOUS)


def _make_flows(profile, seed=7, n_benign=60, n_attack=20):
    flows = generate_benign_flows(n_benign, seed=seed)
    if profile != "benign":
        flows = flows + generate_attack_flows(profile, n_attack, seed=seed + 1)
    return flows


def _build_pipeline(train_flows, n=6, timeout=1.0, n_slots=32, blacklist_capacity=16):
    """Small tables + short timeout force collisions, evictions, and
    timeouts, so the seeded traces hit all six paths."""
    fx = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=n, timeout=timeout
    )
    x_fl, _ = fx.extract_flows(train_flows)
    fl_q = IntegerQuantizer(bits=12, space="log").fit(x_fl)
    x_pl, _ = extract_first_packets(train_flows, per_flow=2)
    pl_q = IntegerQuantizer(bits=12, space="log").fit(x_pl)
    pipe = SwitchPipeline(
        fl_rules=_percentile_rules(x_fl).quantize(fl_q),
        fl_quantizer=fl_q,
        pl_rules=_percentile_rules(x_pl).quantize(pl_q),
        pl_quantizer=pl_q,
        config=PipelineConfig(
            pkt_count_threshold=n,
            timeout=timeout,
            n_slots=n_slots,
            blacklist_capacity=blacklist_capacity,
        ),
    )
    controller = Controller(pipe)
    return pipe, controller


def _assert_identical(trace, make_pipeline):
    """Replay *trace* through two identically-built pipelines, one per
    engine, and compare every observable output — including the
    telemetry counters each engine publishes into its own registry."""
    p_s, c_s = make_pipeline()
    p_b, c_b = make_pipeline()
    reg_s, reg_b = MetricRegistry(), MetricRegistry()
    with use_registry(reg_s):
        r_s = replay_trace(trace, p_s, mode="scalar")
    with use_registry(reg_b):
        r_b = replay_trace(trace, p_b, mode="batch")

    assert len(r_s.decisions) == len(r_b.decisions) == len(trace)
    for i, (a, b) in enumerate(zip(r_s.decisions, r_b.decisions)):
        assert a.path == b.path, f"packet {i}: path {a.path} != {b.path}"
        assert a.action == b.action, f"packet {i}: action"
        assert a.predicted_malicious == b.predicted_malicious, f"packet {i}: verdict"
        assert a.digest == b.digest, f"packet {i}: digest"
        assert a.mirrored == b.mirrored, f"packet {i}: mirrored"
        assert a.packet is b.packet  # batch must not copy packets

    np.testing.assert_array_equal(r_s.y_true, r_b.y_true)
    np.testing.assert_array_equal(r_s.y_pred, r_b.y_pred)
    assert r_s.path_counts() == r_b.path_counts()

    # Pipeline-side counters.
    assert p_s.path_counts == p_b.path_counts
    assert p_s.digests_emitted == p_b.digests_emitted
    assert p_s.mirrored_packets == p_b.mirrored_packets
    assert p_s.fl_table.lookup_count == p_b.fl_table.lookup_count
    assert p_s.pl_table.lookup_count == p_b.pl_table.lookup_count

    # Storage and blacklist state.
    assert p_s.store.table.collision_count == p_b.store.table.collision_count
    assert p_s.store.eviction_count == p_b.store.eviction_count
    assert p_s.store.occupancy() == p_b.store.occupancy()
    assert len(p_s.blacklist) == len(p_b.blacklist)
    assert list(p_s.blacklist._entries) == list(p_b.blacklist._entries)
    assert p_s.blacklist.evictions == p_b.blacklist.evictions
    assert p_s.blacklist.installs == p_b.blacklist.installs

    # Controller view.
    assert c_s.stats == c_b.stats

    # Published telemetry must be engine-identical, counter for counter.
    assert reg_s.counters_dict() == reg_b.counters_dict()
    assert reg_s.gauges_dict() == reg_b.gauges_dict()
    # And agree with the raw pipeline view the counters are derived from.
    counters = reg_s.counters_dict()
    for path, count in p_s.path_counts.items():
        if count:
            assert counters[f"switch.path.{path}"] == count
    assert counters["replay.packets"] == len(trace)
    return p_s.path_counts


class TestDifferential:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_profiles_bit_identical(self, profile):
        flows = _make_flows(profile)
        trace = flows_to_trace(flows)
        counts = _assert_identical(trace, lambda: _build_pipeline(flows))
        # The small-table configuration must actually exercise the paths
        # the engines disagree on first when they drift.
        for path in ("red", "brown", "blue", "purple"):
            assert counts[path] > 0, f"{profile}: {path} path never taken"

    def test_collision_heavy_configuration(self):
        """n_slots=2 forces orange paths and decided-resident evictions."""
        flows = _make_flows("Mirai")
        trace = flows_to_trace(flows)
        counts = _assert_identical(
            trace, lambda: _build_pipeline(flows, n_slots=2, blacklist_capacity=4)
        )
        assert counts["orange"] > 0
        assert counts["green"] > 0

    def test_no_pl_table_configuration(self):
        """Without a PL table every early packet scores benign."""
        flows = _make_flows("Bashlite")
        trace = flows_to_trace(flows)

        def mk():
            fx = FlowFeatureExtractor(
                feature_set="switch", pkt_count_threshold=6, timeout=1.0
            )
            x_fl, _ = fx.extract_flows(flows)
            fl_q = IntegerQuantizer(bits=12, space="log").fit(x_fl)
            pipe = SwitchPipeline(
                fl_rules=_percentile_rules(x_fl).quantize(fl_q),
                fl_quantizer=fl_q,
                config=PipelineConfig(
                    pkt_count_threshold=6, timeout=1.0, n_slots=32,
                    blacklist_capacity=16,
                ),
            )
            return pipe, Controller(pipe)

        p_s, c_s = mk()
        p_b, c_b = mk()
        r_s = replay_trace(trace, p_s, mode="scalar")
        r_b = replay_trace(trace, p_b, mode="batch")
        assert [d.path for d in r_s.decisions] == [d.path for d in r_b.decisions]
        np.testing.assert_array_equal(r_s.y_pred, r_b.y_pred)
        assert p_s.path_counts == p_b.path_counts
        assert c_s.stats == c_b.stats

    def test_lru_blacklist_configuration(self):
        flows = _make_flows("UDP DDoS")
        trace = flows_to_trace(flows)

        def mk_lru():
            fx = FlowFeatureExtractor(
                feature_set="switch", pkt_count_threshold=6, timeout=1.0
            )
            x_fl, _ = fx.extract_flows(flows)
            fl_q = IntegerQuantizer(bits=12, space="log").fit(x_fl)
            x_pl, _ = extract_first_packets(flows, per_flow=2)
            pl_q = IntegerQuantizer(bits=12, space="log").fit(x_pl)
            pipe = SwitchPipeline(
                fl_rules=_percentile_rules(x_fl).quantize(fl_q),
                fl_quantizer=fl_q,
                pl_rules=_percentile_rules(x_pl).quantize(pl_q),
                pl_quantizer=pl_q,
                config=PipelineConfig(
                    pkt_count_threshold=6, timeout=1.0, n_slots=32,
                    blacklist_capacity=8, blacklist_eviction="lru",
                ),
            )
            return pipe, Controller(pipe)

        _assert_identical(trace, mk_lru)

    def test_empty_trace(self):
        flows = _make_flows("benign")
        pipe, _ = _build_pipeline(flows)
        result = replay_trace(Trace([]), pipe, mode="batch")
        assert result.decisions == []
        assert result.n_packets == 0
        assert result.path_counts() == {}
        outcome = replay_arrays(Trace([]), pipe)
        assert outcome.n_packets == 0
        assert outcome.path_counts() == {}

    def test_unknown_mode_rejected(self):
        flows = _make_flows("benign")
        pipe, _ = _build_pipeline(flows)
        with pytest.raises(ValueError, match="mode"):
            replay_trace(Trace([]), pipe, mode="simd")

    def test_custom_walk_subclass_uses_its_own_scalar_walk(self):
        """Subclasses overriding process (e.g. the multipoint extension)
        must not be batch-replayed: replay_trace falls back to the walk
        they define, and replay_arrays refuses outright."""
        flows = _make_flows("benign", n_benign=10)
        trace = flows_to_trace(flows)

        marked = []

        class MarkingPipeline(SwitchPipeline):
            def process(self, pkt):
                marked.append(pkt)
                return super().process(pkt)

        fx = FlowFeatureExtractor(
            feature_set="switch", pkt_count_threshold=6, timeout=1.0
        )
        x_fl, _ = fx.extract_flows(flows)
        fl_q = IntegerQuantizer(bits=12, space="log").fit(x_fl)
        pipe = MarkingPipeline(
            fl_rules=_percentile_rules(x_fl).quantize(fl_q),
            fl_quantizer=fl_q,
            config=PipelineConfig(pkt_count_threshold=6, timeout=1.0, n_slots=32),
        )
        result = replay_trace(trace, pipe, mode="batch")
        assert len(marked) == len(trace)  # the override actually ran
        assert result.n_packets == len(trace)
        with pytest.raises(TypeError, match="overrides the packet walk"):
            replay_arrays(trace, pipe)


class TestChunkedStreamDifferential:
    """Streamed chunked replay with no swaps must be decision-identical
    to a single one-shot replay over the concatenated trace.

    This is the serving runtime's correctness premise: the batch engine
    reads the live tables at call start and all flow / blacklist /
    verdict state lives on the pipeline, so splitting a trace into
    chunks is invisible — per-packet decisions, pipeline counters, and
    the telemetry each side publishes all match exactly.
    """

    def _assert_stream_identical(self, trace, make_pipeline, chunk_size):
        from repro.runtime import StreamDriver

        p_one, c_one = make_pipeline()
        p_chunk, c_chunk = make_pipeline()
        reg_one, reg_chunk = MetricRegistry(), MetricRegistry()

        with use_registry(reg_one):
            r_one = replay_trace(trace, p_one, mode="batch")
        driver = StreamDriver(p_chunk, chunk_size=chunk_size)
        decisions, preds, trues = [], [], []
        with use_registry(reg_chunk):
            for chunk in driver.run(trace):
                decisions.extend(chunk.replay.decisions)
                preds.append(chunk.replay.y_pred)
                trues.append(chunk.replay.y_true)

        assert driver.packets_processed == len(trace)
        assert len(decisions) == len(r_one.decisions) == len(trace)
        for i, (a, b) in enumerate(zip(r_one.decisions, decisions)):
            assert a.path == b.path, f"packet {i}: path {a.path} != {b.path}"
            assert a.action == b.action, f"packet {i}: action"
            assert a.predicted_malicious == b.predicted_malicious, f"packet {i}"
            assert a.digest == b.digest, f"packet {i}: digest"
            assert a.mirrored == b.mirrored, f"packet {i}: mirrored"
        np.testing.assert_array_equal(r_one.y_pred, np.concatenate(preds))
        np.testing.assert_array_equal(r_one.y_true, np.concatenate(trues))

        # Pipeline, storage, and blacklist state.
        assert p_one.path_counts == p_chunk.path_counts
        assert p_one.digests_emitted == p_chunk.digests_emitted
        assert p_one.fl_table.lookup_count == p_chunk.fl_table.lookup_count
        assert p_one.store.occupancy() == p_chunk.store.occupancy()
        assert p_one.store.eviction_count == p_chunk.store.eviction_count
        assert list(p_one.blacklist._entries) == list(p_chunk.blacklist._entries)
        assert c_one.stats == c_chunk.stats

        # Per-chunk telemetry deltas must telescope to the one-shot
        # totals, and final-state gauges must agree.
        assert reg_one.counters_dict() == reg_chunk.counters_dict()
        assert reg_one.gauges_dict() == reg_chunk.gauges_dict()

    @pytest.mark.parametrize("chunk_size", (97, 512, 10**9))
    def test_chunk_sizes_bit_identical(self, chunk_size):
        flows = _make_flows("Mirai")
        trace = flows_to_trace(flows)
        self._assert_stream_identical(
            trace, lambda: _build_pipeline(flows), chunk_size
        )

    def test_single_packet_chunks(self):
        """chunk_size=1 — the degenerate stream — on a short trace."""
        flows = _make_flows("Bashlite", n_benign=12, n_attack=6)
        trace = flows_to_trace(flows)
        trace = Trace(trace.packets[:400])
        self._assert_stream_identical(
            trace, lambda: _build_pipeline(flows), chunk_size=1
        )

    def test_collision_heavy_stream(self):
        """Tiny tables: orange/green paths must survive chunking too."""
        flows = _make_flows("UDP DDoS")
        trace = flows_to_trace(flows)
        self._assert_stream_identical(
            trace,
            lambda: _build_pipeline(flows, n_slots=2, blacklist_capacity=4),
            chunk_size=256,
        )


class TestBatchPrimitives:
    def test_bi_hash_batch_matches_scalar(self):
        rng = np.random.default_rng(42)
        raw = np.stack(
            [
                rng.integers(0, 2**32, size=50),
                rng.integers(0, 2**32, size=50),
                rng.integers(0, 2**16, size=50),
                rng.integers(0, 2**16, size=50),
                rng.integers(0, 256, size=50),
            ],
            axis=1,
        )
        # bi_hash_batch expects pre-canonicalised rows (the engine hashes
        # TraceArrays.flow_fields, which are canonical by construction).
        tuples = [FiveTuple(*(int(v) for v in row)).canonical() for row in raw]
        fields = np.array([t.as_tuple() for t in tuples], dtype=np.int64)
        for salt in (0, 1, 7):
            batch = bi_hash_batch(fields, salt)
            for ft, h in zip(tuples, batch):
                assert int(h) == bi_hash(ft, salt=salt)

    def test_range_interval_matcher_matches_ruleset_predict(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            n_rules = int(rng.integers(1, 9))
            n_features = int(rng.integers(1, 5))
            levels = 64
            rules = []
            for _r in range(n_rules):
                lows = rng.integers(0, levels - 1, size=n_features)
                highs = lows + rng.integers(0, levels - lows.max(), size=n_features)
                rules.append((lows, highs, int(rng.integers(0, 2))))
            outer = Box((0.0,) * n_features, (float(levels),) * n_features)
            rs = RuleSet(
                [
                    WhitelistRule(
                        box=Box(tuple(map(float, lo)), tuple(map(float, hi))),
                        label=lab,
                    )
                    for lo, hi, lab in rules
                ],
                outer_box=outer,
                default_label=int(rng.integers(0, 2)),
            )
            q = IntegerQuantizer(bits=6).fit(
                np.vstack([np.zeros(n_features), np.full(n_features, levels)])
            )
            qrs = rs.quantize(q)
            matcher = RangeIntervalMatcher(qrs)
            codes = rng.integers(0, levels, size=(60, n_features))
            np.testing.assert_array_equal(matcher.predict(codes), qrs.predict(codes))

    def test_range_interval_matcher_empty_ruleset(self):
        outer = Box((0.0, 0.0), (10.0, 10.0))
        rs = RuleSet([], outer_box=outer, default_label=MALICIOUS)
        q = IntegerQuantizer(bits=4).fit(np.array([[0.0, 0.0], [10.0, 10.0]]))
        matcher = RangeIntervalMatcher(rs.quantize(q))
        labels, idx = matcher.first_match(np.array([[1, 2], [3, 4]]))
        assert (labels == MALICIOUS).all()
        assert (idx == -1).all()

    def test_trace_arrays_canonicalization(self):
        """Both directions of a flow map to one canonical tuple/index."""
        fwd = FiveTuple(10, 20, 1000, 80, PROTO_TCP)
        rev = FiveTuple(20, 10, 80, 1000, PROTO_TCP)
        from repro.datasets.packet import Packet

        trace = Trace(
            [Packet(fwd, 0.0, 100), Packet(rev, 0.1, 200), Packet(fwd, 0.2, 300)]
        )
        arrays = TraceArrays.from_trace(trace)
        assert len(arrays.flow_tuples) == 1
        assert arrays.flow_tuples[0] == fwd.canonical() == rev.canonical()
        assert list(arrays.flow_idx) == [0, 0, 0]
        # PL features keep the packet's own direction: dst_port differs.
        assert arrays.pl_matrix[0][0] == 80.0
        assert arrays.pl_matrix[1][0] == 1000.0

    def test_trace_arrays_grouping_matches_unique(self):
        """The packed-key lexsort grouping must agree with np.unique."""
        flows = _make_flows("Mirai", seed=3, n_benign=20, n_attack=10)
        trace = flows_to_trace(flows)
        arrays = TraceArrays.from_trace(trace)
        keys = np.array(
            [
                (lambda c: (c.src_ip, c.dst_ip, c.src_port, c.dst_port, c.protocol))(
                    p.five_tuple.canonical()
                )
                for p in trace
            ],
            dtype=np.int64,
        )
        expect_fields, expect_idx = np.unique(keys, axis=0, return_inverse=True)
        np.testing.assert_array_equal(arrays.flow_fields, expect_fields)
        np.testing.assert_array_equal(arrays.flow_idx, expect_idx.reshape(-1))
