"""Property-style invariants of the data-plane pipeline.

Replays randomised traffic mixes and checks the structural guarantees
the evaluation relies on, independent of any specific rule set.
"""

import numpy as np
import pytest

from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.datasets.trace import flows_to_trace, merge_traces
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import Controller
from repro.switch.pipeline import PATH_BLUE, PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.utils.box import Box

N = len(SWITCH_FEATURES)


def _pipeline(n_slots=256, n=6):
    domain = np.vstack([np.zeros(N), np.full(N, 1e7)])
    q = IntegerQuantizer(bits=16).fit(domain)
    # Benign rule: small-ish mean packet size.
    lows = [0.0] * N
    highs = [1e7] * N
    highs[SWITCH_FEATURES.index("size_mean")] = 400.0
    rules = RuleSet(
        [WhitelistRule(box=Box(tuple(lows), tuple(highs)), label=BENIGN)],
        outer_box=Box(tuple([0.0] * N), tuple([1e7] * N)),
    ).quantize(q)
    pipe = SwitchPipeline(
        fl_rules=rules, fl_quantizer=q,
        config=PipelineConfig(pkt_count_threshold=n, n_slots=n_slots),
    )
    Controller(pipe)
    return pipe


@pytest.mark.parametrize("seed", [0, 17, 4242, 90210])
class TestReplayInvariants:
    def _trace(self, seed):
        benign = flows_to_trace(generate_benign_flows(15, seed=seed))
        attack = flows_to_trace(generate_attack_flows("UDP DDoS", 3, seed=seed + 1))
        return merge_traces([benign, attack.shifted(benign[0].timestamp if len(benign) else 0.0)])

    def test_every_packet_gets_one_decision(self, seed):
        trace = self._trace(seed)
        pipe = _pipeline()
        result = replay_trace(trace, pipe)
        assert result.n_packets == len(trace)
        assert sum(pipe.path_counts[p] for p in
                   ("red", "brown", "blue", "orange", "purple")) == len(trace)

    def test_digests_only_on_blue(self, seed):
        trace = self._trace(seed)
        pipe = _pipeline()
        result = replay_trace(trace, pipe)
        n_digests = sum(1 for d in result.decisions if d.digest is not None)
        assert n_digests == pipe.digests_emitted
        assert pipe.digests_emitted <= pipe.path_counts[PATH_BLUE]

    def test_blacklist_installs_bounded_by_malicious_digests(self, seed):
        trace = self._trace(seed)
        pipe = _pipeline()
        replay_trace(trace, pipe)
        stats = pipe.controller.stats
        assert stats.blacklist_installs <= stats.digests_received
        assert len(pipe.blacklist) <= stats.blacklist_installs

    def test_storage_occupancy_bounded(self, seed):
        trace = self._trace(seed)
        pipe = _pipeline(n_slots=64)
        replay_trace(trace, pipe)
        assert pipe.store.occupancy() <= 2 * 64
