"""Tests for bi-hash, double hash tables, and flow state storage."""

import pytest

from repro.datasets.packet import PROTO_TCP, FiveTuple, Packet
from repro.switch.hashing import DoubleHashTable, bi_hash
from repro.switch.storage import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDECIDED,
    FlowState,
    FlowStateStore,
)


def _ft(i, j=2):
    return FiveTuple(i, j, 1000 + i, 80, PROTO_TCP)


class TestBiHash:
    def test_direction_independent(self):
        ft = _ft(1)
        assert bi_hash(ft) == bi_hash(ft.reversed())

    def test_salt_changes_hash(self):
        assert bi_hash(_ft(1), salt=1) != bi_hash(_ft(1), salt=2)

    def test_distinct_flows_differ(self):
        hashes = {bi_hash(_ft(i)) for i in range(100)}
        assert len(hashes) > 95  # near-collision-free at this scale


class TestDoubleHashTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            DoubleHashTable(0)
        with pytest.raises(ValueError):
            DoubleHashTable(4, salt_a=1, salt_b=1)

    def test_insert_lookup_roundtrip(self):
        table = DoubleHashTable(64)
        slot, collided = table.insert(_ft(1), "state-1")
        assert not collided
        assert table.lookup(_ft(1)).state == "state-1"

    def test_lookup_by_reverse_direction(self):
        table = DoubleHashTable(64)
        table.insert(_ft(1), "s")
        assert table.lookup(_ft(1).reversed()) is not None

    def test_missing_lookup_none(self):
        assert DoubleHashTable(64).lookup(_ft(9)) is None

    def test_refresh_existing(self):
        table = DoubleHashTable(64)
        table.insert(_ft(1), "a")
        slot, collided = table.insert(_ft(1), "b")
        assert not collided
        assert table.lookup(_ft(1)).state == "b"
        assert table.occupancy() == 1

    def test_second_table_absorbs_collisions(self):
        """With a size-1 table, the second hash array gives one extra slot
        before a true collision."""
        table = DoubleHashTable(1)
        _s1, c1 = table.insert(_ft(1), "a")
        _s2, c2 = table.insert(_ft(2), "b")
        _s3, c3 = table.insert(_ft(3), "c")
        assert not c1
        assert not c2  # landed in the second table
        assert c3  # both arrays full now
        assert table.collision_count == 1

    def test_evict_and_insert_replaces_resident(self):
        table = DoubleHashTable(1)
        table.insert(_ft(1), "a")
        table.insert(_ft(2), "b")
        table.evict_and_insert(_ft(3), "c")
        assert table.lookup(_ft(3)).state == "c"

    def test_remove(self):
        table = DoubleHashTable(16)
        table.insert(_ft(1), "a")
        assert table.remove(_ft(1))
        assert table.lookup(_ft(1)) is None
        assert not table.remove(_ft(1))


class TestFlowStateStore:
    def test_lookup_or_create_tracks_new_flow(self):
        store = FlowStateStore(n_slots=32)
        state, collided, resident = store.lookup_or_create(_ft(1))
        assert state is not None and not collided and resident is None
        assert state.label == LABEL_UNDECIDED

    def test_existing_flow_returns_same_state(self):
        store = FlowStateStore(n_slots=32)
        s1, _, _ = store.lookup_or_create(_ft(1))
        s1.label = LABEL_MALICIOUS
        s2, _, _ = store.lookup_or_create(_ft(1))
        assert s2 is s1

    def test_collision_reports_resident(self):
        store = FlowStateStore(n_slots=1)
        store.lookup_or_create(_ft(1))
        store.lookup_or_create(_ft(2))
        state, collided, resident = store.lookup_or_create(_ft(3))
        assert collided and state is None and isinstance(resident, FlowState)

    def test_evict_and_track(self):
        store = FlowStateStore(n_slots=1)
        store.lookup_or_create(_ft(1))
        store.lookup_or_create(_ft(2))
        state = store.evict_and_track(_ft(3))
        found = store.lookup(_ft(3))
        assert found is state

    def test_release(self):
        store = FlowStateStore(n_slots=16)
        store.lookup_or_create(_ft(1))
        assert store.release(_ft(1))
        assert store.lookup(_ft(1)) is None

    def test_state_updates_and_decided(self):
        state = FlowState()
        assert not state.is_decided()
        state.stats.update(Packet(_ft(1), 0.0, 100))
        assert state.pkt_count == 1
        assert state.last_seen == 0.0
        state.label = LABEL_BENIGN
        assert state.is_decided()

    def test_sram_accounting_positive(self):
        store = FlowStateStore(n_slots=128)
        assert store.sram_bytes() == 2 * 128 * store.bytes_per_slot()
