"""Property-style invariants of :class:`FlowStateStore`.

Seeded random operation sequences (track / update / decide / release /
evict) drive the double-hash storage and check the structural guarantees
both replay engines build on: deterministic slot placement, canonical
(direction-independent) identity, label persistence, and occupancy
accounting.
"""

import numpy as np

from repro.datasets.packet import PROTO_TCP, PROTO_UDP, FiveTuple
from repro.switch.storage import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDECIDED,
    FlowState,
    FlowStateStore,
)

N_OPS = 600


def _random_tuple(rng):
    return FiveTuple(
        src_ip=int(rng.integers(1, 2**32)),
        dst_ip=int(rng.integers(1, 2**32)),
        src_port=int(rng.integers(1, 2**16)),
        dst_port=int(rng.integers(1, 2**16)),
        protocol=int(rng.choice([PROTO_TCP, PROTO_UDP])),
    )


def _reverse(ft):
    return FiveTuple(ft.dst_ip, ft.src_ip, ft.dst_port, ft.src_port, ft.protocol)


def _drive(store, seed, n_ops=N_OPS, n_slots_hint=16):
    """One seeded op sequence; returns the op log for cross-checks."""
    rng = np.random.default_rng(seed)
    tuples = [_random_tuple(rng) for _ in range(n_slots_hint * 3)]
    log = []
    for step in range(n_ops):
        ft = tuples[int(rng.integers(0, len(tuples)))]
        op = int(rng.integers(0, 4))
        if op == 0:
            state, collided, resident = store.lookup_or_create(ft)
            log.append(("create", ft, collided))
            if state is not None and rng.random() < 0.5:
                state.stats.update_raw(float(step), int(rng.integers(60, 1500)))
        elif op == 1:
            state = store.lookup(ft)
            if state is not None:
                state.label = int(rng.choice([LABEL_BENIGN, LABEL_MALICIOUS]))
            log.append(("decide", ft, state is not None))
        elif op == 2:
            log.append(("release", ft, store.release(ft)))
        else:
            state, collided, resident = store.lookup_or_create(ft)
            if collided and resident is not None and resident.is_decided():
                store.evict_and_track(ft)
                log.append(("evict", ft, True))
            else:
                log.append(("evict", ft, False))
    return log


def _layout(store):
    """(table, position, flow_id, label) for every occupied slot."""
    out = []
    for t_idx, table in enumerate(store.table._tables):
        for pos, slot in enumerate(table):
            if slot is not None:
                out.append((t_idx, pos, slot.flow_id, slot.state.label))
    return out


class TestStorageProperties:
    def test_identical_seeds_identical_state(self):
        """Two identically seeded op sequences end bit-identical."""
        for seed in (0, 7, 123):
            a = FlowStateStore(n_slots=16)
            b = FlowStateStore(n_slots=16)
            log_a = _drive(a, seed)
            log_b = _drive(b, seed)
            assert log_a == log_b
            assert _layout(a) == _layout(b)
            assert a.collision_count == b.collision_count
            assert a.occupancy() == b.occupancy()

    def test_tracked_flow_keeps_state_until_released(self):
        """A tracked flow's state object and label survive unrelated ops."""
        rng = np.random.default_rng(42)
        store = FlowStateStore(n_slots=64)
        ft = _random_tuple(rng)
        state, collided, _ = store.lookup_or_create(ft)
        assert not collided
        state.label = LABEL_MALICIOUS
        # Unrelated flows must never displace a live slot (no silent
        # eviction outside the explicit orange path).
        for _ in range(200):
            store.lookup_or_create(_random_tuple(rng))
        got = store.lookup(ft)
        assert got is state
        assert got.label == LABEL_MALICIOUS
        assert store.release(ft)
        assert store.lookup(ft) is None
        assert not store.release(ft)

    def test_bidirectional_tuples_share_one_slot(self):
        rng = np.random.default_rng(3)
        store = FlowStateStore(n_slots=32)
        shared = 0
        for _ in range(50):
            ft = _random_tuple(rng)
            fwd, collided, _ = store.lookup_or_create(ft)
            if collided:
                continue  # full tables: nothing tracked to share
            rev = store.lookup(_reverse(ft))
            assert rev is fwd
            back, collided, _ = store.lookup_or_create(_reverse(ft))
            assert back is fwd and not collided
            shared += 1
        assert shared > 10
        # Every occupied slot holds a canonical flow id.
        for _t, _pos, flow_id, _label in _layout(store):
            assert flow_id == flow_id.canonical()

    def test_occupancy_accounting(self):
        """occupancy == live slots, bounded by 2 * n_slots, and release
        decrements by exactly one."""
        store = FlowStateStore(n_slots=8)
        rng = np.random.default_rng(11)
        tracked = []
        for _ in range(200):
            ft = _random_tuple(rng)
            state, collided, _ = store.lookup_or_create(ft)
            if not collided:
                tracked.append(ft)
            assert store.occupancy() == len(_layout(store))
            assert store.occupancy() <= 2 * store.n_slots
        before = store.occupancy()
        victim = tracked[len(tracked) // 2]
        assert store.release(victim)
        assert store.occupancy() == before - 1

    def test_collision_returns_first_table_resident(self):
        """On a full table the reported resident is the t0 occupant at
        the new flow's first-choice position — the orange path's input."""
        store = FlowStateStore(n_slots=1)
        rng = np.random.default_rng(5)
        a, b, c = (_random_tuple(rng) for _ in range(3))
        sa, _, _ = store.lookup_or_create(a)  # t0[0]
        sb, _, _ = store.lookup_or_create(b)  # t1[0]
        state, collided, resident = store.lookup_or_create(c)
        assert collided and state is None
        assert resident is sa
        assert store.collision_count == 1
        # Undecided resident: evict_and_track is the only way in.
        sa.label = LABEL_BENIGN
        fresh = store.evict_and_track(c)
        assert store.lookup(c) is fresh
        assert store.lookup(a) is None  # resident displaced
        assert store.lookup(b) is sb  # second table untouched

    def test_fresh_state_is_undecided_and_empty(self):
        store = FlowStateStore(n_slots=4)
        rng = np.random.default_rng(9)
        state, _, _ = store.lookup_or_create(_random_tuple(rng))
        assert state.label == LABEL_UNDECIDED
        assert not state.is_decided()
        assert state.pkt_count == 0
        assert state.last_seen is None
        state.stats.update_raw(1.0, 100)
        assert state.pkt_count == 1
        assert state.last_seen == 1.0
