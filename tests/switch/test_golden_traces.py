"""Golden-trace regression fixtures, one per execution path.

Each scenario is a tiny hand-crafted trace whose expected per-packet
outcome (path, action, verdict, digests) and end-of-replay counters were
recorded from the scalar engine and committed under
``tests/switch/golden/``.  Both replay engines must keep reproducing
them exactly — a change here is a semantic change to Fig 4, not noise.

Regenerate (after an *intentional* semantics change) with::

    PYTHONPATH=src python tests/switch/golden/regenerate.py
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.datasets.packet import PROTO_TCP, PROTO_UDP, FiveTuple, Packet
from repro.datasets.trace import Trace
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.packet_features import PACKET_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import Controller
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.utils.box import Box

GOLDEN_DIR = Path(__file__).parent / "golden"

N_FL = len(SWITCH_FEATURES)
N_PL = len(PACKET_FEATURES)
LENGTH_IDX = PACKET_FEATURES.index("length")
SIZE_MEAN_IDX = SWITCH_FEATURES.index("size_mean")


def _rules(n_features, benign_max, constrained_idx):
    """Benign ⟺ feature[constrained_idx] < benign_max, else malicious."""
    lows = [0.0] * n_features
    highs = [1e6] * n_features
    b_highs = list(highs)
    b_highs[constrained_idx] = benign_max
    rule = WhitelistRule(box=Box(tuple(lows), tuple(b_highs)), label=BENIGN)
    return RuleSet([rule], outer_box=Box(tuple(lows), tuple(highs)))


def build_pipeline(config_kwargs):
    """Fixed rules (benign ⟺ size_mean / length < 500), 16-bit linear
    quantizers over [0, 1e6] — fully deterministic, no training data."""
    fl_q = IntegerQuantizer(bits=16).fit(
        np.vstack([np.zeros(N_FL), np.full(N_FL, 1e6)])
    )
    pl_q = IntegerQuantizer(bits=16).fit(
        np.vstack([np.zeros(N_PL), np.full(N_PL, 1e6)])
    )
    pipe = SwitchPipeline(
        fl_rules=_rules(N_FL, 500.0, SIZE_MEAN_IDX).quantize(fl_q),
        fl_quantizer=fl_q,
        pl_rules=_rules(N_PL, 500.0, LENGTH_IDX).quantize(pl_q),
        pl_quantizer=pl_q,
        config=PipelineConfig(**config_kwargs),
    )
    controller = Controller(pipe)
    return pipe, controller


FT_A = dict(src_ip=1, dst_ip=2, src_port=100, dst_port=80, protocol=PROTO_UDP)
FT_B = dict(src_ip=3, dst_ip=4, src_port=200, dst_port=80, protocol=PROTO_UDP)
FT_C = dict(src_ip=5, dst_ip=6, src_port=300, dst_port=80, protocol=PROTO_TCP)


def _flow(ft, n, size, start=0.0, gap=0.1, malicious=False):
    return [
        dict(ft=dict(ft), ts=round(start + i * gap, 6), size=size, malicious=malicious)
        for i in range(n)
    ]


#: scenario name → (pipeline config kwargs, packet spec list).  Each is
#: built to make one execution path the star of the fixture.
SCENARIOS = {
    # brown, brown, brown, blue(benign) — the normal benign flow shape.
    "benign_brown_blue": (
        dict(pkt_count_threshold=4, timeout=5.0, n_slots=64),
        _flow(FT_A, 4, size=100),
    ),
    # After the blue verdict the flow-label register answers: purple.
    "purple_after_decision": (
        dict(pkt_count_threshold=4, timeout=5.0, n_slots=64),
        _flow(FT_A, 7, size=100),
    ),
    # Malicious blue verdict → controller installs blacklist → red.
    "red_blacklist": (
        dict(pkt_count_threshold=4, timeout=5.0, n_slots=64),
        _flow(FT_A, 6, size=900, malicious=True),
    ),
    # Idle gap beyond δ: timeout-blue classifies the partial flow, the
    # late packet itself is scored on PL features and re-seeds stats.
    "blue_timeout": (
        dict(pkt_count_threshold=10, timeout=2.0, n_slots=64),
        _flow(FT_A, 3, size=100) + [dict(ft=dict(FT_A), ts=10.0, size=100, malicious=False)],
    ),
    # n_slots=1 and two residents: the third flow collides while the
    # resident is undecided — orange with no eviction.
    "orange_undecided": (
        dict(pkt_count_threshold=8, timeout=5.0, n_slots=1),
        _flow(FT_A, 2, size=100)
        + [dict(ft=dict(FT_B), ts=1.0, size=100, malicious=False)]
        + [dict(ft=dict(FT_C), ts=2.0, size=100, malicious=False)],
    ),
    # Resident classified first: the colliding flow evicts it and the
    # mirror (green) initialises the new flow ID register.
    "orange_evict_green": (
        dict(pkt_count_threshold=2, timeout=5.0, n_slots=1),
        _flow(FT_A, 2, size=100)
        + [dict(ft=dict(FT_B), ts=1.0, size=100, malicious=False)]
        + [dict(ft=dict(FT_C), ts=2.0, size=100, malicious=False)],
    ),
}


def build_trace(packet_specs):
    packets = [
        Packet(
            FiveTuple(**spec["ft"]),
            spec["ts"],
            spec["size"],
            malicious=spec["malicious"],
        )
        for spec in packet_specs
    ]
    return Trace(packets)


def replay_scenario(name, mode):
    config_kwargs, packet_specs = SCENARIOS[name]
    pipe, controller = build_pipeline(config_kwargs)
    result = replay_trace(build_trace(packet_specs), pipe, mode=mode)
    return pipe, controller, result


def observed_outcome(pipe, controller, result):
    """The JSON-serialisable view of one replay, compared to golden."""
    return {
        "paths": [d.path for d in result.decisions],
        "actions": [d.action for d in result.decisions],
        "preds": [int(d.predicted_malicious) for d in result.decisions],
        "digests": [
            {"packet": i, "label": d.digest.label, "timestamp": d.digest.timestamp}
            for i, d in enumerate(result.decisions)
            if d.digest is not None
        ],
        "mirrored": [i for i, d in enumerate(result.decisions) if d.mirrored],
        "path_counts": {k: v for k, v in pipe.path_counts.items() if v},
        "digests_emitted": pipe.digests_emitted,
        "mirrored_packets": pipe.mirrored_packets,
        "collision_count": pipe.store.table.collision_count,
        "occupancy": pipe.store.occupancy(),
        "blacklist_len": len(pipe.blacklist),
        "blacklist_installs": controller.stats.blacklist_installs,
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_golden_trace(name, mode):
    golden_path = GOLDEN_DIR / f"{name}.json"
    golden = json.loads(golden_path.read_text())
    assert golden["scenario"] == name
    observed = observed_outcome(*replay_scenario(name, mode))
    assert observed == golden["expected"], f"{name} drifted under {mode} engine"


def test_goldens_cover_every_path():
    """The fixture set as a whole must pin all six Fig-4 paths."""
    seen = set()
    for name in SCENARIOS:
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        seen.update(golden["expected"]["path_counts"])
    assert seen == {"red", "brown", "blue", "orange", "purple", "green"}
