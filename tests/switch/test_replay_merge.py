""":meth:`ReplayResult.merge` — chunked replays read as one replay.

The cluster coordinator and chunked offline analyses both join partial
replays back together; merge must behave exactly like having replayed
the concatenated trace in one shot (same pipeline state trajectory), and
must sum — never recompute — the ``path_counts`` caches when every input
already carries one.
"""

import numpy as np
import pytest

from repro.datasets.trace import Trace
from repro.switch.runner import ReplayResult, replay_trace
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split


@pytest.fixture(scope="module")
def split():
    return make_split(seed=37, n_benign_flows=25)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


@pytest.fixture(scope="module")
def chunked(split, artifacts):
    """The same trace replayed in three chunks on one pipeline, plus the
    one-shot replay on an identical fresh pipeline."""
    packets = split.stream_trace.packets
    cuts = [0, len(packets) // 3, 2 * len(packets) // 3, len(packets)]
    pipeline = fresh_pipeline(artifacts)
    parts = [
        replay_trace(Trace(packets[a:b]), pipeline, mode="batch")
        for a, b in zip(cuts, cuts[1:])
    ]
    full = replay_trace(split.stream_trace, fresh_pipeline(artifacts), mode="batch")
    return parts, full


class TestMerge:
    def test_reads_as_one_replay(self, chunked):
        parts, full = chunked
        merged = parts[0].merge(parts[1:])
        assert merged.n_packets == full.n_packets
        np.testing.assert_array_equal(merged.y_true, full.y_true)
        np.testing.assert_array_equal(merged.y_pred, full.y_pred)
        assert merged.path_counts() == full.path_counts()
        assert merged.dropped_fraction() == full.dropped_fraction()
        assert [d.path for d in merged.decisions] == [d.path for d in full.decisions]

    def test_sums_caches_instead_of_rewalking(self, chunked):
        parts, full = chunked
        for part in parts:
            part.path_counts()  # warm every cache
        merged = parts[0].merge(parts[1:])
        assert merged._path_counts is not None  # precomputed, not deferred
        assert merged.path_counts() == full.path_counts()

    def test_missing_cache_defers_to_lazy_recompute(self, chunked):
        parts, full = chunked
        fresh = [
            ReplayResult(decisions=p.decisions, y_true=p.y_true, y_pred=p.y_pred)
            for p in parts
        ]
        fresh[0].path_counts()  # only one input cached
        merged = fresh[0].merge(fresh[1:])
        assert merged._path_counts is None
        assert merged.path_counts() == full.path_counts()  # lazy path agrees

    def test_inputs_left_untouched(self, chunked):
        parts, _full = chunked
        sizes = [p.n_packets for p in parts]
        preds = [p.y_pred.copy() for p in parts]
        parts[0].merge(parts[1:])
        assert [p.n_packets for p in parts] == sizes
        for p, before in zip(parts, preds):
            np.testing.assert_array_equal(p.y_pred, before)

    def test_merge_with_nothing_is_a_copy(self, chunked):
        parts, _full = chunked
        merged = parts[0].merge([])
        assert merged is not parts[0]
        assert merged.n_packets == parts[0].n_packets
        np.testing.assert_array_equal(merged.y_pred, parts[0].y_pred)
        assert merged.path_counts() == parts[0].path_counts()
