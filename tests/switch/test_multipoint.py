"""Tests for the multi-checkpoint pipeline (fn 9 future-work design)."""

import numpy as np
import pytest

from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.multipoint import Checkpoint, MultiCheckpointPipeline
from repro.switch.pipeline import PipelineConfig
from repro.utils.box import Box

N = len(SWITCH_FEATURES)
SIZE_MEAN = SWITCH_FEATURES.index("size_mean")
FT = FiveTuple(1, 2, 100, 80, PROTO_UDP)


def _checkpoint(n, size_cut):
    """Benign iff size_mean < size_cut at horizon n."""
    lows = [0.0] * N
    highs = [1e6] * N
    b_highs = list(highs)
    b_highs[SIZE_MEAN] = size_cut
    outer = Box(tuple(lows), tuple(highs))
    rules = RuleSet(
        [WhitelistRule(box=Box(tuple(lows), tuple(b_highs)), label=BENIGN)],
        outer_box=outer,
    )
    domain = np.vstack([np.zeros(N), np.full(N, 1e6)])
    q = IntegerQuantizer(bits=16).fit(domain)
    return Checkpoint(n=n, rules=rules.quantize(q), quantizer=q)


def _flow(sizes, start=0.0, gap=0.1, malicious=False):
    return [
        Packet(FT, start + i * gap, s, malicious=malicious)
        for i, s in enumerate(sizes)
    ]


class TestConstruction:
    def test_requires_checkpoints(self):
        with pytest.raises(ValueError):
            MultiCheckpointPipeline([])

    def test_rejects_duplicate_horizons(self):
        with pytest.raises(ValueError):
            MultiCheckpointPipeline([_checkpoint(4, 500), _checkpoint(4, 500)])

    def test_last_checkpoint_becomes_threshold(self):
        pipe = MultiCheckpointPipeline([_checkpoint(4, 500), _checkpoint(8, 500)])
        assert pipe.config.pkt_count_threshold == 8


class TestAnyPointBlocking:
    def test_benign_flow_passes_all_checkpoints(self):
        pipe = MultiCheckpointPipeline([_checkpoint(4, 500), _checkpoint(8, 500)])
        decisions = [pipe.process(p) for p in _flow([100] * 10)]
        assert all(d.predicted_malicious == 0 for d in decisions)
        assert pipe.checkpoint_flags == [0, 0]

    def test_early_manifestation_caught_at_first_checkpoint(self):
        """Flow malicious from the start: flagged at n=4, not n=8."""
        pipe = MultiCheckpointPipeline([_checkpoint(4, 500), _checkpoint(8, 500)])
        decisions = [pipe.process(p) for p in _flow([900] * 10, malicious=True)]
        assert decisions[3].predicted_malicious == 1  # 4th packet
        assert pipe.checkpoint_flags[0] == 1
        # Subsequent packets take red/purple with the stored verdict.
        assert all(d.predicted_malicious == 1 for d in decisions[3:])

    def test_late_manifestation_caught_at_second_checkpoint(self):
        """Flow benign for its first 4 packets, malicious after — the
        single-threshold (n=4) design would have whitelisted it forever;
        the second checkpoint catches it (fn 9's motivation)."""
        sizes = [100] * 4 + [1400] * 6  # mean crosses 500 only later
        pipe = MultiCheckpointPipeline([_checkpoint(4, 500), _checkpoint(8, 500)])
        decisions = [pipe.process(p) for p in _flow(sizes, malicious=True)]
        assert decisions[3].predicted_malicious == 0  # passed n=4
        assert any(d.predicted_malicious == 1 for d in decisions[4:])
        assert pipe.checkpoint_flags[-1] == 1

    def test_single_checkpoint_degenerates_to_base(self):
        pipe = MultiCheckpointPipeline([_checkpoint(4, 500)])
        decisions = [pipe.process(p) for p in _flow([900] * 6, malicious=True)]
        assert decisions[3].predicted_malicious == 1
