"""Control-plane unit tests: digest handling, blacklist aging, and the
App. B.2 overhead accounting (§3.3.2)."""

import numpy as np
import pytest

from repro.core.rules import BENIGN, QuantizedRule, QuantizedRuleSet
from repro.datasets.packet import PROTO_UDP, FiveTuple
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import FEATURE_DIGEST_EXTRA_BYTES, Controller, ControllerStats
from repro.switch.pipeline import Digest, PipelineConfig, SwitchPipeline
from repro.switch.storage import LABEL_BENIGN, LABEL_MALICIOUS

N = len(SWITCH_FEATURES)


def _ft(i):
    return FiveTuple(i, 99, 5000 + i, 80, PROTO_UDP)


def _digest(i, label, ts=0.0):
    return Digest(five_tuple=_ft(i), label=label, timestamp=ts)


def _pipeline(**config_kwargs):
    domain = np.vstack([np.zeros(N), np.full(N, 1e6)])
    q = IntegerQuantizer(bits=16).fit(domain)
    rules = QuantizedRuleSet(
        [QuantizedRule(lows=(1,) * N, highs=(q.levels - 1,) * N, label=BENIGN)],
        bits=16,
    )
    return SwitchPipeline(
        fl_rules=rules, fl_quantizer=q, config=PipelineConfig(**config_kwargs)
    )


class TestDigestHandling:
    def test_attaches_to_pipeline(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        assert pipe.controller is ctrl

    def test_malicious_digest_installs_blacklist(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        assert pipe.blacklist.matches(_ft(1))
        assert ctrl.stats.blacklist_installs == 1
        assert ctrl.stats.digests_received == 1
        assert ctrl.stats.digest_bytes == Digest.WIRE_BYTES

    def test_benign_digest_only_counts(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        ctrl.handle_digest(_digest(1, LABEL_BENIGN))
        assert not pipe.blacklist.matches(_ft(1))
        assert ctrl.stats.blacklist_installs == 0
        assert ctrl.stats.digests_received == 1

    def test_install_blacklist_disabled(self):
        pipe = _pipeline()
        ctrl = Controller(pipe, install_blacklist=False)
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        assert not pipe.blacklist.matches(_ft(1))
        assert ctrl.stats.blacklist_installs == 0
        assert ctrl.stats.digests_received == 1

    def test_storage_release_accounting(self):
        """storage_releases counts only flows the store actually held."""
        pipe = _pipeline()
        ctrl = Controller(pipe)
        pipe.store.lookup_or_create(_ft(1))  # tracked flow
        assert pipe.store.occupancy() == 1
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        assert ctrl.stats.storage_releases == 1
        assert pipe.store.occupancy() == 0
        # An untracked flow installs a rule but releases nothing.
        ctrl.handle_digest(_digest(2, LABEL_MALICIOUS))
        assert ctrl.stats.blacklist_installs == 2
        assert ctrl.stats.storage_releases == 1


class TestBlacklistAging:
    def test_fifo_aging_through_controller(self):
        pipe = _pipeline(blacklist_capacity=2, blacklist_eviction="fifo")
        ctrl = Controller(pipe)
        for i in (1, 2, 3):
            ctrl.handle_digest(_digest(i, LABEL_MALICIOUS))
        assert not pipe.blacklist.matches(_ft(1))  # oldest aged out
        assert pipe.blacklist.matches(_ft(2))
        assert pipe.blacklist.matches(_ft(3))
        assert pipe.blacklist.evictions == 1
        assert ctrl.stats.blacklist_installs == 3

    def test_lru_aging_through_controller(self):
        pipe = _pipeline(blacklist_capacity=2, blacklist_eviction="lru")
        ctrl = Controller(pipe)
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        ctrl.handle_digest(_digest(2, LABEL_MALICIOUS))
        pipe.blacklist.matches(_ft(1))  # touch 1 → 2 becomes LRU
        ctrl.handle_digest(_digest(3, LABEL_MALICIOUS))
        assert pipe.blacklist.matches(_ft(1))
        assert not pipe.blacklist.matches(_ft(2))

    def test_reinstall_does_not_recount(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        # The controller counts both digests; the table counts one entry.
        assert ctrl.stats.blacklist_installs == 2
        assert pipe.blacklist.installs == 1
        assert len(pipe.blacklist) == 1


class TestOverheadAccounting:
    def test_digest_bytes_accumulate(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        for i in range(5):
            ctrl.handle_digest(_digest(i, LABEL_BENIGN, ts=float(i)))
        assert ctrl.stats.digest_bytes == 5 * Digest.WIRE_BYTES

    def test_overhead_kbps(self):
        stats = ControllerStats(digests_received=10, digest_bytes=14000)
        assert stats.overhead_kbps(window_seconds=7.0) == pytest.approx(2.0)

    def test_overhead_kbps_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            ControllerStats().overhead_kbps(0.0)

    def test_horuseye_equivalent_bytes(self):
        stats = ControllerStats(digests_received=10, digest_bytes=140)
        assert (
            stats.horuseye_equivalent_bytes()
            == 140 + 10 * FEATURE_DIGEST_EXTRA_BYTES
        )

    def test_telemetry_counters_mirror_stats(self):
        pipe = _pipeline()
        ctrl = Controller(pipe)
        pipe.store.lookup_or_create(_ft(1))
        ctrl.handle_digest(_digest(1, LABEL_MALICIOUS))
        ctrl.handle_digest(_digest(2, LABEL_BENIGN))
        counters = ctrl.telemetry_counters()
        assert counters["controller.digests_received"] == 2
        assert counters["controller.digest_bytes"] == 2 * Digest.WIRE_BYTES
        assert counters["controller.blacklist_installs"] == 1
        assert counters["controller.storage_releases"] == 1
        assert (
            counters["controller.horuseye_equivalent_bytes"]
            == ctrl.stats.horuseye_equivalent_bytes()
        )
