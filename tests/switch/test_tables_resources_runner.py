"""Tests for tables, resource accounting, and trace replay."""

import numpy as np
import pytest

from repro.core.rules import BENIGN, MALICIOUS, QuantizedRule, QuantizedRuleSet
from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.datasets.trace import Trace
from repro.features.flow_features import SWITCH_FEATURES
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.resources import (
    PIPELINE_STAGES,
    memory_fraction,
    resource_report,
)
from repro.switch.runner import (
    PIPELINE_LATENCY_NS,
    replay_trace,
    throughput_latency_model,
)
from repro.switch.tables import BlacklistTable, WhitelistTable
from repro.features.scaling import IntegerQuantizer

N = len(SWITCH_FEATURES)


def _ft(i):
    return FiveTuple(i, 99, 5000 + i, 80, PROTO_UDP)


class TestBlacklistTable:
    def test_install_and_match_bidirectional(self):
        table = BlacklistTable(capacity=4)
        table.install(_ft(1))
        assert table.matches(_ft(1))
        assert table.matches(_ft(1).reversed())

    def test_fifo_eviction(self):
        table = BlacklistTable(capacity=2, eviction="fifo")
        table.install(_ft(1))
        table.install(_ft(2))
        table.install(_ft(3))
        assert not table.matches(_ft(1))
        assert table.matches(_ft(3))
        assert table.evictions == 1

    def test_lru_eviction_keeps_recently_used(self):
        table = BlacklistTable(capacity=2, eviction="lru")
        table.install(_ft(1))
        table.install(_ft(2))
        table.matches(_ft(1))  # touch 1 → 2 becomes LRU
        table.install(_ft(3))
        assert table.matches(_ft(1))
        assert not table.matches(_ft(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            BlacklistTable(capacity=0)
        with pytest.raises(ValueError):
            BlacklistTable(eviction="random")

    def test_remove(self):
        table = BlacklistTable()
        table.install(_ft(1))
        assert table.remove(_ft(1))
        assert not table.matches(_ft(1))


class TestWhitelistTable:
    def test_lookup_counts(self):
        rules = QuantizedRuleSet(
            [QuantizedRule(lows=(0,) * N, highs=(100,) * N, label=BENIGN)], bits=16
        )
        table = WhitelistTable(rules)
        label, idx = table.lookup(np.full(N, 50))
        assert (label, idx) == (BENIGN, 0)
        assert table.lookup_count == 1

    def test_tcam_entries_positive(self):
        rules = QuantizedRuleSet(
            [QuantizedRule(lows=(1,) * N, highs=(200,) * N, label=BENIGN)], bits=16
        )
        assert WhitelistTable(rules).tcam_entries() > N  # multiple prefixes/field


def _tiny_pipeline():
    domain = np.vstack([np.zeros(N), np.full(N, 1e6)])
    q = IntegerQuantizer(bits=16).fit(domain)
    rules = QuantizedRuleSet(
        [QuantizedRule(lows=(1,) * N, highs=(q.levels - 1,) * N, label=BENIGN)],
        bits=16,
    )
    return SwitchPipeline(
        fl_rules=rules, fl_quantizer=q, config=PipelineConfig(pkt_count_threshold=3)
    )


class TestResources:
    def test_report_fields(self):
        report = resource_report(_tiny_pipeline())
        assert report.stages == PIPELINE_STAGES == 12
        assert 0 < report.sram_pct < 100
        assert report.tcam_entries >= 1
        assert 0 < report.salu_pct < 100
        assert 0 < report.vliw_pct < 100

    def test_memory_fraction_in_unit_interval(self):
        rho = memory_fraction(resource_report(_tiny_pipeline()))
        assert 0.0 <= rho <= 1.0

    def test_row_formatting(self):
        row = resource_report(_tiny_pipeline()).row("iGuard")
        assert "iGuard" in row and "%" in row


class TestReplay:
    def _trace(self):
        pkts = [Packet(_ft(1), 0.1 * i, 100, malicious=False) for i in range(5)]
        pkts += [Packet(_ft(2), 0.05 + 0.1 * i, 200, malicious=True) for i in range(5)]
        return Trace(pkts)

    def test_replay_collects_ground_truth(self):
        result = replay_trace(self._trace(), _tiny_pipeline())
        assert result.n_packets == 10
        assert result.y_true.sum() == 5
        assert set(result.path_counts()) <= {"brown", "blue", "purple"}

    def test_throughput_model_dataplane_near_line_rate(self):
        result = replay_trace(self._trace(), _tiny_pipeline())
        report = throughput_latency_model(result, offered_gbps=40.0)
        assert report.achieved_gbps <= 40.0
        assert report.achieved_gbps > 38.0
        assert report.mean_latency_ns == PIPELINE_LATENCY_NS

    def test_control_plane_detour_hurts(self):
        result = replay_trace(self._trace(), _tiny_pipeline())
        inline = throughput_latency_model(result, control_plane_detection=False)
        detour = throughput_latency_model(
            result, control_plane_detection=True, control_plane_fraction=0.2
        )
        assert detour.achieved_gbps < inline.achieved_gbps
        assert detour.mean_latency_ns > inline.mean_latency_ns
