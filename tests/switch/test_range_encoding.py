"""Property tests for TCAM range-to-prefix expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch.range_encoding import (
    prefix_count,
    range_to_prefixes,
    rule_tcam_entries,
)


def _covered(prefixes, bits):
    """Set of values matched by a prefix list."""
    out = set()
    top = (1 << bits) - 1
    for value, mask in prefixes:
        free = top & ~mask
        # enumerate all combinations of free bits (small bits only)
        free_positions = [i for i in range(bits) if free >> i & 1]
        for combo in range(1 << len(free_positions)):
            v = value
            for j, pos in enumerate(free_positions):
                if combo >> j & 1:
                    v |= 1 << pos
            out.add(v)
    return out


class TestRangeToPrefixes:
    def test_full_domain_is_one_wildcard(self):
        prefixes = range_to_prefixes(0, 255, 8)
        assert prefixes == [(0, 0)]

    def test_single_value(self):
        prefixes = range_to_prefixes(5, 5, 8)
        assert prefixes == [(5, 255)]

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 3, 8)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 300, 8)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 1, 0)

    def test_worst_case_bound(self):
        # [1, 2^w - 2] is the classic worst case: 2w - 2 prefixes.
        bits = 8
        assert prefix_count(1, (1 << bits) - 2, bits) == 2 * bits - 2

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_exactly_the_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        assert _covered(prefixes, 8) == set(range(lo, hi + 1))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_prefixes_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        total = sum(1 << bin((~m) & 255).count("1") for _v, m in prefixes)
        assert total == hi - lo + 1


class TestRuleEntries:
    def test_per_field_is_sum(self):
        n = rule_tcam_entries([1, 0], [6, 255], 8, mode="per_field")
        assert n == prefix_count(1, 6, 8) + 1

    def test_cross_product_is_product(self):
        n = rule_tcam_entries([1, 1], [6, 6], 8, mode="cross_product")
        assert n == prefix_count(1, 6, 8) ** 2

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            rule_tcam_entries([0], [1], 8, mode="nope")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rule_tcam_entries([0, 1], [1], 8)
