"""Artifact persistence round-trips (:mod:`repro.io`).

Every deployable object must reload to something *behaviourally
identical*: same quantizer fingerprint (so install-time checks still
pass), same forest votes, same ensemble scores.  A trained model is
fitted once per module and shared.
"""

import json

import numpy as np
import pytest

from repro import io as rio
from repro.core.deployment import compile_switch_artifacts
from repro.datasets import generate_benign_flows
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.telemetry import MetricRegistry, use_registry
from tests.runtime.common import light_model_factory


@pytest.fixture(scope="module")
def trained():
    flows = generate_benign_flows(60, seed=21)
    fx = FlowFeatureExtractor(feature_set="switch", pkt_count_threshold=8, timeout=5.0)
    x, _ = fx.extract_flows(flows)
    model = light_model_factory(seed=23).fit(x)
    artifacts = compile_switch_artifacts(model, x, train_flows=flows, seed=25)
    return flows, x, model, artifacts


class TestQuantizerRoundTrip:
    def test_fingerprint_preserved(self, trained):
        _flows, _x, _model, artifacts = trained
        doc = rio.quantizer_to_dict(artifacts.fl_quantizer)
        back = rio.quantizer_from_dict(doc)
        assert back.fingerprint() == artifacts.fl_quantizer.fingerprint()

    def test_quantization_identical(self, trained):
        _flows, x, _model, artifacts = trained
        back = rio.quantizer_from_dict(rio.quantizer_to_dict(artifacts.fl_quantizer))
        np.testing.assert_array_equal(
            back.quantize(x), artifacts.fl_quantizer.quantize(x)
        )

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="unfitted"):
            rio.quantizer_to_dict(IntegerQuantizer(bits=8))

    def test_survives_json_text(self, trained):
        """The document must survive an actual serialise/parse cycle."""
        _flows, _x, _model, artifacts = trained
        doc = json.loads(json.dumps(rio.quantizer_to_dict(artifacts.fl_quantizer)))
        assert rio.quantizer_from_dict(doc).fingerprint() == (
            artifacts.fl_quantizer.fingerprint()
        )


class TestRulesetRoundTrip:
    def test_rules_and_fingerprint_preserved(self, trained):
        _flows, _x, _model, artifacts = trained
        back = rio.ruleset_from_dict(rio.ruleset_to_dict(artifacts.fl_rules))
        assert back.bits == artifacts.fl_rules.bits
        assert back.default_label == artifacts.fl_rules.default_label
        assert back.quantizer_fingerprint == artifacts.fl_rules.quantizer_fingerprint
        assert len(back) == len(artifacts.fl_rules)
        for a, b in zip(back.rules, artifacts.fl_rules.rules):
            assert a.lows == b.lows and a.highs == b.highs and a.label == b.label

    def test_wrong_kind_rejected(self, trained):
        _flows, _x, _model, artifacts = trained
        doc = rio.quantizer_to_dict(artifacts.fl_quantizer)
        with pytest.raises(ValueError, match="quantized_ruleset"):
            rio.ruleset_from_dict(doc)

    def test_wrong_schema_rejected(self, trained):
        _flows, _x, _model, artifacts = trained
        doc = rio.ruleset_to_dict(artifacts.fl_rules)
        doc["schema"] = "someone-else/v9"
        with pytest.raises(ValueError, match="repro.io/v1"):
            rio.ruleset_from_dict(doc)


class TestForestRoundTrip:
    def test_votes_identical(self, trained):
        _flows, x, model, _artifacts = trained
        back = rio.forest_from_dict(rio.forest_to_dict(model.distilled_))
        from repro.utils.transforms import signed_log1p

        x_log = signed_log1p(x)
        np.testing.assert_array_equal(
            back.vote_fraction(x_log), model.distilled_.vote_fraction(x_log)
        )
        assert back.distilled_ == model.distilled_.distilled_

    def test_survives_json_text(self, trained):
        _flows, x, model, _artifacts = trained
        doc = json.loads(json.dumps(rio.forest_to_dict(model.distilled_)))
        back = rio.forest_from_dict(doc)
        from repro.utils.transforms import signed_log1p

        np.testing.assert_array_equal(
            back.vote_fraction(signed_log1p(x)),
            model.distilled_.vote_fraction(signed_log1p(x)),
        )


class TestEnsembleRoundTrip:
    def test_scores_identical(self, trained, tmp_path):
        _flows, x, model, _artifacts = trained
        path = rio.save_ensemble(tmp_path / "ens.npz", model.oracle)
        back = rio.load_ensemble(path)
        np.testing.assert_allclose(
            back.anomaly_scores(x), model.oracle.anomaly_scores(x), rtol=0, atol=0
        )
        np.testing.assert_array_equal(back.predict(x), model.oracle.predict(x))
        np.testing.assert_array_equal(back.thresholds_, model.oracle.thresholds_)

    def test_uncalibrated_rejected(self, tmp_path):
        from repro.nn.ensemble import AutoencoderEnsemble

        with pytest.raises(ValueError, match="uncalibrated"):
            rio.save_ensemble(tmp_path / "e.npz", AutoencoderEnsemble())


class TestModelBundle:
    def test_round_trip_with_all_parts(self, trained, tmp_path):
        _flows, x, model, artifacts = trained
        directory = tmp_path / "bundle"
        registry = MetricRegistry()
        with use_registry(registry):
            rio.save_model_bundle(
                directory, artifacts, forest=model.distilled_,
                ensemble=model.oracle, meta={"model": "iguard", "seed": 23},
            )
            assert rio.is_model_bundle(directory)
            bundle = rio.load_model_bundle(directory)

        assert bundle.meta == {"model": "iguard", "seed": 23}
        assert bundle.artifacts.n_fl_rules == artifacts.n_fl_rules
        assert bundle.artifacts.fl_rules.quantizer_fingerprint == (
            bundle.artifacts.fl_quantizer.fingerprint()
        )
        assert bundle.artifacts.pl_rules is not None
        assert bundle.forest is not None and bundle.ensemble is not None
        assert registry.counters_dict()["io.bundles_saved"] == 1
        assert registry.counters_dict()["io.bundles_loaded"] == 1
        assert any(e["kind"] == "io.bundle_saved" for e in registry.events)

    def test_minimal_bundle(self, trained, tmp_path):
        """FL rules + quantizer only — the smallest deployable bundle."""
        _flows, _x, _model, artifacts = trained
        from repro.core.deployment import SwitchArtifacts

        minimal = SwitchArtifacts(
            fl_rules=artifacts.fl_rules, fl_quantizer=artifacts.fl_quantizer
        )
        directory = rio.save_model_bundle(tmp_path / "minimal", minimal)
        bundle = rio.load_model_bundle(directory)
        assert bundle.artifacts.pl_rules is None
        assert bundle.forest is None and bundle.ensemble is None

    def test_reloaded_artifacts_install_into_pipeline(self, trained, tmp_path):
        """The whole point: a reloaded bundle passes the pipeline's
        install-time fingerprint checks, both at construction and when
        staged into a live pipeline for a hot swap."""
        _flows, _x, _model, artifacts = trained
        directory = rio.save_model_bundle(tmp_path / "deploy", artifacts)
        arts = rio.load_model_bundle(directory).artifacts

        pipeline = SwitchPipeline(
            fl_rules=arts.fl_rules,
            fl_quantizer=arts.fl_quantizer,
            pl_rules=arts.pl_rules,
            pl_quantizer=arts.pl_quantizer,
            config=PipelineConfig(pkt_count_threshold=8, timeout=5.0),
        )
        pipeline.stage_tables(
            arts.fl_rules, arts.fl_quantizer,
            pl_rules=arts.pl_rules, pl_quantizer=arts.pl_quantizer,
        )
        pipeline.hot_swap()
        assert pipeline.table_swaps == 1

    def test_missing_manifest_is_not_a_bundle(self, tmp_path):
        assert not rio.is_model_bundle(tmp_path)
        with pytest.raises(rio.BundleError, match="missing"):
            rio.load_model_bundle(tmp_path)


class TestBundleErrors:
    """Every load-side failure surfaces as one exception type —
    :class:`repro.io.BundleError` — naming the offending file."""

    @pytest.fixture()
    def bundle_dir(self, trained, tmp_path):
        _flows, _x, model, artifacts = trained
        return rio.save_model_bundle(
            tmp_path / "bundle", artifacts, forest=model.distilled_,
            ensemble=model.oracle,
        )

    def test_bundle_error_is_a_value_error(self):
        # Pre-hardening callers caught ValueError; they must keep working.
        assert issubclass(rio.BundleError, ValueError)

    def test_missing_manifest_names_the_path(self, tmp_path):
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(tmp_path)
        assert excinfo.value.path.endswith("manifest.json")
        assert "missing" in str(excinfo.value)

    def test_missing_part_file(self, bundle_dir):
        (bundle_dir / "fl_rules.json").unlink()
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert excinfo.value.path.endswith("fl_rules.json")
        assert "missing" in str(excinfo.value)

    def test_truncated_json_part(self, bundle_dir):
        path = bundle_dir / "fl_quantizer.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert excinfo.value.path.endswith("fl_quantizer.json")
        assert "cannot load" in str(excinfo.value)

    def test_garbled_npz_part(self, bundle_dir):
        (bundle_dir / "ensemble.npz").write_bytes(b"\x00not a zip archive")
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert excinfo.value.path.endswith("ensemble.npz")

    def test_schema_mismatch_in_part(self, bundle_dir):
        doc = json.loads((bundle_dir / "fl_rules.json").read_text())
        doc["schema"] = "someone-else/v9"
        (bundle_dir / "fl_rules.json").write_text(json.dumps(doc))
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert excinfo.value.path.endswith("fl_rules.json")

    def test_wrong_kind_part(self, bundle_dir):
        # The manifest points fl_rules at what is actually a quantizer
        # document: the kind check must catch the swap.
        quantizer_doc = (bundle_dir / "fl_quantizer.json").read_text()
        (bundle_dir / "fl_rules.json").write_text(quantizer_doc)
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert excinfo.value.path.endswith("fl_rules.json")

    def test_manifest_without_files_key(self, bundle_dir):
        (bundle_dir / "manifest.json").write_text(
            json.dumps({"schema": "repro.io/v1", "kind": "model_bundle"})
        )
        with pytest.raises(rio.BundleError) as excinfo:
            rio.load_model_bundle(bundle_dir)
        assert "cannot load" in str(excinfo.value)

    def test_intact_bundle_still_loads(self, bundle_dir):
        # The hardening must not reject anything legitimate.
        bundle = rio.load_model_bundle(bundle_dir)
        assert bundle.artifacts.fl_rules is not None
