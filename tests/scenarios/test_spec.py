"""Scenario spec dataclasses and the text DSL."""

import math

import pytest

from repro.scenarios import (
    BenignLoad,
    Campaign,
    EvasionPhase,
    LoadCurve,
    SCENARIO_PRESETS,
    Scenario,
    get_scenario,
    parse_scenario,
    scenario_names,
)


class TestLoadCurve:
    def test_constant(self):
        c = LoadCurve(kind="constant", rate=12.0)
        assert c.rate_at(0.0) == c.rate_at(99.0) == 12.0
        assert c.peak_rate == 12.0

    def test_diurnal_oscillates_and_bounds(self):
        c = LoadCurve(kind="diurnal", rate=10.0, amplitude=0.5, period_s=20.0)
        samples = [c.rate_at(t) for t in range(0, 40)]
        assert max(samples) > 12.0 and min(samples) < 8.0
        assert all(0.0 <= s <= c.peak_rate for s in samples)
        assert c.peak_rate == pytest.approx(15.0)

    def test_step_piecewise(self):
        c = LoadCurve(kind="step", rate=5.0, steps=((10.0, 20.0), (30.0, 2.0)))
        assert c.rate_at(0.0) == 5.0
        assert c.rate_at(10.0) == 20.0
        assert c.rate_at(29.9) == 20.0
        assert c.rate_at(31.0) == 2.0
        assert c.peak_rate == 20.0

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            LoadCurve(kind="sawtooth")
        with pytest.raises(ValueError, match="sorted"):
            LoadCurve(kind="step", steps=((30.0, 1.0), (10.0, 2.0)))


class TestCampaign:
    def test_window_gates_intensity(self):
        c = Campaign(family="syn_flood", start_s=10.0, end_s=20.0)
        assert c.intensity_at(5.0) == 0.0
        assert c.intensity_at(15.0) == 1.0
        assert c.intensity_at(20.0) == 0.0

    def test_ramp_is_linear(self):
        c = Campaign(family="syn_flood", start_s=0.0, end_s=10.0, shape="ramp")
        assert c.intensity_at(5.0) == pytest.approx(0.5)
        assert c.intensity_at(9.0) == pytest.approx(0.9)

    def test_pulse_square_wave(self):
        c = Campaign(
            family="syn_flood", start_s=0.0, end_s=100.0, shape="pulse",
            period_s=10.0, duty=0.4,
        )
        assert c.intensity_at(1.0) == 1.0
        assert c.intensity_at(5.0) == 0.0
        assert c.intensity_at(11.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            Campaign(family="syn_flood", start_s=5.0, end_s=5.0)
        with pytest.raises(ValueError, match="duty"):
            Campaign(family="syn_flood", shape="pulse", duty=0.0)


class TestEvasionPhase:
    def test_covers_window_and_families(self):
        e = EvasionPhase(kind="low_rate", factor=4.0, start_s=10.0, end_s=20.0,
                         families=("udp_flood",))
        assert e.covers("udp_flood", 15.0)
        assert not e.covers("udp_flood", 25.0)
        assert not e.covers("syn_flood", 15.0)
        everyone = EvasionPhase(kind="padding", factor=2.0)
        assert everyone.covers("anything", 1e6)

    def test_low_rate_factor_must_slow(self):
        with pytest.raises(ValueError, match="factor"):
            EvasionPhase(kind="low_rate", factor=0.5)


class TestScenario:
    def test_needs_some_traffic(self):
        with pytest.raises(ValueError, match="at least one"):
            Scenario(name="empty")

    def test_scaled_stretches_and_scales(self):
        s = get_scenario("pulse_wave_syn")
        t = s.scaled(duration_s=120.0, intensity=2.0)
        assert t.duration_s == pytest.approx(120.0)
        assert t.campaigns[0].start_s == pytest.approx(s.campaigns[0].start_s * 2)
        assert t.campaigns[0].rate == pytest.approx(s.campaigns[0].rate * 2)
        assert t.benign[0].curve.rate == pytest.approx(s.benign[0].curve.rate * 2)

    def test_scaled_keeps_infinite_end(self):
        s = Scenario(campaigns=(Campaign(family="syn_flood"),))
        assert math.isinf(s.scaled(duration_s=10.0).campaigns[0].end_s)


class TestDSL:
    def test_round_trip_every_preset(self):
        for name in scenario_names():
            s = SCENARIO_PRESETS[name]
            assert parse_scenario(s.to_spec()) == s

    def test_full_spec_parses(self):
        s = parse_scenario(
            "name=demo;duration=30;seed=3;"
            "benign:curve=diurnal,rate=40,amplitude=0.5,period=30,mix=chatty;"
            "campaign:family=syn_flood,shape=pulse,start=5,end=25,rate=30,"
            "period=6,duty=0.4;"
            "evasion:kind=low_rate,factor=4,start=10,end=20,families=syn_flood"
        )
        assert s.name == "demo" and s.duration_s == 30.0 and s.seed == 3
        assert s.benign[0].mix == "chatty"
        assert s.campaigns[0].shape == "pulse"
        assert s.evasions[0].families == ("syn_flood",)

    def test_preset_with_overrides(self):
        s = parse_scenario("pulse_wave_syn;seed=11;duration=120")
        base = get_scenario("pulse_wave_syn")
        assert s.seed == 11
        assert s.duration_s == pytest.approx(120.0)
        assert s.campaigns[0].start_s == pytest.approx(
            base.campaigns[0].start_s * 2
        )

    def test_preset_extended_with_extra_campaign(self):
        s = parse_scenario(
            "steady_benign;campaign:family=dns_amplification,rate=5,start=10"
        )
        assert len(s.campaigns) == 1
        assert s.campaigns[0].family == "dns_amplification"

    def test_errors_are_loud(self):
        with pytest.raises(ValueError, match="empty"):
            parse_scenario("  ")
        with pytest.raises(KeyError, match="unknown scenario"):
            parse_scenario("no_such_preset")
        with pytest.raises(ValueError, match="unknown campaign keys"):
            parse_scenario("campaign:family=syn_flood,bogus=1")
        with pytest.raises(ValueError, match="unknown scenario keys"):
            parse_scenario("benign:rate=5;typo=1")
        with pytest.raises(ValueError, match="family"):
            parse_scenario("campaign:rate=5")


class TestRegistry:
    def test_six_presets(self):
        assert len(scenario_names()) == 6
        for expected in ("steady_benign", "diurnal_multitenant",
                         "pulse_wave_syn", "amplification_campaign",
                         "botnet_rampup", "evasion_midstream"):
            assert expected in scenario_names()

    def test_get_scenario_knobs(self):
        s = get_scenario("steady_benign", seed=42, duration_s=10.0, intensity=0.5)
        assert s.seed == 42
        assert s.duration_s == pytest.approx(10.0)
        assert s.benign[0].curve.rate == pytest.approx(20.0)

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="steady_benign"):
            get_scenario("nope")
