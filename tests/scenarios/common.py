"""Serve-mode scenario fixtures: named scenarios wired to a fast
pipeline so runtime tests and benchmarks drive realistic streams.

``scenario_pipeline`` fits the hand-built percentile whitelist (see
``tests.runtime.common``) on benign flows drawn from the scenario's own
tenant populations — the same warm-up ``repro serve --scenario``
performs — so benign traffic lands in the BENIGN band and campaign
traffic falls through to the default-MALICIOUS verdict.  Fast enough
for CI, discriminative enough that drift monitors see attacks.
"""

from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.scenarios import Scenario
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from tests.runtime.common import percentile_rules

PKT_THRESHOLD = 6
TIMEOUT_S = 1.0


def scenario_pipeline(
    scenario: Scenario, n_train_flows: int = 60, n_slots: int = 128
) -> SwitchPipeline:
    """A percentile-whitelist pipeline trained on *scenario*'s benign mix."""
    flows = scenario.stream().training_flows(n_train_flows)
    fx = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=PKT_THRESHOLD, timeout=TIMEOUT_S
    )
    x, _ = fx.extract_flows(flows)
    quantizer = IntegerQuantizer(bits=12, space="log").fit(x)
    return SwitchPipeline(
        fl_rules=percentile_rules(x).quantize(quantizer),
        fl_quantizer=quantizer,
        config=PipelineConfig(
            pkt_count_threshold=PKT_THRESHOLD, timeout=TIMEOUT_S, n_slots=n_slots
        ),
    )
