"""Scenario streams through the serving runtime: streaming-vs-
materialised bit-identity, drift behaviour, and cluster transport
contracts."""

import numpy as np
import pytest

from repro.datasets import Trace
from repro.runtime import as_chunk_iter
from repro.runtime.service import OnlineDetectionService, RuntimeConfig
from repro.scenarios import get_scenario
from tests.scenarios.common import scenario_pipeline


def _service(pipeline, **overrides):
    defaults = dict(chunk_size=512, drift_threshold=0.0)
    defaults.update(overrides)
    return OnlineDetectionService(
        pipeline, config=RuntimeConfig(**defaults), seed=5
    )


class TestAsChunkIter:
    def test_trace_path_matches_iter_chunks(self):
        s = get_scenario("steady_benign", duration_s=2.0)
        trace = s.stream().materialise()
        a = [c.packets for c in as_chunk_iter(trace, 300)]
        b = [c.packets for c in as_chunk_iter(iter(trace.packets), 300)]
        assert a == b

    def test_skip_packets_aligns_with_slicing(self):
        s = get_scenario("steady_benign", duration_s=2.0)
        trace = s.stream().materialise()
        skipped = [
            p for c in as_chunk_iter(s.stream(), 300, skip_packets=600)
            for p in c.packets
        ]
        assert skipped == trace.packets[600:]

    def test_scenario_stream_source(self):
        s = get_scenario("pulse_wave_syn", duration_s=2.0)
        flat = [p for c in as_chunk_iter(s.stream(), 256) for p in c.packets]
        assert flat == list(s.stream().iter_packets())

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(as_chunk_iter(Trace([]), 0))
        with pytest.raises(ValueError, match="skip_packets"):
            list(as_chunk_iter(Trace([]), 8, skip_packets=-1))


class TestStreamingServeIdentity:
    def test_streaming_equals_materialised(self):
        """The acceptance contract: serving a live scenario stream is
        bit-identical to serving the materialised trace."""
        s = get_scenario("pulse_wave_syn", duration_s=5.0)
        rep_stream = _service(scenario_pipeline(s)).serve(s.stream())
        rep_mat = _service(scenario_pipeline(s)).serve(s.stream().materialise())
        assert rep_stream.n_packets == rep_mat.n_packets
        assert rep_stream.n_chunks == rep_mat.n_chunks
        assert np.array_equal(rep_stream.y_pred, rep_mat.y_pred)
        assert np.array_equal(rep_stream.y_true, rep_mat.y_true)
        assert [s_.n_packets for s_ in rep_stream.chunk_stats] == [
            s_.n_packets for s_ in rep_mat.chunk_stats
        ]

    def test_ground_truth_carried_through(self):
        s = get_scenario("amplification_campaign", duration_s=4.0)
        report = _service(scenario_pipeline(s)).serve(s.stream())
        expected = sum(p.malicious for p in s.stream().iter_packets())
        assert int(report.y_true.sum()) == expected


class TestDriftOnScenarios:
    """Drift behaviour on realistic-IPD scenario streams.

    A cold flow store matures for roughly as long as benign flows take
    to reach the packet-count decision threshold — seconds, on scenario
    inter-packet gaps — so the monitor's baseline must form *after*
    that transient (``drift_warmup_chunks``).  Once it does, a steady
    benign stream stays quiet and a campaign onset fires.
    """

    CHUNK = 1024

    def _warmup_chunks(self, stream, warmup_s):
        """Chunks wholly inside the warm-up window, plus one straddler."""
        n = sum(1 for p in stream.iter_packets() if p.timestamp < warmup_s)
        return n // self.CHUNK + 1

    def _serve(self, s, warmup_s):
        service = _service(
            scenario_pipeline(s),
            chunk_size=self.CHUNK,
            drift_threshold=0.25,
            drift_window=2,
            baseline_window=2,
            min_drift_packets=64,
            drift_warmup_chunks=self._warmup_chunks(s.stream(), warmup_s),
            max_swaps=0,  # observe signals without paying for retrains
        )
        return service.serve(s.stream())

    def test_pulse_wave_fires_drift(self):
        """Baseline forms on mature benign-only traffic just before the
        campaign window opens at t=15; the flood onset crosses the
        drift threshold."""
        s = get_scenario("pulse_wave_syn", duration_s=60.0)
        assert s.campaigns[0].start_s == pytest.approx(15.0)
        report = self._serve(s, warmup_s=12.0)
        assert report.drift_signals >= 1

    def test_steady_benign_control_stays_quiet(self):
        """Same monitor shape, no campaign: once the store has matured
        past the warm-up, constant-rate benign traffic never crosses
        the threshold."""
        s = get_scenario("steady_benign", duration_s=40.0)
        report = self._serve(s, warmup_s=15.0)
        assert report.drift_signals == 0


class TestClusterScenarioServe:
    def test_routed_transport_streams_identically(self):
        from repro.cluster.service import ClusterService

        s = get_scenario("amplification_campaign", duration_s=4.0)
        with ClusterService(
            scenario_pipeline(s), n_shards=3,
            config=RuntimeConfig(chunk_size=512, drift_threshold=0.0),
        ) as cluster:
            rep_stream = cluster.serve(s.stream())
        with ClusterService(
            scenario_pipeline(s), n_shards=3,
            config=RuntimeConfig(chunk_size=512, drift_threshold=0.0),
        ) as cluster:
            rep_mat = cluster.serve(s.stream().materialise())
        assert rep_stream.n_packets == rep_mat.n_packets
        assert np.array_equal(rep_stream.y_pred, rep_mat.y_pred)

    def test_shm_transport_refuses_streams(self):
        from repro.cluster.service import ClusterService

        s = get_scenario("steady_benign", duration_s=2.0)
        with ClusterService(
            scenario_pipeline(s), n_shards=2,
            config=RuntimeConfig(chunk_size=512, drift_threshold=0.0),
            executor="shm",
        ) as cluster:
            with pytest.raises(ValueError) as err:
                cluster.serve(s.stream())
        # The refusal must name the offending feature and the way out.
        message = str(err.value)
        assert "streaming sources are unsupported on the shm transport" in message
        assert "executor='inprocess'" in message
        assert "materialise()" in message
