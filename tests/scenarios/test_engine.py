"""The chunked generation engine: determinism, chunk-size invariance,
golden per-family statistics, and streaming telemetry."""

import numpy as np
import pytest

from repro.datasets.packet import MAX_PACKET_SIZE
from repro.scenarios import ScenarioStream, get_scenario, parse_scenario
from repro.telemetry import MetricRegistry, use_registry


def _short(name, duration=5.0, **kw):
    return get_scenario(name, duration_s=duration, **kw)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        s = _short("pulse_wave_syn")
        assert list(s.stream().iter_packets()) == list(s.stream().iter_packets())

    def test_different_seed_differs(self):
        s = _short("pulse_wave_syn")
        assert list(s.stream(seed=1).iter_packets()) != list(
            s.stream(seed=2).iter_packets()
        )

    def test_window_size_is_part_of_spec_identity(self):
        """window_s re-seeds the per-window draws (a different but valid
        sample of the same scenario); each window_s is itself stable."""
        from dataclasses import replace

        s = _short("amplification_campaign")
        fine = replace(s, window_s=0.25)
        assert list(fine.stream().iter_packets()) == list(
            fine.stream().iter_packets()
        )
        # Both window sizes produce sorted, labelled streams of similar volume.
        a = list(fine.stream().iter_packets())
        b = list(replace(s, window_s=2.0).stream().iter_packets())
        assert 0.5 < len(a) / len(b) < 2.0

    def test_timestamps_sorted(self):
        for name in ("steady_benign", "evasion_midstream", "botnet_rampup"):
            ts = [p.timestamp for p in _short(name, 4.0).stream().iter_packets()]
            assert ts == sorted(ts)

    def test_unknown_family_fails_at_build_time(self):
        s = parse_scenario("campaign:family=syn_flood,rate=5")
        from dataclasses import replace

        bad = replace(s, campaigns=(replace(s.campaigns[0], family="nope"),))
        with pytest.raises(KeyError, match="unknown campaign family"):
            ScenarioStream(bad)


class TestChunkSizeInvariance:
    @pytest.mark.parametrize("chunk_size", [1, 64, 4096])
    def test_chunking_is_pure_buffering(self, chunk_size):
        s = _short("pulse_wave_syn", 3.0)
        base = list(s.stream().iter_packets())
        chunks = list(s.stream().iter_chunks(chunk_size))
        flat = [p for c in chunks for p in c.packets]
        assert flat == base
        assert all(len(c) == chunk_size for c in chunks[:-1])

    def test_materialise_equals_stream(self):
        s = _short("amplification_campaign", 3.0)
        assert list(s.stream().materialise().packets) == list(
            s.stream().iter_packets()
        )

    def test_materialise_guard_trips(self):
        s = _short("steady_benign", 5.0)
        with pytest.raises(MemoryError, match="max_packets"):
            s.stream().materialise(max_packets=100)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            next(_short("steady_benign").stream().iter_chunks(0))


class TestGroundTruthLabels:
    def test_benign_scenarios_all_benign(self):
        for name in ("steady_benign", "diurnal_multitenant"):
            assert not any(
                p.malicious for p in _short(name, 4.0).stream().iter_packets()
            )

    def test_campaign_packets_labelled(self):
        s = _short("pulse_wave_syn")
        pkts = list(s.stream().iter_packets())
        mal = sum(1 for p in pkts if p.malicious)
        assert 0 < mal < len(pkts)

    def test_label_conservation_across_chunking(self):
        """Chunked label totals must equal the materialised totals."""
        s = _short("evasion_midstream", 4.0)
        whole = sum(p.malicious for p in s.stream().iter_packets())
        chunked = sum(
            sum(p.malicious for p in c.packets)
            for c in s.stream().iter_chunks(512)
        )
        assert whole == chunked


class TestGoldenFamilyStats:
    """Distributional signatures each new family must keep."""

    def test_amplification_scenario_fan_in(self):
        """Reflection traffic: response bytes toward victims dominate
        request bytes, and every exchange shares one canonical tuple."""
        s = _short("amplification_campaign", 6.0)
        pkts = [p for p in s.stream().iter_packets() if p.malicious]
        req = [p for p in pkts if p.five_tuple.dst_port in (53, 123)]
        resp = [p for p in pkts if p.five_tuple.src_port in (53, 123)]
        assert req and resp
        asymmetry = sum(p.size for p in resp) / sum(p.size for p in req)
        assert asymmetry > 8.0
        # More response packets than requests (packet amplification too).
        assert len(resp) > len(req)

    def test_fragmentation_size_distribution(self):
        """Frag trains: dominated by max-size frames with a small tail."""
        s = parse_scenario(
            "duration=5;campaign:family=fragmentation,rate=4"
        )
        sizes = [p.size for p in s.stream().iter_packets()]
        assert sizes
        full = sum(1 for x in sizes if x == MAX_PACKET_SIZE)
        assert full / len(sizes) > 0.5
        assert min(sizes) < MAX_PACKET_SIZE

    def test_ack_flood_small_constant_sizes(self):
        s = parse_scenario("duration=5;campaign:family=ack_flood,rate=6")
        sizes = np.array([p.size for p in s.stream().iter_packets()])
        assert sizes.size > 100
        assert np.median(sizes) < 100
        assert np.std(sizes) < 20.0

    def test_pulse_wave_starts_only_during_bursts(self):
        """Thinning gates flow *starts*: with a square-wave intensity,
        every malicious flow must begin inside an on-phase (its packets
        may outlast the pulse — floods run for seconds)."""
        s = _short("pulse_wave_syn", 12.0)
        campaign = s.campaigns[0]
        starts = {}
        for p in s.stream().iter_packets():
            if not p.malicious:
                continue
            key = p.five_tuple.canonical()
            starts[key] = min(starts.get(key, p.timestamp), p.timestamp)
        assert starts
        for t in starts.values():
            assert campaign.intensity_at(t) > 0

    def test_ramp_grows_attack_rate(self):
        s = _short("botnet_rampup", 20.0)
        campaign = s.campaigns[0]
        mid = (campaign.start_s + campaign.end_s) / 2
        early = late = 0
        for p in s.stream().iter_packets():
            if not p.malicious:
                continue
            if campaign.start_s <= p.timestamp < mid:
                early += 1
            elif mid <= p.timestamp < campaign.end_s:
                late += 1
        assert late > early * 1.5


class TestEvasion:
    def test_low_rate_phase_stretches_flows(self):
        """Malicious flows starting in the low-rate window last longer
        than identical-family flows outside it."""
        s = _short("evasion_midstream", 60.0)
        low = s.evasions[0]
        stream = s.stream()
        plain_spans, slowed_spans = [], []
        flows = {}
        for p in stream.iter_packets():
            if not p.malicious:
                continue
            flows.setdefault(p.five_tuple.canonical(), []).append(p.timestamp)
        for times in flows.values():
            span = times[-1] - times[0]
            if len(times) < 10:
                continue
            if low.start_s <= times[0] < low.end_s:
                slowed_spans.append(span / len(times))
            elif times[0] < low.start_s:
                plain_spans.append(span / len(times))
        assert plain_spans and slowed_spans
        assert np.median(slowed_spans) > 2.0 * np.median(plain_spans)


class TestStreamConsumers:
    def test_training_flows_benign_and_deterministic(self):
        s = _short("diurnal_multitenant")
        a = s.stream().training_flows(30)
        b = s.stream().training_flows(30)
        assert len(a) == 30
        assert all(not p.malicious for f in a for p in f)
        assert [p.timestamp for f in a for p in f] == [
            p.timestamp for f in b for p in f
        ]

    def test_training_flows_need_benign_load(self):
        s = parse_scenario("campaign:family=syn_flood,rate=5")
        with pytest.raises(ValueError, match="benign"):
            s.stream().training_flows(10)

    def test_preview_accounts_for_every_packet(self):
        s = _short("pulse_wave_syn", 4.0)
        rows = list(s.stream().preview(every_s=2.0))
        n = len(list(s.stream().iter_packets()))
        assert sum(r.n_packets for r in rows) == n
        assert all(r.t1 > r.t0 for r in rows)

    def test_iter_chunks_publishes_telemetry(self):
        s = _short("pulse_wave_syn", 3.0)
        registry = MetricRegistry()
        with use_registry(registry):
            chunks = list(s.stream().iter_chunks(1024))
        counters = registry.counters_dict()
        n = sum(len(c) for c in chunks)
        assert counters["scenario.packets"] == n
        assert counters["scenario.attack_packets"] == sum(
            p.malicious for c in chunks for p in c.packets
        )
        assert "scenario.attack_fraction" in registry.gauges_dict()
