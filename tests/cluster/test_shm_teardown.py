"""Leak and teardown regression: shared segments must never outlive us.

The shm transport manages raw POSIX shared memory by hand (it opts out
of ``resource_tracker`` reaping on purpose, so segments can survive a
SIGKILLed coordinator for resume).  The price of that opt-out is that
*every other* exit path must clean up exactly, with nobody watching:

* repeated spawn → replay → shutdown cycles leave zero ``/dev/shm``
  residue and leak no worker processes;
* a full run in a fresh interpreter emits **no** resource-tracker
  noise on stderr — no "leaked shared_memory" warnings at exit, no
  ``KeyError`` tracebacks from unbalanced register/unregister pairs
  (the historical failure mode of tracking attachments);
* a SIGKILLed *worker* surfaces as :class:`ShardError` / a broken pipe
  at the coordinator, and the coordinator's ``close()`` still unlinks
  the segment — a crashed shard must not leave an orphan behind.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import ClusterService, ShardError, SHM_PREFIX
from repro.runtime import RuntimeConfig
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split

REPO_ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").exists(), reason="no /dev/shm to audit"
)


def shm_residue():
    """Names of live repro segments — the audit this suite is about."""
    return {
        entry.name
        for entry in Path("/dev/shm").iterdir()
        if entry.name.startswith(SHM_PREFIX)
    }


@pytest.fixture(scope="module")
def split():
    return make_split(seed=11, n_benign_flows=20)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def shm_cluster(artifacts, n_shards=2):
    return ClusterService(
        fresh_pipeline(artifacts, n_slots=1024),
        n_shards=n_shards,
        config=RuntimeConfig(drift_threshold=0.0),
        executor="shm",
    )


class TestShutdownHygiene:
    def test_spawn_replay_shutdown_loop_leaves_nothing(
        self, split, artifacts, capfd
    ):
        """Three full lifecycles: segment names rotate, residue stays
        zero after every single shutdown, and the tracker stays silent."""
        before = shm_residue()
        seen_segments = set()
        for _ in range(3):
            with shm_cluster(artifacts) as cluster:
                merged = cluster.replay(split.stream_trace)
                assert sum(merged.shard_sizes) == len(split.stream_trace)
                name = cluster.shm_segment_name
                assert name in shm_residue()  # live while serving …
                seen_segments.add(name)
            assert shm_residue() == before  # … gone at shutdown
        assert len(seen_segments) == 3  # fresh segment per lifecycle
        err = capfd.readouterr().err
        assert "resource_tracker" not in err
        assert "KeyError" not in err

    def test_double_close_is_idempotent(self, split, artifacts):
        before = shm_residue()
        cluster = shm_cluster(artifacts)
        cluster.replay(split.stream_trace)
        cluster.close()
        cluster.close()  # second close must not raise or re-create
        assert shm_residue() == before

    def test_fresh_interpreter_run_is_tracker_silent(self):
        """An end-to-end run in its own interpreter: the resource
        tracker's exit-time sweep (where leak warnings and unbalanced
        unregister KeyErrors surface) must print nothing at all."""
        script = (
            "import sys\n"
            "sys.path.insert(0, 'src')\n"
            "sys.path.insert(0, '.')\n"
            "from tests.faults.common import compile_artifacts, fresh_pipeline, make_split\n"
            "from repro.cluster import ClusterService\n"
            "from repro.runtime import RuntimeConfig\n"
            "split = make_split(seed=11, n_benign_flows=12)\n"
            "artifacts = compile_artifacts(split.train_flows)\n"
            "for _ in range(2):\n"
            "    with ClusterService(fresh_pipeline(artifacts, n_slots=512),\n"
            "                        n_shards=2,\n"
            "                        config=RuntimeConfig(drift_threshold=0.0),\n"
            "                        executor='shm') as cluster:\n"
            "        merged = cluster.replay(split.stream_trace)\n"
            "        assert sum(merged.shard_sizes) == len(split.stream_trace)\n"
            "print('CLEAN-EXIT')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN-EXIT" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked shared_memory" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr


class TestWorkerCrashReap:
    def test_sigkilled_worker_surfaces_and_segment_is_reaped(
        self, split, artifacts
    ):
        """SIGKILL one shard process mid-fleet: the next replay fails
        loudly (ShardError or broken pipe, depending on where the death
        is noticed) instead of hanging, and ``close()`` still unlinks
        the segment even though the fleet is degraded."""
        before = shm_residue()
        cluster = shm_cluster(artifacts)
        try:
            cluster.replay(split.stream_trace)  # fleet + arena are live
            name = cluster.shm_segment_name
            assert name in shm_residue()

            victim = cluster._executor._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert victim.exitcode == -signal.SIGKILL

            with pytest.raises((ShardError, OSError)):
                cluster.replay(split.stream_trace)
        finally:
            cluster.close()
        assert shm_residue() == before  # crashed shard left no orphan

    def test_collect_after_worker_death_raises_shard_error(
        self, split, artifacts
    ):
        """A verb in flight when the worker dies must come back as
        ShardError — never a hang, never a bare EOFError.  (Whether the
        worker managed to answer the verb before the signal landed only
        changes the message, not the exception type.)"""
        before = shm_residue()
        cluster = shm_cluster(artifacts)
        try:
            cluster.replay(split.stream_trace)
            ex = cluster._executor
            ex.dispatch(0, "no_such_verb")  # in flight …
            os.kill(ex._procs[0].pid, signal.SIGKILL)  # … and the worker dies
            ex._procs[0].join(timeout=10)
            with pytest.raises(ShardError):
                ex.collect(0)
        finally:
            cluster.close()
        assert shm_residue() == before
