"""Refusals must teach: every "can't do that" the cluster emits has to
name the offending feature *and* a supported way out, so an operator
reading a log line knows what to change without opening the source.
This suite pins the exact texts, plus the cluster routing of the
``unblock`` ops verb (the flow's ladder state lives on one shard)."""

from pathlib import Path

import pytest

from repro.cluster import ClusterService, FlowShardRouter
from repro.mitigation import attach_policy
from repro.runtime import RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split

N_CHUNKS = 4

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").exists(), reason="no /dev/shm on this host"
)


@pytest.fixture(scope="module")
def split():
    return make_split(seed=23, n_benign_flows=50)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def make_cluster(split, artifacts, executor="inprocess", policy=None):
    pipeline = fresh_pipeline(artifacts)
    if policy is not None:
        attach_policy(pipeline, policy)
    n_packets = len(split.stream_trace.packets)
    return ClusterService(
        pipeline,
        n_shards=2,
        config=RuntimeConfig(
            chunk_size=-(-n_packets // N_CHUNKS),
            drift_threshold=0.0,
            stage_backoff_s=0.0,
        ),
        executor=executor,
        seed=5,
    )


def serve_with_controls(cluster, split, controls):
    for verb, kwargs in controls:
        cluster.request_control(verb, **kwargs)
    with use_registry(MetricRegistry()):
        report = cluster.serve(split.stream_trace)
    return report.control_events


class TestShmRefusals:
    @needs_dev_shm
    def test_drain_on_shm_names_the_way_out(self, split, artifacts):
        with make_cluster(split, artifacts, executor="shm") as cluster:
            (event,) = serve_with_controls(
                cluster, split, [("drain", {"shard": 1})]
            )
        outcome = event["outcome"]
        assert outcome.startswith("unsupported:drain_on_shm_transport")
        # The message must say *why* (up-front arena routing) and *what
        # to use instead* (a packet-list transport).
        assert "routed up front" in outcome
        assert "executor='inprocess'" in outcome
        assert "multiprocess" in outcome
        # The shard stayed in rotation — the refusal really refused.
        assert cluster.router.drained == set()

    @needs_dev_shm
    def test_streaming_refusal_names_offender_and_alternatives(
        self, split, artifacts
    ):
        def stream():
            yield from split.stream_trace.packets

        with make_cluster(split, artifacts, executor="shm") as cluster:
            with pytest.raises(ValueError) as err:
                with use_registry(MetricRegistry()):
                    cluster.serve(stream())
        message = str(err.value)
        assert "streaming sources are unsupported on the shm transport" in message
        assert "shared arena" in message
        assert "executor='inprocess'" in message
        assert "executor='multiprocess'" in message
        assert "materialise()" in message


class TestRouterRefusal:
    def test_last_shard_refusal_names_the_way_out(self):
        router = FlowShardRouter(n_shards=2, salt=3)
        router.drain(0)
        with pytest.raises(ValueError) as err:
            router.drain(1)
        message = str(err.value)
        assert "last active shard" in message
        assert "undrain another shard first" in message


class TestClusterUnblockRouting:
    """The ``unblock`` verb must reach the shard engine that owns the
    flow — and refuse bad keys / policyless clusters legibly."""

    POLICY = "drop_fast;idle_timeout=30;memory=120"

    def test_unblock_reaches_a_shard_engine(self, split, artifacts):
        # A well-formed key for a flow no engine has seen: the verb
        # routes to the owning shard and comes back "not_blocked",
        # proving the round trip went through a real policy engine.
        with make_cluster(split, artifacts, policy=self.POLICY) as cluster:
            (event,) = serve_with_controls(
                cluster, split, [("unblock", {"flow": "1-2-3-4-5"})]
            )
        assert event["verb"] == "unblock"
        assert event["flow"] == "1-2-3-4-5"
        assert event["outcome"] == "not_blocked"

    def test_bad_flow_key_rejected(self, split, artifacts):
        with make_cluster(split, artifacts, policy=self.POLICY) as cluster:
            (event,) = serve_with_controls(
                cluster, split, [("unblock", {"flow": "not-a-key"})]
            )
        assert event["outcome"] == "rejected:bad_flow_key"

    def test_no_policy_is_skipped(self, split, artifacts):
        with make_cluster(split, artifacts) as cluster:
            (event,) = serve_with_controls(
                cluster, split, [("unblock", {"flow": "1-2-3-4-5"})]
            )
        assert event["outcome"] == "skipped:no_policy"
