"""Shard worker mechanics: wire format, pipeline cloning, error surface.

The pieces the differential suite relies on implicitly, locked
explicitly: the multiprocess wire format is lossless, a cloned pipeline
serves the template's tables with fresh state, and worker exceptions
reach the coordinator as :class:`ShardError` under both executors.
"""

import numpy as np
import pytest

from repro.cluster import (
    InProcessExecutor,
    MultiprocessExecutor,
    ShardError,
    ShardWorker,
    clone_pipeline,
    make_executor,
    pack_packets,
    unpack_packets,
)
from repro.switch.runner import replay_trace
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split


@pytest.fixture(scope="module")
def split():
    return make_split(seed=31, n_benign_flows=30)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


class TestWireFormat:
    def test_round_trip_is_lossless(self, split):
        packets = split.stream_trace.packets[:500]
        back = unpack_packets(pack_packets(packets))
        assert back == packets  # dataclass equality, field by field

    def test_round_trip_preserves_malicious_bit(self, split):
        packets = split.stream_trace.packets
        doc = pack_packets(packets)
        assert doc["malicious"].sum() == sum(p.malicious for p in packets)
        back = unpack_packets(doc)
        assert [p.malicious for p in back] == [p.malicious for p in packets]

    def test_empty_batch(self):
        assert unpack_packets(pack_packets([])) == []

    def test_worker_accepts_both_forms(self, split, artifacts):
        packets = split.stream_trace.packets[:300]
        w_list = ShardWorker(0, fresh_pipeline(artifacts))
        w_wire = ShardWorker(0, fresh_pipeline(artifacts))
        out_list = w_list.replay_chunk(packets, 0)
        out_wire = w_wire.replay_chunk(pack_packets(packets), 0)
        np.testing.assert_array_equal(out_list.y_pred, out_wire.y_pred)
        assert out_list.counter_deltas == out_wire.counter_deltas


class TestClonePipeline:
    def test_clone_serves_identical_verdicts_with_fresh_state(
        self, split, artifacts
    ):
        template = fresh_pipeline(artifacts)
        replay_trace(split.stream_trace, template, mode="batch")  # dirty it
        clone = clone_pipeline(template)
        assert clone.store.occupancy() == 0
        assert len(clone.blacklist) == 0
        assert clone.table_swaps == 0
        assert clone.fl_quantizer is template.fl_quantizer  # tables shared
        assert clone.controller is not None
        reference = replay_trace(
            split.stream_trace, fresh_pipeline(artifacts), mode="batch"
        )
        result = replay_trace(split.stream_trace, clone, mode="batch")
        np.testing.assert_array_equal(result.y_pred, reference.y_pred)


class TestExecutors:
    @pytest.mark.parametrize("kind", ["inprocess", "multiprocess"])
    def test_worker_exception_surfaces_as_shard_error(self, artifacts, kind):
        workers = [ShardWorker(k, fresh_pipeline(artifacts)) for k in range(2)]
        with make_executor(kind, workers) as executor:
            executor.dispatch(1, "replay_chunk")  # missing required args
            executor.dispatch(0, "counters")
            assert executor.collect(0)  # healthy shard unaffected
            with pytest.raises(ShardError, match="shard 1"):
                executor.collect(1)
            # The fleet stays serviceable after one failed verb.
            assert executor.call(1, "counters")

    def test_make_executor_rejects_unknown_kind(self, artifacts):
        with pytest.raises(ValueError, match="executor"):
            make_executor("threads", [ShardWorker(0, fresh_pipeline(artifacts))])

    def test_kinds(self, artifacts):
        workers = [ShardWorker(0, fresh_pipeline(artifacts))]
        assert isinstance(make_executor("inprocess", workers), InProcessExecutor)
        mp_exec = make_executor("multiprocess", workers)
        assert isinstance(mp_exec, MultiprocessExecutor)
        mp_exec.close()

    def test_multiprocess_collect_without_dispatch_fails(self, artifacts):
        workers = [ShardWorker(0, fresh_pipeline(artifacts))]
        with make_executor("multiprocess", workers) as executor:
            with pytest.raises(RuntimeError, match="no verb in flight"):
                executor.collect(0)
