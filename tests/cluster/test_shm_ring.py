"""Transport-level property tests for the shared-memory ring protocol.

No pipelines, no packets — these lock the pure invariants of
:mod:`repro.cluster.shm` that the executor differential suite then
builds on: SPSC rings deliver exactly the pushed records in FIFO order
under any produce/consume interleaving, wrap-around is seamless, a full
ring back-pressures instead of overwriting, torn reads are detected via
the per-slot sequence stamps rather than returning garbage, and the
arena's named views never alias each other.
"""

import multiprocessing as mp
import random

import numpy as np
import pytest

from repro.cluster.shm import (
    ERROR_BYTES,
    RING_CAPACITY,
    SHM_PREFIX,
    ClusterShm,
    ShmArena,
    SpscRing,
    TornReadError,
    make_segment_name,
    unlink_segment,
)


def ring_of(capacity, record_words=3):
    words = np.zeros(SpscRing.words_needed(capacity, record_words), dtype=np.int64)
    return SpscRing.create(words, capacity, record_words), words


class TestSpscRingModel:
    """The ring against a shadow FIFO under randomized interleavings."""

    @pytest.mark.parametrize("capacity", [1, 2, 3, 8, 64])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleavings_match_fifo_model(self, capacity, seed):
        rng = random.Random(seed * 1000 + capacity)
        ring, _ = ring_of(capacity)
        model = []
        pushed = 0
        for _ in range(2000):
            if rng.random() < 0.5:
                record = (pushed, rng.randrange(1 << 40), -pushed)
                ok = ring.try_push(record)
                assert ok == (len(model) < capacity), "backpressure exactly at capacity"
                if ok:
                    model.append(record)
                    pushed += 1
            else:
                got = ring.try_pop()
                expect = model.pop(0) if model else None
                assert got == expect
            assert len(ring) == len(model)
        # Drain: everything pushed comes back, in order, then empty.
        while model:
            assert ring.try_pop() == model.pop(0)
        assert ring.try_pop() is None

    def test_wrap_around_many_generations(self):
        """Head/tail are monotone counters; slot reuse across thousands
        of wraps must never confuse old and new records."""
        ring, _ = ring_of(4)
        for i in range(10_000):
            assert ring.try_push((i, i ^ 0xABC, i * 3))
            assert ring.try_pop() == (i, i ^ 0xABC, i * 3)
        assert ring.head == ring.tail == 10_000

    def test_full_ring_backpressure_then_recovers(self):
        ring, _ = ring_of(3)
        for i in range(3):
            assert ring.try_push((i, 0, 0))
        for _ in range(5):
            assert not ring.try_push((99, 0, 0))  # refused, repeatedly
        assert ring.try_pop() == (0, 0, 0)
        assert ring.try_push((3, 0, 0))  # exactly one slot freed
        assert not ring.try_push((4, 0, 0))
        assert [ring.try_pop() for _ in range(3)] == [(1, 0, 0), (2, 0, 0), (3, 0, 0)]

    def test_record_width_is_enforced(self):
        ring, _ = ring_of(2)
        with pytest.raises(ValueError, match="record"):
            ring.try_push((1, 2))
        with pytest.raises(ValueError, match="record"):
            ring.try_push((1, 2, 3, 4))

    def test_attach_sees_producer_state(self):
        ring, words = ring_of(8)
        ring.try_push((5, 6, 7))
        consumer = SpscRing.attach(words)  # a second view of the same words
        assert consumer.try_pop() == (5, 6, 7)
        assert ring.try_pop() is None  # tail advance is shared state

    def test_attach_rejects_uninitialised_storage(self):
        with pytest.raises(ValueError, match="initialised"):
            SpscRing.attach(np.zeros(64, dtype=np.int64))


class TestTornReadDetection:
    def test_corrupted_stamp_raises_instead_of_returning_garbage(self):
        ring, words = ring_of(4)
        ring.try_push((1, 2, 3))
        slot = 4 + (ring.tail % 4) * 4  # header is 4 words, slot stride 1+3
        words[slot] = 999  # stamp no longer matches tail+1
        with pytest.raises(TornReadError):
            ring.try_pop()

    def test_stale_stamp_from_previous_generation_is_torn(self):
        """A producer crash after writing the payload but before the
        stamp leaves the old generation's stamp — must read as torn,
        not as the old record."""
        ring, words = ring_of(2)
        for i in range(2):  # fill and drain once: slots hold stamps 1, 2
            ring.try_push((i, i, i))
            ring.try_pop()
        ring.try_push((7, 7, 7))
        slot = 4 + (ring.tail % 2) * 4
        words[slot] -= 2  # regress the stamp one full generation
        with pytest.raises(TornReadError):
            ring.try_pop()

    def test_mid_read_overwrite_is_detected(self):
        """The consumer re-checks the stamp *after* copying the record;
        corrupt the slot between the two checks to prove the re-check
        fires (single-threaded stand-in for a racing producer)."""
        ring, words = ring_of(4)
        ring.try_push((1, 2, 3))
        slot = 4 + (ring.tail % 4) * 4

        # Intercept the record copy: SpscRing.try_pop slices
        # words[slot+1 : slot+4]; corrupt the stamp at that moment.
        class TrappedWords:
            def __init__(self, w):
                self._w = w

            def __getitem__(self, key):
                if isinstance(key, slice) and key.start == slot + 1:
                    self._w[slot] = 999  # producer "overwrites" mid-copy
                return self._w[key]

            def __setitem__(self, key, value):
                self._w[key] = value

        ring._w = TrappedWords(words)
        with pytest.raises(TornReadError, match="overwritten|stamp"):
            ring.try_pop()


class TestCrossProcessSpsc:
    def test_forked_producer_consumer_preserve_order(self):
        """True SPSC concurrency: a forked producer pushes 5000 records
        with backpressure retries while this process consumes — every
        record arrives exactly once, in order."""
        name = make_segment_name("ringspsc")
        n_words = SpscRing.words_needed(RING_CAPACITY, 3)
        arena = ShmArena.create(name, [("ring", np.dtype(np.int64), (n_words,))])
        try:
            SpscRing.create(arena.array("ring"), RING_CAPACITY, 3)
            total = 5000

            def produce():
                prod_arena = ShmArena.attach(
                    name, [("ring", np.dtype(np.int64), (n_words,))]
                )
                ring = SpscRing.attach(prod_arena.array("ring"))
                for i in range(total):
                    while not ring.try_push((i, i * 2, i * 3)):
                        pass
                prod_arena.close()

            proc = mp.get_context("fork").Process(target=produce)
            proc.start()
            ring = SpscRing.attach(arena.array("ring"))
            got = []
            while len(got) < total:
                rec = ring.try_pop()
                if rec is not None:
                    got.append(rec)
            proc.join(timeout=10)
            assert proc.exitcode == 0
            assert got == [(i, i * 2, i * 3) for i in range(total)]
            assert ring.try_pop() is None
        finally:
            arena.unlink()


class TestArenaLayout:
    SPEC = [
        ("a", np.dtype(np.int64), (7,)),
        ("b", np.dtype(np.float64), (3, 5)),
        ("c", np.dtype(np.uint8), (100,)),
    ]

    def test_views_are_disjoint_and_typed(self):
        arena = ShmArena.create(make_segment_name("layout"), self.SPEC)
        try:
            arena.array("a")[:] = np.arange(7)
            arena.array("b")[:] = np.arange(15).reshape(3, 5) * 0.5
            arena.array("c")[:] = np.arange(100) % 251
            # Writes to any view must not bleed into the others.
            np.testing.assert_array_equal(arena.array("a"), np.arange(7))
            np.testing.assert_array_equal(
                arena.array("b"), np.arange(15).reshape(3, 5) * 0.5
            )
            np.testing.assert_array_equal(arena.array("c"), np.arange(100) % 251)
            for spec_name, dtype, shape in self.SPEC:
                view = arena.array(spec_name)
                assert view.dtype == dtype and view.shape == shape
        finally:
            arena.unlink()

    def test_attach_requires_sufficient_segment(self):
        arena = ShmArena.create(make_segment_name("small"), self.SPEC)
        try:
            too_big = self.SPEC + [("d", np.dtype(np.int64), (10_000,))]
            with pytest.raises(ValueError, match="bytes"):
                ShmArena.attach(arena.name, too_big)
        finally:
            arena.unlink()

    def test_unlink_is_idempotent_and_unlink_segment_reports(self):
        name = make_segment_name("once")
        arena = ShmArena.create(name, self.SPEC)
        arena.unlink()
        arena.unlink()  # second unlink is a no-op, not an error
        assert unlink_segment(name) is False  # already gone


class TestClusterShmBlocks:
    NAMES = ["c.one", "c.two", "c.three"]
    GAUGES = ["g.x", "g.y"]

    @pytest.fixture()
    def shm(self):
        inst, remapped = ClusterShm.adopt(
            make_segment_name("blocks"), 64, 2, self.NAMES, self.GAUGES
        )
        assert not remapped
        yield inst
        inst.unlink()

    def test_counter_blocks_round_trip_and_spill_unknown_names(self, shm):
        spill = shm.write_counter_deltas(1, {"c.two": 9, "c.one": -1})
        assert spill == {}
        assert shm.read_counter_deltas(1) == {"c.one": -1, "c.two": 9, "c.three": 0}
        # Names a hot-swapped generation grew past the pre-fork layout
        # are returned as spill (for the pipe ack), not written, and the
        # known names still land in the block.
        spill = shm.write_counter_deltas(0, {"c.one": 4, "c.unknown": 7})
        assert spill == {"c.unknown": 7}
        assert shm.read_counter_deltas(0) == {"c.one": 4, "c.two": 0, "c.three": 0}

    def test_gauge_blocks_are_exact_floats(self, shm):
        shm.write_gauges(0, {"g.x": 0.1, "g.y": 3.0})
        assert shm.read_gauges(0) == {"g.x": 0.1, "g.y": 3.0}

    def test_error_block_truncates_utf8_safely(self, shm):
        original = "boom \N{BUG}" * 1000
        shm.write_error(0, original)
        message = shm.read_error(0)
        assert message.startswith("boom")
        # At most ERROR_BYTES - 8 raw bytes are stored; a codepoint cut
        # at the boundary decodes as U+FFFD rather than raising.
        assert len(message) < len(original)
        assert original.startswith(message[: len("boom ") * 100].rstrip("�"))
        # Per-shard blocks are independent.
        assert shm.read_error(1) == ""

    def test_verdict_rows_are_shard_disjoint(self, shm):
        shm.write_verdicts(0, np.ones(10, dtype=np.uint8))
        shm.write_verdicts(30, np.full(5, 1, dtype=np.uint8))
        assert shm.read_verdicts(0, 10).tolist() == [1] * 10
        assert shm.read_verdicts(10, 20).tolist() == [0] * 20
        assert shm.read_verdicts(30, 5).tolist() == [1] * 5

    def test_out_of_capacity_slices_are_rejected(self, shm):
        with pytest.raises(ValueError, match="capacity"):
            shm.columns(60, 5)

    def test_adopt_remaps_existing_segment(self, shm):
        shm.arena.array("tuples")[0] = np.arange(5)
        again, remapped = ClusterShm.adopt(
            shm.arena.name, 64, 2, self.NAMES, self.GAUGES
        )
        assert remapped  # attached, not re-allocated …
        np.testing.assert_array_equal(
            again.arena.array("tuples")[0], np.arange(5)
        )  # … so the data survived
        again.close()

    def test_adopt_replaces_undersized_segment(self, shm):
        bigger, remapped = ClusterShm.adopt(
            shm.arena.name, 4096, 2, self.NAMES, self.GAUGES
        )
        assert not remapped  # too small to adopt: replaced
        assert bigger.capacity == 4096
        bigger.unlink()


def test_segment_names_carry_the_audit_prefix():
    assert make_segment_name().startswith(SHM_PREFIX)
    assert make_segment_name("x") == SHM_PREFIX + "x"
