"""Cluster-wide two-phase table swap: all-or-nothing, never mixed.

Every scenario checks the same postcondition from a different failure
point: after any swap attempt — clean, flaky-but-recovered, stage
abort, validation reject, or mid-commit failure — **every** shard is on
the same table generation and nothing is left staged.  A
mixed-generation cluster would silently serve two different whitelists
to different flows, which is the one state the protocol exists to make
unreachable.
"""

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.faults import FaultPlan
from repro.faults.injectors import TableInstallFlake
from repro.features.scaling import IntegerQuantizer
from repro.runtime import RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split

N_SHARDS = 3


@pytest.fixture(scope="module")
def split():
    return make_split(seed=19, n_benign_flows=60)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


@pytest.fixture(scope="module")
def next_gen(split):
    """A second, distinguishable table generation to swap in."""
    return compile_artifacts(split.train_flows[: len(split.train_flows) // 2])


def make_cluster(artifacts, shard_faults=None):
    return ClusterService(
        fresh_pipeline(artifacts),
        n_shards=N_SHARDS,
        config=RuntimeConfig(drift_threshold=0.0, stage_backoff_s=0.0),
        shard_faults=shard_faults,
    )


def assert_uniform_generation(cluster, quantizer):
    """Every shard live on the generation carrying *quantizer*, nothing
    staged anywhere — the no-mixed-generation postcondition."""
    for worker in cluster.workers:
        assert worker.pipeline.fl_quantizer is quantizer
        assert not worker.pipeline.has_staged_tables


class TestSuccessPath:
    def test_swaps_every_shard(self, artifacts, next_gen):
        registry = MetricRegistry()
        with make_cluster(artifacts) as cluster:
            with use_registry(registry):
                event = cluster.swap(next_gen)
        assert not event.rolled_back
        assert event.failed_shards == []
        assert event.attempts == 1
        assert event.shard_attempts == [1] * N_SHARDS
        assert event.duration_s > 0
        assert_uniform_generation(cluster, next_gen.fl_quantizer)
        for worker in cluster.workers:
            assert worker.pipeline.table_swaps == 1
            assert worker.pipeline.table_rollbacks == 0

        counters = registry.counters_dict()
        assert counters["runtime.swaps"] == 1
        assert counters["switch.table.swaps"] == N_SHARDS
        for k in range(N_SHARDS):
            assert counters[f"cluster.shard.{k}.switch.table.swaps"] == 1
        assert "runtime.rollbacks" not in counters
        assert "cluster.swap_barrier_s" in registry.histograms_dict()
        events = [e for e in registry.events if e["kind"] == "cluster.swap"]
        assert len(events) == 1 and events[0]["rolled_back"] is False

    def test_transient_flake_recovers_within_retry_budget(
        self, artifacts, next_gen
    ):
        """Two consecutive install flakes on one shard are absorbed by
        the per-shard retry budget (3 attempts) — the cluster still
        swaps everywhere."""
        flake = TableInstallFlake(times=3)
        flake._remaining = 2  # exactly two deterministic failures
        shard_faults = [None, FaultPlan([flake], seed=1), None]
        registry = MetricRegistry()
        with make_cluster(artifacts, shard_faults) as cluster:
            with use_registry(registry):
                event = cluster.swap(next_gen)
        assert not event.rolled_back
        assert event.shard_attempts == [1, 3, 1]
        assert event.attempts == 3
        assert_uniform_generation(cluster, next_gen.fl_quantizer)
        assert registry.counters_dict()["runtime.stage_retries"] == 2


class TestStageAbort:
    def test_one_flaky_shard_aborts_the_whole_cluster(self, artifacts, next_gen):
        """An exhausted retry budget on shard 1 must leave shards 0 and 2
        — whose stages succeeded — back on the old generation too."""
        shard_faults = [
            None,
            FaultPlan.from_spec("table_install_flake:p=1,times=10"),
            None,
        ]
        registry = MetricRegistry()
        with make_cluster(artifacts, shard_faults) as cluster:
            with use_registry(registry):
                event = cluster.swap(next_gen)

        assert event.rolled_back
        assert event.failed_shards == [1]
        assert event.shard_attempts == [1, 3, 1]  # budget: 2 retries
        assert_uniform_generation(cluster, artifacts.fl_quantizer)
        for worker in cluster.workers:
            assert worker.pipeline.table_swaps == 0
            assert worker.pipeline.table_rollbacks == 1

        counters = registry.counters_dict()
        assert counters["runtime.rollbacks"] == 1
        assert counters["switch.table.rollbacks"] == N_SHARDS
        assert counters["degraded.swap_aborted"] == 1  # transient class
        assert counters["runtime.stage_retries"] == 2
        assert "runtime.swaps" not in counters
        for k in range(N_SHARDS):
            assert counters[f"cluster.shard.{k}.switch.table.rollbacks"] == 1

    def test_validation_reject_aborts_without_degradation_flag(
        self, artifacts, next_gen
    ):
        """Corrupt artifacts fail deterministic validation on every
        shard: the abort is not 'degraded' operation, just a rejected
        candidate."""
        bad_q = IntegerQuantizer(
            bits=next_gen.fl_quantizer.bits, space=next_gen.fl_quantizer.space
        )
        bad_q.data_min_ = np.asarray(next_gen.fl_quantizer.data_min_).copy()
        bad_q.data_max_ = np.asarray(next_gen.fl_quantizer.data_max_) * 1.5 + 1.0
        corrupt = type(next_gen)(
            fl_rules=next_gen.fl_rules,
            fl_quantizer=bad_q,
            pl_rules=next_gen.pl_rules,
            pl_quantizer=next_gen.pl_quantizer,
        )
        registry = MetricRegistry()
        with make_cluster(artifacts) as cluster:
            with use_registry(registry):
                event = cluster.swap(corrupt)
        assert event.rolled_back
        assert event.failed_shards == list(range(N_SHARDS))
        assert event.shard_attempts == [1] * N_SHARDS  # no retry on validation
        assert_uniform_generation(cluster, artifacts.fl_quantizer)
        counters = registry.counters_dict()
        assert counters["runtime.rollbacks"] == 1
        assert "degraded.swap_aborted" not in counters


class TestCommitAbort:
    def test_mid_commit_failure_rolls_flipped_shards_back(
        self, artifacts, next_gen
    ):
        """Shards 0 and 1 flip, shard 2's commit blows up: the flipped
        shards roll back so the cluster lands uniformly on the old
        generation."""
        registry = MetricRegistry()
        with make_cluster(artifacts) as cluster:

            def exploding_hot_swap():
                raise RuntimeError("injected commit failure")

            cluster.workers[2].pipeline.hot_swap = exploding_hot_swap
            with use_registry(registry):
                event = cluster.swap(next_gen)

        assert event.rolled_back
        assert event.failed_shards == [2]
        assert_uniform_generation(cluster, artifacts.fl_quantizer)
        # Shards 0 and 1 flipped then rolled back; shard 2 only rejected.
        for k in (0, 1):
            assert cluster.workers[k].pipeline.table_swaps == 1
            assert cluster.workers[k].pipeline.table_rollbacks == 1
        assert cluster.workers[2].pipeline.table_rollbacks == 1
        counters = registry.counters_dict()
        assert counters["runtime.rollbacks"] == 1
        assert counters["switch.table.rollbacks"] == N_SHARDS
        assert "runtime.swaps" not in counters


class TestServingAcrossSwaps:
    def test_aborted_swap_leaves_verdicts_unchanged(
        self, split, artifacts, next_gen
    ):
        """Replay, abort a swap, replay again: the second replay is
        served by the same generation, so a fresh fault-free cluster
        replaying both rounds produces the same verdicts."""
        shard_faults = [
            FaultPlan.from_spec("table_install_flake:p=1,times=10"),
            None,
            None,
        ]
        with make_cluster(artifacts, shard_faults) as faulty:
            first = faulty.replay(split.stream_trace)
            event = faulty.swap(next_gen)
            second = faulty.replay(split.stream_trace)
        assert event.rolled_back

        with make_cluster(artifacts) as clean:
            ref_first = clean.replay(split.stream_trace)
            ref_second = clean.replay(split.stream_trace)
        np.testing.assert_array_equal(first.y_pred, ref_first.y_pred)
        np.testing.assert_array_equal(second.y_pred, ref_second.y_pred)
