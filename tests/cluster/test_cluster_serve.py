"""End-to-end cluster serving: drift → retrain → two-phase swap recovery.

The cluster control loop must match the single-service loop (PR 3's
drift scenario) in behaviour *and* outcome: the same mid-stream benign
shift fires the cluster-wide drift monitor, one retrain runs on the
merged reservoir, and the two-phase swap lands the new generation on
every shard — after which detection recall recovers to within tolerance
of the single-pipeline service on the identical stream.
"""

import numpy as np
import pytest

from repro.cluster import ClusterService, clone_pipeline
from repro.datasets import make_drift_split
from repro.eval.harness import TestbedConfig, build_pipeline
from repro.eval.metrics import confusion_counts
from repro.runtime import OnlineDetectionService, Retrainer, RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.runtime.common import light_model_factory

LIGHT_TESTBED = dict(
    iguard_params={
        "n_trees": 5,
        "subsample_size": 64,
        "k_aug": 32,
        "tau_split": 0.0,
        "threshold_margin": 2.0,
        "distil_margin": 1.2,
    }
)

RUNTIME_CONFIG = dict(
    chunk_size=2000,
    drift_threshold=0.25,
    drift_window=2,
    baseline_window=2,
    min_drift_packets=64,
    min_retrain_flows=24,
    max_swaps=2,
)


def _recall(y_true, y_pred):
    c = confusion_counts(y_true, y_pred)
    return c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 0.0


def _retrainer(config):
    return Retrainer(
        pkt_count_threshold=config.pkt_count_threshold,
        timeout=config.timeout,
        model_factory=light_model_factory,
        seed=17,
    )


@pytest.fixture(scope="module")
def drift_run():
    """One trained deployment served twice over the same drifting
    stream: by a 2-shard cluster and by the single-pipeline reference
    service (from a clone, so both start from identical tables)."""
    split = make_drift_split("Mirai", n_benign_flows=120, seed=11)
    config = TestbedConfig(n_benign_flows=120, **LIGHT_TESTBED)
    pipeline, _controller, _model = build_pipeline(
        "iguard", split, config=config, seed=13
    )
    single = OnlineDetectionService(
        clone_pipeline(pipeline),
        retrainer=_retrainer(config),
        config=RuntimeConfig(**RUNTIME_CONFIG),
    )
    with use_registry(None):
        single_report = single.serve(split.stream_trace)

    registry = MetricRegistry()
    cluster = ClusterService(
        pipeline,
        n_shards=2,
        retrainer=_retrainer(config),
        config=RuntimeConfig(**RUNTIME_CONFIG),
    )
    with cluster:
        with use_registry(registry):
            report = cluster.serve(split.stream_trace)
    return split, cluster, report, registry, single_report


class TestClusterDriftScenario:
    def test_monitor_fires_and_cluster_swaps(self, drift_run):
        _split, cluster, report, _registry, _single = drift_run
        assert report.drift_signals >= 1
        assert report.retrains >= 1
        assert report.n_swaps >= 1
        assert report.n_rollbacks == 0
        # Every shard flipped in lockstep with every cluster swap.
        for worker in cluster.workers:
            assert worker.pipeline.table_swaps == report.n_swaps
            assert worker.pipeline.table_rollbacks == 0
            assert not worker.pipeline.has_staged_tables

    def test_report_accounts_every_packet(self, drift_run):
        split, _cluster, report, _registry, _single = drift_run
        assert report.n_shards == 2
        assert report.n_packets == len(split.stream_trace)
        assert sum(report.shard_packets) == report.n_packets
        assert all(n > 0 for n in report.shard_packets)
        assert len(report.decisions) == report.n_packets  # in-process
        assert len(report.y_true) == len(report.y_pred) == report.n_packets
        assert report.chunk_offsets[0] == 0
        assert report.packet_offset_of_chunk(1) == report.chunk_stats[0].n_packets

    def test_post_swap_recall_matches_single_service(self, drift_run):
        """After its last swap the cluster's recall must sit within 5% of
        the single-pipeline service's post-swap recall on the identical
        stream — the PR 3 recovery bar, now behind the router."""
        _split, _cluster, report, _registry, single = drift_run
        assert single.n_swaps >= 1  # the reference scenario itself fired

        last = [e for e in report.swap_events if not e.rolled_back][-1]
        offset = report.packet_offset_of_chunk(last.chunk_index + 1)
        cluster_recall = _recall(report.y_true[offset:], report.y_pred[offset:])

        ref_last = [e for e in single.swap_events if not e.rolled_back][-1]
        ref_offset = single.packet_offset_of_chunk(ref_last.chunk_index + 1)
        single_recall = _recall(
            single.y_true[ref_offset:], single.y_pred[ref_offset:]
        )
        assert cluster_recall >= single_recall - 0.05, (
            f"cluster post-swap recall {cluster_recall:.3f} vs "
            f"single-service {single_recall:.3f}"
        )

    def test_cluster_telemetry_published(self, drift_run):
        _split, _cluster, report, registry, _single = drift_run
        counters = registry.counters_dict()
        assert counters["runtime.chunks"] == report.n_chunks
        assert counters["runtime.packets"] == report.n_packets
        assert counters["runtime.drift.signals"] == report.drift_signals
        assert counters["runtime.retrains"] == report.retrains
        assert counters["runtime.swaps"] == report.n_swaps
        assert counters["switch.table.swaps"] == report.n_swaps * 2
        for k in range(2):
            assert (
                counters[f"cluster.shard.{k}.switch.table.swaps"] == report.n_swaps
            )
            # Each shard's tagged counters carry real per-shard traffic.
            assert any(
                name.startswith(f"cluster.shard.{k}.switch.path.") and v > 0
                for name, v in counters.items()
            )
        gauges = registry.gauges_dict()
        assert gauges["cluster.n_shards"] == 2.0
        assert "runtime.drift.score" in gauges
        hists = registry.histograms_dict()
        assert "cluster.swap_barrier_s" in hists
        assert hists["cluster.swap_barrier_s"]["count"] == len(report.swap_events)
        events = [e for e in registry.events if e["kind"] == "cluster.swap"]
        assert len(events) == len(report.swap_events)
        serve_span = registry.tracer.find("cluster.serve")
        assert serve_span is not None
        assert serve_span.find("retrain") is not None

    def test_swap_barrier_is_bounded(self, drift_run):
        _split, _cluster, report, _registry, _single = drift_run
        for event in report.swap_events:
            assert 0.0 <= event.duration_s < 1.0
            assert len(event.shard_attempts) == 2


class TestNoDriftControl:
    def test_stable_stream_triggers_nothing(self):
        split = make_drift_split("Mirai", n_benign_flows=60, shift="none", seed=19)
        config = TestbedConfig(n_benign_flows=60, **LIGHT_TESTBED)
        pipeline, _c, _m = build_pipeline("iguard", split, config=config, seed=23)
        cluster = ClusterService(
            pipeline,
            n_shards=2,
            retrainer=_retrainer(config),
            config=RuntimeConfig(**RUNTIME_CONFIG),
        )
        with cluster:
            report = cluster.serve(split.stream_trace)
        assert report.drift_signals == 0
        assert report.retrains == 0
        assert report.n_swaps == 0
        assert report.n_packets == len(split.stream_trace)
        for worker in cluster.workers:
            assert worker.pipeline.table_swaps == 0
