"""Flow-hash router properties (:mod:`repro.cluster.router`).

The sharding invariants everything else in the cluster rests on: the
assignment is a pure function of the canonical 5-tuple (stable under
reordering, identical for both flow directions), the vectorised path is
bit-identical to the scalar reference, and a partition is an exact
re-ordering of the input — every packet exactly once, shard-internal
order preserved.
"""

import numpy as np
import pytest

from repro.cluster import ROUTER_SALT, FlowShardRouter
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.datasets.packet import FiveTuple, Packet
from repro.datasets.trace import Trace, flows_to_trace


@pytest.fixture(scope="module")
def trace():
    flows = generate_benign_flows(40, seed=5) + generate_attack_flows(
        "Mirai", 10, seed=6
    )
    return flows_to_trace(flows)


@pytest.fixture(scope="module")
def router():
    return FlowShardRouter(4)


class TestAssignment:
    def test_vectorised_matches_scalar_reference(self, trace, router):
        vector = router.shard_indices(trace.packets)
        scalar = np.array([router.shard_of(p.five_tuple) for p in trace.packets])
        np.testing.assert_array_equal(vector, scalar)

    def test_both_directions_land_on_the_same_shard(self, trace, router):
        reversed_packets = [
            Packet(
                five_tuple=FiveTuple(
                    p.five_tuple.dst_ip,
                    p.five_tuple.src_ip,
                    p.five_tuple.dst_port,
                    p.five_tuple.src_port,
                    p.five_tuple.protocol,
                ),
                timestamp=p.timestamp,
                size=p.size,
            )
            for p in trace.packets
        ]
        np.testing.assert_array_equal(
            router.shard_indices(trace.packets),
            router.shard_indices(reversed_packets),
        )

    def test_stable_under_packet_reordering(self, trace, router):
        assignments = router.shard_indices(trace.packets)
        perm = np.random.default_rng(3).permutation(len(trace))
        shuffled = [trace.packets[i] for i in perm]
        np.testing.assert_array_equal(
            router.shard_indices(shuffled), assignments[perm]
        )

    def test_in_range_and_uses_every_shard(self, trace, router):
        assignments = router.shard_indices(trace.packets)
        assert assignments.min() >= 0
        assert assignments.max() < router.n_shards
        # 50 flows over 4 shards: every shard should see traffic.
        assert len(np.unique(assignments)) == router.n_shards

    def test_salt_decorrelates_placement(self, trace):
        a = FlowShardRouter(4, salt=ROUTER_SALT).shard_indices(trace.packets)
        b = FlowShardRouter(4, salt=ROUTER_SALT + 1).shard_indices(trace.packets)
        assert (a != b).any()

    def test_single_shard_takes_everything(self, trace):
        assignments = FlowShardRouter(1).shard_indices(trace.packets)
        assert (assignments == 0).all()

    def test_empty_input(self, router):
        assert router.shard_indices([]).size == 0
        partition = router.partition([])
        assert partition.n_packets == 0
        assert partition.shard_sizes() == [0, 0, 0, 0]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            FlowShardRouter(0)


class TestPartition:
    def test_every_packet_exactly_once(self, trace, router):
        partition = router.partition(trace)
        assert partition.n_packets == len(trace)
        assert sum(partition.shard_sizes()) == len(trace)
        all_indices = np.concatenate(partition.indices)
        np.testing.assert_array_equal(np.sort(all_indices), np.arange(len(trace)))

    def test_shards_preserve_arrival_order(self, trace, router):
        partition = router.partition(trace)
        for k, idx in enumerate(partition.indices):
            assert (np.diff(idx) > 0).all() if idx.size > 1 else True
            for i, packet in zip(idx, partition.shards[k]):
                assert packet is trace.packets[i]  # no copies

    def test_accepts_trace_or_sequence(self, trace, router):
        from_trace = router.partition(trace)
        from_list = router.partition(list(trace.packets))
        np.testing.assert_array_equal(
            from_trace.assignments, from_list.assignments
        )

    def test_shard_packets_route_to_their_shard(self, trace, router):
        partition = router.partition(trace)
        for k, shard in enumerate(partition.shards):
            for packet in shard:
                assert router.shard_of(packet.five_tuple) == k
