"""Cluster checkpoints: consistent cuts, kill-and-resume, shard autonomy.

Mirrors the single-service checkpoint suite one level up: a cluster
serve killed at an arbitrary chunk boundary (the kill fires inside one
shard's worker) and resumed from its last checkpoint must finish with
verdicts bit-identical to the uninterrupted run — the checkpoint is one
atomic document, so no shard can resume from a different cut than the
others.  Shard sections are additionally self-contained: one shard
rebuilds without reading any other shard's state.
"""

import copy
import json
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import (
    CLUSTER_SCHEMA,
    ClusterCheckpointManager,
    ClusterService,
    ShmArena,
    cluster_report_from_dict,
    cluster_report_to_dict,
    cluster_to_dict,
    load_any_checkpoint,
    restore_cluster,
    restore_shard,
)
from repro.faults import FaultPlan, SimulatedKill
from repro.runtime import Retrainer, RuntimeConfig
from repro.runtime.checkpoint import CheckpointManager
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    PKT_COUNT_THRESHOLD,
    TIMEOUT,
    compile_artifacts,
    fresh_pipeline,
    make_split,
)
from tests.runtime.common import light_model_factory

N_CHUNKS = 6
N_SHARDS = 2

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def split():
    return make_split(seed=29, n_benign_flows=50)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def make_cluster(split, artifacts, shard_faults=None, executor="inprocess"):
    n_packets = len(split.stream_trace.packets)
    config = RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,
        cadence=3,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )
    retrainer = Retrainer(
        pkt_count_threshold=PKT_COUNT_THRESHOLD,
        timeout=TIMEOUT,
        model_factory=light_model_factory,
        seed=17,
    )
    return ClusterService(
        fresh_pipeline(artifacts),
        n_shards=N_SHARDS,
        retrainer=retrainer,
        config=config,
        shard_faults=shard_faults,
        executor=executor,
    )


@pytest.fixture(scope="module")
def baseline(split, artifacts):
    """The uninterrupted, checkpoint-free cluster run."""
    with make_cluster(split, artifacts) as cluster:
        with use_registry(MetricRegistry()):
            report = cluster.serve(split.stream_trace)
    assert report.n_chunks == N_CHUNKS
    assert report.retrains > 0  # the control loop actually exercised
    return report


def canon(doc):
    return json.dumps(doc, sort_keys=True, allow_nan=True)


class TestDocumentRoundTrip:
    def test_restore_then_reserialize_is_identity(self, split, artifacts, tmp_path):
        """serialize → restore → serialize is a fixed point — the same
        bar the single-service document meets, with shard sections."""
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                cluster.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(tmp_path),
                )
        doc = ClusterCheckpointManager.load(tmp_path)
        assert doc.pop("status") == "complete"
        restored, report = restore_cluster(doc, model_factory=light_model_factory)
        with restored:
            assert canon(cluster_to_dict(restored, report)) == canon(doc)

    def test_report_round_trip(self, baseline):
        back = cluster_report_from_dict(cluster_report_to_dict(baseline))
        np.testing.assert_array_equal(back.y_pred, baseline.y_pred)
        np.testing.assert_array_equal(back.y_true, baseline.y_true)
        assert back.n_shards == baseline.n_shards
        assert back.shard_packets == baseline.shard_packets
        assert back.swap_events == baseline.swap_events
        assert back.chunk_offsets == baseline.chunk_offsets
        assert back.decisions == []  # evaluation sugar, never persisted

    def test_restore_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="checkpoint"):
            restore_cluster({"schema": "something/else"})

    def test_load_any_checkpoint_dispatches_on_schema(
        self, split, artifacts, tmp_path
    ):
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                cluster.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(tmp_path),
                )
        doc = load_any_checkpoint(tmp_path)
        assert doc["schema"] == CLUSTER_SCHEMA
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / CheckpointManager.FILENAME).write_text(
            '{"schema": "nope"}'
        )
        with pytest.raises(ValueError, match="nope"):
            load_any_checkpoint(tmp_path / "bad")


class TestCheckpointTransparency:
    def test_checkpointing_does_not_perturb_the_run(
        self, split, artifacts, tmp_path, baseline
    ):
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                report = cluster.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(tmp_path),
                )
        np.testing.assert_array_equal(report.y_pred, baseline.y_pred)
        assert report.shard_packets == baseline.shard_packets


class TestKillAndResume:
    def resume_until_complete(self, split, tmp_path, max_segments=10):
        """Drive the kill/restore cycle to completion; the kill counts
        chunks per process, so each resumed segment re-arms it until too
        few chunks remain.  ``SimulatedKill`` is a ``BaseException`` by
        design — a dead shard kills the whole in-process coordinator,
        exactly like a machine crash — so it is caught here, at the
        "supervisor" layer the test plays."""
        for _ in range(max_segments):
            doc = ClusterCheckpointManager.load(tmp_path)
            service, report = restore_cluster(doc, model_factory=light_model_factory)
            if doc["status"] == "complete":
                return report
            try:
                with service, use_registry(MetricRegistry()):
                    report = service.serve(
                        split.stream_trace,
                        checkpoint=ClusterCheckpointManager(tmp_path),
                        resume_report=report,
                    )
            except SimulatedKill:
                continue
            return report
        raise AssertionError("resume loop did not converge")

    def test_killed_cluster_resumes_bit_identical(
        self, split, artifacts, tmp_path, baseline
    ):
        """Shard 0's process dies mid-stream; the resumed cluster must
        finish exactly where the uninterrupted run did."""
        shard_faults = [FaultPlan.from_spec("kill:at=2"), None]
        with pytest.raises(SimulatedKill):
            with make_cluster(split, artifacts, shard_faults) as cluster:
                with use_registry(MetricRegistry()):
                    cluster.serve(
                        split.stream_trace,
                        checkpoint=ClusterCheckpointManager(tmp_path),
                    )

        # The kill dropped the in-flight chunk: the checkpoint is behind.
        doc = ClusterCheckpointManager.load(tmp_path)
        assert doc["status"] == "in_progress"
        assert doc["report"]["n_chunks"] < N_CHUNKS

        final = self.resume_until_complete(split, tmp_path)
        assert final.n_chunks == N_CHUNKS
        assert final.n_packets == baseline.n_packets
        np.testing.assert_array_equal(final.y_pred, baseline.y_pred)
        np.testing.assert_array_equal(final.y_true, baseline.y_true)
        assert final.shard_packets == baseline.shard_packets
        assert final.retrains == baseline.retrains
        assert [e.chunk_index for e in final.swap_events] == [
            e.chunk_index for e in baseline.swap_events
        ]

    def test_resume_of_complete_run_is_a_noop(self, split, artifacts, tmp_path):
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                cluster.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(tmp_path),
                )
        doc = ClusterCheckpointManager.load(tmp_path)
        assert doc["status"] == "complete"
        restored, report = restore_cluster(doc, model_factory=light_model_factory)
        before = cluster_report_to_dict(report)
        with restored, use_registry(MetricRegistry()):
            again = restored.serve(split.stream_trace, resume_report=report)
        assert cluster_report_to_dict(again) == before


#: A real, whole-process SIGKILL of a *shm-transport* coordinator —
#: no Python cleanup runs, so this is the one exit path on which the
#: shared segment is *supposed* to survive (the checkpoint names it and
#: resume re-maps it).  The workload mirrors ``make_cluster`` exactly so
#: the resumed run can be compared bit-for-bit against the module
#: baseline.
SIGKILL_COORDINATOR = """
import os, signal, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from repro.cluster import ClusterCheckpointManager, ClusterService
from repro.runtime import Retrainer, RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    PKT_COUNT_THRESHOLD, TIMEOUT, compile_artifacts, fresh_pipeline, make_split,
)
from tests.runtime.common import light_model_factory

directory = sys.argv[1]
split = make_split(seed=29, n_benign_flows=50)
artifacts = compile_artifacts(split.train_flows)
n_packets = len(split.stream_trace.packets)


class KillAfterTwoChunks(ClusterCheckpointManager):
    def maybe_save(self, service, report):
        super().maybe_save(service, report)
        if report.n_chunks >= 2:
            os.kill(os.getpid(), signal.SIGKILL)


cluster = ClusterService(
    fresh_pipeline(artifacts),
    n_shards=2,
    retrainer=Retrainer(
        pkt_count_threshold=PKT_COUNT_THRESHOLD,
        timeout=TIMEOUT,
        model_factory=light_model_factory,
        seed=17,
    ),
    config=RuntimeConfig(
        chunk_size=-(-n_packets // 6),
        drift_threshold=0.0,
        cadence=3,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    ),
    executor="shm",
)
with use_registry(MetricRegistry()):
    cluster.serve(split.stream_trace, checkpoint=KillAfterTwoChunks(directory))
raise SystemExit("unreachable: the kill above must have fired")
"""


@pytest.mark.skipif(not Path("/dev/shm").exists(), reason="no /dev/shm to audit")
class TestShmSigkillAndResume:
    @pytest.fixture(scope="class")
    def killed(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("shm-ckpt")
        proc = subprocess.run(
            [sys.executable, "-c", SIGKILL_COORDINATOR, str(directory)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=560,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        return directory

    def test_segment_survives_resume_remaps_and_finishes(
        self, killed, split, baseline
    ):
        doc = ClusterCheckpointManager.load(killed)
        assert doc["status"] == "in_progress"
        assert doc["executor"] == "shm"
        assert doc["report"]["n_chunks"] < N_CHUNKS
        name = doc["shm_name"]
        assert name and Path("/dev/shm", name).exists()  # survived SIGKILL

        service, report = restore_cluster(doc, model_factory=light_model_factory)
        assert service.executor_kind == "shm"
        try:
            with use_registry(MetricRegistry()):
                final = service.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(killed),
                    resume_report=report,
                )
            executor = service._executor
            assert executor.segment_name == name
            assert executor.remapped  # re-mapped the orphan, no re-allocation
        finally:
            service.close()
        assert not Path("/dev/shm", name).exists()  # reaped at shutdown

        assert final.n_chunks == N_CHUNKS
        assert final.n_packets == baseline.n_packets
        np.testing.assert_array_equal(final.y_pred, baseline.y_pred)
        np.testing.assert_array_equal(final.y_true, baseline.y_true)
        assert final.shard_packets == baseline.shard_packets
        assert final.retrains == baseline.retrains
        assert [e.chunk_index for e in final.swap_events] == [
            e.chunk_index for e in baseline.swap_events
        ]
        assert ClusterCheckpointManager.load(killed)["status"] == "complete"

    def test_resume_onto_other_transport_reaps_orphan(self, split, artifacts):
        """A checkpointed shm run resumed on a different executor must
        not leak the named segment: restore reaps it immediately."""
        with make_cluster(split, artifacts, executor="shm") as cluster:
            with use_registry(MetricRegistry()):
                report = cluster.serve(split.stream_trace)
            doc = json.loads(canon(cluster_to_dict(cluster, report)))
        name = doc["shm_name"]
        assert name  # recorded while the segment was live
        # The segment died with close(); plant an orphan under its name
        # (exactly what a SIGKILLed coordinator leaves behind).
        ShmArena.create(name, [("x", np.dtype(np.int64), (8,))]).close()
        assert Path("/dev/shm", name).exists()

        service, _report = restore_cluster(
            doc, model_factory=light_model_factory, executor="inprocess"
        )
        assert service.shm_name is None
        assert not Path("/dev/shm", name).exists()  # orphan reaped


class TestShardAutonomy:
    @pytest.fixture(scope="class")
    def doc(self, split, artifacts, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cluster-ckpt")
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                cluster.serve(
                    split.stream_trace,
                    checkpoint=ClusterCheckpointManager(directory),
                )
        return ClusterCheckpointManager.load(directory)

    def test_restore_shard_reads_only_its_own_section(self, doc, baseline):
        mangled = copy.deepcopy(doc)
        mangled["shards"][0] = {"shard_id": 0}  # shard 0's section gutted
        worker = restore_shard(mangled, 1)
        assert worker.shard_id == 1
        assert worker.packets_processed == baseline.shard_packets[1]
        assert worker.chunks_processed == baseline.n_chunks
        assert worker.pipeline.store.occupancy() > 0

    def test_restore_shard_rejects_mismatched_ids(self, doc):
        mangled = copy.deepcopy(doc)
        mangled["shards"][1]["shard_id"] = 7
        with pytest.raises(ValueError, match="shard section"):
            restore_shard(mangled, 1)

    def test_executor_override_on_restore(self, doc):
        service, _report = restore_cluster(
            doc, model_factory=light_model_factory, executor="multiprocess"
        )
        assert service.executor_kind == "multiprocess"
        # Decision objects are not shipped across process boundaries.
        assert all(not w.keep_decisions for w in service.workers)
