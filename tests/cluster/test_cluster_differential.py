"""Differential lock: the sharded cluster vs one big switch.

The cluster's core claim is behavioural transparency — routing by
canonical flow hash and replaying per shard must be **bit-identical** to
replaying the same trace through a single pipeline, because every
per-flow state machine sees exactly the packets it would have seen
anyway.  The one legitimate divergence channel is *cross-flow* coupling
inside the flow store (hash collisions / forced evictions), so the
suite pins the workload to a collision-free regime and asserts that
precondition explicitly; collision-coupled scenarios are covered by the
golden traces of the single-pipeline suite, not replicated here.

Locked at ``n_shards`` ∈ {1, 4} (in-process executor) over decisions,
verdict arrays, and every published telemetry counter; the multiprocess
executor is locked on verdicts + counters (decision objects deliberately
do not cross the process boundary).

``TestExecutorMatrix`` then runs the full transport matrix —
{in-process, multiprocess-pipe, multiprocess-shm} × {replay, chunked
serve} — against the same single-pipeline baseline, and
``TestFaultMatrixDifferential`` locks the three transports against
*each other* under an active digest reorder/delay ``FaultPlan``
(per-shard plans are pure functions of ``(spec, shard_id)``, so the
transport must not be able to change what the faults do).
"""

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.runtime import RuntimeConfig
from repro.switch.runner import replay_trace
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import compile_artifacts, fresh_pipeline, make_split

#: Slots sized so the workload is collision/eviction-free — the
#: precondition under which shard-transparency is exact (asserted below).
N_SLOTS = 4096

#: Every shard transport the cluster can run on.
EXECUTORS = ("inprocess", "multiprocess", "shm")


@pytest.fixture(scope="module")
def split():
    return make_split(seed=23, n_benign_flows=80)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


@pytest.fixture(scope="module")
def baseline(split, artifacts):
    """Single-pipeline replay: the reference the cluster must match."""
    pipeline = fresh_pipeline(artifacts, n_slots=N_SLOTS)
    registry = MetricRegistry()
    with use_registry(registry):
        result = replay_trace(split.stream_trace, pipeline, mode="batch")
    counters = registry.counters_dict()
    # Precondition: no cross-flow couplings, else sharding legitimately
    # diverges and this suite's equalities don't apply.
    assert counters.get("switch.store.collisions", 0) == 0
    assert counters.get("switch.store.forced_evictions", 0) == 0
    return result, counters, registry.gauges_dict()


def cluster_replay(split, artifacts, n_shards, executor="inprocess"):
    registry = MetricRegistry()
    with ClusterService(
        fresh_pipeline(artifacts, n_slots=N_SLOTS),
        n_shards=n_shards,
        config=RuntimeConfig(drift_threshold=0.0),
        executor=executor,
    ) as cluster:
        with use_registry(registry):
            merged = cluster.replay(split.stream_trace)
    return merged, registry


def cluster_serve(split, artifacts, executor, faults_spec=None, chunk_size=700):
    """Chunked serve through ``executor``; drift/cadence retraining off
    so the verdict stream is a pure function of the transport."""
    registry = MetricRegistry()
    with ClusterService(
        fresh_pipeline(artifacts, n_slots=N_SLOTS),
        n_shards=4,
        config=RuntimeConfig(chunk_size=chunk_size, drift_threshold=0.0),
        executor=executor,
        faults_spec=faults_spec,
    ) as cluster:
        with use_registry(registry):
            report = cluster.serve(split.stream_trace)
    return report, registry


def split_counters(registry):
    """(aggregated, shard-tagged) counters from a cluster registry."""
    plain, tagged = {}, {}
    for name, value in registry.counters_dict().items():
        (tagged if name.startswith("cluster.") else plain)[name] = value
    return plain, tagged


def assert_same_totals(base_counters, plain):
    for name in set(base_counters) | set(plain):
        assert plain.get(name, 0) == base_counters.get(name, 0), name


class TestInProcessBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_verdicts_decisions_and_counters(
        self, split, artifacts, baseline, n_shards
    ):
        base, base_counters, base_gauges = baseline
        merged, registry = cluster_replay(split, artifacts, n_shards)

        np.testing.assert_array_equal(merged.y_true, base.y_true)
        np.testing.assert_array_equal(merged.y_pred, base.y_pred)

        assert len(merged.decisions) == len(base.decisions) == len(split.stream_trace)
        for i, (a, b) in enumerate(zip(merged.decisions, base.decisions)):
            assert a.path == b.path, f"packet {i}: path {a.path} != {b.path}"
            assert a.action == b.action, f"packet {i}: action"
            assert a.predicted_malicious == b.predicted_malicious, f"packet {i}"
            assert a.digest == b.digest, f"packet {i}: digest"
            assert a.packet is b.packet  # routing must not copy packets

        # Aggregated counter totals telescope to the single-switch ones;
        # the only extra metric names are the shard-tagged copies.
        plain, tagged = split_counters(registry)
        assert_same_totals(base_counters, plain)
        assert tagged or n_shards == 1  # 1-shard runs still tag shard 0
        assert all(t.startswith("cluster.shard.") for t in tagged)

        # Shard-tagged copies sum back to the aggregate, counter by counter.
        summed = {}
        for name, value in tagged.items():
            stripped = name.split(".", 3)[3]
            summed[stripped] = summed.get(stripped, 0) + value
        for name, value in summed.items():
            assert value == plain.get(name, 0), name

        # Merged counter deltas are the same totals (fresh pipelines).
        for name, value in merged.counters.items():
            assert value == base_counters.get(name, 0), name

        # Level gauges that sum across shards match the single switch.
        gauges = registry.gauges_dict()
        assert gauges["switch.store.occupancy"] == base_gauges["switch.store.occupancy"]
        assert gauges["switch.blacklist.size"] == base_gauges["switch.blacklist.size"]

    def test_shard_sizes_account_every_packet(self, split, artifacts):
        merged, _ = cluster_replay(split, artifacts, 4)
        assert sum(merged.shard_sizes) == len(split.stream_trace)
        assert all(size > 0 for size in merged.shard_sizes)


class TestMultiprocessParity:
    def test_verdicts_and_counters_match(self, split, artifacts, baseline):
        base, base_counters, _ = baseline
        merged, registry = cluster_replay(
            split, artifacts, 2, executor="multiprocess"
        )
        np.testing.assert_array_equal(merged.y_true, base.y_true)
        np.testing.assert_array_equal(merged.y_pred, base.y_pred)
        assert merged.decisions == []  # not shipped across the boundary
        plain, _ = split_counters(registry)
        assert_same_totals(base_counters, plain)


class TestExecutorMatrix:
    """The full {transport} × {replay, chunked serve} matrix against the
    single-pipeline baseline: verdicts, every plain counter total, and
    the summing level gauges must be bit-identical regardless of whether
    the packets travelled nowhere (in-process), over a pickle pipe, or
    as descriptors into the shared-memory arena."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_replay_matches_single_pipeline(
        self, split, artifacts, baseline, executor
    ):
        base, base_counters, base_gauges = baseline
        merged, registry = cluster_replay(split, artifacts, 4, executor=executor)

        np.testing.assert_array_equal(merged.y_true, base.y_true)
        np.testing.assert_array_equal(merged.y_pred, base.y_pred)
        assert sum(merged.shard_sizes) == len(split.stream_trace)

        plain, tagged = split_counters(registry)
        assert_same_totals(base_counters, plain)
        assert tagged and all(t.startswith("cluster.shard.") for t in tagged)

        gauges = registry.gauges_dict()
        assert gauges["switch.store.occupancy"] == base_gauges["switch.store.occupancy"]
        assert gauges["switch.blacklist.size"] == base_gauges["switch.blacklist.size"]

        # Merged counter deltas equal the totals (fresh pipelines).
        for name, value in merged.counters.items():
            assert value == base_counters.get(name, 0), name

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_chunked_serve_matches_single_pipeline(
        self, split, artifacts, baseline, executor
    ):
        base, base_counters, _ = baseline
        report, registry = cluster_serve(split, artifacts, executor)

        assert report.n_packets == len(split.stream_trace)
        assert sum(report.shard_packets) == report.n_packets
        np.testing.assert_array_equal(report.y_pred, base.y_pred)
        np.testing.assert_array_equal(report.y_true, base.y_true)

        # Every counter the single pipeline published must total the
        # same; serve adds runtime.* bookkeeping on top, which the
        # one-shot baseline legitimately lacks.
        plain, _ = split_counters(registry)
        for name, value in base_counters.items():
            assert plain.get(name, 0) == value, name
        assert plain.get("runtime.packets", 0) == report.n_packets


#: Digest reorder + delay active on every shard (p high enough to fire
#: hundreds of times on this trace), fanned out per shard from one spec.
FAULT_SPEC = "seed=7;digest_reorder:p=0.4;digest_delay:p=0.3,chunks=2"


class TestFaultMatrixDifferential:
    """Under an active FaultPlan the cluster legitimately diverges from
    the fault-free baseline — but the three transports must still agree
    with *each other* bit-for-bit, because each shard's plan is a pure
    function of ``(spec, shard_id)`` and the transport carries packets,
    not randomness."""

    @pytest.fixture(scope="class")
    def fault_runs(self, split, artifacts):
        runs = {}
        for executor in EXECUTORS:
            report, registry = cluster_serve(
                split, artifacts, executor, faults_spec=FAULT_SPEC
            )
            plain, _ = split_counters(registry)
            runs[executor] = (report, plain)
        return runs

    def test_faults_actually_fired(self, fault_runs):
        report, _ = fault_runs["inprocess"]
        assert report.fault_counts.get("faults.digest_reorder", 0) > 0
        assert report.fault_counts.get("faults.digest_delay", 0) > 0
        # …and on every shard, so the cross-transport equalities below
        # exercise all four fault schedules, not just shard 0's.
        for counts in report.shard_fault_counts:
            assert sum(counts.values()) > 0

    @pytest.mark.parametrize("executor", [e for e in EXECUTORS if e != "inprocess"])
    def test_transports_are_mutually_bit_identical(self, fault_runs, executor):
        ref, ref_plain = fault_runs["inprocess"]
        report, plain = fault_runs[executor]
        np.testing.assert_array_equal(report.y_pred, ref.y_pred)
        np.testing.assert_array_equal(report.y_true, ref.y_true)
        assert report.fault_counts == ref.fault_counts
        assert report.shard_fault_counts == ref.shard_fault_counts
        assert list(report.shard_packets) == list(ref.shard_packets)
        assert report.n_chunks == ref.n_chunks
        assert plain == ref_plain


class TestServeDifferential:
    def test_chunked_cluster_serve_matches_oneshot(self, split, artifacts, baseline):
        """The full serve loop (router + chunk clock + merge) serves the
        same verdict stream as the one-shot single-pipeline replay."""
        base, _, _ = baseline
        with ClusterService(
            fresh_pipeline(artifacts, n_slots=N_SLOTS),
            n_shards=4,
            config=RuntimeConfig(chunk_size=700, drift_threshold=0.0),
        ) as cluster:
            report = cluster.serve(split.stream_trace)
        assert report.n_packets == len(split.stream_trace)
        assert sum(report.shard_packets) == report.n_packets
        np.testing.assert_array_equal(report.y_pred, base.y_pred)
        np.testing.assert_array_equal(report.y_true, base.y_true)
        assert len(report.decisions) == report.n_packets
