"""Retry/backoff/deadline semantics (:mod:`repro.faults.retry`), driven
by a virtual clock so schedules are asserted exactly and nothing sleeps
for real."""

import pytest

from repro.faults import (
    DeadlineExceeded,
    TransientFaultError,
    backoff_schedule,
    retry_with_backoff,
)


class VirtualClock:
    """A clock that only advances when something 'sleeps' on it."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def clock(self) -> float:
        return self.now


def flaky(times, exc=TransientFaultError):
    """A callable failing the first *times* invocations."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= times:
            raise exc(f"flake {calls['n']}")
        return calls["n"]

    fn.calls = calls
    return fn


class TestBackoffSchedule:
    def test_exponential_and_capped(self):
        assert backoff_schedule(4, base_delay=0.1, factor=2.0, max_delay=0.5) == (
            0.1,
            0.2,
            0.4,
            0.5,
        )

    def test_zero_retries_is_empty(self):
        assert backoff_schedule(0) == ()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            backoff_schedule(-1)


class TestRetryWithBackoff:
    def test_first_try_success_never_sleeps(self):
        vc = VirtualClock()
        assert retry_with_backoff(lambda: 42, sleep=vc.sleep, clock=vc.clock) == 42
        assert vc.sleeps == []

    def test_recovers_after_transient_failures(self):
        vc = VirtualClock()
        fn = flaky(2)
        result = retry_with_backoff(
            fn, retries=3, base_delay=0.1, sleep=vc.sleep, clock=vc.clock
        )
        assert result == 3  # two failures + the succeeding third call
        assert vc.sleeps == [0.1, 0.2]  # exact backoff schedule observed

    def test_exhausted_retries_reraise_last_error(self):
        vc = VirtualClock()
        with pytest.raises(TransientFaultError, match="flake 3"):
            retry_with_backoff(
                flaky(10), retries=2, base_delay=0.1, sleep=vc.sleep, clock=vc.clock
            )
        assert len(vc.sleeps) == 2

    def test_deterministic_errors_never_retried(self):
        """ValueError (install-time validation) must propagate on the
        first attempt — retrying a deterministic rejection wastes the
        whole backoff budget for nothing."""
        vc = VirtualClock()
        fn = flaky(1, exc=ValueError)
        with pytest.raises(ValueError):
            retry_with_backoff(fn, retries=5, sleep=vc.sleep, clock=vc.clock)
        assert fn.calls["n"] == 1
        assert vc.sleeps == []

    def test_deadline_cuts_the_budget(self):
        """The deadline is checked before sleeping: an attempt whose
        backoff would overrun it raises DeadlineExceeded instead."""
        vc = VirtualClock()
        with pytest.raises(DeadlineExceeded):
            retry_with_backoff(
                flaky(10),
                retries=10,
                base_delay=1.0,
                factor=1.0,
                deadline_s=2.5,
                sleep=vc.sleep,
                clock=vc.clock,
            )
        # Slept 1s + 1s, then the third 1s sleep would exceed 2.5s.
        assert vc.sleeps == [1.0, 1.0]

    def test_deadline_exceeded_is_transient(self):
        """DeadlineExceeded subclasses TransientFaultError so the
        service's degradation arm (swap_aborted) catches it."""
        assert issubclass(DeadlineExceeded, TransientFaultError)

    def test_on_retry_callback_sees_every_reattempt(self):
        vc = VirtualClock()
        seen = []
        retry_with_backoff(
            flaky(2),
            retries=3,
            base_delay=0.01,
            sleep=vc.sleep,
            clock=vc.clock,
            on_retry=lambda attempt, err: seen.append((attempt, str(err))),
        )
        assert [a for a, _ in seen] == [1, 2]
        assert all("flake" in msg for _, msg in seen)
