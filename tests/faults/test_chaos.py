"""Chaos suite: the serving loop under every injector class.

Invariants every fault scenario must hold:

* **No unhandled exceptions** — the loop serves the whole trace
  (``SimulatedKill`` is the single deliberate exception).
* **Every fired fault is visible** — in the ``faults.*`` registry
  counters and mirrored in ``report.fault_counts``.
* **Bounded damage** — recall under faults stays within a fixed margin
  of the fault-free baseline (faults degrade, they don't zero out).
* **Zero-fault transparency** — a plan whose injectors all have p=0
  leaves decisions *and* telemetry counters bit-identical to a run with
  no plan at all.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, SimulatedKill
from repro.runtime import OnlineDetectionService, RuntimeConfig
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    StubRetrainer,
    compile_artifacts,
    fresh_pipeline,
    make_split,
    recall,
)

N_CHUNKS = 6


@pytest.fixture(scope="module")
def split():
    return make_split()


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def serve_with(
    split,
    artifacts,
    faults=None,
    n_slots=128,
    overflow_policy="score",
    cadence=0,
    stage_retries=2,
):
    """One full serve of the module's stream on a fresh pipeline."""
    pipeline = fresh_pipeline(
        artifacts, n_slots=n_slots, overflow_policy=overflow_policy
    )
    n_packets = len(split.stream_trace.packets)
    config = RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,  # chaos runs retrain on cadence, not drift
        cadence=cadence,
        min_retrain_flows=0,
        stage_retries=stage_retries,
        stage_backoff_s=0.0,
    )
    service = OnlineDetectionService(
        pipeline,
        retrainer=StubRetrainer(artifacts),
        config=config,
        faults=faults,
    )
    registry = MetricRegistry()
    with use_registry(registry):
        report = service.serve(split.stream_trace)
    return pipeline, report, registry


@pytest.fixture(scope="module")
def baseline(split, artifacts):
    _pipeline, report, registry = serve_with(split, artifacts)
    return report, registry


DATA_PLANE_SPECS = [
    "seed=5;digest_loss:p=0.5",
    "seed=5;digest_dup:p=0.5",
    "seed=5;digest_reorder:p=0.5",
    "seed=5;digest_delay:p=0.5,chunks=2",
    "seed=5;store_pressure:p=1,fraction=0.5",
    "seed=5;register_saturation:p=1,fraction=0.5",
    # Everything at once: the paper's "switch under attack" worst case.
    # Chunk injectors run at p=1 — the stream is only a handful of
    # chunks, so a coin-flip schedule could legitimately never fire.
    "seed=5;digest_loss:p=0.3;digest_dup:p=0.3;digest_reorder:p=0.3;"
    "digest_delay:p=0.3,chunks=1;store_pressure:p=1,fraction=0.3;"
    "register_saturation:p=1,fraction=0.3",
]

RECALL_MARGIN = 0.3


class TestDataPlaneChaos:
    @pytest.mark.parametrize("spec", DATA_PLANE_SPECS)
    def test_fault_sweep_invariants(self, split, artifacts, baseline, spec):
        plan = FaultPlan.from_spec(spec)
        _pipeline, report, registry = serve_with(split, artifacts, faults=plan)

        # The whole trace was served — no silent truncation.
        assert report.n_packets == len(split.stream_trace.packets)
        assert len(report.y_pred) == report.n_packets

        # Every armed injector actually fired and is visible twice over:
        # once in the registry, once in the report.
        counters = registry.counters_dict()
        for injector in plan.injectors:
            assert injector.fired > 0, injector.name
            assert counters[injector.counter] == injector.fired
        assert report.fault_counts == plan.counts()

        # Faults degrade detection, they don't destroy it.
        base_report, _ = baseline
        base_recall = recall(base_report.y_true, base_report.y_pred)
        fault_recall = recall(report.y_true, report.y_pred)
        assert fault_recall >= base_recall - RECALL_MARGIN

    def test_channel_accounting_closes_after_flush(self, split, artifacts):
        plan = FaultPlan.from_spec(
            "seed=2;digest_loss:p=0.3;digest_dup:p=0.3;"
            "digest_reorder:p=0.3;digest_delay:p=0.3,chunks=2"
        )
        serve_with(split, artifacts, faults=plan)
        ch = plan.channel
        assert ch.sent > 0
        assert ch.pending == 0  # finalize() flushed the tail
        assert ch.sent + ch.duplicated == ch.delivered + ch.dropped

    def test_kill_switch_aborts_the_serve(self, split, artifacts):
        plan = FaultPlan.from_spec("kill:at=1")
        with pytest.raises(SimulatedKill):
            serve_with(split, artifacts, faults=plan)
        assert plan.injectors[0].fired == 1


class TestControlPlaneChaos:
    def test_retrain_failure_degrades_without_staging(self, split, artifacts):
        plan = FaultPlan.from_spec("seed=1;retrain_failure:p=1")
        _pipeline, report, registry = serve_with(
            split, artifacts, faults=plan, cadence=2
        )
        assert report.retrain_failures > 0
        assert report.retrains == 0  # the job died before producing anything
        assert report.swap_events == []
        counters = registry.counters_dict()
        assert counters["degraded.retrain_skipped"] == report.retrain_failures
        assert counters["faults.retrain_failure"] == report.retrain_failures

    def test_corrupt_artifacts_roll_back_and_old_generation_serves(
        self, split, artifacts
    ):
        plan = FaultPlan.from_spec("seed=1;artifact_corruption:p=1")
        pipeline, report, registry = serve_with(
            split, artifacts, faults=plan, cadence=2
        )
        assert report.n_rollbacks > 0
        assert report.n_swaps == 0
        assert all(e.rolled_back for e in report.swap_events)
        counters = registry.counters_dict()
        assert counters["switch.table.rollbacks"] == report.n_rollbacks
        assert counters["faults.artifact_corruption"] > 0
        # A corrupt install never leaves fingerprint-mismatched tables
        # live, and no staged residue either.
        from repro.switch.pipeline import _check_table_quantizer

        _check_table_quantizer(
            "FL", pipeline.fl_table.ruleset, pipeline.fl_quantizer
        )
        assert pipeline._staged is None
        # The full trace still got served on the old generation.
        assert report.n_packets == len(split.stream_trace.packets)

    def test_transient_flake_recovers_via_retry(self, split, artifacts):
        # p=1 would re-draw and fail every retry too; a fail/pass cycle
        # needs a controlled draw sequence: first attempt of each install
        # flakes (0.0 < p), the retry goes through (0.9 >= p).
        class CycleRng:
            def __init__(self, values):
                self.values = list(values)
                self.i = 0

            def random(self):
                v = self.values[self.i % len(self.values)]
                self.i += 1
                return v

        plan = FaultPlan.from_spec("seed=1;table_install_flake:p=0.5,times=1")
        plan.injectors[0].rng = CycleRng([0.0, 0.9])
        _pipeline, report, registry = serve_with(
            split, artifacts, faults=plan, cadence=3, stage_retries=2
        )
        assert report.n_swaps > 0
        assert report.n_rollbacks == 0
        # Each swap needed exactly one retry: fail once, succeed on the
        # second attempt.
        assert all(e.attempts == 2 for e in report.swap_events)
        counters = registry.counters_dict()
        assert counters["runtime.stage_retries"] == len(report.swap_events)

    def test_persistent_flake_exhausts_retries_and_degrades(
        self, split, artifacts
    ):
        plan = FaultPlan.from_spec("seed=1;table_install_flake:p=1,times=10")
        pipeline, report, registry = serve_with(
            split, artifacts, faults=plan, cadence=3, stage_retries=2
        )
        assert report.n_rollbacks > 0
        assert report.n_swaps == 0
        counters = registry.counters_dict()
        assert counters["degraded.swap_aborted"] == report.n_rollbacks
        assert pipeline._staged is None  # no residue from the aborted swap
        assert report.n_packets == len(split.stream_trace.packets)


class TestZeroFaultTransparency:
    ALL_DISABLED = (
        "digest_loss:p=0;digest_dup:p=0;digest_reorder:p=0;digest_delay:p=0;"
        "store_pressure:p=0;register_saturation:p=0;retrain_failure:p=0;"
        "artifact_corruption:p=0;table_install_flake:p=0"
    )

    def test_disabled_plan_is_bit_identical_to_no_plan(self, split, artifacts):
        """The hooks must be pure overhead when nothing fires: identical
        decisions AND identical telemetry counters, even with the digest
        channel interposed and the retrain path exercised."""
        plan = FaultPlan.from_spec(self.ALL_DISABLED)
        _p1, with_plan, reg_plan = serve_with(
            split, artifacts, faults=plan, cadence=2
        )
        _p2, without, reg_none = serve_with(split, artifacts, cadence=2)

        np.testing.assert_array_equal(with_plan.y_pred, without.y_pred)
        np.testing.assert_array_equal(with_plan.y_true, without.y_true)
        assert with_plan.n_chunks == without.n_chunks
        assert with_plan.n_swaps == without.n_swaps
        assert with_plan.fault_counts == {}
        assert reg_plan.counters_dict() == reg_none.counters_dict()

    def test_disabled_channel_delivers_everything(self, split, artifacts):
        plan = FaultPlan.from_spec("digest_loss:p=0;digest_delay:p=0")
        serve_with(split, artifacts, faults=plan)
        ch = plan.channel
        assert ch.sent == ch.delivered
        assert ch.dropped == ch.duplicated == ch.pending == 0


class TestOverflowDegradation:
    """The configurable degradation mode under store exhaustion (the
    orange path with every slot taken)."""

    def run(self, split, artifacts, policy):
        return serve_with(
            split, artifacts, n_slots=4, overflow_policy=policy
        )

    def test_fail_open_counts_degraded_packets(self, split, artifacts):
        pipeline, report, registry = self.run(split, artifacts, "fail_open")
        assert pipeline.degraded_packets > 0
        assert (
            registry.counters_dict()["degraded.store_overflow"]
            == pipeline.degraded_packets
        )
        assert report.n_packets == len(split.stream_trace.packets)

    def test_fail_closed_flags_untracked_flows(self, split, artifacts):
        _p_open, open_report, _r1 = self.run(split, artifacts, "fail_open")
        _p_closed, closed_report, _r2 = self.run(split, artifacts, "fail_closed")
        # fail_closed marks what fail_open waves through: strictly more
        # malicious verdicts, never fewer.
        assert int(closed_report.y_pred.sum()) >= int(open_report.y_pred.sum())
        assert recall(closed_report.y_true, closed_report.y_pred) >= recall(
            open_report.y_true, open_report.y_pred
        )
