"""Unit behaviour of each injector class and the faulty digest channel."""

import numpy as np
import pytest

from repro.datasets.packet import FiveTuple
from repro.faults import (
    ArtifactCorruption,
    DigestDelay,
    DigestDuplication,
    DigestLoss,
    DigestReorder,
    FaultyDigestChannel,
    KillSwitch,
    RegisterSaturation,
    RetrainFailure,
    RetrainFaultError,
    SimulatedKill,
    StorePressure,
    TableInstallFlake,
    TransientFaultError,
)
from repro.switch.pipeline import Digest, _check_table_quantizer
from repro.switch.storage import LABEL_MALICIOUS, LABEL_UNDECIDED, FlowStateStore
from tests.faults.common import compile_artifacts, make_split


def bound(injector, seed=0):
    injector.bind(np.random.default_rng(seed))
    return injector


def populated_store(n_flows=24, decided_every=3):
    """A store tracking *n_flows* flows, every third one decided.

    Double-hash collisions can reject an insert; colliding flows are
    simply skipped — the tests only need a mixed population.
    """
    store = FlowStateStore(n_slots=256)
    inserted = 0
    for i in range(n_flows * 2):
        if inserted >= n_flows:
            break
        ft = FiveTuple(0x0A000001 + i, 0x0A0000FF, 1000 + i, 80, 6)
        state, collided, _resident = store.lookup_or_create(ft)
        if collided:
            continue
        if inserted % decided_every == 0:
            state.label = LABEL_MALICIOUS
        inserted += 1
    assert inserted == n_flows
    return store


class TestBaseInjector:
    def test_p_validated(self):
        with pytest.raises(ValueError, match="p must be"):
            DigestLoss(p=-0.1)
        with pytest.raises(ValueError, match="p must be"):
            DigestLoss(p=1.01)

    def test_zero_p_never_draws(self):
        """The disabled path must not touch the generator — both for the
        <2% overhead budget and for resume-stable RNG positions."""
        inj = DigestLoss(p=0.0)
        inj.rng = None  # applies() would crash if it drew
        assert inj.applies() is False
        assert not inj.active

    def test_certain_p_always_applies(self):
        inj = bound(DigestLoss(p=1.0))
        assert all(inj.applies() for _ in range(10))

    def test_state_round_trip_continues_stream(self):
        a = bound(DigestLoss(p=0.5), seed=3)
        for _ in range(7):
            a.applies()
        a.record(2)
        b = bound(DigestLoss(p=0.5), seed=99)
        b.load_state(a.state_dict())
        assert b.fired == 2
        assert [a.applies() for _ in range(20)] == [b.applies() for _ in range(20)]

    def test_load_state_rejects_wrong_name(self):
        b = bound(DigestDuplication(p=0.5))
        with pytest.raises(ValueError, match="does not match"):
            b.load_state(bound(DigestLoss(p=0.5)).state_dict())


class TestChunkInjectors:
    def test_at_pins_a_chunk_without_rng(self):
        inj = StorePressure(at=4)  # p=0: deterministic, no generator use
        assert inj.active
        assert [inj.due(i) for i in range(6)] == [False] * 4 + [True, False]

    def test_p_draws_once_per_chunk_regardless_of_at(self):
        """The generator's position must be a function of the chunk
        index alone — `at` matches may not skip draws."""
        a = bound(StorePressure(p=0.3, at=2), seed=7)
        b = bound(StorePressure(p=0.3), seed=7)
        for i in range(30):
            a.due(i)
            b.due(i)
        # Same stream position afterwards: next draws agree.
        assert a.rng.random() == b.rng.random()

    def test_store_pressure_evicts_only_undecided(self):
        store = populated_store()
        decided_before = len(store._occupied_positions(lambda s: s.is_decided()))
        inj = bound(StorePressure(p=1.0, fraction=0.5))
        evicted = store.force_evict(inj.rng, inj.fraction)
        assert evicted > 0
        assert store.forced_evictions == evicted
        # Every decided flow survived; only undecided slots were freed.
        assert (
            len(store._occupied_positions(lambda s: s.is_decided()))
            == decided_before
        )

    def test_register_saturation_wipes_decided_labels(self):
        store = populated_store()
        decided_before = len(store._occupied_positions(lambda s: s.is_decided()))
        occupancy_before = store.occupancy()
        inj = bound(RegisterSaturation(p=1.0, fraction=0.5))
        wiped = store.saturate_labels(inj.rng, inj.fraction)
        assert 0 < wiped <= decided_before
        assert store.label_wipes == wiped
        # Labels reverted, but no slot was freed: flows re-classify.
        assert store.occupancy() == occupancy_before
        assert (
            len(store._occupied_positions(lambda s: s.label == LABEL_UNDECIDED))
            >= wiped
        )

    def test_fraction_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            StorePressure(fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            RegisterSaturation(fraction=1.5)

    def test_kill_switch_counts_processed_chunks(self):
        inj = KillSwitch(at=2)
        inj.on_chunk_end(None, 0)
        inj.on_chunk_end(None, 1)
        with pytest.raises(SimulatedKill):
            inj.on_chunk_end(None, 2)
        assert inj.fired == 1

    def test_kill_switch_is_not_a_fault_error(self):
        """SimulatedKill must unwind past `except Exception` handlers —
        only BaseException semantics model a SIGKILL."""
        assert issubclass(SimulatedKill, BaseException)
        assert not issubclass(SimulatedKill, Exception)

    def test_kill_switch_countdown_is_process_local(self):
        """A resumed process restarts the countdown (the checkpoint of
        the killed chunk was never written, so a global countdown would
        kill every resume forever)."""
        inj = KillSwitch(at=0)
        with pytest.raises(SimulatedKill):
            inj.on_chunk_end(None, 0)
        restored = KillSwitch(at=0)
        restored.load_state(inj.state_dict())
        assert restored._seen == 0
        with pytest.raises(SimulatedKill):
            restored.on_chunk_end(None, 5)


class TestControlPlaneInjectors:
    def test_retrain_failure_raises_and_counts(self):
        inj = bound(RetrainFailure(p=1.0))
        with pytest.raises(RetrainFaultError):
            inj.before_retrain()
        assert inj.fired == 1

    def test_artifact_corruption_is_detectable(self):
        """The corrupted artifacts must *fail* the pipeline's install
        check — a corruption validation cannot see would defeat the
        ROLLBACK arm the injector exists to exercise."""
        split = make_split(seed=23, n_benign_flows=20)
        artifacts = compile_artifacts(split.train_flows)
        inj = bound(ArtifactCorruption(p=1.0))
        bad = inj.corrupt(artifacts)
        assert inj.fired == 1
        assert bad.fl_rules is artifacts.fl_rules  # rules untouched
        with pytest.raises(ValueError, match="fingerprint"):
            _check_table_quantizer("FL", bad.fl_rules, bad.fl_quantizer)
        # The original pair still validates — corrupt() did not mutate it.
        _check_table_quantizer("FL", artifacts.fl_rules, artifacts.fl_quantizer)

    def test_install_flake_holds_for_times_attempts(self):
        inj = bound(TableInstallFlake(p=1.0, times=3))
        for _ in range(3):
            with pytest.raises(TransientFaultError):
                inj.before_table_install()
        # The consecutive-failure hold is exhausted: the next attempt is
        # back to an independent Bernoulli draw.
        assert inj._remaining == 0
        assert inj.fired == 3

    def test_install_flake_state_round_trip(self):
        inj = bound(TableInstallFlake(p=1.0, times=2))
        with pytest.raises(TransientFaultError):
            inj.before_table_install()
        restored = bound(TableInstallFlake(p=1.0, times=2), seed=50)
        restored.load_state(inj.state_dict())
        assert restored._remaining == 1
        with pytest.raises(TransientFaultError):
            restored.before_table_install()


def _digest(i, label=LABEL_MALICIOUS):
    return Digest(
        five_tuple=FiveTuple(0x0A000001, 0x0A000002, 40000 + i, 80, 6),
        label=label,
        timestamp=float(i),
    )


class Recorder:
    """Minimal stand-in for the pipeline+controller pair."""

    def __init__(self):
        self.received = []
        self.digest_channel = None
        self.controller = self

    def handle_digest(self, digest):
        self.received.append(digest)


def channel_with(**inj):
    channel = FaultyDigestChannel(**{k: bound(v, seed=i) for i, (k, v) in
                                     enumerate(sorted(inj.items()))})
    recorder = Recorder()
    channel.attach(recorder)
    return channel, recorder


class TestFaultyDigestChannel:
    def test_attach_wires_the_pipeline(self):
        channel, recorder = channel_with(loss=DigestLoss(p=0.0))
        assert recorder.digest_channel is channel

    def test_lossless_channel_is_passthrough(self):
        channel, recorder = channel_with()
        for i in range(5):
            channel.send(_digest(i))
        assert [d.timestamp for d in recorder.received] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert channel.sent == channel.delivered == 5
        assert channel.dropped == channel.duplicated == channel.pending == 0

    def test_loss_drops_and_counts(self):
        channel, recorder = channel_with(loss=DigestLoss(p=1.0))
        for i in range(4):
            channel.send(_digest(i))
        assert recorder.received == []
        assert channel.dropped == 4
        assert channel.loss.fired == 4

    def test_duplication_delivers_twice(self):
        channel, recorder = channel_with(dup=DigestDuplication(p=1.0))
        channel.send(_digest(0))
        assert len(recorder.received) == 2
        assert channel.duplicated == 1

    def test_reorder_swaps_adjacent_digests(self):
        channel, recorder = channel_with(reorder=DigestReorder(p=1.0))
        channel.send(_digest(0))
        channel.send(_digest(1))
        channel.send(_digest(2))
        # Every send holds the newcomer and releases the previous hold:
        # delivery runs one behind, in order of displacement.
        assert [d.timestamp for d in recorder.received] == [0.0, 1.0]
        assert channel.pending == 1
        channel.on_chunk_end()  # boundary releases the hold
        assert [d.timestamp for d in recorder.received] == [0.0, 1.0, 2.0]
        assert channel.pending == 0

    def test_delay_ages_at_chunk_boundaries(self):
        channel, recorder = channel_with(delay=DigestDelay(p=1.0, chunks=2))
        channel.send(_digest(0))
        assert recorder.received == [] and channel.pending == 1
        channel.on_chunk_end()
        assert recorder.received == []  # one boundary aged, one to go
        channel.on_chunk_end()
        assert len(recorder.received) == 1

    def test_flush_delivers_the_tail(self):
        """End of stream loses only what the loss injector dropped —
        held and delayed digests always arrive."""
        channel, recorder = channel_with(
            delay=DigestDelay(p=1.0, chunks=5), reorder=DigestReorder(p=0.0)
        )
        for i in range(3):
            channel.send(_digest(i))
        assert recorder.received == []
        channel.flush()
        assert len(recorder.received) == 3
        assert channel.pending == 0

    def test_accounting_invariant_under_all_faults(self):
        channel, _recorder = channel_with(
            loss=DigestLoss(p=0.3),
            dup=DigestDuplication(p=0.3),
            reorder=DigestReorder(p=0.3),
            delay=DigestDelay(p=0.3, chunks=2),
        )
        for i in range(200):
            channel.send(_digest(i))
            if i % 20 == 19:
                channel.on_chunk_end()
            assert (
                channel.sent + channel.duplicated
                == channel.delivered + channel.dropped + channel.pending
            )
        channel.flush()
        assert channel.pending == 0
        assert (
            channel.sent + channel.duplicated == channel.delivered + channel.dropped
        )

    def test_state_round_trip_preserves_pending(self):
        channel, _recorder = channel_with(
            delay=DigestDelay(p=1.0, chunks=3), reorder=DigestReorder(p=0.0)
        )
        for i in range(4):
            channel.send(_digest(i))
        doc = channel.state_dict()

        restored, recorder2 = channel_with(
            delay=DigestDelay(p=1.0, chunks=3), reorder=DigestReorder(p=0.0)
        )
        restored.load_state(doc)
        assert restored.pending == channel.pending
        assert restored.sent == 4
        restored.flush()
        assert len(recorder2.received) == 4
