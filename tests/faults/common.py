"""Shared fixtures for the fault-injection suite.

The chaos scenarios need many *fresh* pipelines serving the *same*
stream under different fault plans, so everything expensive (the drift
split and the whitelist compile) is computed once per module and each
scenario rebuilds a cheap pipeline from the shared artifacts.  The
stub retrainer skips model fitting entirely: it hands back the same
install-ready artifacts every time, which is exactly what the
control-plane fault paths (corruption, install flakes, retries,
rollback) need to be exercised against without minutes of training.
"""

import numpy as np

from repro.core.deployment import SwitchArtifacts
from repro.datasets import make_drift_split
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.switch.controller import Controller
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from tests.runtime.common import percentile_rules

PKT_COUNT_THRESHOLD = 8
TIMEOUT = 5.0


def make_split(seed=19, n_benign_flows=60, shift="none"):
    return make_drift_split(
        "Mirai", n_benign_flows=n_benign_flows, shift=shift, seed=seed
    )


def compile_artifacts(train_flows) -> SwitchArtifacts:
    """Percentile-whitelist artifacts over the split's training flows —
    deterministic and compile-only (no model fitting)."""
    fx = FlowFeatureExtractor(
        feature_set="switch",
        pkt_count_threshold=PKT_COUNT_THRESHOLD,
        timeout=TIMEOUT,
    )
    x, _ = fx.extract_flows(train_flows)
    quantizer = IntegerQuantizer(bits=12, space="log").fit(
        np.vstack([x, x * 1.5 + 1.0])  # headroom so rule edges stay in-domain
    )
    return SwitchArtifacts(
        fl_rules=percentile_rules(x).quantize(quantizer), fl_quantizer=quantizer
    )


def fresh_pipeline(
    artifacts: SwitchArtifacts,
    n_slots: int = 128,
    overflow_policy: str = "score",
) -> SwitchPipeline:
    """A new pipeline + controller serving *artifacts* from scratch."""
    pipeline = SwitchPipeline(
        fl_rules=artifacts.fl_rules,
        fl_quantizer=artifacts.fl_quantizer,
        pl_rules=artifacts.pl_rules,
        pl_quantizer=artifacts.pl_quantizer,
        config=PipelineConfig(
            pkt_count_threshold=PKT_COUNT_THRESHOLD,
            timeout=TIMEOUT,
            n_slots=n_slots,
            overflow_policy=overflow_policy,
        ),
    )
    Controller(pipeline)
    return pipeline


class StubRetrainer:
    """Drop-in retrainer that skips fitting: every retrain returns the
    same (valid, install-ready) artifacts instantly.

    The control-plane fault paths only care that ``retrain()`` produces
    something the pipeline will stage — corruption, flakes, retries, and
    rollback all happen *after* this call.
    """

    def __init__(self, artifacts: SwitchArtifacts) -> None:
        self.artifacts = artifacts
        self.retrains = 0

    def __len__(self) -> int:
        return 10**6  # always enough flows

    def observe(self, chunk_trace) -> None:
        pass

    def retrain(self) -> SwitchArtifacts:
        self.retrains += 1
        return self.artifacts


def recall(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    positives = int(np.sum(y_true == 1))
    if not positives:
        return 0.0
    return float(np.sum((y_true == 1) & (y_pred == 1)) / positives)
