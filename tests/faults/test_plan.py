"""Fault-plan construction: the ``--faults`` spec grammar, seeded
determinism, and checkpoint state round-trips."""

import pytest

from repro.faults import (
    INJECTOR_TYPES,
    DigestDelay,
    DigestLoss,
    FaultPlan,
    KillSwitch,
    StorePressure,
    TableInstallFlake,
    parse_fault_spec,
)


class TestSpecGrammar:
    def test_full_spec(self):
        seed, clauses = parse_fault_spec(
            "seed=7;digest_loss:p=0.2;store_pressure:p=0.5,fraction=0.3;kill:at=4"
        )
        assert seed == 7
        assert clauses == [
            ("digest_loss", {"p": 0.2}),
            ("store_pressure", {"p": 0.5, "fraction": 0.3}),
            ("kill", {"at": 4}),
        ]

    def test_int_params_stay_int(self):
        _seed, clauses = parse_fault_spec("digest_delay:p=1,chunks=2")
        assert clauses[0][1]["chunks"] == 2
        assert isinstance(clauses[0][1]["chunks"], int)

    def test_seed_defaults_to_none_then_zero(self):
        seed, _clauses = parse_fault_spec("digest_loss:p=0.1")
        assert seed is None
        assert FaultPlan.from_spec("digest_loss:p=0.1").seed == 0

    def test_whitespace_and_empty_clauses_tolerated(self):
        _seed, clauses = parse_fault_spec(" digest_loss : p=0.1 ; ; ")
        assert clauses == [("digest_loss", {"p": 0.1})]

    def test_unknown_injector_lists_known_names(self):
        with pytest.raises(ValueError, match="unknown fault injector"):
            parse_fault_spec("bitflip:p=0.5")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_spec("digest_loss:p")

    def test_non_number_param_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_fault_spec("digest_loss:p=high")

    def test_registry_covers_every_injector(self):
        assert set(INJECTOR_TYPES) == {
            "digest_loss",
            "digest_dup",
            "digest_reorder",
            "digest_delay",
            "store_pressure",
            "register_saturation",
            "kill",
            "retrain_failure",
            "artifact_corruption",
            "table_install_flake",
        }


class TestPlanConstruction:
    def test_from_spec_builds_typed_injectors(self):
        plan = FaultPlan.from_spec(
            "seed=3;digest_loss:p=0.2;digest_delay:p=0.1,chunks=2;kill:at=5"
        )
        assert [type(i) for i in plan.injectors] == [
            DigestLoss,
            DigestDelay,
            KillSwitch,
        ]
        assert plan.seed == 3
        assert plan.spec is not None
        assert plan.channel is not None  # digest injectors present

    def test_no_digest_injectors_no_channel(self):
        plan = FaultPlan.from_spec("store_pressure:p=0.5")
        assert plan.channel is None

    def test_every_injector_gets_a_bound_rng(self):
        plan = FaultPlan.from_spec("digest_loss:p=0.2;store_pressure:p=0.5")
        assert all(i.rng is not None for i in plan.injectors)

    def test_duplicate_digest_injectors_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([DigestLoss(p=0.1), DigestLoss(p=0.2)])

    def test_bad_parameters_propagate(self):
        with pytest.raises(ValueError, match="p must be"):
            FaultPlan.from_spec("digest_loss:p=1.5")
        with pytest.raises(ValueError, match="fraction"):
            FaultPlan.from_spec("store_pressure:p=0.5,fraction=0")
        with pytest.raises(ValueError, match="times"):
            FaultPlan.from_spec("table_install_flake:p=0.5,times=0")


class TestDeterminism:
    def test_same_spec_same_schedule(self):
        """Two plans built from one spec must replay the identical fault
        schedule — the property every chaos test leans on."""
        spec = "seed=11;store_pressure:p=0.4;register_saturation:p=0.3"
        a, b = FaultPlan.from_spec(spec), FaultPlan.from_spec(spec)
        fires_a = [inj.due(i) for i in range(50) for inj in a.injectors]
        fires_b = [inj.due(i) for i in range(50) for inj in b.injectors]
        assert fires_a == fires_b
        assert any(fires_a)  # non-trivial schedule

    def test_different_seed_different_schedule(self):
        a = FaultPlan.from_spec("seed=1;store_pressure:p=0.4")
        b = FaultPlan.from_spec("seed=2;store_pressure:p=0.4")
        fires_a = [a.injectors[0].due(i) for i in range(100)]
        fires_b = [b.injectors[0].due(i) for i in range(100)]
        assert fires_a != fires_b

    def test_injector_order_fixes_fanout(self):
        """Seeds fan out in clause order, so each injector's stream is
        independent of the *parameters* of its siblings."""
        a = FaultPlan.from_spec("seed=5;digest_loss:p=0.5;store_pressure:p=0.4")
        b = FaultPlan.from_spec("seed=5;digest_loss:p=0.9;store_pressure:p=0.4")
        sp_a, sp_b = a.injectors[1], b.injectors[1]
        assert [sp_a.due(i) for i in range(50)] == [sp_b.due(i) for i in range(50)]


class TestPlanState:
    def test_state_round_trip(self):
        spec = "seed=9;store_pressure:p=0.5;table_install_flake:p=1,times=2"
        plan = FaultPlan.from_spec(spec)
        # Advance the world a little: draw some chunk decisions, arm the
        # flake, then snapshot.
        for i in range(5):
            plan.injectors[0].due(i)
        with pytest.raises(Exception):
            plan.before_table_install()  # arms _remaining
        doc = plan.state_dict()

        restored = FaultPlan.from_spec(spec)
        restored.load_state(doc)
        # The restored plan continues the exact RNG streams…
        assert [plan.injectors[0].due(i) for i in range(5, 25)] == [
            restored.injectors[0].due(i) for i in range(5, 25)
        ]
        # …and the flake's consecutive-failure countdown.
        assert restored.injectors[1]._remaining == plan.injectors[1]._remaining
        assert restored.total_fired() == plan.total_fired()

    def test_load_state_rejects_shape_mismatch(self):
        plan = FaultPlan.from_spec("digest_loss:p=0.1")
        other = FaultPlan.from_spec("digest_loss:p=0.1;store_pressure:p=0.5")
        with pytest.raises(ValueError, match="injector states"):
            plan.load_state(other.state_dict())

    def test_load_state_rejects_name_mismatch(self):
        plan = FaultPlan.from_spec("digest_loss:p=0.1")
        other = FaultPlan.from_spec("digest_dup:p=0.1")
        with pytest.raises(ValueError, match="does not match"):
            plan.load_state(other.state_dict())

    def test_counts_reports_only_fired(self):
        plan = FaultPlan([StorePressure(p=0.0, at=3), TableInstallFlake(p=0.0)])
        assert plan.counts() == {}
        plan.injectors[0].record(2)
        assert plan.counts() == {"faults.store_pressure": 2}
        assert plan.total_fired() == 2
