"""JSONL sink round-trips and report build/write/load/format."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    SCHEMA,
    JsonlSink,
    MetricRegistry,
    build_report,
    format_report,
    load_events,
    load_report,
    run_report,
    span,
    use_registry,
    write_report,
)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "a", "x": 1})
            sink.emit({"kind": "b", "y": "text"})
        assert sink.emitted == 2
        records = load_events(path)
        assert records == [{"kind": "a", "x": 1}, {"kind": "b", "y": "text"}]

    def test_wall_clock_stamp(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "a"})
        (record,) = load_events(path)
        assert record["ts"] > 0

    def test_numpy_values_serialise(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "np", "i": np.int64(3), "f": np.float32(0.5),
                       "a": np.array([1, 2])})
        (record,) = load_events(path)
        assert record == {"kind": "np", "i": 3, "f": 0.5, "a": [1, 2]}

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "first"})
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "second"})
        assert [r["kind"] for r in load_events(path)] == ["first", "second"]

    def test_registry_events_flow_through_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = MetricRegistry()
        with JsonlSink(path, stamp=False) as sink:
            reg.attach_sink(sink)
            reg.event("trained", loss=0.25)
        assert load_events(path) == [{"kind": "trained", "loss": 0.25}]


class TestReport:
    def _populated_registry(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("stage", mode="test"):
                reg.counter("pkts").inc(10)
                reg.gauge("fill").set(0.5)
                reg.histogram("loss", edges=(1.0,)).observe(0.2)
                reg.event("done", ok=True)
        return reg

    def test_build_report_shape(self):
        report = build_report(self._populated_registry(), meta={"run": "t1"})
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"run": "t1"}
        assert report["counters"] == {"pkts": 10}
        assert report["gauges"] == {"fill": 0.5}
        assert report["histograms"]["loss"]["count"] == 1
        assert report["spans"][0]["name"] == "stage"
        assert report["events"] == [{"kind": "done", "ok": True}]
        assert report["dropped_events"] == 0

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "telemetry.json"  # parent dirs created
        written = write_report(path, self._populated_registry(), meta={"a": 1})
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a telemetry report"):
            load_report(path)

    def test_run_report_writes_on_exit(self, tmp_path):
        path = tmp_path / "telemetry.json"
        with run_report(path, meta={"cmd": "test"}) as reg:
            assert reg.enabled
            reg.counter("n").inc(2)
        report = load_report(path)
        assert report["counters"] == {"n": 2}
        assert report["meta"] == {"cmd": "test"}

    def test_run_report_writes_even_on_failure(self, tmp_path):
        path = tmp_path / "telemetry.json"
        with pytest.raises(RuntimeError):
            with run_report(path) as reg:
                reg.counter("partial").inc()
                raise RuntimeError("experiment died")
        assert load_report(path)["counters"] == {"partial": 1}

    def test_run_report_none_path_writes_nothing(self, tmp_path):
        with run_report(None) as reg:
            reg.counter("n").inc()
        assert list(tmp_path.iterdir()) == []
        assert reg.counters_dict() == {"n": 1}

    def test_format_report_mentions_everything(self):
        text = format_report(build_report(self._populated_registry(),
                                          meta={"run": "t1"}))
        for needle in ("run=t1", "stage", "pkts", "fill", "loss", "done"):
            assert needle in text

    def test_format_report_event_cap(self):
        reg = MetricRegistry()
        for i in range(5):
            reg.event("e", i=i)
        text = format_report(build_report(reg), max_events=2)
        assert "5 recorded, showing 2" in text


class TestShardGrouping:
    """Cluster runs tag per-shard metrics ``cluster.shard.<k>.<name>``;
    the report renderer must group them into one block per shard instead
    of interleaving every shard's copy alphabetically."""

    def _registry(self):
        reg = MetricRegistry()
        reg.counter("replay.packets").inc(10)
        reg.counter("cluster.shard.0.switch.path.green").inc(4)
        reg.counter("cluster.shard.1.switch.path.green").inc(6)
        reg.counter("cluster.shard.10.switch.path.green").inc(1)
        reg.gauge("switch.store.occupancy").set(7.0)
        reg.gauge("cluster.shard.1.switch.store.occupancy").set(3.0)
        return reg

    def test_groups_one_block_per_shard(self):
        text = format_report(build_report(self._registry()))
        lines = text.splitlines()
        for needle in ("shard 0:", "shard 1:", "shard 10:"):
            assert any(needle in line for line in lines), needle
        # Tag prefix stripped inside the group; aggregate stays plain.
        shard0 = lines.index(next(l for l in lines if "shard 0:" in l))
        assert "switch.path.green" in lines[shard0 + 1]
        assert "cluster.shard" not in lines[shard0 + 1]
        assert any(
            "replay.packets" in l and "shard" not in l for l in lines
        )

    def test_shards_render_in_numeric_order(self):
        text = format_report(build_report(self._registry()))
        assert text.index("shard 0:") < text.index("shard 1:")
        assert text.index("shard 1:") < text.index("shard 10:")  # 10 after 1

    def test_unparseable_tags_stay_plain(self):
        reg = MetricRegistry()
        reg.counter("cluster.shard.oops").inc(3)
        reg.counter("cluster.shard.x.thing").inc(2)
        reg.counter("cluster.swap_total").inc(1)
        text = format_report(build_report(reg))
        assert "shard " not in text
        assert "cluster.shard.oops" in text
        assert "cluster.shard.x.thing" in text

    def test_shard_only_metrics_still_render_section_header(self):
        reg = MetricRegistry()
        reg.counter("cluster.shard.0.switch.path.red").inc(2)
        text = format_report(build_report(reg))
        assert "counters:" in text
        assert "shard 0:" in text
