"""JSONL sink round-trips and report build/write/load/format."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    SCHEMA,
    JsonlSink,
    MetricRegistry,
    build_report,
    format_report,
    load_events,
    load_report,
    run_report,
    span,
    use_registry,
    write_report,
)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "a", "x": 1})
            sink.emit({"kind": "b", "y": "text"})
        assert sink.emitted == 2
        records = load_events(path)
        assert records == [{"kind": "a", "x": 1}, {"kind": "b", "y": "text"}]

    def test_wall_clock_stamp(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "a"})
        (record,) = load_events(path)
        assert record["ts"] > 0

    def test_numpy_values_serialise(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "np", "i": np.int64(3), "f": np.float32(0.5),
                       "a": np.array([1, 2])})
        (record,) = load_events(path)
        assert record == {"kind": "np", "i": 3, "f": 0.5, "a": [1, 2]}

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "first"})
        with JsonlSink(path, stamp=False) as sink:
            sink.emit({"kind": "second"})
        assert [r["kind"] for r in load_events(path)] == ["first", "second"]

    def test_registry_events_flow_through_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = MetricRegistry()
        with JsonlSink(path, stamp=False) as sink:
            reg.attach_sink(sink)
            reg.event("trained", loss=0.25)
        assert load_events(path) == [{"kind": "trained", "loss": 0.25}]


class TestReport:
    def _populated_registry(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("stage", mode="test"):
                reg.counter("pkts").inc(10)
                reg.gauge("fill").set(0.5)
                reg.histogram("loss", edges=(1.0,)).observe(0.2)
                reg.event("done", ok=True)
        return reg

    def test_build_report_shape(self):
        report = build_report(self._populated_registry(), meta={"run": "t1"})
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"run": "t1"}
        assert report["counters"] == {"pkts": 10}
        assert report["gauges"] == {"fill": 0.5}
        assert report["histograms"]["loss"]["count"] == 1
        assert report["spans"][0]["name"] == "stage"
        assert report["events"] == [{"kind": "done", "ok": True}]
        assert report["dropped_events"] == 0

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "telemetry.json"  # parent dirs created
        written = write_report(path, self._populated_registry(), meta={"a": 1})
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(written))

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a telemetry report"):
            load_report(path)

    def test_run_report_writes_on_exit(self, tmp_path):
        path = tmp_path / "telemetry.json"
        with run_report(path, meta={"cmd": "test"}) as reg:
            assert reg.enabled
            reg.counter("n").inc(2)
        report = load_report(path)
        assert report["counters"] == {"n": 2}
        assert report["meta"] == {"cmd": "test"}

    def test_run_report_writes_even_on_failure(self, tmp_path):
        path = tmp_path / "telemetry.json"
        with pytest.raises(RuntimeError):
            with run_report(path) as reg:
                reg.counter("partial").inc()
                raise RuntimeError("experiment died")
        assert load_report(path)["counters"] == {"partial": 1}

    def test_run_report_none_path_writes_nothing(self, tmp_path):
        with run_report(None) as reg:
            reg.counter("n").inc()
        assert list(tmp_path.iterdir()) == []
        assert reg.counters_dict() == {"n": 1}

    def test_format_report_mentions_everything(self):
        text = format_report(build_report(self._populated_registry(),
                                          meta={"run": "t1"}))
        for needle in ("run=t1", "stage", "pkts", "fill", "loss", "done"):
            assert needle in text

    def test_format_report_event_cap(self):
        reg = MetricRegistry()
        for i in range(5):
            reg.event("e", i=i)
        text = format_report(build_report(reg), max_events=2)
        assert "5 recorded, showing 2" in text
