"""Span tracing: nesting, error capture, and the disabled fast path."""

import pytest

from repro.telemetry import MetricRegistry, get_registry, span, use_registry
from repro.telemetry.tracing import _NULL_SPAN


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("outer", kind="test"):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    pass
        assert len(reg.tracer.roots) == 1
        root = reg.tracer.roots[0]
        assert root.name == "outer"
        assert root.meta == {"kind": "test"}
        assert [c.name for c in root.children] == ["inner_a", "inner_b"]
        assert root.end is not None
        assert root.duration_s >= max(c.duration_s for c in root.children) >= 0.0

    def test_sequential_roots(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in reg.tracer.roots] == ["first", "second"]

    def test_find_descends_depth_first(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
        assert reg.tracer.find("c").name == "c"
        assert reg.tracer.find("a").find("c").name == "c"
        assert reg.tracer.find("missing") is None

    def test_exception_recorded_and_span_closed(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with pytest.raises(KeyError):
                with span("failing"):
                    raise KeyError("x")
        root = reg.tracer.roots[0]
        assert root.meta["error"] == "KeyError"
        assert root.end is not None

    def test_to_dict_shape(self):
        reg = MetricRegistry()
        with use_registry(reg):
            with span("outer", model="iguard"):
                with span("inner"):
                    pass
        d = reg.tracer.roots[0].to_dict()
        assert d["name"] == "outer"
        assert d["meta"] == {"model": "iguard"}
        assert d["duration_s"] >= 0.0
        assert d["children"][0]["name"] == "inner"
        assert "meta" not in d["children"][0]  # empty meta omitted


class TestDisabledPath:
    def test_span_is_shared_noop_when_disabled(self):
        assert get_registry().enabled is False
        s = span("anything", key="value")
        assert s is _NULL_SPAN
        assert span("other") is s
        with s as node:
            assert node is None

    def test_noop_span_records_nothing(self):
        reg = MetricRegistry()
        with span("outside"):  # default registry: disabled
            pass
        assert reg.tracer.roots == []

    def test_spans_bind_to_the_active_registry(self):
        reg_a, reg_b = MetricRegistry(), MetricRegistry()
        with use_registry(reg_a):
            with span("a"):
                pass
        with use_registry(reg_b):
            with span("b"):
                pass
        assert [r.name for r in reg_a.tracer.roots] == ["a"]
        assert [r.name for r in reg_b.tracer.roots] == ["b"]
