"""Registry reads under concurrent writes: the ops-surface contract.

The HTTP ops endpoint snapshots the registry from scraper threads while
the serving thread keeps writing.  These tests hammer the registry from
writer threads and assert every reader-visible invariant the scrape
surface depends on: counters never run backwards between snapshots,
histogram summaries are internally consistent (no torn bucket arrays),
and event sequence numbers stay strictly monotonic through the tail
cursor.
"""

import threading

from repro.telemetry import MetricRegistry


def _hammer(registry, n_iters, stop_evt=None):
    c = registry.counter("load.packets")
    g = registry.gauge("load.depth")
    h = registry.histogram("load.latency", edges=[0.1, 1.0, 10.0])
    for i in range(n_iters):
        c.inc(3)
        g.set(float(i))
        h.observe(float(i % 13))
        registry.event("load.tick", i=i)
        if stop_evt is not None and stop_evt.is_set():
            return


class TestConcurrentSnapshots:
    N_WRITERS = 4
    N_ITERS = 2000

    def test_counters_monotonic_and_histograms_consistent(self):
        registry = MetricRegistry(max_events=256)
        writers = [
            threading.Thread(target=_hammer, args=(registry, self.N_ITERS))
            for _ in range(self.N_WRITERS)
        ]
        for w in writers:
            w.start()

        last_packets = 0
        last_seq = -1
        snapshots = 0
        while any(w.is_alive() for w in writers) or snapshots < 10:
            snap = registry.snapshot()
            packets = snap["counters"].get("load.packets", 0)
            # Counters only ever move forward between two reads.
            assert packets >= last_packets
            last_packets = packets
            # No torn histogram: the summary is taken under one lock, so
            # its parts must agree with each other.
            hist = snap["histograms"].get("load.latency")
            if hist is not None and hist["count"]:
                assert sum(hist["bucket_counts"]) == hist["count"]
                assert hist["min"] <= hist["mean"] <= hist["max"]
            assert snap["last_seq"] >= last_seq
            last_seq = snap["last_seq"]
            snapshots += 1
        for w in writers:
            w.join()

        final = registry.snapshot()
        total = self.N_WRITERS * self.N_ITERS
        assert final["counters"]["load.packets"] == 3 * total
        assert final["histograms"]["load.latency"]["count"] == total
        # Every event got a distinct seq (even the evicted ones).
        assert final["last_seq"] == total - 1

    def test_tail_cursor_sees_strictly_increasing_seqs(self):
        registry = MetricRegistry(max_events=128)
        stop = threading.Event()
        writer = threading.Thread(
            target=_hammer, args=(registry, 5000, stop)
        )
        writer.start()
        try:
            seen = -1
            for _ in range(200):
                events, last_seq = registry.tail(since_seq=seen)
                seqs = [e["seq"] for e in events]
                # Strictly increasing within one read, and strictly past
                # the cursor — the follow stream can never replay or
                # reorder an event.
                assert all(b > a for a, b in zip(seqs, seqs[1:]))
                assert all(s > seen for s in seqs)
                if seqs:
                    seen = seqs[-1]
                assert last_seq >= seen
        finally:
            stop.set()
            writer.join()

    def test_wait_for_events_wakes_on_concurrent_write(self):
        registry = MetricRegistry()
        registry.event("warmup")

        def late_writer():
            registry.event("late", marker=1)

        t = threading.Timer(0.05, late_writer)
        t.start()
        try:
            assert registry.wait_for_events(registry.last_seq, timeout=5.0)
            events, _ = registry.tail(since_seq=0)
            assert [e["kind"] for e in events] == ["late"]
        finally:
            t.join()

    def test_instrument_creation_race_yields_one_instrument(self):
        registry = MetricRegistry()
        barrier = threading.Barrier(8)
        grabbed = []

        def grab():
            barrier.wait()
            grabbed.append(registry.counter("contended"))
            grabbed[-1].inc()

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All callers got the same Counter object, so no increment was
        # lost to a second instance shadowing the first.
        assert all(c is grabbed[0] for c in grabbed)
        assert registry.counters_dict()["contended"] == 8
