"""Registry semantics: instruments, events, snapshots, and scoping."""

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_EDGES,
    MetricRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("a.b")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_same_name_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")

    def test_rejects_negative_increment(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricRegistry()
        g = reg.gauge("level")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        assert isinstance(g.value, float)


class TestHistogram:
    def test_bucket_assignment(self):
        reg = MetricRegistry()
        h = reg.histogram("h", edges=(1.0, 10.0))
        for v in (0.5, 5.0, 5.0, 100.0):
            h.observe(v)
        # 3 buckets: (-inf,1), [1,10), [10,inf).
        assert h.bucket_counts.tolist() == [1, 2, 1]
        assert h.count == 4
        assert h.total == pytest.approx(110.5)
        assert h.vmin == 0.5 and h.vmax == 100.0
        assert h.mean == pytest.approx(110.5 / 4)

    def test_observe_many_matches_scalar_observes(self):
        values = np.array([0.01, 0.5, 2.0, 2.0, 9.0, 50.0])
        reg = MetricRegistry()
        h_scalar = reg.histogram("s", edges=(0.1, 1.0, 10.0))
        h_batch = reg.histogram("b", edges=(0.1, 1.0, 10.0))
        for v in values:
            h_scalar.observe(v)
        h_batch.observe_many(values)
        assert h_scalar.bucket_counts.tolist() == h_batch.bucket_counts.tolist()
        assert h_scalar.count == h_batch.count
        assert h_scalar.total == pytest.approx(h_batch.total)
        assert (h_scalar.vmin, h_scalar.vmax) == (h_batch.vmin, h_batch.vmax)

    def test_observe_many_empty_is_noop(self):
        h = MetricRegistry().histogram("h", edges=(1.0,))
        h.observe_many(np.array([]))
        assert h.count == 0
        assert h.vmin is None

    def test_default_edges(self):
        h = MetricRegistry().histogram("h")
        assert h.edges.tolist() == list(DEFAULT_EDGES)

    def test_edge_validation(self):
        from repro.telemetry import Histogram

        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", edges=(1.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("bad2", edges=())
        # The registry accessor falls back to DEFAULT_EDGES on empty edges.
        assert MetricRegistry().histogram("h", edges=()).edges.size > 0

    def test_summary_round_trips_state(self):
        h = MetricRegistry().histogram("h", edges=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        s = h.summary()
        assert s["count"] == 2
        assert s["bucket_counts"] == [1, 1, 0]
        assert s["mean"] == pytest.approx(1.0)


class TestEvents:
    def test_event_log_is_a_bounded_tail(self):
        reg = MetricRegistry(max_events=2)
        reg.event("a", x=1)
        reg.event("b")
        reg.event("c")
        # Ring semantics: the most recent max_events records survive.
        assert [e["kind"] for e in reg.events] == ["b", "c"]
        assert reg.dropped_events == 1
        assert reg.last_seq == 2

    def test_tail_cursor_and_cap(self):
        reg = MetricRegistry(max_events=4)
        for i in range(6):
            reg.event("e", i=i)
        records, last_seq = reg.tail()
        assert last_seq == 5
        assert [r["seq"] for r in records] == [2, 3, 4, 5]
        assert [r["i"] for r in records] == [2, 3, 4, 5]
        newest, _ = reg.tail(n=2)
        assert [r["seq"] for r in newest] == [4, 5]
        since, last_seq = reg.tail(since_seq=4)
        assert [r["seq"] for r in since] == [5] and last_seq == 5
        # A cursor past everything retained still reports the live seq.
        none_left, last_seq = reg.tail(since_seq=5)
        assert none_left == [] and last_seq == 5

    def test_wait_for_events(self):
        reg = MetricRegistry()
        reg.event("a")
        assert reg.wait_for_events(since_seq=-1, timeout=0.01)
        assert not reg.wait_for_events(since_seq=0, timeout=0.01)

    def test_snapshot_is_report_shaped(self):
        reg = MetricRegistry()
        reg.counter("c").inc(3)
        reg.event("boot")
        snap = reg.snapshot(meta={"run": 1}, max_events=5)
        assert snap["schema"] == "repro.telemetry/v1"
        assert snap["counters"] == {"c": 3}
        assert snap["events"][0]["kind"] == "boot"
        assert snap["events"][0]["seq"] == 0
        assert snap["last_seq"] == 0

    def test_sink_receives_all_events_past_the_cap(self):
        emitted = []

        class ListSink:
            def emit(self, record):
                emitted.append(record)

        reg = MetricRegistry(max_events=1)
        reg.attach_sink(ListSink())
        reg.event("a")
        reg.event("b")
        assert len(reg.events) == 1
        assert [e["kind"] for e in emitted] == ["a", "b"]


class TestSnapshots:
    def test_snapshots_are_sorted_plain_dicts(self):
        reg = MetricRegistry()
        reg.counter("z").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("m").set(0.5)
        assert list(reg.counters_dict()) == ["a", "z"]
        assert reg.counters_dict() == {"a": 1, "z": 2}
        assert reg.gauges_dict() == {"m": 0.5}
        assert "h" not in reg.histograms_dict()

    def test_two_identical_runs_snapshot_identically(self):
        def run(reg):
            reg.counter("n").inc(3)
            reg.gauge("g").set(7)
            reg.histogram("h", edges=(1.0,)).observe(2.0)

        a, b = MetricRegistry(), MetricRegistry()
        run(a)
        run(b)
        assert a.counters_dict() == b.counters_dict()
        assert a.gauges_dict() == b.gauges_dict()
        assert a.histograms_dict() == b.histograms_dict()


class TestNullRegistry:
    def test_disabled_and_shared_noops(self):
        null = NullRegistry()
        assert null.enabled is False
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b", edges=(1.0,))

    def test_instruments_swallow_writes(self):
        null = NullRegistry()
        null.counter("c").inc(5)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(1.0)
        null.histogram("h").observe_many(np.array([1.0, 2.0]))
        null.event("e", x=1)
        assert null.counters_dict() == {}
        assert null.events == []


class TestGlobalScoping:
    def test_default_is_disabled(self):
        assert get_registry().enabled is False

    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        reg = MetricRegistry()
        with use_registry(reg) as active:
            assert active is reg
            assert get_registry() is reg
        assert get_registry() is before

    def test_use_registry_restores_on_exception(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_none_disables(self):
        previous = set_registry(MetricRegistry())
        try:
            set_registry(None)
            assert get_registry().enabled is False
        finally:
            set_registry(previous)
