"""End-to-end integration tests: the full paper protocol on one attack.

Small workloads keep these under a minute while still exercising every
moving part: traffic generation → features → oracle → guided forest →
distillation → rules → quantisation → switch replay → metrics.
"""

import numpy as np
import pytest

from repro.datasets.splits import make_attack_split, make_trace_split
from repro.eval.harness import (
    TestbedConfig,
    build_pipeline,
    run_adversarial_experiment,
    run_cpu_experiment,
    run_testbed_experiment,
)
from repro.eval.metrics import macro_f1
from repro.switch.runner import replay_trace

TINY_IFOREST_GRID = {
    "n_trees": (30,),
    "subsample_size": (64,),
    "contamination": (0.05, 0.15),
}
TINY_IGUARD_GRID = {
    "n_trees": (7,),
    "subsample_size": (64,),
    "k_aug": (48,),
    "threshold_margin": (2.0,),
    "distil_margin": (1.2,),
}


@pytest.fixture(scope="module")
def testbed_config():
    return TestbedConfig(
        n_benign_flows=220,
        rule_cells=1024,
        iforest_params={"n_trees": 40, "subsample_size": 64, "contamination": 0.1},
        iguard_params={
            "n_trees": 7,
            "subsample_size": 64,
            "k_aug": 48,
            "tau_split": 0.0,
            "threshold_margin": 2.0,
            "distil_margin": 1.2,
        },
    )


class TestCpuProtocol:
    def test_full_cpu_experiment_shape(self):
        result = run_cpu_experiment(
            "UDP DDoS",
            n_benign_flows=220,
            iforest_grid=TINY_IFOREST_GRID,
            iguard_grid=TINY_IGUARD_GRID,
            seed=51,
        )
        assert set(result.metrics) == {"iforest", "magnifier", "iguard"}
        # The paper's headline ordering: iGuard ≈ Magnifier > iForest.
        assert result.metrics["iguard"].roc_auc > result.metrics["iforest"].roc_auc
        assert result.metrics["magnifier"].macro_f1 > 0.5


class TestTestbedProtocol:
    def test_iguard_beats_iforest_on_switch(self, testbed_config):
        split = make_trace_split("Mirai", n_benign_flows=220, seed=52)
        r_ig = run_testbed_experiment(
            "Mirai", "iguard", config=testbed_config, split=split, seed=53
        )
        r_if = run_testbed_experiment(
            "Mirai", "iforest", config=testbed_config, split=split, seed=53
        )
        assert r_ig.metrics.macro_f1 > r_if.metrics.macro_f1
        # Table 1 shape: iGuard's whitelist needs no more TCAM.
        assert r_ig.resources.tcam_pct <= r_if.resources.tcam_pct * 1.5
        assert r_ig.resources.stages == r_if.resources.stages == 12

    def test_pipeline_replay_consistency(self, testbed_config):
        """Replaying the same trace twice through fresh pipelines gives
        identical verdicts (the deployment is deterministic)."""
        split = make_trace_split("UDP DDoS", n_benign_flows=220, seed=54)
        pipe1, _, _ = build_pipeline("iguard", split, config=testbed_config, seed=55)
        pipe2, _, _ = build_pipeline("iguard", split, config=testbed_config, seed=55)
        r1 = replay_trace(split.test_trace, pipe1)
        r2 = replay_trace(split.test_trace, pipe2)
        np.testing.assert_array_equal(r1.y_pred, r2.y_pred)

    def test_rule_model_agreement_on_flows(self, testbed_config):
        """The deployed whitelist classifies test flows like the model."""
        from repro.eval.harness import _compile_model_rules, _train_features
        from repro.features.flow_features import FlowFeatureExtractor

        split = make_trace_split("Mirai", n_benign_flows=220, seed=56)
        x_train, extractor = _train_features(split, testbed_config)
        ruleset, model = _compile_model_rules("iguard", x_train, testbed_config, seed=57)
        flows = list(split.test_trace.flows().values())
        x_test, _y = extractor.extract_flows(flows)
        agreement = np.mean(model.predict(x_test) == ruleset.predict(x_test))
        assert agreement > 0.85


class TestAdversarialProtocol:
    def test_lowrate_variant_runs(self, testbed_config):
        r = run_adversarial_experiment(
            "UDP DDoS", "iguard", "lowrate_100", config=testbed_config, seed=58
        )
        assert 0.0 <= r.metrics.macro_f1 <= 1.0

    def test_unknown_variant_raises(self, testbed_config):
        with pytest.raises(KeyError):
            run_adversarial_experiment("Mirai", "iguard", "nope", config=testbed_config)
