"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_attacks_lists_fifteen(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 15
        assert "Mirai" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_train_synthetic(self, capsys):
        assert main(["train", "--flows", "120", "--trees", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "whitelist rules" in out

    def test_train_from_pcap(self, tmp_path, capsys):
        from repro.datasets.benign import generate_benign_trace
        from repro.datasets.pcap import write_pcap

        path = str(tmp_path / "benign.pcap")
        write_pcap(path, generate_benign_trace(120, seed=2))
        assert main(["train", "--pcap", path, "--trees", "3", "--seed", "2"]) == 0
        assert "loaded" in capsys.readouterr().out

    def test_export_writes_artifacts(self, tmp_path, capsys):
        p4 = str(tmp_path / "x.p4")
        entries = str(tmp_path / "x.json")
        assert main(
            ["export", "--p4", p4, "--entries", entries, "--flows", "120", "--seed", "3"]
        ) == 0
        assert "table whitelist" in open(p4).read()
        assert isinstance(json.load(open(entries)), list)

    def test_deploy_runs(self, capsys):
        assert main(["deploy", "OS scan", "--flows", "150", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "per-packet macro F1" in out
        assert "paths:" in out

    def test_serve_runs_with_cadence_retrain(self, capsys):
        assert main(
            ["serve", "UDP DDoS", "--flows", "150", "--chunk-size", "800",
             "--drift", "0", "--cadence", "2", "--max-swaps", "1", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "served" in out and "chunks" in out
        assert "swaps=1" in out
        assert "cadence -> swapped" in out
        assert "per-packet macro F1" in out

    def test_export_bundle_roundtrips_through_deploy_and_serve(
        self, tmp_path, capsys
    ):
        bundle = str(tmp_path / "bundle")
        assert main(
            ["export", "--p4", str(tmp_path / "x.p4"),
             "--entries", str(tmp_path / "x.json"),
             "--bundle", bundle, "--flows", "150", "--seed", "5"]
        ) == 0
        assert f"saved model bundle to {bundle}" in capsys.readouterr().out

        assert main(["deploy", "OS scan", "--model", bundle,
                     "--flows", "150", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert f"loaded bundle {bundle}" in out
        assert "per-packet macro F1" in out

        assert main(["serve", "OS scan", "--model", bundle, "--flows", "120",
                     "--chunk-size", "900", "--drift", "0", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert f"loaded bundle {bundle}" in out
        assert "served" in out


class TestTelemetryFlag:
    def test_train_writes_report(self, tmp_path, capsys):
        from repro.telemetry import load_report

        path = str(tmp_path / "train.telemetry.json")
        assert main(
            ["train", "--flows", "120", "--trees", "3", "--seed", "1",
             "--telemetry", path]
        ) == 0
        assert f"telemetry report written to {path}" in capsys.readouterr().out
        report = load_report(path)
        assert report["meta"]["command"] == "train"
        assert report["meta"]["flows"] == 120
        assert "telemetry" not in report["meta"]
        assert report["counters"]["nn.fits"] >= 1

    def test_deploy_report_counters_match_paths(self, tmp_path, capsys):
        from repro.telemetry import load_report

        path = str(tmp_path / "deploy.telemetry.json")
        assert main(
            ["deploy", "OS scan", "--flows", "150", "--seed", "4",
             "--telemetry", path]
        ) == 0
        out = capsys.readouterr().out
        report = load_report(path)
        # The printed path counts and the report's counters are the same
        # numbers (the counters are deltas of the pipeline's own state).
        import ast

        printed = ast.literal_eval(out.split("paths: ", 1)[1].splitlines()[0])
        for p, count in printed.items():
            assert report["counters"][f"switch.path.{p}"] == count
        names = {s["name"] for s in report["spans"]}
        assert {"dataset", "train", "compile", "replay", "metrics"} <= names

    def test_serve_report_has_runtime_counters(self, tmp_path, capsys):
        from repro.telemetry import load_report

        path = str(tmp_path / "serve.telemetry.json")
        assert main(
            ["serve", "UDP DDoS", "--flows", "120", "--chunk-size", "900",
             "--drift", "0", "--seed", "4", "--telemetry", path]
        ) == 0
        report = load_report(path)
        assert report["meta"]["command"] == "serve"
        assert report["counters"]["runtime.chunks"] >= 1
        assert report["counters"]["runtime.packets"] >= 1
        names = {s["name"] for s in report["spans"]}
        assert "serve" in names

    def test_telemetry_disabled_after_run(self, tmp_path):
        from repro.telemetry import get_registry

        path = str(tmp_path / "t.json")
        main(["train", "--flows", "120", "--trees", "3", "--seed", "1",
              "--telemetry", path])
        assert get_registry().enabled is False  # registry scope restored

    def test_report_subcommand_pretty_prints(self, tmp_path, capsys):
        path = str(tmp_path / "train.telemetry.json")
        main(["train", "--flows", "120", "--trees", "3", "--seed", "1",
              "--telemetry", path])
        capsys.readouterr()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "counters:" in out
        assert "nn.fits" in out

    def test_report_rejects_non_report_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError, match="not a telemetry report"):
            main(["report", str(path)])


class TestClusterCli:
    def test_serve_with_shards_prints_distribution(self, capsys):
        assert main(
            ["serve", "UDP DDoS", "--flows", "150", "--chunk-size", "800",
             "--drift", "0", "--cadence", "2", "--max-swaps", "1",
             "--shards", "2", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "served" in out and "swaps=1" in out
        assert "cluster: 2 shards" in out
        assert "shard0=" in out and "shard1=" in out

    def test_serve_rejects_nonpositive_shards(self, capsys):
        assert main(
            ["serve", "UDP DDoS", "--flows", "120", "--shards", "0"]
        ) == 2
        assert "--shards must be >= 1" in capsys.readouterr().out

    def test_sharded_telemetry_groups_in_report(self, tmp_path, capsys):
        """serve --shards 2 --telemetry, then `repro report` on the file:
        the per-shard tagged counters land in the report and render as
        grouped shard sub-blocks."""
        from repro.telemetry import load_report

        path = str(tmp_path / "cluster.telemetry.json")
        assert main(
            ["serve", "UDP DDoS", "--flows", "120", "--chunk-size", "900",
             "--drift", "0", "--shards", "2", "--seed", "4",
             "--telemetry", path]
        ) == 0
        report = load_report(path)
        assert report["meta"]["shards"] == 2
        assert report["gauges"]["cluster.n_shards"] == 2.0
        assert any(
            name.startswith("cluster.shard.") for name in report["counters"]
        )
        capsys.readouterr()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "shard 0:" in out and "shard 1:" in out
