"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_attacks_lists_fifteen(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 15
        assert "Mirai" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_train_synthetic(self, capsys):
        assert main(["train", "--flows", "120", "--trees", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "whitelist rules" in out

    def test_train_from_pcap(self, tmp_path, capsys):
        from repro.datasets.benign import generate_benign_trace
        from repro.datasets.pcap import write_pcap

        path = str(tmp_path / "benign.pcap")
        write_pcap(path, generate_benign_trace(120, seed=2))
        assert main(["train", "--pcap", path, "--trees", "3", "--seed", "2"]) == 0
        assert "loaded" in capsys.readouterr().out

    def test_export_writes_artifacts(self, tmp_path, capsys):
        p4 = str(tmp_path / "x.p4")
        entries = str(tmp_path / "x.json")
        assert main(
            ["export", "--p4", p4, "--entries", entries, "--flows", "120", "--seed", "3"]
        ) == 0
        assert "table whitelist" in open(p4).read()
        assert isinstance(json.load(open(entries)), list)

    def test_deploy_runs(self, capsys):
        assert main(["deploy", "OS scan", "--flows", "150", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "per-packet macro F1" in out
        assert "paths:" in out
