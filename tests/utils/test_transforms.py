"""Property tests for the signed-log transform pair."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.transforms import signed_expm1, signed_log1p

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestSignedLog:
    def test_zero_maps_to_zero(self):
        assert signed_log1p(np.array([0.0]))[0] == 0.0
        assert signed_expm1(np.array([0.0]))[0] == 0.0

    def test_known_value(self):
        assert signed_log1p(np.array([np.e - 1]))[0] == np.log(np.e)

    def test_negative_symmetry(self):
        x = np.array([3.5])
        assert signed_log1p(-x)[0] == -signed_log1p(x)[0]

    @settings(max_examples=100, deadline=None)
    @given(finite_floats)
    def test_round_trip(self, value):
        x = np.array([value])
        back = signed_expm1(signed_log1p(x))[0]
        assert back == (
            np.testing.assert_allclose(back, value, rtol=1e-9, atol=1e-9) or back
        )

    @settings(max_examples=100, deadline=None)
    @given(finite_floats, finite_floats)
    def test_strictly_monotone(self, a, b):
        if a == b:
            return
        lo, hi = min(a, b), max(a, b)
        ya = signed_log1p(np.array([lo]))[0]
        yb = signed_log1p(np.array([hi]))[0]
        assert ya < yb
