"""Tests (incl. property-based) for axis-aligned boxes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.box import Box, merge_adjacent_boxes


class TestBoxBasics:
    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            Box((1.0,), (0.0,))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            Box((0.0,), (1.0, 2.0))

    def test_full_box_contains_everything(self):
        box = Box.full(2)
        pts = np.array([[1e12, -1e12], [0.0, 0.0]])
        assert box.contains(pts).all()

    def test_from_data_bounds(self):
        x = np.array([[0.0, 5.0], [2.0, 1.0]])
        box = Box.from_data(x)
        assert box.lows == (0.0, 1.0)
        assert box.highs[0] >= 2.0 and box.highs[1] >= 5.0

    def test_from_data_pad_expands(self):
        x = np.array([[0.0], [10.0]])
        box = Box.from_data(x, pad=0.1)
        assert box.lows[0] == pytest.approx(-1.0)
        assert box.highs[0] == pytest.approx(11.0)

    def test_contains_half_open(self):
        box = Box((0.0,), (1.0,))
        assert box.contains(np.array([[0.0]]))[0]
        assert not box.contains(np.array([[1.0]]))[0]

    def test_contains_closed_at_outer_top(self):
        outer = Box((0.0,), (1.0,))
        assert outer.contains(np.array([[1.0]]), outer=outer)[0]

    def test_midpoint(self):
        assert Box((0.0, 2.0), (2.0, 4.0)).midpoint().tolist() == [1.0, 3.0]

    def test_sample_inside(self):
        box = Box((0.0, -1.0), (1.0, 1.0))
        pts = box.sample(50, seed=0)
        assert box.contains(pts, outer=box).all()

    def test_sample_unbounded_raises(self):
        with pytest.raises(ValueError, match="unbounded"):
            Box.full(1).sample(1, seed=0)

    def test_split(self):
        left, right = Box((0.0,), (10.0,)).split(0, 4.0)
        assert left.highs[0] == 4.0
        assert right.lows[0] == 4.0

    def test_split_outside_raises(self):
        with pytest.raises(ValueError):
            Box((0.0,), (1.0,)).split(0, 2.0)

    def test_clip_intersection(self):
        a = Box((0.0,), (5.0,))
        b = Box((3.0,), (8.0,))
        c = a.clip(b)
        assert (c.lows[0], c.highs[0]) == (3.0, 5.0)

    def test_volume(self):
        assert Box((0.0, 0.0), (2.0, 3.0)).volume() == pytest.approx(6.0)

    def test_intersects(self):
        a = Box((0.0,), (1.0,))
        assert a.intersects(Box((0.5,), (2.0,)))
        assert not a.intersects(Box((1.0,), (2.0,)))  # touching, zero measure


class TestAdjacency:
    def test_adjacent_and_merge(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.0, 0.0), (2.0, 1.0))
        assert a.adjacent_along(b, 0)
        merged = a.merge_along(b, 0)
        assert (merged.lows[0], merged.highs[0]) == (0.0, 2.0)

    def test_not_adjacent_different_cross_section(self):
        a = Box((0.0, 0.0), (1.0, 1.0))
        b = Box((1.0, 0.0), (2.0, 2.0))
        assert not a.adjacent_along(b, 0)

    def test_merge_non_adjacent_raises(self):
        a = Box((0.0,), (1.0,))
        b = Box((2.0,), (3.0,))
        with pytest.raises(ValueError):
            a.merge_along(b, 0)


class TestMergeAdjacentBoxes:
    def test_grid_row_merges_to_one(self):
        boxes = [Box((float(i),), (float(i + 1),)) for i in range(5)]
        merged = merge_adjacent_boxes(boxes)
        assert len(merged) == 1
        assert merged[0].lows[0] == 0.0 and merged[0].highs[0] == 5.0

    def test_2d_block_merges(self):
        boxes = [
            Box((float(i), float(j)), (float(i + 1), float(j + 1)))
            for i in range(2)
            for j in range(2)
        ]
        merged = merge_adjacent_boxes(boxes)
        assert len(merged) == 1
        assert merged[0].volume() == pytest.approx(4.0)

    def test_disjoint_boxes_stay(self):
        boxes = [Box((0.0,), (1.0,)), Box((2.0,), (3.0,))]
        assert len(merge_adjacent_boxes(boxes)) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8, unique=True))
    def test_merge_preserves_coverage(self, cells):
        """Property: merging never changes which points are covered."""
        boxes = [Box((float(c),), (float(c + 1),)) for c in cells]
        merged = merge_adjacent_boxes(boxes)
        probe = np.linspace(-0.5, 8.5, 40).reshape(-1, 1)
        before = np.zeros(len(probe), dtype=bool)
        for b in boxes:
            before |= b.contains(probe)
        after = np.zeros(len(probe), dtype=bool)
        for b in merged:
            after |= b.contains(probe)
        assert np.array_equal(before, after)
