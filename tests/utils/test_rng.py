"""Tests for deterministic RNG utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rng, spawn_seeds


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(1_000_000)
        b = as_rng(42).integers(1_000_000)
        assert a == b

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).integers(1_000_000, size=8)
        draws_b = as_rng(2).integers(1_000_000, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(as_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_rng("not-a-seed")


class TestSpawn:
    def test_spawn_rng_is_reproducible(self):
        child_a = spawn_rng(as_rng(3))
        child_b = spawn_rng(as_rng(3))
        assert child_a.integers(10**9) == child_b.integers(10**9)

    def test_spawn_rng_children_independent(self):
        parent = as_rng(3)
        c1, c2 = spawn_rng(parent), spawn_rng(parent)
        assert c1.integers(10**9) != c2.integers(10**9) or True  # may collide
        # Streams must at least differ over a vector draw.
        assert not np.array_equal(c1.integers(10**9, size=16), c2.integers(10**9, size=16))

    def test_spawn_seeds_count_and_type(self):
        seeds = spawn_seeds(as_rng(0), 5)
        assert len(seeds) == 5
        assert all(isinstance(s, int) for s in seeds)

    def test_spawn_seeds_zero(self):
        assert spawn_seeds(as_rng(0), 0) == []

    def test_spawn_seeds_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(as_rng(0), -1)
