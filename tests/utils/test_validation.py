"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    NotFittedError,
    check_2d,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)


class TestCheck2d:
    def test_passthrough(self):
        x = np.ones((3, 2))
        out = check_2d(x)
        assert out.shape == (3, 2)

    def test_1d_promoted_to_row(self):
        out = check_2d(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (1, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            check_2d(np.ones((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            check_2d(np.empty((0, 3)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_2d(np.array([[1.0, np.nan]]))

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_2d(np.array([[np.inf, 1.0]]))

    def test_lists_coerced(self):
        out = check_2d([[1, 2], [3, 4]])
        assert out.dtype == float


class TestCheckFitted:
    def test_unset_raises(self):
        class Model:
            attr_ = None

        with pytest.raises(NotFittedError, match="not fitted"):
            check_fitted(Model(), "attr_")

    def test_set_passes(self):
        class Model:
            attr_ = [1]

        check_fitted(Model(), "attr_")

    def test_missing_attribute_raises(self):
        class Model:
            pass

        with pytest.raises(NotFittedError):
            check_fitted(Model(), "whatever_")


class TestScalarChecks:
    def test_positive_strict(self):
        check_positive(1.0, "x")
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_positive_nonstrict(self):
        check_positive(0.0, "x", strict=False)
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_probability_bounds(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_in_range(self):
        check_in_range(5, 1, 10, "v")
        with pytest.raises(ValueError):
            check_in_range(11, 1, 10, "v")

    def test_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError, match="same length"):
            check_same_length([1], [2, 3])
