"""Tests for packet-level feature extraction."""

import numpy as np
import pytest

from repro.datasets.packet import PROTO_TCP, FiveTuple, Packet
from repro.features.packet_features import (
    PACKET_FEATURES,
    extract_first_packets,
    extract_packet_features,
    packet_feature_vector,
)


def _pkt(dport=80, size=100, ttl=64, malicious=False):
    return Packet(
        FiveTuple(1, 2, 999, dport, PROTO_TCP), 0.0, size, ttl=ttl, malicious=malicious
    )


class TestPacketFeatures:
    def test_four_features(self):
        assert len(PACKET_FEATURES) == 4
        assert packet_feature_vector(_pkt()).shape == (4,)

    def test_vector_values(self):
        v = packet_feature_vector(_pkt(dport=443, size=123, ttl=32))
        assert v.tolist() == [443.0, float(PROTO_TCP), 123.0, 32.0]

    def test_extract_matrix_and_labels(self):
        x, y = extract_packet_features([_pkt(), _pkt(malicious=True)])
        assert x.shape == (2, 4)
        assert y.tolist() == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_packet_features([])


class TestFirstPackets:
    def test_takes_per_flow_prefix(self):
        flows = [[_pkt(), _pkt(), _pkt()], [_pkt(dport=22)]]
        x, _ = extract_first_packets(flows, per_flow=2)
        assert x.shape[0] == 3  # 2 + 1

    def test_per_flow_validation(self):
        with pytest.raises(ValueError):
            extract_first_packets([[_pkt()]], per_flow=0)
