"""Tests for flow-level feature extraction."""

import numpy as np
import pytest

from repro.datasets.packet import PROTO_TCP, FiveTuple, Packet
from repro.features.flow_features import (
    MAGNIFIER_FEATURES,
    SWITCH_FEATURES,
    FlowFeatureExtractor,
    truncate_flow,
)

FT = FiveTuple(1, 2, 1000, 80, PROTO_TCP)


def _flow(times, sizes, ttl=64):
    return [Packet(FT, t, s, ttl=ttl) for t, s in zip(times, sizes)]


class TestFeatureSets:
    def test_switch_set_is_thirteen(self):
        assert len(SWITCH_FEATURES) == 13

    def test_magnifier_superset(self):
        assert set(SWITCH_FEATURES) < set(MAGNIFIER_FEATURES)

    def test_invalid_set_rejected(self):
        with pytest.raises(ValueError, match="feature_set"):
            FlowFeatureExtractor(feature_set="bogus")


class TestExtraction:
    def test_known_statistics(self):
        flow = _flow([0.0, 1.0, 2.0], [100, 200, 300])
        fx = FlowFeatureExtractor(feature_set="switch")
        v = dict(zip(fx.feature_names, fx.extract_flow(flow)))
        assert v["pkt_count"] == 3
        assert v["size_total"] == 600
        assert v["size_mean"] == 200
        assert v["size_min"] == 100
        assert v["size_max"] == 300
        assert v["ipd_mean"] == pytest.approx(1.0)
        assert v["duration"] == pytest.approx(2.0)
        assert v["size_var"] == pytest.approx(np.var([100, 200, 300]))
        assert v["size_std"] == pytest.approx(np.std([100, 200, 300]))

    def test_single_packet_flow_conventions(self):
        fx = FlowFeatureExtractor(feature_set="switch")
        v = dict(zip(fx.feature_names, fx.extract_flow(_flow([1.0], [80]))))
        assert v["pkt_count"] == 1
        assert v["ipd_mean"] == 0.0
        assert v["duration"] == 0.0

    def test_magnifier_extra_features(self):
        flow = _flow([0.0, 2.0], [100, 200])
        fx = FlowFeatureExtractor(feature_set="magnifier")
        v = dict(zip(fx.feature_names, fx.extract_flow(flow)))
        assert v["protocol"] == PROTO_TCP
        assert v["dst_port"] == 80
        assert v["ttl_mean"] == 64
        assert v["bytes_per_second"] == pytest.approx(150.0)
        assert v["pkts_per_second"] == pytest.approx(1.0)

    def test_empty_flow_rejected(self):
        with pytest.raises(ValueError, match="empty flow"):
            FlowFeatureExtractor().extract_flow([])

    def test_extract_flows_labels(self):
        benign = _flow([0.0, 1.0], [100, 100])
        malicious = [Packet(FT, t, 100, malicious=True) for t in (0.0, 1.0)]
        x, y = FlowFeatureExtractor(feature_set="switch").extract_flows([benign, malicious])
        assert x.shape == (2, 13)
        assert y.tolist() == [0, 1]


class TestTruncation:
    def test_pkt_count_threshold(self):
        flow = _flow(np.arange(10.0), [100] * 10)
        assert len(truncate_flow(flow, pkt_count_threshold=4)) == 4

    def test_timeout_cuts_at_idle_gap(self):
        flow = _flow([0.0, 1.0, 2.0, 50.0, 51.0], [100] * 5)
        kept = truncate_flow(flow, timeout=5.0)
        assert len(kept) == 3

    def test_no_truncation_by_default(self):
        flow = _flow(np.arange(6.0), [100] * 6)
        assert len(truncate_flow(flow)) == 6

    def test_extractor_applies_truncation(self):
        flow = _flow(np.arange(10.0), [100] * 10)
        fx = FlowFeatureExtractor(feature_set="switch", pkt_count_threshold=5)
        assert fx.extract_flow(flow)[0] == 5  # pkt_count feature

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FlowFeatureExtractor(pkt_count_threshold=0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            FlowFeatureExtractor(timeout=-1.0)
