"""Tests for scaling and integer quantisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.scaling import IntegerQuantizer, MinMaxScaler
from repro.utils.validation import NotFittedError


class TestMinMaxScaler:
    def test_unit_range(self):
        x = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        xs = MinMaxScaler().fit_transform(x)
        assert xs.min() == 0.0 and xs.max() == 1.0

    def test_clipping_out_of_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[-5.0], [15.0]]))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_constant_feature_maps_to_zero(self):
        scaler = MinMaxScaler().fit(np.array([[3.0], [3.0]]))
        assert scaler.transform(np.array([[3.0]]))[0, 0] == 0.0

    def test_inverse_transform_round_trip(self):
        x = np.array([[1.0, 5.0], [4.0, 9.0], [2.0, 7.0]])
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((1, 2)))


class TestIntegerQuantizer:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IntegerQuantizer(bits=0)
        with pytest.raises(ValueError):
            IntegerQuantizer(bits=33)

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            IntegerQuantizer(space="cubic")

    def test_in_domain_band(self):
        q = IntegerQuantizer(bits=8).fit(np.array([[0.0], [100.0]]))
        codes = q.quantize(np.array([[0.0], [50.0], [100.0]]))
        assert codes.min() >= 1
        assert codes.max() <= q.levels - 1

    def test_out_of_domain_sentinels(self):
        q = IntegerQuantizer(bits=8).fit(np.array([[10.0], [100.0]]))
        codes = q.quantize(np.array([[5.0], [200.0]]))
        assert codes[0, 0] == 0
        assert codes[1, 0] == q.levels

    def test_bound_quantisation_stays_in_band(self):
        q = IntegerQuantizer(bits=8).fit(np.array([[10.0], [100.0]]))
        assert q.quantize_bound(10.0, 0) == 1
        assert q.quantize_bound(-999.0, 0) == 1
        assert q.quantize_bound(999.0, 0) == q.levels - 1

    def test_monotone(self):
        q = IntegerQuantizer(bits=16).fit(np.array([[0.0], [1000.0]]))
        values = np.linspace(0, 1000, 100).reshape(-1, 1)
        codes = q.quantize(values)[:, 0]
        assert (np.diff(codes) >= 0).all()

    def test_log_space_resolves_small_values(self):
        """A log codebook must distinguish near-zero values that a linear
        codebook collapses — the property the switch rules rely on."""
        domain = np.array([[0.0], [1e6]])
        lin = IntegerQuantizer(bits=16, space="linear").fit(domain)
        log = IntegerQuantizer(bits=16, space="log").fit(domain)
        small = np.array([[0.5], [5.0]])
        lin_codes = lin.quantize(small)[:, 0]
        log_codes = log.quantize(small)[:, 0]
        assert lin_codes[0] == lin_codes[1]  # collapsed
        assert log_codes[0] < log_codes[1]  # resolved

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IntegerQuantizer().quantize(np.ones((1, 1)))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
        st.sampled_from(["linear", "log"]),
    )
    def test_round_trip_within_one_code(self, values, space):
        """quantize(dequantize(q)) returns the same in-band code."""
        x = np.array(values).reshape(-1, 1)
        if x.max() == x.min():
            return
        q = IntegerQuantizer(bits=16, space=space).fit(x)
        codes = q.quantize(x)
        back = q.quantize(q.dequantize(codes))
        assert np.abs(back - codes).max() <= 1
