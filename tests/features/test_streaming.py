"""Property test: streaming accumulators == batch extractor exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.streaming import StreamingFlowStats

FT = FiveTuple(1, 2, 3, 4, PROTO_UDP)


def _packets(gaps, sizes):
    times = np.concatenate([[0.0], np.cumsum(gaps)]) if gaps else [0.0]
    return [Packet(FT, float(t), int(s)) for t, s in zip(times, sizes)]


class TestStreamingBasics:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no packets"):
            StreamingFlowStats().features()

    def test_single_packet(self):
        s = StreamingFlowStats()
        s.update(Packet(FT, 1.0, 120))
        fx = FlowFeatureExtractor(feature_set="switch")
        np.testing.assert_allclose(
            s.features(), fx.extract_flow([Packet(FT, 1.0, 120)])
        )

    def test_reset_clears(self):
        s = StreamingFlowStats()
        s.update(Packet(FT, 0.0, 100))
        s.reset()
        assert s.count == 0
        with pytest.raises(ValueError):
            s.features()

    def test_idle_since_tracks_last(self):
        s = StreamingFlowStats()
        assert s.idle_since is None
        s.update(Packet(FT, 3.0, 100))
        assert s.idle_since == 3.0


class TestStreamingMatchesBatch:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=100.0, allow_nan=False),
                st.integers(min_value=60, max_value=1514),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_equivalence(self, gap_size_pairs):
        gaps = [g for g, _ in gap_size_pairs[1:]]
        sizes = [s for _, s in gap_size_pairs]
        packets = _packets(gaps, sizes)

        streaming = StreamingFlowStats()
        for pkt in packets:
            streaming.update(pkt)

        batch = FlowFeatureExtractor(feature_set="switch").extract_flow(packets)
        np.testing.assert_allclose(streaming.features(), batch, rtol=1e-7, atol=1e-7)
