"""Tests for the HorusEye-protocol dataset splits."""

import numpy as np
import pytest

from repro.datasets.splits import (
    make_attack_split,
    make_trace_split,
    split_benign_indices,
)
from repro.utils.rng import as_rng


class TestSplitIndices:
    def test_partition_is_complete_and_disjoint(self):
        train, val, test = split_benign_indices(100, as_rng(1))
        combined = np.concatenate([train, val, test])
        assert sorted(combined) == list(range(100))

    def test_ratios(self):
        train, val, test = split_benign_indices(1000, as_rng(2))
        assert len(test) == 250
        # train : val = 4 : 1 of the remainder
        assert len(val) == pytest.approx(150, abs=2)
        assert len(train) == pytest.approx(600, abs=2)


class TestAttackSplit:
    def test_shapes_and_labels(self):
        s = make_attack_split("Mirai", n_benign_flows=150, seed=3)
        assert s.x_train.shape[1] == len(s.feature_names)
        assert set(np.unique(s.y_val)) <= {0, 1}
        assert s.y_test.sum() > 0 and (s.y_test == 0).sum() > 0

    def test_attack_fraction_near_twenty_percent(self):
        s = make_attack_split("Mirai", n_benign_flows=400, seed=4)
        assert s.y_test.mean() == pytest.approx(0.2, abs=0.05)
        assert s.y_val.mean() == pytest.approx(0.2, abs=0.07)

    def test_switch_feature_set(self):
        s = make_attack_split("Mirai", n_benign_flows=120, feature_set="switch", seed=5)
        assert s.x_train.shape[1] == 13

    def test_truncation_caps_pkt_count(self):
        s = make_attack_split(
            "UDP DDoS", n_benign_flows=120, feature_set="switch",
            pkt_count_threshold=8, seed=6,
        )
        # feature 0 is pkt_count in the switch set
        assert s.x_train[:, 0].max() <= 8
        assert s.x_test[:, 0].max() <= 8

    def test_deterministic(self):
        a = make_attack_split("Aidra", n_benign_flows=100, seed=7)
        b = make_attack_split("Aidra", n_benign_flows=100, seed=7)
        np.testing.assert_array_equal(a.x_test, b.x_test)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_attack_split("Mirai", n_benign_flows=100, attack_fraction=0.0, seed=8)


class TestTraceSplit:
    def test_train_flows_benign_only(self):
        s = make_trace_split("Mirai", n_benign_flows=120, seed=9)
        assert all(not p.malicious for f in s.train_flows for p in f)

    def test_test_trace_mixes_classes(self):
        s = make_trace_split("Mirai", n_benign_flows=120, seed=10)
        frac = s.test_trace.malicious_fraction()
        assert 0.0 < frac < 1.0

    def test_attack_overlaps_benign_window(self):
        s = make_trace_split("Mirai", n_benign_flows=150, seed=11)
        mal_times = [p.timestamp for p in s.test_trace if p.malicious]
        ben_times = [p.timestamp for p in s.test_trace if not p.malicious]
        assert min(mal_times) < max(ben_times)
        assert min(ben_times) < max(mal_times)

    def test_val_labels_match_val_flows(self):
        s = make_trace_split("Mirai", n_benign_flows=120, seed=12)
        assert len(s.val_labels) == len(s.val_flows)
        for flow, label in zip(s.val_flows, s.val_labels):
            assert int(any(p.malicious for p in flow)) == label
