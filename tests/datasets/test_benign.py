"""Tests for the benign IoT traffic model."""

import numpy as np

from repro.datasets.benign import (
    BENIGN_IPD_COV,
    BENIGN_SIZE_COV,
    benign_mixture,
    device_profiles,
    generate_benign_flows,
    generate_benign_trace,
)


class TestDeviceProfiles:
    def test_eight_device_classes(self):
        assert len(device_profiles()) == 8

    def test_all_on_the_manifold_bands(self):
        for profile in device_profiles():
            assert profile.size_cov_range == BENIGN_SIZE_COV
            assert profile.ipd_cov_range == BENIGN_IPD_COV
            assert not profile.malicious

    def test_marginals_span_wide_ranges(self):
        profiles = device_profiles()
        size_lo = min(p.size_mean_range[0] for p in profiles)
        size_hi = max(p.size_mean_range[1] for p in profiles)
        assert size_hi / size_lo > 10  # tiny keep-alives to full MTU
        ipd_lo = min(p.ipd_mean_range[0] for p in profiles)
        ipd_hi = max(p.ipd_mean_range[1] for p in profiles)
        assert ipd_hi / ipd_lo > 100


class TestBenignGeneration:
    def test_flows_all_benign(self):
        flows = generate_benign_flows(20, seed=1)
        assert all(not p.malicious for f in flows for p in f)

    def test_trace_time_ordered(self):
        trace = generate_benign_trace(20, seed=2)
        times = [p.timestamp for p in trace]
        assert times == sorted(times)

    def test_mixture_hits_multiple_device_classes(self):
        flows = generate_benign_flows(60, seed=3)
        ports = {f[0].five_tuple.dst_port for f in flows}
        assert len(ports) >= 4  # several device classes represented

    def test_sizes_respect_cov_band(self):
        """Per-flow size dispersion should sit in the manifold band —
        the property attacks violate."""
        flows = generate_benign_flows(60, seed=4)
        covs = []
        for flow in flows:
            sizes = np.array([p.size for p in flow], dtype=float)
            if len(sizes) >= 8:
                covs.append(sizes.std() / sizes.mean())
        covs = np.array(covs)
        # Clamping at Ethernet limits adds slack; the bulk must stay in band.
        assert np.median(covs) > 0.03
        assert np.median(covs) < 0.25

    def test_deterministic(self):
        a = generate_benign_flows(5, seed=5)
        b = generate_benign_flows(5, seed=5)
        assert [p.size for f in a for p in f] == [p.size for f in b for p in f]
