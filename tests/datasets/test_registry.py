"""Tests for the named dataset registry."""

import pytest

from repro.datasets.registry import (
    appendix_attack_names,
    attack_names,
    headline_attack_names,
    load_attack,
    load_benign,
)


class TestRegistry:
    def test_partition_of_fifteen(self):
        headline = headline_attack_names()
        appendix = appendix_attack_names()
        assert len(headline) == 5
        assert len(appendix) == 10
        assert set(headline).isdisjoint(appendix)
        assert attack_names() == headline + appendix

    def test_load_attack_roundtrip(self):
        flows = load_attack("Bashlite", 3, seed=1)
        assert len(flows) == 3
        assert all(p.malicious for f in flows for p in f)

    def test_load_benign_roundtrip(self):
        flows = load_benign(4, seed=2)
        assert len(flows) == 4
        assert all(not p.malicious for f in flows for p in f)

    def test_headline_matches_paper_figures(self):
        # Fig 2/5/6 cover these five workloads.
        assert set(headline_attack_names()) == {
            "Aidra", "Mirai", "Bashlite", "UDP DDoS", "OS scan",
        }
