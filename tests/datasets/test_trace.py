"""Tests for trace containers."""

import numpy as np
import pytest

from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.datasets.trace import Trace, flows_to_trace, merge_traces


def _pkt(t, src=1, dst=2, sport=10, dport=20, size=100, malicious=False):
    return Packet(
        FiveTuple(src, dst, sport, dport, PROTO_UDP), t, size, malicious=malicious
    )


class TestTrace:
    def test_sorts_on_construction(self):
        tr = Trace([_pkt(2.0), _pkt(1.0), _pkt(3.0)])
        times = [p.timestamp for p in tr]
        assert times == sorted(times)

    def test_len_and_getitem(self):
        tr = Trace([_pkt(1.0), _pkt(2.0)])
        assert len(tr) == 2
        assert tr[0].timestamp == 1.0

    def test_duration(self):
        assert Trace([_pkt(1.0), _pkt(4.0)]).duration == 3.0
        assert Trace([]).duration == 0.0

    def test_total_bytes(self):
        tr = Trace([_pkt(1.0, size=100), _pkt(2.0, size=50)])
        assert tr.total_bytes == 150

    def test_flows_groups_by_direction(self):
        tr = Trace([_pkt(1.0, src=1, dst=2), _pkt(2.0, src=2, dst=1, sport=20, dport=10)])
        assert len(tr.flows()) == 2
        assert len(tr.bidirectional_flows()) == 1

    def test_malicious_fraction(self):
        tr = Trace([_pkt(1.0, malicious=True), _pkt(2.0), _pkt(3.0), _pkt(4.0)])
        assert tr.malicious_fraction() == pytest.approx(0.25)

    def test_shifted(self):
        tr = Trace([_pkt(1.0), _pkt(2.0)]).shifted(10.0)
        assert tr[0].timestamp == 11.0

    def test_sliced(self):
        tr = Trace([_pkt(float(i)) for i in range(10)])
        window = tr.sliced(3.0, 6.0)
        assert [p.timestamp for p in window] == [3.0, 4.0, 5.0]


class TestMergeTraces:
    def test_interleaves_in_time_order(self):
        a = Trace([_pkt(1.0), _pkt(3.0)])
        b = Trace([_pkt(2.0), _pkt(4.0)])
        merged = merge_traces([a, b])
        assert [p.timestamp for p in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_empty_traces_skipped(self):
        merged = merge_traces([Trace([]), Trace([_pkt(1.0)])])
        assert len(merged) == 1

    def test_flows_to_trace_flattens(self):
        flows = [[_pkt(1.0), _pkt(3.0)], [_pkt(2.0)]]
        tr = flows_to_trace(flows)
        assert [p.timestamp for p in tr] == [1.0, 2.0, 3.0]
