"""Tests for attack generators and the router model."""

import numpy as np
import pytest

from repro.datasets.attacks import (
    ALL_ATTACKS,
    APPENDIX_ATTACKS,
    ATTACK_GENERATORS,
    HEADLINE_ATTACKS,
    ROUTER_WAN_IP,
    generate_attack_flows,
    route_flows,
)
from repro.datasets.benign import generate_benign_flows


class TestRegistry:
    def test_fifteen_attacks(self):
        assert len(ALL_ATTACKS) == 15
        assert len(HEADLINE_ATTACKS) == 5
        assert len(APPENDIX_ATTACKS) == 10

    def test_all_names_have_generators(self):
        for name in ALL_ATTACKS:
            assert name in ATTACK_GENERATORS

    def test_unknown_attack_raises_with_options(self):
        with pytest.raises(KeyError, match="Mirai"):
            generate_attack_flows("definitely-not-an-attack", 1)

    def test_paper_names_present(self):
        for name in ("Mirai", "Aidra", "Bashlite", "UDP DDoS", "OS scan",
                     "Mirai router filter", "Port scan router"):
            assert name in ALL_ATTACKS


class TestGenerators:
    @pytest.mark.parametrize("name", ALL_ATTACKS)
    def test_flows_are_malicious_and_nonempty(self, name):
        flows = generate_attack_flows(name, 5, seed=1)
        assert len(flows) == 5
        for flow in flows:
            assert len(flow) >= 1
            assert all(p.malicious for p in flow)

    def test_deterministic(self):
        a = generate_attack_flows("Mirai", 4, seed=9)
        b = generate_attack_flows("Mirai", 4, seed=9)
        assert [p.timestamp for f in a for p in f] == [p.timestamp for f in b for p in f]

    def test_scan_flows_are_short(self):
        flows = generate_attack_flows("OS scan", 30, seed=2)
        assert np.median([len(f) for f in flows]) <= 3

    def test_flood_flows_are_long(self):
        flows = generate_attack_flows("UDP DDoS", 5, seed=3)
        assert min(len(f) for f in flows) > 50

    def test_flood_sizes_nearly_constant(self):
        flows = generate_attack_flows("UDP DDoS", 3, seed=4)
        for flow in flows:
            sizes = np.array([p.size for p in flow], dtype=float)
            assert sizes.std() / sizes.mean() < 0.05  # below the benign CoV band

    def test_keylogging_bursty(self):
        flows = generate_attack_flows("Keylogging", 5, seed=5)
        covs = []
        for flow in flows:
            gaps = np.diff([p.timestamp for p in flow])
            if len(gaps) > 3 and gaps.mean() > 0:
                covs.append(gaps.std() / gaps.mean())
        assert np.mean(covs) > 0.4  # above the benign jitter band


class TestRouterModel:
    def test_nat_collapses_sources(self):
        flows = generate_attack_flows("Mirai", 8, seed=6)
        routed = route_flows(flows, seed=7)
        srcs = {f[0].five_tuple.src_ip for f in routed}
        assert srcs == {ROUTER_WAN_IP}

    def test_ttl_decremented(self):
        flows = generate_attack_flows("Mirai", 3, seed=8)
        routed = route_flows(flows, seed=9)
        assert all(r[0].ttl == f[0].ttl - 1 for f, r in zip(flows, routed))

    def test_rate_filter_drops_packets(self):
        flows = generate_attack_flows("Mirai", 6, seed=10)
        routed = route_flows(flows, seed=11, rate_filter=0.5)
        total_in = sum(len(f) for f in flows)
        total_out = sum(len(f) for f in routed)
        assert total_out < total_in

    def test_ipd_stretch_slows_flow(self):
        flows = generate_attack_flows("Mirai", 3, seed=12)
        routed = route_flows(flows, seed=13, ipd_stretch=3.0)
        for f, r in zip(flows, routed):
            dur_in = f[-1].timestamp - f[0].timestamp
            dur_out = r[-1].timestamp - r[0].timestamp
            if dur_in > 0:
                assert dur_out > dur_in * 2.0

    def test_timestamps_still_monotone(self):
        flows = generate_attack_flows("TCP DDoS", 3, seed=14)
        for flow in route_flows(flows, seed=15):
            times = [p.timestamp for p in flow]
            assert times == sorted(times)

    def test_malicious_bit_preserved(self):
        flows = generate_attack_flows("OS scan", 5, seed=16)
        for flow in route_flows(flows, seed=17):
            assert all(p.malicious for p in flow)

    def test_benign_flows_routable_too(self):
        flows = generate_benign_flows(4, seed=18)
        routed = route_flows(flows, seed=19)
        assert all(not p.malicious for f in routed for p in f)


class TestExtendedAttacks:
    """The scenario foundry's extra families (beyond the paper's 15)."""

    def test_registry_shape(self):
        from repro.datasets.attacks import EXTENDED_ATTACKS

        assert len(EXTENDED_ATTACKS) == 4
        # The paper's 15-workload catalogue is untouched.
        assert len(ALL_ATTACKS) == 15
        assert not set(EXTENDED_ATTACKS) & set(ALL_ATTACKS)
        for name in EXTENDED_ATTACKS:
            assert name in ATTACK_GENERATORS

    @pytest.mark.parametrize(
        "name", ["DNS amplification", "NTP amplification", "ACK flood",
                 "Fragmentation DoS"]
    )
    def test_flows_malicious_and_deterministic(self, name):
        a = generate_attack_flows(name, 4, seed=21)
        b = generate_attack_flows(name, 4, seed=21)
        assert len(a) == 4
        assert all(p.malicious for f in a for p in f)
        assert [p.timestamp for f in a for p in f] == [
            p.timestamp for f in b for p in f
        ]

    def test_amplification_bytes_asymmetry(self):
        """Responses toward the victim must dwarf the tiny requests."""
        from repro.datasets.attacks import DNS_AMPLIFICATION, reflection_flow

        rng = np.random.default_rng(3)
        flow = reflection_flow(rng, 0.0, DNS_AMPLIFICATION)
        req = [p for p in flow if p.five_tuple.dst_port == 53]
        resp = [p for p in flow if p.five_tuple.src_port == 53]
        assert req and resp
        amp = sum(p.size for p in resp) / sum(p.size for p in req)
        assert amp > 10.0


class TestReflectionDirectionConsistency:
    """Reflection request/response 5-tuples must be exact reversals so
    direction-canonicalised flow keying (store slots, shard routing)
    keeps both directions of the exchange together."""

    def _flow(self, seed=5):
        from repro.datasets.attacks import NTP_AMPLIFICATION, reflection_flow

        rng = np.random.default_rng(seed)
        return reflection_flow(rng, 0.0, NTP_AMPLIFICATION)

    def test_single_canonical_tuple(self):
        flow = self._flow()
        assert len({p.five_tuple.canonical() for p in flow}) == 1

    def test_response_is_exact_reversal(self):
        flow = self._flow()
        req_ft = flow[0].five_tuple
        resp = next(p for p in flow if p.five_tuple != req_ft)
        assert resp.five_tuple == req_ft.reversed()

    def test_shard_router_keeps_exchange_together(self):
        from repro.cluster.router import FlowShardRouter
        from repro.datasets.attacks import DNS_AMPLIFICATION, reflection_flow

        router = FlowShardRouter(n_shards=5)
        rng = np.random.default_rng(11)
        for _ in range(20):
            flow = reflection_flow(rng, 0.0, DNS_AMPLIFICATION)
            shards = {router.shard_of(p.five_tuple) for p in flow}
            assert len(shards) == 1
