"""Tests for packet primitives."""

import pytest

from repro.datasets.packet import (
    PROTO_TCP,
    PROTO_UDP,
    FiveTuple,
    Packet,
    format_ip,
    make_ip,
)


class TestMakeIp:
    def test_round_trip(self):
        ip = make_ip(192, 168, 1, 42)
        assert format_ip(ip) == "192.168.1.42"

    def test_packing(self):
        assert make_ip(1, 0, 0, 0) == 1 << 24
        assert make_ip(0, 0, 0, 1) == 1

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            make_ip(256, 0, 0, 0)


class TestFiveTuple:
    def setup_method(self):
        self.ft = FiveTuple(make_ip(10, 0, 0, 1), make_ip(10, 0, 0, 2), 1234, 80, PROTO_TCP)

    def test_reversed_swaps_endpoints(self):
        rev = self.ft.reversed()
        assert rev.src_ip == self.ft.dst_ip
        assert rev.src_port == self.ft.dst_port
        assert rev.protocol == self.ft.protocol

    def test_double_reverse_is_identity(self):
        assert self.ft.reversed().reversed() == self.ft

    def test_canonical_direction_independent(self):
        assert self.ft.canonical() == self.ft.reversed().canonical()

    def test_canonical_is_idempotent(self):
        assert self.ft.canonical().canonical() == self.ft.canonical()

    def test_as_tuple(self):
        t = self.ft.as_tuple()
        assert t == (self.ft.src_ip, self.ft.dst_ip, 1234, 80, PROTO_TCP)

    def test_hashable(self):
        assert len({self.ft, self.ft.reversed(), self.ft}) == 2


class TestPacket:
    def test_with_timestamp_copies(self):
        ft = FiveTuple(1, 2, 3, 4, PROTO_UDP)
        pkt = Packet(ft, timestamp=1.0, size=100)
        moved = pkt.with_timestamp(5.0)
        assert moved.timestamp == 5.0
        assert pkt.timestamp == 1.0
        assert moved.size == pkt.size

    def test_with_five_tuple_copies(self):
        ft = FiveTuple(1, 2, 3, 4, PROTO_UDP)
        ft2 = FiveTuple(9, 2, 3, 4, PROTO_UDP)
        pkt = Packet(ft, timestamp=1.0, size=100, malicious=True)
        readdressed = pkt.with_five_tuple(ft2)
        assert readdressed.five_tuple == ft2
        assert readdressed.malicious

    def test_defaults(self):
        pkt = Packet(FiveTuple(1, 2, 3, 4, PROTO_UDP), 0.0, 60)
        assert pkt.ttl == 64
        assert pkt.tcp_flags == 0
        assert not pkt.malicious
