"""Tests for PCAP round-tripping."""

import struct

import numpy as np
import pytest

from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_trace
from repro.datasets.pcap import PCAP_MAGIC, read_pcap, write_pcap
from repro.datasets.trace import Trace, flows_to_trace
from repro.features.flow_features import FlowFeatureExtractor


class TestRoundTrip:
    def test_trace_survives_round_trip(self, tmp_path):
        trace = generate_benign_trace(20, seed=1)
        path = str(tmp_path / "benign.pcap")
        n = write_pcap(path, trace)
        assert n == len(trace)
        loaded = read_pcap(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.five_tuple == b.five_tuple
            assert a.size == b.size
            assert a.ttl == b.ttl
            assert abs(a.timestamp - b.timestamp) < 2e-6  # µs resolution

    def test_tcp_flags_preserved(self, tmp_path):
        flows = generate_attack_flows("Mirai", 3, seed=2)  # SYN probes
        trace = flows_to_trace(flows)
        path = str(tmp_path / "mirai.pcap")
        write_pcap(path, trace)
        loaded = read_pcap(path, malicious=True)
        assert all(p.tcp_flags == 0x02 for p in loaded)
        assert all(p.malicious for p in loaded)

    def test_features_identical_after_round_trip(self, tmp_path):
        """The models must see the same features from a re-read capture."""
        trace = generate_benign_trace(30, seed=3)
        path = str(tmp_path / "t.pcap")
        write_pcap(path, trace)
        loaded = read_pcap(path)
        fx = FlowFeatureExtractor(feature_set="switch")
        x_orig, _ = fx.extract_flows(list(trace.flows().values()))
        x_load, _ = fx.extract_flows(list(loaded.flows().values()))
        # Timestamps quantise to µs; tolerate that in IPD stats.
        np.testing.assert_allclose(
            np.sort(x_orig, axis=0), np.sort(x_load, axis=0), rtol=1e-3, atol=1e-4
        )

    def test_global_header_magic(self, tmp_path):
        path = str(tmp_path / "m.pcap")
        write_pcap(path, generate_benign_trace(2, seed=4))
        with open(path, "rb") as fh:
            magic = struct.unpack("<I", fh.read(4))[0]
        assert magic == PCAP_MAGIC

    def test_reject_non_pcap(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"definitely not a pcap file, promise")
        with pytest.raises(ValueError, match="not a little-endian"):
            read_pcap(str(path))

    def test_reject_truncated(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\x12\x34")
        with pytest.raises(ValueError, match="too short"):
            read_pcap(str(path))

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.pcap")
        assert write_pcap(path, Trace([])) == 0
        assert len(read_pcap(path)) == 0
