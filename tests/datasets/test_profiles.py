"""Tests for the flow-profile generators."""

import numpy as np
import pytest

from repro.datasets.packet import MAX_PACKET_SIZE, MIN_PACKET_SIZE, PROTO_TCP
from repro.datasets.profiles import FlowProfile, ProfileMixture, _log_uniform
from repro.utils.rng import as_rng


def _profile(**overrides):
    params = dict(
        name="test",
        protocol=PROTO_TCP,
        dst_ports=(80,),
        size_mean_range=(100.0, 200.0),
        size_cov_range=(0.05, 0.1),
        ipd_mean_range=(0.01, 0.1),
        ipd_cov_range=(0.1, 0.2),
        count_range=(5, 20),
    )
    params.update(overrides)
    return FlowProfile(**params)


class TestLogUniform:
    def test_within_bounds(self):
        rng = as_rng(0)
        draws = [_log_uniform(rng, 2.0, 50.0) for _ in range(200)]
        assert min(draws) >= 2.0 and max(draws) <= 50.0

    def test_rejects_nonpositive_low(self):
        with pytest.raises(ValueError):
            _log_uniform(as_rng(0), 0.0, 1.0)


class TestFlowProfile:
    def test_flow_packet_count_in_range(self):
        profile = _profile()
        rng = as_rng(1)
        for _ in range(20):
            flow = profile.sample_flow(rng, 0.0)
            assert 1 <= len(flow) <= 25  # log-uniform rounding slack

    def test_sizes_clamped_to_ethernet(self):
        profile = _profile(size_mean_range=(10.0, 20.0))  # will clamp at 60
        flow = profile.sample_flow(as_rng(2), 0.0)
        assert all(MIN_PACKET_SIZE <= p.size <= MAX_PACKET_SIZE for p in flow)

    def test_timestamps_monotone(self):
        flow = _profile().sample_flow(as_rng(3), 5.0)
        times = [p.timestamp for p in flow]
        assert times == sorted(times)
        assert times[0] == 5.0

    def test_malicious_bit_propagates(self):
        flow = _profile(malicious=True).sample_flow(as_rng(4), 0.0)
        assert all(p.malicious for p in flow)

    def test_five_tuple_constant_within_flow(self):
        flow = _profile().sample_flow(as_rng(5), 0.0)
        assert len({p.five_tuple for p in flow}) == 1

    def test_port_sweep_varies_ports(self):
        profile = _profile(dst_ports=tuple(range(1, 100)), port_sweep=True, count_range=(30, 40))
        flow = profile.sample_flow(as_rng(6), 0.0)
        ports = {p.five_tuple.dst_port for p in flow}
        assert len(ports) > 5

    def test_tcp_flags_set_for_tcp(self):
        flow = _profile(tcp_flags=0x02).sample_flow(as_rng(7), 0.0)
        assert all(p.tcp_flags == 0x02 for p in flow)

    def test_zero_ipd_cov_gives_constant_gaps(self):
        profile = _profile(ipd_cov_range=(0.0, 0.0), count_range=(10, 10))
        flow = profile.sample_flow(as_rng(8), 0.0)
        gaps = np.diff([p.timestamp for p in flow])
        assert np.allclose(gaps, gaps[0])


class TestProfileMixture:
    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            ProfileMixture([])

    def test_weights_normalised(self):
        mix = ProfileMixture([_profile(), _profile()], weights=[2.0, 2.0])
        assert mix.weights == pytest.approx([0.5, 0.5])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            ProfileMixture([_profile()], weights=[0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ProfileMixture([_profile()], weights=[-1.0])

    def test_generates_requested_flows(self):
        flows = ProfileMixture([_profile()]).generate_flows(10, seed=1)
        assert len(flows) == 10

    def test_flow_arrivals_increase(self):
        flows = ProfileMixture([_profile()]).generate_flows(10, seed=2)
        starts = [f[0].timestamp for f in flows]
        assert starts == sorted(starts)

    def test_deterministic_with_seed(self):
        a = ProfileMixture([_profile()]).generate_flows(5, seed=3)
        b = ProfileMixture([_profile()]).generate_flows(5, seed=3)
        assert [p.size for f in a for p in f] == [p.size for f in b for p in f]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ProfileMixture([_profile()]).generate_flows(-1)
