"""Tests for adversarial traffic transforms (Tables 2-3 substrate)."""

import numpy as np
import pytest

from repro.datasets.adversarial import (
    evasion_flows,
    low_rate_flows,
    poison_training_flows,
    poison_training_set,
)
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows


class TestLowRate:
    def test_gaps_stretched(self):
        flows = generate_attack_flows("UDP DDoS", 2, seed=1)
        slowed = low_rate_flows(flows, 100.0)
        for orig, slow in zip(flows, slowed):
            g0 = np.diff([p.timestamp for p in orig])
            g1 = np.diff([p.timestamp for p in slow])
            np.testing.assert_allclose(g1, g0 * 100.0, rtol=1e-6)

    def test_contents_untouched(self):
        flows = generate_attack_flows("UDP DDoS", 2, seed=2)
        slowed = low_rate_flows(flows, 10.0)
        assert [p.size for f in flows for p in f] == [p.size for f in slowed for p in f]

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            low_rate_flows([], 0.5)

    def test_single_packet_flow_unchanged(self):
        flows = generate_attack_flows("OS scan", 5, seed=3)
        slowed = low_rate_flows(flows, 100.0)
        assert len(slowed) == len([f for f in flows if f])


class TestEvasion:
    def test_packet_ratio(self):
        flows = generate_attack_flows("TCP DDoS", 2, seed=4)
        padded = evasion_flows(flows, 2, seed=5)
        for orig, pad in zip(flows, padded):
            assert len(pad) == 3 * len(orig)  # 1 original : 2 injected

    def test_padding_marked_malicious(self):
        flows = generate_attack_flows("TCP DDoS", 1, seed=6)
        padded = evasion_flows(flows, 2, seed=7)
        assert all(p.malicious for p in padded[0])

    def test_padding_shares_five_tuple(self):
        flows = generate_attack_flows("TCP DDoS", 1, seed=8)
        padded = evasion_flows(flows, 2, seed=9)
        assert len({p.five_tuple for p in padded[0]}) == 1

    def test_features_shift_toward_benign(self):
        """The padding must raise size dispersion toward the benign band —
        that is the evasion."""
        flows = generate_attack_flows("TCP DDoS", 2, seed=10)
        padded = evasion_flows(flows, 4, seed=11)
        for orig, pad in zip(flows, padded):
            cov_orig = np.std([p.size for p in orig]) / np.mean([p.size for p in orig])
            cov_pad = np.std([p.size for p in pad]) / np.mean([p.size for p in pad])
            assert cov_pad > cov_orig

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            evasion_flows([], 0)

    def test_timestamps_sorted(self):
        flows = generate_attack_flows("TCP DDoS", 1, seed=12)
        padded = evasion_flows(flows, 3, seed=13)
        times = [p.timestamp for p in padded[0]]
        assert times == sorted(times)


class TestPoisoning:
    def test_flow_level_fraction(self):
        benign = generate_benign_flows(100, seed=14)
        attack = generate_attack_flows("Mirai", 10, seed=15)
        poisoned = poison_training_flows(benign, attack, 0.1, seed=16)
        n_mal = sum(1 for f in poisoned if any(p.malicious for p in f))
        assert n_mal / len(poisoned) == pytest.approx(0.1, abs=0.03)

    def test_zero_fraction_identity(self):
        benign = generate_benign_flows(10, seed=17)
        assert len(poison_training_flows(benign, [], 0.0)) == 10

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            poison_training_flows([], [], 1.0)

    def test_feature_level_fraction(self):
        x_b = np.zeros((90, 3))
        x_a = np.ones((30, 3))
        poisoned = poison_training_set(x_b, x_a, 0.10, seed=18)
        frac = poisoned.sum(axis=1).astype(bool).mean()
        assert frac == pytest.approx(0.10, abs=0.02)

    def test_feature_level_zero_copy(self):
        x_b = np.zeros((5, 2))
        out = poison_training_set(x_b, np.ones((1, 2)), 0.0)
        assert out.shape == x_b.shape
        out[0, 0] = 9.0
        assert x_b[0, 0] == 0.0  # a copy, not a view
