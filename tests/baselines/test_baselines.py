"""Tests for the classic unsupervised baselines (Fig 10 candidates)."""

import numpy as np
import pytest

from repro.baselines.knn import KNNDetector
from repro.baselines.pca import PCADetector
from repro.baselines.xmeans import XMeansDetector, _bic, _kmeans
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


def _clusters(n=200, seed=0):
    """Two benign clusters in 4-D."""
    rng = as_rng(seed)
    a = rng.normal([0, 0, 0, 0], 0.3, size=(n // 2, 4))
    b = rng.normal([5, 5, 0, 0], 0.3, size=(n // 2, 4))
    return np.vstack([a, b])


def _outliers(n=20, seed=1):
    return as_rng(seed).normal([2.5, 2.5, 6, 6], 0.3, size=(n, 4))


ALL_DETECTORS = [
    lambda: KNNDetector(k=3, log_scale=False),
    lambda: PCADetector(n_components=2, log_scale=False),
    lambda: XMeansDetector(log_scale=False, seed=0),
]


class TestSharedContract:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_outliers_score_higher(self, factory):
        det = factory().fit(_clusters())
        s_in = det.anomaly_scores(_clusters(seed=2)).mean()
        s_out = det.anomaly_scores(_outliers()).mean()
        assert s_out > s_in

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_predict_binary(self, factory):
        det = factory().fit(_clusters())
        pred = det.predict(_outliers())
        assert set(np.unique(pred)) <= {0, 1}

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_unfitted_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().anomaly_scores(np.ones((1, 4)))


class TestKNN:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNDetector(k=0)

    def test_training_scores_exclude_self(self):
        """A training point's own distance must not be its score (else all
        training scores would be 0)."""
        det = KNNDetector(k=1, log_scale=False).fit(_clusters())
        assert det.threshold_ > 0.0

    def test_contamination_flag_rate(self):
        det = KNNDetector(k=3, contamination=0.1, log_scale=False).fit(_clusters())
        assert det.predict(_clusters()).mean() == pytest.approx(0.1, abs=0.06)


class TestPCA:
    def test_invalid_components(self):
        with pytest.raises(ValueError):
            PCADetector(n_components=0)

    def test_auto_component_selection(self):
        det = PCADetector(log_scale=False).fit(_clusters())
        assert 1 <= det.components_.shape[0] <= 4

    def test_on_plane_data_zero_residual(self):
        """Data exactly on a 1-D subspace has ~zero residual with 1 PC."""
        t = np.linspace(0, 1, 50)
        x = np.column_stack([t, 2 * t, 3 * t])
        det = PCADetector(n_components=1, log_scale=False).fit(x)
        assert det.anomaly_scores(x).max() < 1e-8


class TestXMeans:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            XMeansDetector(k_init=0)
        with pytest.raises(ValueError):
            XMeansDetector(k_init=5, k_max=2)

    def test_discovers_both_clusters(self):
        det = XMeansDetector(k_init=1, k_max=8, log_scale=False, seed=1).fit(_clusters())
        assert det.n_clusters_ >= 2

    def test_kmeans_labels_partition(self):
        x = _clusters()
        centers, labels = _kmeans(x, 2, as_rng(2))
        assert centers.shape == (2, 4)
        assert len(labels) == len(x)
        assert set(labels) <= {0, 1}

    def test_bic_prefers_true_structure(self):
        """BIC of a 2-cluster fit must beat a 1-cluster fit on 2-cluster data."""
        x = _clusters()
        c1 = x.mean(axis=0, keepdims=True)
        bic1 = _bic(x, c1, np.zeros(len(x), dtype=int))
        c2, l2 = _kmeans(x, 2, as_rng(3))
        bic2 = _bic(x, c2, l2)
        assert bic2 > bic1
