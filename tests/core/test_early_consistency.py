"""Tests for the early-packet model and consistency metrics."""

import numpy as np
import pytest

from repro.core.consistency import consistency, quantized_consistency
from repro.core.early import EarlyPacketModel
from repro.core.hypercube import compile_ruleset
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.benign import generate_benign_flows
from repro.features.packet_features import extract_first_packets
from repro.features.scaling import IntegerQuantizer
from repro.utils.box import Box
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def benign_flows():
    return generate_benign_flows(200, seed=31)


@pytest.fixture(scope="module")
def early(benign_flows):
    return EarlyPacketModel(n_trees=30, subsample_size=64, seed=32).fit(benign_flows)


class TestEarlyPacketModel:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            EarlyPacketModel().to_rules()

    def test_predicts_per_packet(self, early, benign_flows):
        packets = [p for f in benign_flows[:10] for p in f[:2]]
        pred = early.predict_packets(packets)
        assert pred.shape == (len(packets),)
        assert pred.mean() < 0.5  # benign early packets mostly pass

    def test_rules_compile(self, early):
        rules = early.to_rules(seed=33)
        assert rules.n_benign_rules >= 1
        assert rules.rules[0].n_features == 4  # PL feature space

    def test_rules_agree_with_forest(self, early, benign_flows):
        rules = early.to_rules(seed=34)
        x, _ = extract_first_packets(benign_flows, per_flow=3)
        agreement = np.mean(early.labeled_.predict(x) == rules.predict(x))
        assert agreement > 0.9


class _ConstantForest:
    """Trivial forest_like predicting a fixed label — for metric tests."""

    def __init__(self, label):
        self.label = label

    def predict(self, x):
        return np.full(np.atleast_2d(x).shape[0], self.label, dtype=int)


class TestConsistencyMetrics:
    def test_perfect_agreement(self):
        from repro.core.rules import RuleSet, WhitelistRule

        box = Box((0.0,), (1.0,))
        rules = RuleSet([WhitelistRule(box=box, label=0)], outer_box=box)
        x = np.linspace(0.0, 0.9, 10).reshape(-1, 1)
        assert consistency(_ConstantForest(0), rules, x) == 1.0

    def test_total_disagreement(self):
        from repro.core.rules import RuleSet, WhitelistRule

        box = Box((0.0,), (1.0,))
        rules = RuleSet([WhitelistRule(box=box, label=0)], outer_box=box)
        x = np.linspace(0.0, 0.9, 10).reshape(-1, 1)
        assert consistency(_ConstantForest(1), rules, x) == 0.0

    def test_quantized_consistency(self):
        from repro.core.rules import RuleSet, WhitelistRule

        box = Box((0.0,), (100.0,))
        rules = RuleSet([WhitelistRule(box=box, label=0)], outer_box=box)
        quantizer = IntegerQuantizer(bits=8).fit(np.array([[0.0], [100.0]]))
        q_rules = rules.quantize(quantizer)
        x = np.linspace(1.0, 99.0, 20).reshape(-1, 1)
        assert quantized_consistency(_ConstantForest(0), q_rules, quantizer, x) == 1.0
