"""Tests for the guided isolation forest ensemble."""

import math

import numpy as np
import pytest

from repro.core.guided_forest import GuidedIsolationForest
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


class ThresholdOracle:
    """Malicious when feature 0 exceeds 0.5 — trivially axis-separable."""

    def predict(self, x):
        return (np.atleast_2d(x)[:, 0] > 0.5).astype(int)


@pytest.fixture()
def x_benign():
    rng = as_rng(0)
    x = rng.uniform(0.0, 0.5, size=(120, 3))
    return x


class TestGuidedForest:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GuidedIsolationForest(n_trees=0)
        with pytest.raises(ValueError):
            GuidedIsolationForest(subsample_size=1)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GuidedIsolationForest().split_boundaries()

    def test_depth_budget_default(self, x_benign):
        forest = GuidedIsolationForest(
            n_trees=3, subsample_size=32, k_aug=16, seed=1
        ).fit(x_benign, oracle=ThresholdOracle())
        # Default cap: max(⌈log2 Ψ⌉, 2m + 8) = max(5, 14) = 14 for 3 features.
        expected_cap = max(math.ceil(math.log2(32)), 2 * 3 + 8)
        assert forest.max_depth_fitted() <= expected_cap

    def test_explicit_max_depth_respected(self, x_benign):
        forest = GuidedIsolationForest(
            n_trees=2, subsample_size=32, k_aug=16, max_depth=3, seed=2
        ).fit(x_benign, oracle=ThresholdOracle())
        assert forest.max_depth_fitted() <= 3

    def test_trees_differ_across_seeds(self, x_benign):
        forest = GuidedIsolationForest(
            n_trees=4, subsample_size=32, k_aug=16, seed=3
        ).fit(x_benign, oracle=ThresholdOracle())
        thresholds = [tuple(map(tuple, t.split_boundaries())) for t in forest.trees_]
        assert len(set(thresholds)) > 1

    def test_boundaries_near_oracle_threshold(self, x_benign):
        """The separable oracle boundary (0.5 on feature 0) should appear
        among the forest's feature-0 split values."""
        forest = GuidedIsolationForest(
            n_trees=4, subsample_size=48, k_aug=48, tau_split=0.0, seed=4
        ).fit(x_benign, oracle=ThresholdOracle())
        f0 = forest.split_boundaries()[0]
        assert any(0.35 < v < 0.65 for v in f0)

    def test_feature_box_padded_beyond_data(self, x_benign):
        forest = GuidedIsolationForest(
            n_trees=2, subsample_size=32, k_aug=8, seed=5
        ).fit(x_benign, oracle=ThresholdOracle())
        box = forest.feature_box_
        assert box.lows[0] < x_benign[:, 0].min()
        assert box.highs[0] > x_benign[:, 0].max()
