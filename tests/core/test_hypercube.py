"""Tests for hypercube enumeration/refinement and rule compilation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypercube import (
    compile_ruleset,
    enumerate_hypercubes,
    merge_labeled_cells,
    refine_hypercubes,
)
from repro.core.rules import BENIGN, MALICIOUS
from repro.utils.box import Box
from repro.utils.rng import as_rng


class GridForest:
    """Synthetic labelled 'forest': benign inside [2,6)x[2,6), with split
    boundaries at integers — plays the forest_like role exactly."""

    def __init__(self, n_features=2):
        self.n_features_ = n_features
        self.feature_box_ = Box((0.0,) * n_features, (8.0,) * n_features)
        self.benign = Box((2.0,) * n_features, (6.0,) * n_features)

    def predict(self, x):
        inside = self.benign.contains(np.atleast_2d(x), outer=self.feature_box_)
        return (~inside).astype(int)

    def split_boundaries(self):
        return [[2.0, 4.0, 6.0] for _ in range(self.n_features_)]


class TestEnumerate:
    def test_grid_cell_count(self):
        cells = enumerate_hypercubes(GridForest())
        assert len(cells) == 16  # 4 intervals per axis

    def test_labels_exact(self):
        forest = GridForest()
        for cell, label in enumerate_hypercubes(forest):
            assert label == forest.predict(cell.midpoint().reshape(1, -1))[0]

    def test_cell_budget_enforced(self):
        with pytest.raises(ValueError, match="use refine_hypercubes"):
            enumerate_hypercubes(GridForest(), max_cells=4)

    def test_cells_cover_box_disjointly(self):
        forest = GridForest()
        cells = enumerate_hypercubes(forest)
        probe = as_rng(0).uniform(0.0, 8.0, size=(200, 2))
        for row in probe:
            hits = sum(
                bool(c.contains(row.reshape(1, -1), outer=forest.feature_box_)[0])
                for c, _l in cells
            )
            assert hits == 1


class TestRefine:
    def test_matches_enumeration_semantics(self):
        forest = GridForest()
        cells = refine_hypercubes(forest, max_cells=64, seed=1)
        probe = as_rng(1).uniform(0.0, 8.0, size=(300, 2))
        for row in probe:
            for cell, label in cells:
                if cell.contains(row.reshape(1, -1), outer=forest.feature_box_)[0]:
                    assert label == forest.predict(row.reshape(1, -1))[0]
                    break
            else:
                pytest.fail("probe not covered by any cell")

    def test_budget_caps_cell_count(self):
        cells = refine_hypercubes(GridForest(), max_cells=8, seed=2)
        assert len(cells) <= 8

    def test_x_ref_forces_benign_cells(self):
        forest = GridForest()
        x_ref = as_rng(3).uniform(2.1, 5.9, size=(30, 2))
        cells = refine_hypercubes(forest, max_cells=64, x_ref=x_ref, seed=3)
        assert any(label == BENIGN for _c, label in cells)


class TestMerge:
    def test_merges_within_label_only(self):
        cells = [
            (Box((0.0,), (1.0,)), BENIGN),
            (Box((1.0,), (2.0,)), BENIGN),
            (Box((2.0,), (3.0,)), MALICIOUS),
        ]
        merged = merge_labeled_cells(cells)
        assert len(merged) == 2
        benign_boxes = [b for b, l in merged if l == BENIGN]
        assert benign_boxes[0].highs[0] == 2.0


class TestCompileRuleset:
    def test_compiled_rules_reproduce_forest(self):
        forest = GridForest()
        ruleset = compile_ruleset(forest, max_cells=64, seed=4)
        probe = as_rng(4).uniform(0.0, 8.0, size=(400, 2))
        np.testing.assert_array_equal(ruleset.predict(probe), forest.predict(probe))

    def test_whitelist_only_contains_benign(self):
        ruleset = compile_ruleset(GridForest(), max_cells=64, seed=5)
        assert ruleset.n_malicious_rules == 0
        assert ruleset.n_benign_rules >= 1

    def test_merge_reduces_rule_count(self):
        with_merge = compile_ruleset(GridForest(), max_cells=64, merge=True, seed=6)
        without = compile_ruleset(GridForest(), max_cells=64, merge=False, seed=6)
        assert len(with_merge) <= len(without)

    def test_enumerate_method(self):
        forest = GridForest()
        ruleset = compile_ruleset(forest, method="enumerate", seed=7)
        probe = as_rng(7).uniform(0.0, 8.0, size=(200, 2))
        np.testing.assert_array_equal(ruleset.predict(probe), forest.predict(probe))

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            compile_ruleset(GridForest(), method="magic")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_compilation_consistency_property(self, probe_seed):
        """For any probe sample the compiled rules agree with the forest
        (the paper's consistency C = 1 on this exactly-compilable case)."""
        forest = GridForest()
        ruleset = compile_ruleset(forest, max_cells=64, seed=8)
        probe = as_rng(probe_seed).uniform(0.0, 8.0, size=(50, 2))
        assert (ruleset.predict(probe) == forest.predict(probe)).all()
