"""Integration-level tests for the IGuard estimator and distillation."""

import numpy as np
import pytest

from repro.core.distillation import DistilledForest
from repro.core.guided_forest import GuidedIsolationForest
from repro.core.iguard import IGuard, _LogSpaceOracle
from repro.datasets.splits import make_attack_split
from repro.eval.metrics import macro_f1, roc_auc
from repro.utils.transforms import signed_log1p
from repro.utils.validation import NotFittedError


@pytest.fixture(scope="module")
def split():
    return make_attack_split("Mirai", n_benign_flows=300, seed=21)


@pytest.fixture(scope="module")
def model(split):
    return IGuard(n_trees=7, subsample_size=64, k_aug=48, tau_split=0.0, seed=9).fit(
        split.x_train
    )


class TestFitPredict:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IGuard().predict(np.ones((1, 4)))

    def test_predict_binary(self, model, split):
        pred = model.predict(split.x_test)
        assert set(np.unique(pred)) <= {0, 1}

    def test_beats_chance_clearly(self, model, split):
        scores = model.vote_fraction(split.x_test)
        assert roc_auc(split.y_test, scores) > 0.8

    def test_vote_fraction_in_unit_interval(self, model, split):
        vf = model.vote_fraction(split.x_test)
        assert (vf >= 0).all() and (vf <= 1).all()

    def test_predict_is_majority_vote(self, model, split):
        vf = model.vote_fraction(split.x_test)
        np.testing.assert_array_equal(model.predict(split.x_test), (vf > 0.5).astype(int))

    def test_oracle_reused_when_prefit(self, model, split):
        clone = IGuard(
            n_trees=3,
            subsample_size=32,
            k_aug=16,
            oracle=model.oracle,
            oracle_prefit=True,
            seed=10,
        ).fit(split.x_train)
        assert clone.oracle is model.oracle


class TestDistillation:
    def test_every_leaf_labeled(self, model):
        for per_tree in model.distilled_.labeled_leaves():
            for _box, label in per_tree:
                assert label in (0, 1)

    def test_distil_required_before_inference(self, model, split):
        raw = DistilledForest(model.forest_)
        with pytest.raises(RuntimeError, match="distil"):
            raw.predict(signed_log1p(split.x_test))

    def test_benign_training_data_mostly_benign_votes(self, model, split):
        vf = model.vote_fraction(split.x_train)
        assert np.median(vf) < 0.5


class TestRules:
    def test_rules_agree_with_forest(self, model, split):
        ruleset = model.to_rules(max_cells=2048, seed=1)
        c = model.consistency(ruleset, split.x_test)
        assert c > 0.8

    def test_rules_detect_attack(self, model, split):
        ruleset = model.to_rules(max_cells=2048, seed=2)
        f1 = macro_f1(split.y_test, ruleset.predict(split.x_test))
        assert f1 > 0.6

    def test_whitelist_rules_are_benign_only(self, model):
        ruleset = model.to_rules(max_cells=1024, seed=3)
        assert ruleset.n_malicious_rules == 0

    def test_log_space_rules_option(self, model, split):
        log_rules = model.to_rules(max_cells=1024, raw_space=False, seed=4)
        raw_rules = model.to_rules(max_cells=1024, raw_space=True, seed=4)
        np.testing.assert_array_equal(
            log_rules.predict(signed_log1p(split.x_test)),
            raw_rules.predict(split.x_test),
        )


class TestLogSpaceOracle:
    def test_adapter_round_trips_features(self, model, split):
        adapter = _LogSpaceOracle(model.oracle)
        x = split.x_test[:20]
        np.testing.assert_array_equal(
            adapter.predict(signed_log1p(x)), model.oracle.predict(x)
        )

    def test_distil_margin_passthrough(self, model):
        strict = _LogSpaceOracle(model.oracle, distil_margin=1.0)
        loose = _LogSpaceOracle(model.oracle, distil_margin=10.0)
        borderline = model.oracle.base_thresholds_ * 2.0
        assert strict.label_from_expected_errors(borderline) == 1
        assert loose.label_from_expected_errors(borderline) == 0
