"""Property test: quantised rules ≈ raw rules away from bin boundaries.

The switch matches integer codes; classification must agree with the
real-valued rules except within one quantisation bin of a rule edge.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import BENIGN, MALICIOUS, RuleSet, WhitelistRule
from repro.features.scaling import IntegerQuantizer
from repro.utils.box import Box

DOMAIN_LO, DOMAIN_HI = 0.0, 1000.0

interval = st.tuples(
    st.floats(min_value=DOMAIN_LO, max_value=DOMAIN_HI, allow_nan=False),
    st.floats(min_value=DOMAIN_LO, max_value=DOMAIN_HI, allow_nan=False),
).map(lambda ab: (min(ab), max(ab))).filter(lambda ab: ab[1] - ab[0] > 1.0)


@settings(max_examples=60, deadline=None)
@given(
    rule_iv=interval,
    probe=st.floats(min_value=DOMAIN_LO, max_value=DOMAIN_HI, allow_nan=False),
    space=st.sampled_from(["linear", "log"]),
)
def test_quantized_matches_raw_away_from_edges(rule_iv, probe, space):
    lo, hi = rule_iv
    outer = Box((DOMAIN_LO,), (DOMAIN_HI,))
    rules = RuleSet(
        [WhitelistRule(box=Box((lo,), (hi,)), label=BENIGN)], outer_box=outer
    )
    quantizer = IntegerQuantizer(bits=16, space=space).fit(
        np.array([[DOMAIN_LO], [DOMAIN_HI]])
    )
    q_rules = rules.quantize(quantizer)

    x = np.array([[probe]])
    raw = rules.predict(x)[0]
    quant = q_rules.predict(quantizer.quantize(x))[0]
    # Tolerance: within one bin of a rule edge the code may round across.
    bin_width = (DOMAIN_HI - DOMAIN_LO) / (quantizer.levels - 2)
    near_edge = min(abs(probe - lo), abs(probe - hi)) < 4 * bin_width or (
        space == "log" and min(probe, lo, hi) < 5.0
    )
    if not near_edge:
        assert raw == quant


def test_out_of_domain_always_malicious():
    outer = Box((DOMAIN_LO,), (DOMAIN_HI,))
    rules = RuleSet(
        [WhitelistRule(box=Box((DOMAIN_LO,), (DOMAIN_HI,)), label=BENIGN)],
        outer_box=outer,
    )
    quantizer = IntegerQuantizer(bits=16).fit(np.array([[DOMAIN_LO], [DOMAIN_HI]]))
    q_rules = rules.quantize(quantizer)
    x = np.array([[-1.0], [2000.0]])
    assert q_rules.predict(quantizer.quantize(x)).tolist() == [MALICIOUS, MALICIOUS]


def test_infinite_bounds_capture_out_of_domain():
    outer = Box.full(1)
    rules = RuleSet(
        [WhitelistRule(box=Box((-np.inf,), (np.inf,)), label=BENIGN)],
        outer_box=outer,
    )
    quantizer = IntegerQuantizer(bits=16).fit(np.array([[DOMAIN_LO], [DOMAIN_HI]]))
    q_rules = rules.quantize(quantizer)
    x = np.array([[-1.0], [500.0], [2000.0]])
    assert q_rules.predict(quantizer.quantize(x)).tolist() == [BENIGN] * 3
