"""Tests for whitelist rules and rule sets."""

import numpy as np
import pytest

from repro.core.rules import (
    BENIGN,
    MALICIOUS,
    QuantizedRule,
    QuantizedRuleSet,
    RuleSet,
    WhitelistRule,
)
from repro.features.scaling import IntegerQuantizer
from repro.utils.box import Box
from repro.utils.transforms import signed_expm1


def _rule(lows, highs, label=BENIGN):
    return WhitelistRule(box=Box(tuple(lows), tuple(highs)), label=label)


class TestWhitelistRule:
    def test_invalid_label(self):
        with pytest.raises(ValueError):
            _rule([0.0], [1.0], label=7)

    def test_matching(self):
        rule = _rule([0.0, 0.0], [1.0, 1.0])
        x = np.array([[0.5, 0.5], [1.5, 0.5]])
        assert rule.matches(x).tolist() == [True, False]


class TestRuleSet:
    def setup_method(self):
        self.outer = Box((0.0,), (10.0,))
        self.rules = RuleSet(
            [_rule([0.0], [5.0], BENIGN), _rule([5.0], [10.0], MALICIOUS)],
            outer_box=self.outer,
        )

    def test_first_match_semantics(self):
        overlapping = RuleSet(
            [_rule([0.0], [10.0], MALICIOUS), _rule([0.0], [5.0], BENIGN)],
            outer_box=self.outer,
        )
        assert overlapping.predict(np.array([[1.0]]))[0] == MALICIOUS

    def test_default_label_on_miss(self):
        rules = RuleSet([_rule([0.0], [1.0], BENIGN)], outer_box=self.outer)
        assert rules.predict(np.array([[9.0]]))[0] == MALICIOUS

    def test_outer_top_is_closed(self):
        assert self.rules.predict(np.array([[10.0]]))[0] == MALICIOUS

    def test_whitelist_only_drops_malicious_rules(self):
        wl = self.rules.whitelist_only()
        assert len(wl) == 1
        assert wl.n_malicious_rules == 0
        # semantics unchanged: unmatched defaults malicious
        np.testing.assert_array_equal(
            wl.predict(np.array([[1.0], [7.0]])), [BENIGN, MALICIOUS]
        )

    def test_match_one_returns_index(self):
        label, idx = self.rules.match_one(np.array([6.0]))
        assert (label, idx) == (MALICIOUS, 1)
        label, idx = self.rules.match_one(np.array([99.0]))
        assert (label, idx) == (MALICIOUS, None)

    def test_mixed_feature_counts_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([_rule([0.0], [1.0]), _rule([0.0, 0.0], [1.0, 1.0])])

    def test_counts(self):
        assert self.rules.n_benign_rules == 1
        assert self.rules.n_malicious_rules == 1


class TestTransformBoundaries:
    def test_monotone_transform_preserves_classification(self):
        outer = Box((0.0, 0.0), (8.0, 8.0))
        rules = RuleSet(
            [_rule([1.0, 1.0], [3.0, 3.0], BENIGN)], outer_box=outer
        )
        mapped = rules.transform_boundaries(signed_expm1)
        x_log = np.array([[2.0, 2.0], [4.0, 2.0], [0.5, 0.5]])
        x_raw = signed_expm1(x_log)
        np.testing.assert_array_equal(rules.predict(x_log), mapped.predict(x_raw))


class TestQuantizedRuleSet:
    def setup_method(self):
        # Domain [0, 100]; benign rule [20, 60).
        domain = np.array([[0.0], [100.0]])
        self.q = IntegerQuantizer(bits=8).fit(domain)
        rules = RuleSet(
            [_rule([20.0], [60.0], BENIGN)], outer_box=Box((0.0,), (100.0,))
        )
        self.qr = rules.quantize(self.q)

    def test_classification_matches_raw(self):
        x = np.array([[10.0], [30.0], [59.0], [70.0]])
        expected = [MALICIOUS, BENIGN, BENIGN, MALICIOUS]
        assert self.qr.predict(self.q.quantize(x)).tolist() == expected

    def test_out_of_domain_is_malicious(self):
        x = np.array([[-50.0], [500.0]])
        assert self.qr.predict(self.q.quantize(x)).tolist() == [MALICIOUS, MALICIOUS]

    def test_match_one(self):
        label, idx = self.qr.match_one(self.q.quantize(np.array([[30.0]]))[0])
        assert (label, idx) == (BENIGN, 0)

    def test_len_and_iter(self):
        assert len(self.qr) == 1
        assert all(isinstance(r, QuantizedRule) for r in self.qr)
