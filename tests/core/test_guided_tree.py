"""Tests for the autoencoder-guided isolation tree."""

import numpy as np
import pytest

from repro.core.guided_tree import (
    GuidedIsolationTree,
    augment_from_box,
    best_split,
    binary_entropy,
)
from repro.utils.box import Box
from repro.utils.rng import as_rng


class BoxOracle:
    """Deterministic stand-in oracle: malicious outside a benign box."""

    def __init__(self, lows, highs):
        self.box = Box(tuple(lows), tuple(highs))

    def predict(self, x):
        return (~self.box.contains(np.atleast_2d(x), outer=self.box)).astype(int)

    def expected_errors(self, x):
        # Mean "error" = malicious fraction; two pseudo-members.
        frac = float(self.predict(x).mean())
        return np.array([frac, frac])

    def label_from_expected_errors(self, expected):
        return int(expected.mean() > 0.5)


class TestEntropy:
    def test_bounds(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_concave_maximum_at_half(self):
        ps = np.linspace(0.01, 0.99, 50)
        values = [binary_entropy(p) for p in ps]
        assert max(values) <= 1.0
        assert values[np.argmin(np.abs(ps - 0.5))] == max(values)


class TestAugmentation:
    def setup_method(self):
        self.box = Box((0.0, 10.0), (1.0, 20.0))
        self.rng = as_rng(0)

    def test_zero_k(self):
        assert augment_from_box(self.box, 0, self.rng).shape == (0, 2)

    @pytest.mark.parametrize("mode", ["normal", "uniform", "mixture"])
    def test_samples_inside_box(self, mode):
        x_local = np.array([[0.5, 15.0]])
        samples = augment_from_box(self.box, 64, self.rng, mode=mode, x_local=x_local)
        assert samples.shape == (64, 2)
        assert (samples[:, 0] >= 0.0).all() and (samples[:, 0] <= 1.0).all()
        assert (samples[:, 1] >= 10.0).all() and (samples[:, 1] <= 20.0).all()

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            augment_from_box(self.box, 4, self.rng, mode="bogus")

    def test_mixture_concentrates_near_anchors(self):
        x_local = np.array([[0.1, 11.0]])
        samples = augment_from_box(self.box, 200, self.rng, mode="mixture", x_local=x_local)
        near = np.abs(samples[:, 0] - 0.1) < 0.2
        assert near.mean() > 0.3  # local half of the budget hugs the anchor


class TestBestSplit:
    def test_perfectly_separable(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        labels = np.array([0, 0, 0, 1, 1, 1])
        feature, value, gain = best_split(x, labels)
        assert feature == 0
        assert 2.0 < value <= 10.0
        assert gain == pytest.approx(1.0)

    def test_picks_informative_feature(self):
        rng = as_rng(1)
        noise = rng.uniform(size=20)
        signal = np.concatenate([np.zeros(10), np.ones(10)])
        x = np.column_stack([noise, signal])
        labels = signal.astype(int)
        feature, _value, gain = best_split(x, labels)
        assert feature == 1
        assert gain == pytest.approx(1.0)

    def test_constant_features_return_none(self):
        x = np.ones((6, 2))
        assert best_split(x, np.array([0, 1, 0, 1, 0, 1])) is None

    def test_split_value_strictly_separates(self):
        x = np.array([[1.0], [1.0], [2.0]])
        labels = np.array([0, 0, 1])
        _f, value, _g = best_split(x, labels)
        assert 1.0 < value <= 2.0


class TestGuidedTree:
    def setup_method(self):
        rng = as_rng(2)
        # Benign data inside [0.3, 0.7]^3; oracle flags everything outside.
        self.x = rng.uniform(0.35, 0.65, size=(100, 3))
        self.oracle = BoxOracle([0.3, 0.3, 0.3], [0.7, 0.7, 0.7])

    def _fit(self, **kwargs):
        params = dict(oracle=self.oracle, max_depth=20, k_aug=48, tau_split=0.0, seed=5)
        params.update(kwargs)
        tree = GuidedIsolationTree(**params)
        return tree.fit(self.x, feature_box=Box((0.0,) * 3, (1.0,) * 3))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GuidedIsolationTree(self.oracle, max_depth=0)
        with pytest.raises(ValueError):
            GuidedIsolationTree(self.oracle, max_depth=3, k_aug=-1)
        with pytest.raises(ValueError):
            GuidedIsolationTree(self.oracle, max_depth=3, tau_split=2.0)

    def test_leaves_partition_the_feature_box(self):
        tree = self._fit()
        probe = as_rng(6).uniform(0.0, 1.0, size=(100, 3))
        leaves = tree.leaves()
        box = Box((0.0,) * 3, (1.0,) * 3)
        for row in probe:
            hits = sum(
                bool(leaf_box.contains(row.reshape(1, -1), outer=box)[0])
                for _leaf, leaf_box in leaves
            )
            assert hits == 1

    def test_splits_isolate_oracle_boundary(self):
        """Split thresholds should cluster near the oracle's box walls."""
        tree = self._fit()
        boundaries = [v for values in tree.split_boundaries() for v in values]
        near_walls = [v for v in boundaries if min(abs(v - 0.3), abs(v - 0.7)) < 0.1]
        assert len(near_walls) >= len(boundaries) * 0.5

    def test_purity_reached_before_cap(self):
        # A small τ_split tolerance absorbs boundary-jitter probes, so the
        # purity criterion (not the depth cap) terminates growth.
        tree = self._fit(max_depth=40, tau_split=0.02)
        assert tree.max_leaf_depth() < 40

    def test_leaf_purity(self):
        tree = self._fit()
        for leaf, _box in tree.leaves():
            if leaf.malicious_fraction is not None:
                assert leaf.malicious_fraction < 0.2 or leaf.malicious_fraction > 0.8

    def test_unfitted_raises(self):
        tree = GuidedIsolationTree(self.oracle, max_depth=4)
        with pytest.raises(RuntimeError):
            tree.leaves()

    def test_max_depth_respected(self):
        tree = self._fit(max_depth=2)
        assert tree.max_leaf_depth() <= 2
