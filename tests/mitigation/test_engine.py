"""PolicyEngine unit tests: the escalation ladder, TTL expiry and
re-admission, tenant quotas, the allowlist guard, the collateral guard,
operator unblock, and checkpoint state round-trips."""

import numpy as np
import pytest

from repro.core.rules import BENIGN, QuantizedRule, QuantizedRuleSet
from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet
from repro.features.flow_features import SWITCH_FEATURES
from repro.features.scaling import IntegerQuantizer
from repro.mitigation import PolicyEngine, attach_policy, flow_key, parse_flow_key
from repro.switch.controller import Controller
from repro.switch.pipeline import Digest, PipelineConfig, SwitchPipeline
from repro.switch.storage import LABEL_MALICIOUS

N = len(SWITCH_FEATURES)


def _ft(i, src_ip=None):
    # dst_ip is the all-ones address so canonicalisation never flips the
    # direction — tenant identity (top src bits) stays where the test
    # put it.
    return FiveTuple(
        src_ip if src_ip is not None else i, 0xFFFFFFFF, 5000 + i, 80, PROTO_UDP
    )


def _pipeline(**config_kwargs):
    domain = np.vstack([np.zeros(N), np.full(N, 1e6)])
    q = IntegerQuantizer(bits=16).fit(domain)
    rules = QuantizedRuleSet(
        [QuantizedRule(lows=(1,) * N, highs=(q.levels - 1,) * N, label=BENIGN)],
        bits=16,
    )
    return SwitchPipeline(
        fl_rules=rules, fl_quantizer=q, config=PipelineConfig(**config_kwargs)
    )


def _engine(spec, **config_kwargs):
    pipe = _pipeline(**config_kwargs)
    Controller(pipe, install_blacklist=False)
    return attach_policy(pipe, spec), pipe


class TestFlowKey:
    def test_round_trip_canonical(self):
        ft = FiveTuple(99, 1, 80, 5001, PROTO_UDP)
        assert parse_flow_key(flow_key(ft)) == ft.canonical()

    @pytest.mark.parametrize("bad", ("", "1-2-3-4", "1-2-3-4-x", "a-b-c-d-e"))
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="flow key"):
            parse_flow_key(bad)


class TestLadder:
    def test_monitor_rung_touches_nothing(self):
        engine, pipe = _engine("monitor_only")
        assert engine.on_verdict(_ft(1), 0.0) is False
        assert len(pipe.blacklist) == 0
        assert len(pipe.rate_limiter) == 0
        assert all(v == 0 for v in engine.counters.values())
        # Strikes are still remembered (re-offense memory).
        assert engine.flows[_ft(1).canonical()].strikes == 1

    def test_graduated_escalation(self):
        engine, pipe = _engine("graduated")
        ft = _ft(1)
        assert engine.on_verdict(ft, 0.0) is False  # monitor
        assert engine.on_verdict(ft, 1.0) is True   # rate_limit
        assert len(pipe.rate_limiter) == 1
        assert not pipe.blacklist.matches(ft)
        assert engine.on_verdict(ft, 2.0) is True   # drop
        assert pipe.blacklist.matches(ft)
        # Upgrading swapped the artifact — the limiter entry is gone.
        assert len(pipe.rate_limiter) == 0
        assert engine.counters["mitigation.escalations"] == 2
        assert engine.counters["mitigation.rate_limits_installed"] == 1
        assert engine.counters["mitigation.blocks_installed"] == 1
        assert engine.active_blocks == 1
        assert engine.active_rate_limits == 0

    def test_ladder_clamps_at_top(self):
        engine, pipe = _engine("drop_fast")
        ft = _ft(1)
        assert engine.on_verdict(ft, 0.0) is True
        # Re-offense at the top rung refreshes without re-counting.
        assert engine.on_verdict(ft, 1.0) is True
        assert engine.counters["mitigation.blocks_installed"] == 1
        assert engine.counters["mitigation.escalations"] == 1
        assert pipe.blacklist.installs == 1

    def test_time_to_block_recorded_once(self):
        engine, _ = _engine("rate_limit_then_drop")
        ft = _ft(1)
        engine.on_verdict(ft, 10.0)
        engine.on_verdict(ft, 14.0)
        engine.on_verdict(ft, 19.0)
        assert engine.block_latencies == [4.0]


class TestAllowlist:
    def test_allowlisted_src_refused(self):
        engine, pipe = _engine("drop_fast;allow:prefix=10.0.0.0/8")
        ft = _ft(1, src_ip=(10 << 24) | 5)
        assert engine.on_verdict(ft, 0.0) is False
        assert engine.counters["mitigation.allowlist_refusals"] == 1
        assert len(pipe.blacklist) == 0
        # Refused flows are not even tracked.
        assert engine.flows == {}

    def test_allowlist_covers_dst_too(self):
        engine, _ = _engine("drop_fast;allow:prefix=10.0.0.0/8")
        ft = FiveTuple(1, (10 << 24) | 9, 5001, 80, PROTO_UDP)
        assert engine.on_verdict(ft, 0.0) is False
        assert engine.counters["mitigation.allowlist_refusals"] == 1

    def test_unlisted_flow_still_blocked(self):
        engine, pipe = _engine("drop_fast;allow:prefix=10.0.0.0/8")
        ft = _ft(1, src_ip=(11 << 24))
        assert engine.on_verdict(ft, 0.0) is True
        assert pipe.blacklist.matches(ft)


class TestQuota:
    def test_refusal_past_tenant_bound(self):
        # tenant_bits=8: flows sharing the top src octet share a tenant.
        engine, pipe = _engine("drop_fast;quota:tenant_bits=8,max_blocks=1")
        a = _ft(1, src_ip=(42 << 24) | 1)
        b = _ft(2, src_ip=(42 << 24) | 2)
        assert engine.on_verdict(a, 0.0) is True
        assert engine.on_verdict(b, 0.0) is False
        assert engine.counters["mitigation.quota_refusals"] == 1
        assert not pipe.blacklist.matches(b)
        # The refused flow falls back to MONITOR, keeping its memory.
        assert engine.flows[b.canonical()].action == "monitor"

    def test_other_tenant_unaffected(self):
        engine, pipe = _engine("drop_fast;quota:tenant_bits=8,max_blocks=1")
        engine.on_verdict(_ft(1, src_ip=(42 << 24) | 1), 0.0)
        other = _ft(3, src_ip=(43 << 24) | 1)
        assert engine.on_verdict(other, 0.0) is True
        assert pipe.blacklist.matches(other)

    def test_expiry_frees_the_slot(self):
        engine, _ = _engine(
            "drop_fast;idle_timeout=10;memory=100;quota:tenant_bits=8,max_blocks=1"
        )
        a = _ft(1, src_ip=(42 << 24) | 1)
        b = _ft(2, src_ip=(42 << 24) | 2)
        engine.on_verdict(a, 0.0)
        assert engine.on_verdict(b, 1.0) is False
        assert engine.tick(20.0) == 1  # a's block expires
        assert engine.on_verdict(b, 21.0) is True

    def test_unblock_frees_the_slot(self):
        engine, _ = _engine("drop_fast;quota:tenant_bits=8,max_blocks=1")
        a = _ft(1, src_ip=(42 << 24) | 1)
        b = _ft(2, src_ip=(42 << 24) | 2)
        engine.on_verdict(a, 0.0)
        assert engine.unblock(a) == "unblocked"
        assert engine.on_verdict(b, 1.0) is True


class TestTTL:
    def test_idle_block_expires_and_flow_readmitted(self):
        """Satellite regression: without TTL a blacklist entry outlived
        the attack forever; the policy's idle timeout re-admits."""
        engine, pipe = _engine("drop_fast;idle_timeout=10;memory=100")
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        assert pipe.blacklist.matches(ft, 0.5)
        # Still absorbing traffic at t=8 — not idle at t=12.
        pipe.blacklist.matches(ft, 8.0)
        assert engine.tick(12.0) == 0
        # Idle past the timeout: entry removed, flow re-admitted.
        assert engine.tick(30.0) == 1
        assert not pipe.blacklist.matches(ft)
        assert engine.counters["mitigation.expiries"] == 1
        # The re-admitted packet walks the pipeline again (no red path).
        decision = pipe.process(Packet(ft, 31.0, 100))
        assert decision.path != "red"

    def test_strikes_survive_expiry(self):
        engine, pipe = _engine(
            "ladder=rate_limit/drop;idle_timeout=10;memory=1000"
        )
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)  # rate_limit
        engine.tick(20.0)
        assert engine.flows[ft.canonical()].action is None
        # Re-offense within memory resumes the ladder: straight to drop.
        engine.on_verdict(ft, 25.0)
        assert pipe.blacklist.matches(ft)

    def test_memory_prunes_cold_records(self):
        engine, _ = _engine("drop_fast;idle_timeout=10;memory=50")
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        engine.tick(20.0)   # expire enforcement, keep memory
        assert ft.canonical() in engine.flows
        engine.tick(100.0)  # past memory: forgotten entirely
        assert engine.flows == {}

    def test_rate_limit_activity_tracked(self):
        engine, pipe = _engine(
            "ladder=rate_limit/drop;idle_timeout=10;memory=100"
        )
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        # The limiter sees traffic at t=9; at t=15 the entry is not idle.
        pipe.rate_limiter.should_drop(ft.canonical(), 9.0)
        assert engine.tick(15.0) == 0
        assert engine.tick(30.0) == 1

    def test_tick_without_timestamp_is_noop(self):
        engine, _ = _engine("drop_fast")
        engine.on_verdict(_ft(1), 0.0)
        assert engine.tick(None) == 0


class TestUnblock:
    def test_unblock_lifts_enforcement_and_forgets(self):
        engine, pipe = _engine("drop_fast")
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        assert engine.unblock(ft) == "unblocked"
        assert not pipe.blacklist.matches(ft)
        assert engine.flows == {}
        assert engine.counters["mitigation.unblocks"] == 1

    def test_unblock_unknown_flow(self):
        engine, _ = _engine("drop_fast")
        assert engine.unblock(_ft(9)) == "not_blocked"
        assert engine.counters["mitigation.unblocks"] == 0

    def test_pardoned_flow_restarts_the_ladder(self):
        engine, pipe = _engine("ladder=rate_limit/drop")
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        engine.on_verdict(ft, 1.0)  # escalated to drop
        engine.unblock(ft)
        # Unlike TTL expiry, the pardon cleared the strike memory.
        engine.on_verdict(ft, 2.0)
        assert not pipe.blacklist.matches(ft)
        assert len(pipe.rate_limiter) == 1


class TestGuard:
    def test_trip_demotes_and_latches(self):
        engine, pipe = _engine("drop_fast;guard:benign_drop_budget=10")
        ft = _ft(1)
        engine.on_verdict(ft, 0.0)
        engine.account(attack_leaked=0, benign_dropped=11, attack_dropped=5)
        assert engine.guard_tripped
        assert engine.counters["mitigation.guard_trips"] == 1
        assert engine.counters["mitigation.guard_demotions"] == 1
        # Enforcement lifted, record demoted to observation.
        assert not pipe.blacklist.matches(ft)
        assert engine.flows[ft.canonical()].action == "monitor"
        # Latched: new verdicts are forced to MONITOR.
        assert engine.on_verdict(_ft(2), 1.0) is False
        assert len(pipe.blacklist) == 0
        # And a second account round does not re-trip.
        engine.account(attack_leaked=0, benign_dropped=100, attack_dropped=0)
        assert engine.counters["mitigation.guard_trips"] == 1

    def test_zero_budget_disables_the_guard(self):
        engine, _ = _engine("drop_fast;guard:benign_drop_budget=0")
        engine.account(attack_leaked=0, benign_dropped=10**6, attack_dropped=0)
        assert not engine.guard_tripped

    def test_meter_accumulates(self):
        engine, _ = _engine("drop_fast")
        engine.account(attack_leaked=3, benign_dropped=1, attack_dropped=2)
        engine.account(attack_leaked=1, benign_dropped=0, attack_dropped=4)
        assert engine.meter.to_obj() == [4, 1, 6]


class TestControllerIntegration:
    def test_malicious_digest_routes_to_policy(self):
        engine, pipe = _engine("drop_fast")
        ctrl = pipe.controller
        ft = _ft(1)
        pipe.store.lookup_or_create(ft)
        ctrl.handle_digest(Digest(five_tuple=ft, label=LABEL_MALICIOUS, timestamp=2.0))
        assert pipe.blacklist.matches(ft)
        # The legacy always-blacklist path was bypassed...
        assert ctrl.stats.blacklist_installs == 0
        # ...but enforcement still released the flow's storage.
        assert ctrl.stats.storage_releases == 1
        assert pipe.store.occupancy() == 0

    def test_monitor_verdict_keeps_storage(self):
        engine, pipe = _engine("monitor_only")
        ft = _ft(1)
        pipe.store.lookup_or_create(ft)
        pipe.controller.handle_digest(
            Digest(five_tuple=ft, label=LABEL_MALICIOUS, timestamp=2.0)
        )
        assert pipe.store.occupancy() == 1
        assert pipe.controller.stats.storage_releases == 0

    def test_engine_counters_merged_into_controller(self):
        engine, pipe = _engine("drop_fast")
        pipe.controller.handle_digest(
            Digest(five_tuple=_ft(1), label=LABEL_MALICIOUS, timestamp=0.0)
        )
        counters = pipe.controller.telemetry_counters()
        assert counters["mitigation.blocks_installed"] == 1

    def test_attach_requires_controller(self):
        pipe = _pipeline()
        with pytest.raises(ValueError, match="controller"):
            attach_policy(pipe, "drop_fast")


class TestStateRoundTrip:
    def _worked_engine(self):
        engine, pipe = _engine(
            "name=rt;ladder=rate_limit/drop;idle_timeout=10;memory=100;"
            "quota:tenant_bits=8,max_blocks=4;guard:benign_drop_budget=50"
        )
        engine.on_verdict(_ft(1), 0.0)
        engine.on_verdict(_ft(1), 1.0)
        engine.on_verdict(_ft(2), 2.0)
        engine.tick(30.0)
        engine.on_verdict(_ft(3), 31.0)
        engine.account(attack_leaked=7, benign_dropped=3, attack_dropped=9)
        return engine

    def test_state_dict_bit_identical(self):
        engine = self._worked_engine()
        state = engine.state_dict()
        restored = PolicyEngine.from_state(state)
        assert restored.state_dict() == state
        assert restored.tenant_blocks == engine.tenant_blocks
        assert restored.policy == engine.policy

    def test_state_survives_json(self):
        import json

        engine = self._worked_engine()
        state = json.loads(json.dumps(engine.state_dict()))
        # JSON turns 5-tuple lists into lists (they already are) and
        # ints stay ints — the round trip must still be exact.
        assert PolicyEngine.from_state(state).state_dict() == engine.state_dict()

    def test_clone_fresh_shares_policy_not_state(self):
        engine = self._worked_engine()
        clone = engine.clone_fresh()
        assert clone.policy == engine.policy
        assert clone.flows == {}
        assert clone.meter.to_obj() == [0, 0, 0]


class TestStatus:
    def test_status_document(self):
        engine, _ = _engine("drop_fast;guard:benign_drop_budget=100")
        engine.on_verdict(_ft(1), 5.0)
        engine.account(attack_leaked=2, benign_dropped=1, attack_dropped=3)
        doc = engine.status()
        assert doc["policy"].startswith("name=drop_fast")
        assert doc["guard"] == {
            "tripped": False,
            "benign_dropped": 1,
            "budget": 100,
            "remaining": 99,
        }
        assert doc["active"]["drop"] == 1
        assert doc["time_to_block_s"]["count"] == 1
        assert doc["blocks"][0]["flow"] == flow_key(_ft(1))

    def test_gauges(self):
        engine, _ = _engine("drop_fast;guard:benign_drop_budget=100")
        engine.on_verdict(_ft(1), 0.0)
        gauges = engine.telemetry_gauges()
        assert gauges["mitigation.active_blocks"] == 1.0
        assert gauges["mitigation.guard_budget_remaining"] == 100.0
