"""Policy DSL: parse / render round-trips, presets, and rejection of
malformed specs (the operator-facing half of repro.mitigation)."""

import pytest

from repro.mitigation import (
    ACTION_DROP,
    ACTION_MONITOR,
    ACTION_RATE_LIMIT,
    AllowPrefix,
    GuardSpec,
    POLICY_PRESETS,
    Policy,
    QuotaSpec,
    RateLimitSpec,
    get_policy,
    parse_policy,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(POLICY_PRESETS))
    def test_presets_round_trip(self, name):
        policy = get_policy(name)
        assert parse_policy(policy.to_spec()) == policy

    def test_kitchen_sink_round_trip(self):
        policy = Policy(
            name="strict",
            ladder=(ACTION_MONITOR, ACTION_RATE_LIMIT, ACTION_DROP),
            idle_timeout_s=12.5,
            memory_s=60.0,
            rate_limit=RateLimitSpec(keep_one_in=16),
            quota=QuotaSpec(tenant_bits=12, max_blocks=32),
            allow=(
                AllowPrefix.parse("10.0.0.0/8"),
                AllowPrefix.parse("192.168.1.7"),
            ),
            guard=GuardSpec(benign_drop_budget=250),
        )
        assert parse_policy(policy.to_spec()) == policy

    def test_preset_with_overrides(self):
        policy = parse_policy("drop_fast;idle_timeout=5;memory=30")
        assert policy.ladder == (ACTION_DROP,)
        assert policy.idle_timeout_s == 5.0
        assert policy.memory_s == 30.0
        # Untouched fields keep the preset's values.
        assert policy.name == "drop_fast"

    def test_allow_clauses_append_to_preset(self):
        base = get_policy("graduated")
        policy = parse_policy("graduated;allow:prefix=10.0.0.0/8;allow:prefix=1.2.3.4")
        assert len(policy.allow) == len(base.allow) + 2

    def test_monitor_only_property(self):
        assert get_policy("monitor_only").monitor_only
        assert not get_policy("drop_fast").monitor_only


class TestAllowPrefix:
    def test_parse_dotted_quad(self):
        p = AllowPrefix.parse("10.0.0.0/8")
        assert p.bits == 8
        assert p.covers(10 << 24)
        assert p.covers((10 << 24) | 0xFFFFFF)
        assert not p.covers(11 << 24)

    def test_no_slash_means_host(self):
        p = AllowPrefix.parse("1.2.3.4")
        assert p.bits == 32
        assert p.covers((1 << 24) | (2 << 16) | (3 << 8) | 4)
        assert not p.covers((1 << 24) | (2 << 16) | (3 << 8) | 5)

    def test_zero_bits_covers_everything(self):
        assert AllowPrefix.parse("0.0.0.0/0").covers(0xDEADBEEF)

    def test_render_round_trip(self):
        p = AllowPrefix.parse("172.16.0.0/12")
        assert AllowPrefix.parse(p.to_text()) == p

    @pytest.mark.parametrize("bad", ("1.2.3/8", "1.2.3.999/8", "10.0.0.0/33"))
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            AllowPrefix.parse(bad)


class TestRejection:
    @pytest.mark.parametrize(
        "spec,match",
        (
            ("", "empty"),
            ("no_such_preset", "unknown policy preset"),
            ("ladder=drop;bogus=1", "unknown policy keys"),
            ("ladder=drop;frob:x=1", "unknown clause"),
            ("ladder=teleport", "ladder rung"),
            ("ladder=drop/rate_limit", "increasing in severity"),
            ("ladder=drop/drop", "increasing in severity"),
            ("idle_timeout=0", "idle_timeout_s"),
            ("idle_timeout=60;memory=10", "memory"),
            ("rate_limit:keep_one_in=1", "keep_one_in"),
            ("rate_limit:keep_one_in=8,x=1", "unknown rate_limit keys"),
            ("quota:tenant_bits=40", "tenant_bits"),
            ("quota:max_blocks=-1", "max_blocks"),
            ("quota:nope=1", "unknown quota keys"),
            ("allow:network=10", "needs prefix"),
            ("guard:benign_drop_budget=-5", "benign_drop_budget"),
            ("guard:x=2", "unknown guard keys"),
        ),
    )
    def test_bad_specs_rejected(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_policy(spec)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            Policy(ladder=())
