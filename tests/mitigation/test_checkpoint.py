"""Mitigation state across crash/resume: a serve killed mid-escalation
and resumed from its checkpoint must end with the *same policy state* —
flow ladder positions, TTLs, quota occupancy, guard latch, meter — bit
for bit, on top of the usual verdict bit-identity.  Covered for the
single service and the sharded cluster."""

import json

import numpy as np
import pytest

from repro.cluster import ClusterCheckpointManager, ClusterService, restore_cluster
from repro.faults import FaultPlan, SimulatedKill
from repro.mitigation import attach_policy
from repro.runtime import OnlineDetectionService, Retrainer, RuntimeConfig
from repro.runtime.checkpoint import (
    CheckpointManager,
    restore_service,
    service_to_dict,
)
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    PKT_COUNT_THRESHOLD,
    TIMEOUT,
    compile_artifacts,
    fresh_pipeline,
    make_split,
)
from tests.runtime.common import light_model_factory

N_CHUNKS = 6
N_SHARDS = 2
#: Two-rung ladder with a short TTL and a tenant bound, so the state
#: that must survive the crash includes every moving part: strikes,
#: rate-limit and drop artifacts, expiries, and quota occupancy.
POLICY = (
    "name=ckpt;ladder=rate_limit/drop;idle_timeout=2;memory=60;"
    "rate_limit:keep_one_in=4;quota:tenant_bits=4,max_blocks=8"
)


@pytest.fixture(scope="module")
def split():
    return make_split(seed=29, n_benign_flows=50)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def _config(split):
    n_packets = len(split.stream_trace.packets)
    return RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,
        cadence=3,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )


def _retrainer():
    return Retrainer(
        pkt_count_threshold=PKT_COUNT_THRESHOLD,
        timeout=TIMEOUT,
        model_factory=light_model_factory,
        seed=17,
    )


def make_service(split, artifacts, faults=None):
    pipeline = fresh_pipeline(artifacts)
    attach_policy(pipeline, POLICY)
    return OnlineDetectionService(
        pipeline, retrainer=_retrainer(), config=_config(split), faults=faults
    )


def make_cluster(split, artifacts, shard_faults=None):
    pipeline = fresh_pipeline(artifacts)
    attach_policy(pipeline, POLICY)
    return ClusterService(
        pipeline,
        n_shards=N_SHARDS,
        retrainer=_retrainer(),
        config=_config(split),
        shard_faults=shard_faults,
        executor="inprocess",
    )


def _engine_of(pipeline):
    return pipeline.controller.policy


def canon(doc):
    return json.dumps(doc, sort_keys=True, allow_nan=True)


class TestSingleService:
    @pytest.fixture(scope="class")
    def baseline(self, split, artifacts):
        service = make_service(split, artifacts)
        with use_registry(MetricRegistry()):
            report = service.serve(split.stream_trace)
        engine = _engine_of(service.pipeline)
        # The run must actually exercise the ladder for the bit-identity
        # claim below to mean anything.
        assert engine.counters["mitigation.escalations"] > 0
        assert engine.counters["mitigation.expiries"] > 0
        return report, engine.state_dict()

    def test_document_fixed_point_with_policy(self, split, artifacts, tmp_path):
        """serialize → restore → serialize stays a fixed point when the
        checkpoint carries engine + limiter + blacklist-hit state."""
        service = make_service(split, artifacts)
        with use_registry(MetricRegistry()):
            service.serve(split.stream_trace, checkpoint=CheckpointManager(tmp_path))
        doc = CheckpointManager.load(tmp_path)
        assert doc.pop("status") == "complete"
        assert doc["pipeline"]["controller"]["policy"] is not None
        assert doc["pipeline"]["rate_limiter"] is not None
        restored, report = restore_service(doc, model_factory=light_model_factory)
        assert canon(service_to_dict(restored, report)) == canon(doc)

    def test_killed_mid_escalation_resumes_bit_identical(
        self, split, artifacts, tmp_path, baseline
    ):
        base_report, base_state = baseline
        service = make_service(
            split, artifacts, faults=FaultPlan.from_spec("kill:at=2")
        )
        with pytest.raises(SimulatedKill):
            with use_registry(MetricRegistry()):
                service.serve(
                    split.stream_trace, checkpoint=CheckpointManager(tmp_path)
                )

        final_service = None
        for _ in range(10):
            doc = CheckpointManager.load(tmp_path)
            final_service, report = restore_service(
                doc, model_factory=light_model_factory
            )
            if doc["status"] == "complete":
                break
            try:
                with use_registry(MetricRegistry()):
                    report = final_service.serve(
                        split.stream_trace,
                        checkpoint=CheckpointManager(tmp_path),
                        resume_report=report,
                    )
            except SimulatedKill:  # pragma: no cover — spec has one kill
                continue
            break
        else:  # pragma: no cover
            raise AssertionError("resume loop did not converge")

        np.testing.assert_array_equal(report.y_pred, base_report.y_pred)
        np.testing.assert_array_equal(report.y_true, base_report.y_true)
        # The headline claim: the policy state — every strike, TTL
        # stamp, quota slot, and meter tally — is bit-identical to the
        # uninterrupted run's.
        assert _engine_of(final_service.pipeline).state_dict() == base_state


class TestCluster:
    @pytest.fixture(scope="class")
    def baseline(self, split, artifacts):
        with make_cluster(split, artifacts) as cluster:
            with use_registry(MetricRegistry()):
                report = cluster.serve(split.stream_trace)
            states = [
                _engine_of(w.pipeline).state_dict() for w in cluster.workers
            ]
        assert sum(
            s["counters"]["mitigation.escalations"] for s in states
        ) > 0
        return report, states

    def test_killed_shard_resumes_bit_identical(
        self, split, artifacts, tmp_path, baseline
    ):
        base_report, base_states = baseline
        shard_faults = [FaultPlan.from_spec("kill:at=2"), None]
        with pytest.raises(SimulatedKill):
            with make_cluster(split, artifacts, shard_faults) as cluster:
                with use_registry(MetricRegistry()):
                    cluster.serve(
                        split.stream_trace,
                        checkpoint=ClusterCheckpointManager(tmp_path),
                    )

        final_states = None
        for _ in range(10):
            doc = ClusterCheckpointManager.load(tmp_path)
            service, report = restore_cluster(
                doc, model_factory=light_model_factory
            )
            if doc["status"] == "complete":
                with service:
                    final_states = [
                        _engine_of(w.pipeline).state_dict()
                        for w in service.workers
                    ]
                break
            try:
                with service, use_registry(MetricRegistry()):
                    report = service.serve(
                        split.stream_trace,
                        checkpoint=ClusterCheckpointManager(tmp_path),
                        resume_report=report,
                    )
            except SimulatedKill:
                continue
            final_states = [
                _engine_of(w.pipeline).state_dict() for w in service.workers
            ]
            break
        else:  # pragma: no cover
            raise AssertionError("resume loop did not converge")

        np.testing.assert_array_equal(report.y_pred, base_report.y_pred)
        np.testing.assert_array_equal(report.y_true, base_report.y_true)
        # Every shard's engine — including the one that died — must
        # land on the uninterrupted run's exact state.
        assert final_states == base_states
