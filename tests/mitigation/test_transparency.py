"""The two differential locks the mitigation engine must hold:

* **MONITOR transparency** — a monitor-only policy is bit-transparent:
  per-packet decisions, every published telemetry counter, and the
  event stream are identical to a run with no policy engine attached
  (controller blacklist installs disabled on both sides, since MONITOR
  replaces that response).  Gauges are exempt by design: the engine
  publishes extra ``mitigation.*`` levels, which is observation, not
  interference.
* **scalar ≡ batch under enforcement** — with a real escalating policy
  attached, the batch replay engine must agree with the scalar walk on
  every decision, counter, and engine-state bit, exactly as the plain
  pipeline differential suite demands without a policy.
"""

import numpy as np
import pytest

from repro.datasets.trace import flows_to_trace
from repro.mitigation import attach_policy
from repro.switch.runner import replay_trace
from repro.telemetry import MetricRegistry, use_registry

from tests.switch.test_batch_differential import _build_pipeline, _make_flows

PROFILES = ("Mirai", "UDP DDoS")


def _replay(trace, make_pipeline, policy, mode):
    pipe, ctrl = make_pipeline()
    ctrl.install_blacklist = False
    engine = None
    if policy is not None:
        engine = attach_policy(pipe, policy)
    registry = MetricRegistry()
    with use_registry(registry):
        result = replay_trace(trace, pipe, mode=mode)
    return result, pipe, ctrl, engine, registry


def _assert_decisions_equal(r_a, r_b):
    assert len(r_a.decisions) == len(r_b.decisions)
    for i, (a, b) in enumerate(zip(r_a.decisions, r_b.decisions)):
        assert a.path == b.path, f"packet {i}: path {a.path} != {b.path}"
        assert a.action == b.action, f"packet {i}: action"
        assert a.predicted_malicious == b.predicted_malicious, f"packet {i}"
        assert a.digest == b.digest, f"packet {i}: digest"
        assert a.rate_limited == b.rate_limited, f"packet {i}: rate_limited"
    np.testing.assert_array_equal(r_a.y_pred, r_b.y_pred)
    np.testing.assert_array_equal(r_a.y_true, r_b.y_true)


class TestMonitorTransparency:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("mode", ("scalar", "batch"))
    def test_monitor_only_is_bit_transparent(self, profile, mode):
        flows = _make_flows(profile)
        trace = flows_to_trace(flows)
        mk = lambda: _build_pipeline(flows)

        r_none, p_none, c_none, _, reg_none = _replay(trace, mk, None, mode)
        r_mon, p_mon, c_mon, engine, reg_mon = _replay(
            trace, mk, "monitor_only", mode
        )

        _assert_decisions_equal(r_none, r_mon)
        assert p_none.path_counts == p_mon.path_counts
        assert p_none.store.occupancy() == p_mon.store.occupancy()
        assert len(p_mon.blacklist) == 0
        assert len(p_mon.rate_limiter) == 0
        # MONITOR never releases storage (the controller without a
        # policy and with installs disabled doesn't either).
        assert c_none.stats == c_mon.stats

        # Published counters identical: the engine's zero-valued
        # counters never surface (deltas skip zeros), so even the key
        # sets agree.
        assert reg_none.counters_dict() == reg_mon.counters_dict()
        # No mitigation events either.
        assert reg_none.events == reg_mon.events
        # The engine observed every malicious verdict without acting.
        assert engine.counters["mitigation.escalations"] == 0
        assert len(engine.flows) > 0

    def test_monitor_tick_is_transparent(self):
        """Ticking a monitor-only engine expires nothing and publishes
        no counters (gauge levels are allowed)."""
        flows = _make_flows("Mirai")
        trace = flows_to_trace(flows)
        _, _, _, engine, _ = _replay(
            trace, lambda: _build_pipeline(flows), "monitor_only", "scalar"
        )
        registry = MetricRegistry()
        with use_registry(registry):
            expired = engine.tick(trace.packets[-1].timestamp + 10.0)
        assert expired == 0
        assert registry.counters_dict() == {}
        assert registry.events == []


class TestEnforcementDifferential:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize(
        "policy,build_kwargs",
        (
            ("drop_fast;idle_timeout=5;memory=30", {}),
            # The full ladder only climbs when flows re-classify, which
            # takes storage evictions — force them with tiny tables.
            (
                "name=full;ladder=monitor/rate_limit/drop;idle_timeout=5;"
                "memory=30;rate_limit:keep_one_in=4",
                {"n_slots": 2, "blacklist_capacity": 4},
            ),
        ),
    )
    def test_scalar_batch_bit_identical(self, profile, policy, build_kwargs):
        flows = _make_flows(profile)
        trace = flows_to_trace(flows)
        mk = lambda: _build_pipeline(flows, **build_kwargs)

        r_s, p_s, c_s, e_s, reg_s = _replay(trace, mk, policy, "scalar")
        r_b, p_b, c_b, e_b, reg_b = _replay(trace, mk, policy, "batch")

        _assert_decisions_equal(r_s, r_b)
        assert p_s.path_counts == p_b.path_counts
        assert list(p_s.blacklist._entries) == list(p_b.blacklist._entries)
        assert c_s.stats == c_b.stats
        # Engine state — ladder positions, meter, counters — must agree
        # bit for bit, and so must the published telemetry.
        assert e_s.state_dict() == e_b.state_dict()
        assert reg_s.counters_dict() == reg_b.counters_dict()
        assert reg_s.gauges_dict() == reg_b.gauges_dict()
        # The policy actually enforced something on these profiles.
        assert e_s.counters["mitigation.escalations"] > 0

    def test_enforcement_changes_the_replay(self):
        """Sanity on the lock above: the enforcing policy really is on
        the data path (red paths / shed packets appear)."""
        flows = _make_flows("Mirai")
        trace = flows_to_trace(flows)
        mk = lambda: _build_pipeline(flows)
        r_none, *_ = _replay(trace, mk, None, "batch")
        r_drop, _, _, engine, _ = _replay(
            trace, mk, "drop_fast;idle_timeout=5;memory=30", "batch"
        )
        mitigated = sum(
            1 for d in r_drop.decisions if d.path == "red" or d.rate_limited
        )
        assert mitigated > 0
        assert engine.meter.attack_dropped + engine.meter.benign_dropped == mitigated
        none_dropped = sum(1 for d in r_none.decisions if d.path == "red")
        assert none_dropped == 0  # installs were disabled on the bare run
