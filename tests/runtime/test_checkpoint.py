"""Crash-safe checkpoint/restore (:mod:`repro.runtime.checkpoint`).

The core claim under test: a serve loop killed at an arbitrary chunk
boundary and resumed from its last checkpoint finishes with decisions
bit-identical to the uninterrupted run.  The simulated kill
(:class:`repro.faults.SimulatedKill`) fires *inside* the stream driver
before the chunk is yielded, so — like a real SIGKILL — the in-flight
chunk's pipeline mutations are never checkpointed and the resume
re-serves that chunk from the previous consistent snapshot.
"""

import json

import numpy as np
import pytest

from repro.faults import FaultPlan, SimulatedKill
from repro.runtime import OnlineDetectionService, Retrainer, RuntimeConfig
from repro.runtime.checkpoint import (
    SCHEMA,
    CheckpointManager,
    report_from_dict,
    report_to_dict,
    restore_service,
    service_to_dict,
)
from repro.telemetry import MetricRegistry, use_registry
from tests.faults.common import (
    PKT_COUNT_THRESHOLD,
    TIMEOUT,
    compile_artifacts,
    fresh_pipeline,
    make_split,
)
from tests.runtime.common import light_model_factory

N_CHUNKS = 6


@pytest.fixture(scope="module")
def split():
    return make_split(seed=29, n_benign_flows=50)


@pytest.fixture(scope="module")
def artifacts(split):
    return compile_artifacts(split.train_flows)


def make_service(split, artifacts, faults=None):
    """A fresh service with a *real* retrainer (checkpoints serialise the
    reservoir + RNG states, so the stub from the chaos suite won't do)."""
    pipeline = fresh_pipeline(artifacts)
    n_packets = len(split.stream_trace.packets)
    config = RuntimeConfig(
        chunk_size=-(-n_packets // N_CHUNKS),
        drift_threshold=0.0,
        cadence=3,
        min_retrain_flows=8,
        stage_backoff_s=0.0,
    )
    retrainer = Retrainer(
        pkt_count_threshold=PKT_COUNT_THRESHOLD,
        timeout=TIMEOUT,
        model_factory=light_model_factory,
        seed=17,
    )
    return OnlineDetectionService(
        pipeline, retrainer=retrainer, config=config, faults=faults
    )


@pytest.fixture(scope="module")
def baseline(split, artifacts):
    """The uninterrupted, checkpoint-free run every test compares to."""
    service = make_service(split, artifacts)
    registry = MetricRegistry()
    with use_registry(registry):
        report = service.serve(split.stream_trace)
    assert report.n_chunks == N_CHUNKS
    assert report.retrains > 0  # the control loop actually exercised
    return report, registry


def canon(doc):
    return json.dumps(doc, sort_keys=True, allow_nan=True)


class TestDocumentRoundTrip:
    def test_restore_then_reserialize_is_identity(
        self, split, artifacts, tmp_path, baseline
    ):
        """serialize → restore → serialize must be a fixed point — any
        drift (a float coerced, a counter dropped) breaks resume
        bit-identity sooner or later."""
        service = make_service(split, artifacts)
        manager = CheckpointManager(tmp_path)
        with use_registry(MetricRegistry()):
            service.serve(split.stream_trace, checkpoint=manager)

        doc = CheckpointManager.load(tmp_path)
        assert doc.pop("status") == "complete"
        restored, report = restore_service(doc, model_factory=light_model_factory)
        assert canon(service_to_dict(restored, report)) == canon(doc)

    def test_report_round_trip(self, baseline):
        report, _ = baseline
        back = report_from_dict(report_to_dict(report))
        np.testing.assert_array_equal(back.y_pred, report.y_pred)
        np.testing.assert_array_equal(back.y_true, report.y_true)
        assert back.n_chunks == report.n_chunks
        assert back.n_packets == report.n_packets
        assert back.retrains == report.retrains
        assert back.swap_events == report.swap_events
        assert back.chunk_offsets == report.chunk_offsets
        assert back.decisions == []  # evaluation sugar, never persisted

    def test_restore_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="checkpoint"):
            restore_service({"schema": "something/else"})


class TestCheckpointTransparency:
    def test_checkpointing_does_not_perturb_the_run(
        self, split, artifacts, tmp_path, baseline
    ):
        base_report, base_registry = baseline
        service = make_service(split, artifacts)
        registry = MetricRegistry()
        with use_registry(registry):
            report = service.serve(
                split.stream_trace, checkpoint=CheckpointManager(tmp_path)
            )
        np.testing.assert_array_equal(report.y_pred, base_report.y_pred)
        assert registry.counters_dict() == base_registry.counters_dict()


class TestKillAndResume:
    def resume_until_complete(self, split, tmp_path, max_segments=10):
        """Drive the kill/restore cycle to completion; each resume
        rebuilds the fault plan from the stored spec, so the kill switch
        re-arms in every segment until too few chunks remain."""
        for _ in range(max_segments):
            doc = CheckpointManager.load(tmp_path)
            if doc["status"] == "complete":
                service, report = restore_service(
                    doc, model_factory=light_model_factory
                )
                return report
            service, report = restore_service(
                doc, model_factory=light_model_factory
            )
            try:
                with use_registry(MetricRegistry()):
                    report = service.serve(
                        split.stream_trace,
                        checkpoint=CheckpointManager(tmp_path),
                        resume_report=report,
                    )
            except SimulatedKill:
                continue
            return report
        raise AssertionError("resume loop did not converge")

    def test_killed_run_resumes_bit_identical(
        self, split, artifacts, tmp_path, baseline
    ):
        base_report, _ = baseline
        plan = FaultPlan.from_spec("kill:at=2")
        service = make_service(split, artifacts, faults=plan)
        with pytest.raises(SimulatedKill):
            with use_registry(MetricRegistry()):
                service.serve(
                    split.stream_trace, checkpoint=CheckpointManager(tmp_path)
                )

        # The kill dropped the in-flight chunk: the checkpoint is behind.
        doc = CheckpointManager.load(tmp_path)
        assert doc["status"] == "in_progress"
        assert doc["report"]["n_chunks"] < N_CHUNKS

        final = self.resume_until_complete(split, tmp_path)
        assert final.n_chunks == N_CHUNKS
        assert final.n_packets == base_report.n_packets
        np.testing.assert_array_equal(final.y_pred, base_report.y_pred)
        np.testing.assert_array_equal(final.y_true, base_report.y_true)
        assert final.retrains == base_report.retrains
        assert [e.chunk_index for e in final.swap_events] == [
            e.chunk_index for e in base_report.swap_events
        ]

    def test_resume_of_complete_run_is_a_noop(
        self, split, artifacts, tmp_path
    ):
        service = make_service(split, artifacts)
        with use_registry(MetricRegistry()):
            service.serve(
                split.stream_trace, checkpoint=CheckpointManager(tmp_path)
            )
        doc = CheckpointManager.load(tmp_path)
        assert doc["status"] == "complete"
        restored, report = restore_service(doc, model_factory=light_model_factory)
        before = report_to_dict(report)
        with use_registry(MetricRegistry()):
            again = restored.serve(split.stream_trace, resume_report=report)
        # Every packet was already covered: zero chunks re-served.
        assert report_to_dict(again) == before


class TestCheckpointManager:
    def test_journal_records_every_save(self, split, artifacts, tmp_path):
        manager = CheckpointManager(tmp_path)
        service = make_service(split, artifacts)
        with use_registry(MetricRegistry()):
            service.serve(split.stream_trace, checkpoint=manager)
        lines = [
            json.loads(line)
            for line in (tmp_path / CheckpointManager.JOURNAL)
            .read_text()
            .splitlines()
        ]
        assert len(lines) == manager.saves
        chunk_counts = [e["n_chunks"] for e in lines]
        assert chunk_counts == sorted(chunk_counts)
        assert lines[-1]["status"] == "complete"
        assert lines[-1]["benign"] + lines[-1]["malicious"] == lines[-1]["n_packets"]

    def test_every_thins_intermediate_saves(self, split, artifacts, tmp_path):
        manager = CheckpointManager(tmp_path, every=4)
        service = make_service(split, artifacts)
        with use_registry(MetricRegistry()):
            service.serve(split.stream_trace, checkpoint=manager)
        # Chunk boundaries 4 (the only multiple of 4 in 1..6) plus the
        # unconditional final save.
        assert manager.saves == 2

    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointManager(tmp_path, every=0)

    def test_load_rejects_garbage(self, tmp_path):
        (tmp_path / CheckpointManager.FILENAME).write_text('{"schema": "nope"}')
        with pytest.raises(ValueError, match=SCHEMA.split("/")[0]):
            CheckpointManager.load(tmp_path)
        assert CheckpointManager.exists(tmp_path)
        assert not CheckpointManager.exists(tmp_path / "elsewhere")
