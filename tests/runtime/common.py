"""Shared fixtures for the serving-runtime tests: a hand-built
percentile whitelist (fast, deterministic) and a light trained model
factory (small forest, single shallow autoencoder) for the end-to-end
service scenarios."""

import numpy as np

from repro.core.iguard import IGuard
from repro.core.rules import BENIGN, MALICIOUS, RuleSet, WhitelistRule
from repro.nn.autoencoder import Autoencoder
from repro.nn.ensemble import AutoencoderEnsemble
from repro.utils.box import Box
from repro.utils.rng import as_rng, spawn_seeds


def percentile_rules(x):
    """Two-rule whitelist over *x*: narrow MALICIOUS band shadowing a
    wide BENIGN band, default MALICIOUS (mirrors the differential
    suite's workload)."""
    outer = Box(tuple(np.min(x, axis=0) - 1.0), tuple(np.max(x, axis=0) + 1.0))
    mal = WhitelistRule(
        box=Box(
            tuple(np.percentile(x, 40, axis=0)), tuple(np.percentile(x, 60, axis=0))
        ),
        label=MALICIOUS,
    )
    ben = WhitelistRule(
        box=Box(
            tuple(np.percentile(x, 5, axis=0)), tuple(np.percentile(x, 95, axis=0))
        ),
        label=BENIGN,
    )
    return RuleSet([mal, ben], outer_box=outer, default_label=MALICIOUS)


def light_model_factory(seed=None):
    """A minutes-to-seconds iGuard: one shallow autoencoder oracle and a
    five-tree forest — enough signal for the drift scenarios, fast
    enough for CI."""
    rng = as_rng(seed)
    oracle_seed, model_seed = spawn_seeds(rng, 2)
    oracle = AutoencoderEnsemble(
        autoencoders=[Autoencoder(hidden=(8, 3), epochs=60, seed=oracle_seed)],
        threshold_margin=2.0,
        seed=oracle_seed,
    )
    return IGuard(
        n_trees=5,
        subsample_size=64,
        k_aug=32,
        tau_split=0.0,
        threshold_margin=2.0,
        distil_margin=1.2,
        oracle=oracle,
        seed=model_seed,
    )
