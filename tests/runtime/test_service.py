"""End-to-end serving scenarios: drift → retrain → hot-swap recovery,
and the no-drift control (zero spurious swaps).

The drift fixture (:func:`repro.datasets.make_drift_split`) switches the
benign device mix mid-stream from chatty small devices to heavy
streaming devices; the initially deployed model has never seen the new
mix, so its whitelist mislabels the new benign traffic until the runtime
retrains on the reservoir and swaps tables.
"""

import numpy as np
import pytest

from repro.core.deployment import compile_switch_artifacts
from repro.datasets import Trace, make_drift_split
from repro.eval.harness import TestbedConfig, build_pipeline
from repro.eval.metrics import confusion_counts
from repro.features.flow_features import FlowFeatureExtractor
from repro.runtime import (
    OnlineDetectionService,
    Retrainer,
    RuntimeConfig,
    default_model_factory,
)
from repro.switch.controller import Controller
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from repro.telemetry import MetricRegistry, use_registry
from tests.runtime.common import light_model_factory

LIGHT_TESTBED = dict(
    iguard_params={
        "n_trees": 5,
        "subsample_size": 64,
        "k_aug": 32,
        "tau_split": 0.0,
        "threshold_margin": 2.0,
        "distil_margin": 1.2,
    }
)

RUNTIME_CONFIG = dict(
    chunk_size=2000,
    drift_threshold=0.25,
    drift_window=2,
    baseline_window=2,
    min_drift_packets=64,
    min_retrain_flows=24,
    max_swaps=2,
)


def _recall(y_true, y_pred):
    c = confusion_counts(y_true, y_pred)
    return c.tp / (c.tp + c.fn) if (c.tp + c.fn) else 0.0


def _serve(split, registry=None):
    config = TestbedConfig(n_benign_flows=120, **LIGHT_TESTBED)
    pipeline, _controller, _model = build_pipeline("iguard", split, config=config,
                                                   seed=13)
    retrainer = Retrainer(
        pkt_count_threshold=config.pkt_count_threshold,
        timeout=config.timeout,
        model_factory=light_model_factory,
        seed=17,
    )
    service = OnlineDetectionService(
        pipeline, retrainer=retrainer, config=RuntimeConfig(**RUNTIME_CONFIG)
    )
    if registry is None:
        report = service.serve(split.stream_trace)
    else:
        with use_registry(registry):
            report = service.serve(split.stream_trace)
    return pipeline, service, report


@pytest.fixture(scope="module")
def drift_run():
    split = make_drift_split("Mirai", n_benign_flows=120, seed=11)
    registry = MetricRegistry()
    pipeline, service, report = _serve(split, registry)
    return split, pipeline, service, report, registry


class TestDriftScenario:
    def test_monitor_fires_and_runtime_swaps(self, drift_run):
        _split, pipeline, _service, report, _registry = drift_run
        assert report.drift_signals >= 1
        assert report.retrains >= 1
        assert report.n_swaps >= 1
        assert report.n_rollbacks == 0
        assert pipeline.table_swaps == report.n_swaps

    def test_flow_state_survives_the_swap(self, drift_run):
        _split, pipeline, _service, report, _registry = drift_run
        # The store still holds live flows, blacklist entries installed
        # before the swap survive it, and the whitelist lookup counter
        # (one lookup per completed flow) stayed monotonic across
        # generations instead of resetting with the new table object.
        assert pipeline.store.occupancy() > 0
        assert pipeline.fl_table.lookup_count > 0
        assert len(pipeline.blacklist) > 0

    def test_report_accounts_every_packet(self, drift_run):
        split, _pipeline, _service, report, _registry = drift_run
        assert report.n_packets == len(split.stream_trace)
        assert len(report.decisions) == report.n_packets
        assert len(report.y_true) == len(report.y_pred) == report.n_packets
        assert report.chunk_offsets[0] == 0
        assert report.packet_offset_of_chunk(1) == report.chunk_stats[0].n_packets

    def test_post_swap_recall_tracks_reference_model(self, drift_run):
        """Once the runtime has converged (after its last swap), recall
        must come within 5% of a model trained directly on the shifted
        benign distribution — the oracle retrain the runtime is
        approximating from its contaminated reservoir."""
        split, _pipeline, _service, report, _registry = drift_run
        last_swap = [e for e in report.swap_events if not e.rolled_back][-1]
        offset = report.packet_offset_of_chunk(last_swap.chunk_index + 1)
        post_recall = _recall(report.y_true[offset:], report.y_pred[offset:])

        # Reference: same light model, trained on the clean phase-B mix.
        fx = FlowFeatureExtractor(feature_set="switch", pkt_count_threshold=8,
                                  timeout=5.0)
        x_ref, _ = fx.extract_flows(split.shifted_train_flows)
        ref_model = light_model_factory(seed=29).fit(x_ref)
        arts = compile_switch_artifacts(
            ref_model, x_ref, train_flows=split.shifted_train_flows, seed=31
        )
        ref_pipeline = SwitchPipeline(
            fl_rules=arts.fl_rules,
            fl_quantizer=arts.fl_quantizer,
            pl_rules=arts.pl_rules,
            pl_quantizer=arts.pl_quantizer,
            config=PipelineConfig(pkt_count_threshold=8, timeout=5.0),
        )
        Controller(ref_pipeline)
        ref_replay = replay_trace(
            Trace(split.stream_trace.packets[offset:]), ref_pipeline, mode="batch"
        )
        ref_recall = _recall(ref_replay.y_true, ref_replay.y_pred)
        assert post_recall >= ref_recall - 0.05, (
            f"post-swap recall {post_recall:.3f} vs reference {ref_recall:.3f}"
        )

    def test_runtime_telemetry_published(self, drift_run):
        _split, _pipeline, _service, report, registry = drift_run
        counters = registry.counters_dict()
        assert counters["runtime.chunks"] == report.n_chunks
        assert counters["runtime.packets"] == report.n_packets
        assert counters["runtime.drift.signals"] == report.drift_signals
        assert counters["runtime.retrains"] == report.retrains
        assert counters["runtime.swaps"] == report.n_swaps
        assert "runtime.rollbacks" not in counters  # none happened
        assert counters["switch.table.swaps"] == report.n_swaps
        gauges = registry.gauges_dict()
        assert "runtime.drift.score" in gauges
        events = [e for e in registry.events if e["kind"] == "runtime.swap"]
        assert len(events) == len(report.swap_events)
        serve_span = registry.tracer.find("serve")
        assert serve_span is not None
        assert serve_span.find("retrain") is not None  # nested in the serve span
        assert "runtime.swap_pause_s" in registry.histograms_dict()

    def test_swap_pause_is_bounded(self, drift_run):
        _split, _pipeline, _service, report, _registry = drift_run
        for event in report.swap_events:
            assert 0.0 <= event.duration_s < 1.0


class TestNoDriftControl:
    def test_stable_stream_triggers_nothing(self):
        split = make_drift_split("Mirai", n_benign_flows=120, shift="none", seed=11)
        pipeline, _service, report = _serve(split)
        assert report.drift_signals == 0
        assert report.retrains == 0
        assert report.n_swaps == 0
        assert pipeline.table_swaps == 0
        assert report.n_packets == len(split.stream_trace)


class TestServiceConfig:
    def test_cadence_triggers_without_drift_monitor(self):
        split = make_drift_split("Mirai", n_benign_flows=60, shift="none", seed=19)
        config = TestbedConfig(n_benign_flows=60, **LIGHT_TESTBED)
        pipeline, _c, _m = build_pipeline("iguard", split, config=config, seed=23)
        retrainer = Retrainer(model_factory=light_model_factory, seed=23)
        service = OnlineDetectionService(
            pipeline,
            retrainer=retrainer,
            config=RuntimeConfig(
                chunk_size=1500, drift_threshold=0.0, cadence=2,
                min_retrain_flows=8, max_swaps=1,
            ),
        )
        report = service.serve(split.stream_trace)
        assert service.monitor is None  # drift disabled entirely
        assert report.retrains == 1
        assert report.n_swaps == 1
        assert report.swap_events[0].reason == "cadence"

    def test_max_swaps_caps_retrains(self):
        """With max_swaps=0 the control loop observes but never retrains."""
        split = make_drift_split("Mirai", n_benign_flows=60, seed=19)
        config = TestbedConfig(n_benign_flows=60, **LIGHT_TESTBED)
        pipeline, _c, _m = build_pipeline("iguard", split, config=config, seed=23)
        service = OnlineDetectionService(
            pipeline,
            retrainer=Retrainer(model_factory=light_model_factory, seed=23),
            config=RuntimeConfig(
                chunk_size=1500, drift_window=2, baseline_window=2,
                cadence=2, max_swaps=0,
            ),
        )
        report = service.serve(split.stream_trace)
        assert report.retrains == 0
        assert report.n_swaps == 0
        assert pipeline.table_swaps == 0
