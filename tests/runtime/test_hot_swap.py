"""Staged table updates on SwitchPipeline: stage, hot-swap, rollback."""

import numpy as np
import pytest

from repro.datasets import Trace, flows_to_trace, generate_benign_flows
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.runner import replay_trace
from tests.runtime.common import percentile_rules


@pytest.fixture()
def setup():
    flows = generate_benign_flows(24, seed=9)
    trace = flows_to_trace(flows)
    fx = FlowFeatureExtractor(feature_set="switch", pkt_count_threshold=6, timeout=1.0)
    x, _ = fx.extract_flows(flows)
    quantizer = IntegerQuantizer(bits=12, space="log").fit(x)
    rules = percentile_rules(x).quantize(quantizer)
    pipeline = SwitchPipeline(
        fl_rules=rules,
        fl_quantizer=quantizer,
        config=PipelineConfig(pkt_count_threshold=6, timeout=1.0, n_slots=64),
    )
    return pipeline, trace, x, rules, quantizer


class TestStage:
    def test_stage_does_not_touch_live_tables(self, setup):
        pipeline, _trace, x, _rules, quantizer = setup
        live = pipeline.fl_table
        new_rules = percentile_rules(x * 1.1).quantize(
            IntegerQuantizer(bits=12, space="log").fit(x * 1.1)
        )
        new_q = IntegerQuantizer(bits=12, space="log").fit(x * 1.1)
        pipeline.stage_tables(new_rules, new_q)
        assert pipeline.has_staged_tables
        assert pipeline.fl_table is live  # serving continues on old tables

    def test_stage_rejects_fingerprint_mismatch(self, setup):
        pipeline, _trace, x, rules, _quantizer = setup
        wrong_q = IntegerQuantizer(bits=12, space="log").fit(x * 3.0)
        with pytest.raises(ValueError, match="fingerprint"):
            pipeline.stage_tables(rules, wrong_q)
        assert not pipeline.has_staged_tables  # failed stage leaves no residue

    def test_stage_rejects_pl_rules_without_quantizer(self, setup):
        pipeline, _trace, _x, rules, quantizer = setup
        with pytest.raises(ValueError, match="pl_quantizer"):
            pipeline.stage_tables(rules, quantizer, pl_rules=rules)

    def test_hot_swap_without_staged_raises(self, setup):
        pipeline, *_ = setup
        with pytest.raises(RuntimeError, match="staged"):
            pipeline.hot_swap()

    def test_rollback_without_previous_raises(self, setup):
        pipeline, *_ = setup
        with pytest.raises(RuntimeError, match="previous"):
            pipeline.rollback()

    def test_reject_staged_discards_candidate(self, setup):
        pipeline, _trace, x, rules, quantizer = setup
        q2 = IntegerQuantizer(bits=12, space="log").fit(x * 1.2)
        rules2 = percentile_rules(x * 1.2).quantize(q2)
        pipeline.stage_tables(rules2, q2)
        pipeline.reject_staged()
        assert not pipeline.has_staged_tables
        assert pipeline.table_rollbacks == 1
        assert pipeline.table_swaps == 0
        assert pipeline.fl_table.ruleset is rules
        assert pipeline.fl_quantizer is quantizer
        with pytest.raises(RuntimeError, match="staged"):
            pipeline.hot_swap()  # the rejected candidate is truly gone


class TestHotSwap:
    def test_swap_preserves_flow_state_mid_trace(self, setup):
        pipeline, trace, x, _rules, _quantizer = setup
        half = len(trace) // 2
        replay_trace(Trace(trace.packets[:half]), pipeline, mode="batch")

        occupancy = pipeline.store.occupancy()
        blacklist = list(pipeline.blacklist._entries)
        lookups = pipeline.fl_table.lookup_count
        assert occupancy > 0

        q2 = IntegerQuantizer(bits=12, space="log").fit(x * 1.2)
        rules2 = percentile_rules(x * 1.2).quantize(q2)
        pipeline.stage_tables(rules2, q2)
        pipeline.hot_swap()

        # Only the whitelist tables changed hands.
        assert pipeline.table_swaps == 1
        assert pipeline.fl_table.ruleset is rules2
        assert pipeline.store.occupancy() == occupancy
        assert list(pipeline.blacklist._entries) == blacklist
        assert pipeline.fl_table.lookup_count == lookups  # carried, monotonic

        # The second half serves against the new generation without error.
        result = replay_trace(Trace(trace.packets[half:]), pipeline, mode="batch")
        assert result.n_packets == len(trace) - half
        assert pipeline.fl_table.lookup_count >= lookups

    def test_rollback_restores_displaced_generation(self, setup):
        pipeline, _trace, x, rules, quantizer = setup
        q2 = IntegerQuantizer(bits=12, space="log").fit(x * 1.2)
        rules2 = percentile_rules(x * 1.2).quantize(q2)
        pipeline.stage_tables(rules2, q2)
        pipeline.hot_swap()
        assert pipeline.can_rollback

        pipeline.rollback()
        assert pipeline.table_rollbacks == 1
        assert not pipeline.can_rollback
        assert pipeline.fl_table.ruleset is rules
        assert pipeline.fl_quantizer is quantizer

    def test_swap_counters_in_telemetry(self, setup):
        pipeline, _trace, x, _rules, _quantizer = setup
        q2 = IntegerQuantizer(bits=12, space="log").fit(x)
        rules2 = percentile_rules(x).quantize(q2)
        pipeline.stage_tables(rules2, q2)
        pipeline.hot_swap()
        counters = pipeline.telemetry_counters()
        assert counters["switch.table.swaps"] == 1
        assert counters["switch.table.rollbacks"] == 0
        pipeline.rollback()
        assert pipeline.telemetry_counters()["switch.table.rollbacks"] == 1

    def test_restaging_replaces_staged_generation(self, setup):
        pipeline, _trace, x, _rules, _quantizer = setup
        q2 = IntegerQuantizer(bits=12, space="log").fit(x * 1.2)
        rules2 = percentile_rules(x * 1.2).quantize(q2)
        q3 = IntegerQuantizer(bits=12, space="log").fit(x * 1.4)
        rules3 = percentile_rules(x * 1.4).quantize(q3)
        pipeline.stage_tables(rules2, q2)
        pipeline.stage_tables(rules3, q3)
        pipeline.hot_swap()
        assert pipeline.fl_table.ruleset is rules3

    def test_failed_flip_leaves_old_generation_fully_intact(
        self, setup, monkeypatch
    ):
        """A validation error raised mid-flip (between staging and the
        live-pointer assignment) must leave every piece of serving state
        untouched — tables, quantizer, previous generation, flow store,
        blacklist — and keep the candidate staged so the flip can retry."""
        pipeline, trace, x, _rules, quantizer = setup
        half = len(trace) // 2
        replay_trace(Trace(trace.packets[:half]), pipeline, mode="batch")

        q2 = IntegerQuantizer(bits=12, space="log").fit(x * 1.2)
        rules2 = percentile_rules(x * 1.2).quantize(q2)
        pipeline.stage_tables(rules2, q2)

        live = pipeline.fl_table
        previous = pipeline._previous
        occupancy = pipeline.store.occupancy()
        blacklist = list(pipeline.blacklist._entries)

        def boom(tables):
            raise ValueError("mid-flip validation failure")

        monkeypatch.setattr(pipeline, "_build_tables", boom)
        with pytest.raises(ValueError, match="mid-flip"):
            pipeline.hot_swap()

        assert pipeline.fl_table is live
        assert pipeline.fl_quantizer is quantizer
        assert pipeline._previous is previous
        assert pipeline.table_swaps == 0
        assert pipeline.store.occupancy() == occupancy
        assert list(pipeline.blacklist._entries) == blacklist
        assert pipeline.has_staged_tables  # candidate survives for a retry

        # With the transient gone, the very same staged generation flips.
        monkeypatch.undo()
        pipeline.hot_swap()
        assert pipeline.table_swaps == 1
        assert pipeline.fl_table.ruleset is rules2
        result = replay_trace(Trace(trace.packets[half:]), pipeline, mode="batch")
        assert result.n_packets == len(trace) - half

    def test_swap_decisions_change_with_tables(self, setup):
        """A genuinely different whitelist must change verdicts — the
        swap is observable, not a no-op."""
        pipeline, trace, x, _rules, _quantizer = setup
        before = replay_trace(trace, pipeline, mode="batch")

        # An everything-is-malicious generation: same quantizer domain,
        # benign band collapsed to nothing.
        from repro.core.rules import MALICIOUS, RuleSet, WhitelistRule
        from repro.utils.box import Box

        outer = Box(tuple(np.min(x, 0) - 1.0), tuple(np.max(x, 0) + 1.0))
        all_mal = RuleSet(
            [WhitelistRule(box=outer, label=MALICIOUS)],
            outer_box=outer,
            default_label=MALICIOUS,
        )
        q = IntegerQuantizer(bits=12, space="log").fit(x)
        pipeline.stage_tables(all_mal.quantize(q), q)
        pipeline.hot_swap()
        after = replay_trace(trace, pipeline, mode="batch")
        assert after.y_pred.sum() > before.y_pred.sum()
