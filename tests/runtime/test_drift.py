"""DriftMonitor unit behaviour on hand-built chunk statistics."""

import pytest

from repro.runtime import DriftMonitor
from repro.runtime.drift import total_variation
from repro.runtime.stream import ChunkStats


def _stats(rate, paths=None, n=100):
    return ChunkStats(n_packets=n, malicious_rate=rate, path_fractions=paths or {})


class TestTotalVariation:
    def test_identical_mixes(self):
        p = {"brown": 0.5, "purple": 0.5}
        assert total_variation(p, dict(p)) == 0.0

    def test_disjoint_mixes(self):
        assert total_variation({"brown": 1.0}, {"purple": 1.0}) == pytest.approx(1.0)

    def test_missing_keys_count_as_zero(self):
        assert total_variation({"brown": 0.6, "blue": 0.4}, {"brown": 0.6}) == (
            pytest.approx(0.2)
        )


class TestDriftMonitor:
    def test_baseline_forms_before_scoring(self):
        m = DriftMonitor(window=2, baseline_window=3, threshold=0.1)
        assert not m.has_baseline
        for _ in range(3):
            assert m.observe(_stats(0.1)) is False
        assert m.has_baseline

    def test_stable_stream_never_fires(self):
        m = DriftMonitor(window=2, baseline_window=2, threshold=0.2)
        paths = {"brown": 0.7, "purple": 0.3}
        for _ in range(10):
            assert m.observe(_stats(0.1, paths)) is False
        assert m.signals == 0
        assert m.last_score < 0.2

    def test_rate_shift_fires(self):
        m = DriftMonitor(window=2, baseline_window=2, threshold=0.2)
        for _ in range(2):
            m.observe(_stats(0.05))
        m.observe(_stats(0.6))
        assert m.observe(_stats(0.6)) is True
        assert m.signals == 1
        assert m.last_score == pytest.approx(0.55)

    def test_path_mix_shift_fires_without_rate_change(self):
        m = DriftMonitor(window=2, baseline_window=2, threshold=0.2)
        for _ in range(2):
            m.observe(_stats(0.1, {"brown": 0.9, "purple": 0.1}))
        m.observe(_stats(0.1, {"blue": 0.9, "purple": 0.1}))
        assert m.observe(_stats(0.1, {"blue": 0.9, "purple": 0.1})) is True

    def test_incomplete_window_does_not_fire(self):
        m = DriftMonitor(window=3, baseline_window=1, threshold=0.2)
        m.observe(_stats(0.0))
        assert m.observe(_stats(0.9)) is False  # only 1 of 3 recent chunks
        assert m.observe(_stats(0.9)) is False
        assert m.observe(_stats(0.9)) is True

    def test_min_packets_suppresses_tiny_windows(self):
        m = DriftMonitor(window=1, baseline_window=1, threshold=0.2, min_packets=64)
        m.observe(_stats(0.0, n=100))
        assert m.observe(_stats(0.9, n=10)) is False  # below min_packets
        assert m.observe(_stats(0.9, n=100)) is True

    def test_packet_weighted_rate(self):
        """A big clean chunk must outweigh a small noisy one."""
        m = DriftMonitor(window=2, baseline_window=1, threshold=0.3, min_packets=1)
        m.observe(_stats(0.0, n=1000))
        m.observe(_stats(0.9, n=10))
        assert m.observe(_stats(0.0, n=1000)) is False

    def test_reset_reforms_baseline(self):
        m = DriftMonitor(window=1, baseline_window=1, threshold=0.2, min_packets=1)
        m.observe(_stats(0.0))
        assert m.observe(_stats(0.9)) is True
        m.reset()
        assert not m.has_baseline
        assert m.last_score == 0.0
        # The new normal is 0.9: no further signal on it.
        m.observe(_stats(0.9))
        assert m.observe(_stats(0.9)) is False
        assert m.signals == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DriftMonitor(window=0)
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)


class TestWarmup:
    """Cold-start warm-up: discard early chunks so the flow store's
    maturation transient never becomes the reference distribution."""

    def test_warmup_chunks_excluded_from_baseline(self):
        m = DriftMonitor(window=1, baseline_window=1, threshold=0.2,
                         min_packets=1, warmup_chunks=3)
        # Maturation transient: rate drains 0.9 -> 0.1 over warm-up.
        for rate in (0.9, 0.5, 0.3):
            assert m.observe(_stats(rate)) is False
            assert not m.has_baseline
        # Baseline forms on the first mature chunk; steady stream is quiet.
        m.observe(_stats(0.1))
        assert m.has_baseline
        assert m.observe(_stats(0.1)) is False
        # A real shift after warm-up still fires.
        assert m.observe(_stats(0.6)) is True

    def test_without_warmup_transient_poisons_baseline(self):
        """The counter-factual the knob exists for."""
        m = DriftMonitor(window=1, baseline_window=1, threshold=0.2,
                         min_packets=1)
        m.observe(_stats(0.9))
        assert m.observe(_stats(0.1)) is True

    def test_reset_does_not_reapply_warmup(self):
        """Warm-up belongs to the store's cold start, not the tables:
        after a hot-swap reset the baseline re-forms immediately."""
        m = DriftMonitor(window=1, baseline_window=1, threshold=0.2,
                         min_packets=1, warmup_chunks=2)
        for rate in (0.9, 0.4, 0.1):
            m.observe(_stats(rate))
        m.reset()
        m.observe(_stats(0.1))
        assert m.has_baseline

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup_chunks"):
            DriftMonitor(warmup_chunks=-1)
