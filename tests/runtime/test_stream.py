"""Chunked streaming ingestion: iter_chunks and StreamDriver."""

import numpy as np
import pytest

from repro.datasets import Trace, flows_to_trace, generate_benign_flows
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.runtime import StreamDriver, iter_chunks
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.telemetry import MetricRegistry, use_registry
from tests.runtime.common import percentile_rules


def _trace(n_flows=20, seed=3):
    return flows_to_trace(generate_benign_flows(n_flows, seed=seed))


def _pipeline(flows, n=6):
    fx = FlowFeatureExtractor(feature_set="switch", pkt_count_threshold=n, timeout=1.0)
    x, _ = fx.extract_flows(flows)
    q = IntegerQuantizer(bits=12, space="log").fit(x)
    return SwitchPipeline(
        fl_rules=percentile_rules(x).quantize(q),
        fl_quantizer=q,
        config=PipelineConfig(pkt_count_threshold=n, timeout=1.0, n_slots=64),
    )


class TestIterChunks:
    def test_covers_trace_in_order(self):
        trace = _trace()
        chunks = list(iter_chunks(trace, 100))
        assert sum(len(c) for c in chunks) == len(trace)
        assert all(len(c) == 100 for c in chunks[:-1])
        flat = [p for c in chunks for p in c.packets]
        assert flat == trace.packets

    def test_remainder_and_oversized(self):
        trace = Trace(_trace().packets[:7])
        assert [len(c) for c in iter_chunks(trace, 3)] == [3, 3, 1]
        assert [len(c) for c in iter_chunks(trace, 10**6)] == [7]

    def test_empty_trace_yields_nothing(self):
        assert list(iter_chunks(Trace([]), 8)) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_chunks(_trace(), 0))


class TestStreamDriver:
    def test_chunk_results_carry_stats_and_deltas(self):
        flows = generate_benign_flows(20, seed=3)
        trace = flows_to_trace(flows)
        driver = StreamDriver(_pipeline(flows), chunk_size=150)
        results = list(driver.run(trace))

        assert [r.index for r in results] == list(range(len(results)))
        assert driver.chunks_processed == len(results)
        assert driver.packets_processed == len(trace)
        for r in results:
            assert r.stats.n_packets == len(r.trace) == len(r.replay.decisions)
            assert 0.0 <= r.stats.malicious_rate <= 1.0
            # Path fractions cover every packet; green loopback mirrors
            # are counted on top of the path that triggered them.
            green = r.stats.path_fractions.get("green", 0.0)
            assert sum(r.stats.path_fractions.values()) == pytest.approx(1.0 + green)
            path_total = sum(
                v for k, v in r.counters.items() if k.startswith("switch.path.")
            )
            assert path_total == r.stats.n_packets + r.counters.get(
                "switch.path.green", 0
            )

    def test_driver_publishes_nothing_itself(self):
        """Only replay_trace's own publication may reach the registry —
        the differential counter-equality guarantee depends on it."""
        flows = generate_benign_flows(10, seed=4)
        trace = flows_to_trace(flows)

        reg_chunk, reg_one = MetricRegistry(), MetricRegistry()
        with use_registry(reg_chunk):
            for _ in StreamDriver(_pipeline(flows), chunk_size=64).run(trace):
                pass
        with use_registry(reg_one):
            for _ in StreamDriver(_pipeline(flows), chunk_size=10**9).run(trace):
                pass
        assert reg_chunk.counters_dict() == reg_one.counters_dict()

    def test_rejects_bad_chunk_size(self):
        flows = generate_benign_flows(4, seed=5)
        with pytest.raises(ValueError, match="chunk_size"):
            StreamDriver(_pipeline(flows), chunk_size=0)

    def test_decisions_match_oneshot(self):
        flows = generate_benign_flows(20, seed=3)
        trace = flows_to_trace(flows)
        from repro.switch.runner import replay_trace

        one = replay_trace(trace, _pipeline(flows), mode="batch")
        driver = StreamDriver(_pipeline(flows), chunk_size=97)
        preds = np.concatenate([r.replay.y_pred for r in driver.run(trace)])
        np.testing.assert_array_equal(one.y_pred, preds)
