"""Tests for neural layers, gradients, and optimisers."""

import numpy as np
import pytest

from repro.nn.layers import ACTIVATIONS, Dense
from repro.nn.losses import mse, mse_grad, rmse_per_sample
from repro.nn.optim import SGD, Adam
from repro.utils.rng import as_rng


class TestActivations:
    @pytest.mark.parametrize("name", sorted(ACTIVATIONS))
    def test_gradient_matches_finite_difference(self, name):
        act, grad = ACTIVATIONS[name]
        z = np.linspace(-2.0, 2.0, 41)
        z = z[np.abs(z) > 1e-3]  # avoid relu kink
        eps = 1e-6
        numeric = (act(z + eps) - act(z - eps)) / (2 * eps)
        np.testing.assert_allclose(grad(z), numeric, atol=1e-5)

    def test_sigmoid_stable_at_extremes(self):
        _, _ = ACTIVATIONS["sigmoid"]
        from repro.nn.layers import sigmoid

        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


class TestDense:
    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, activation="swish")

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 2)

    def test_forward_shape(self):
        layer = Dense(3, 5, seed=0)
        out = layer.forward(np.ones((7, 3)))
        assert out.shape == (7, 5)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_weight_gradient_matches_finite_difference(self):
        rng = as_rng(1)
        layer = Dense(3, 2, activation="tanh", seed=2)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return mse(layer.forward(x, train=False), target)

        layer.forward(x, train=True)
        layer.backward(mse_grad(layer.forward(x, train=False), target))
        analytic = layer.d_weights.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.weights)
        for i in range(layer.weights.shape[0]):
            for j in range(layer.weights.shape[1]):
                layer.weights[i, j] += eps
                up = loss()
                layer.weights[i, j] -= 2 * eps
                down = loss()
                layer.weights[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestOptimizers:
    def _quadratic_descent(self, optimizer_cls, **kwargs):
        w = np.array([5.0])
        opt = optimizer_cls([w], **kwargs)
        for _ in range(300):
            opt.step([2.0 * w])  # d/dw of w^2
        return abs(w[0])

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD, lr=0.05) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descent(SGD, lr=0.02, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam, lr=0.1) < 1e-3

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], lr=-1.0)

    def test_grad_count_mismatch(self):
        opt = Adam([np.zeros(1)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(1), np.zeros(1)])


class TestLosses:
    def test_mse_known(self):
        assert mse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(2), np.zeros(3))

    def test_rmse_per_sample(self):
        pred = np.array([[1.0, 1.0], [0.0, 0.0]])
        target = np.zeros((2, 2))
        np.testing.assert_allclose(rmse_per_sample(pred, target), [1.0, 0.0])
