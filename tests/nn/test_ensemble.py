"""Tests for the weighted autoencoder ensemble (the guidance oracle)."""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder
from repro.nn.ensemble import AutoencoderEnsemble
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


def _data(n=200, seed=0):
    rng = as_rng(seed)
    a = rng.uniform(1.0, 2.0, size=n)
    return np.column_stack([a, 2 * a, a**0 * rng.uniform(0.0, 0.2, n)])


def _anomalies(n=30, seed=1):
    # In-range marginals but anti-correlated (benign has col1 = 2*col0).
    rng = as_rng(seed)
    a = rng.uniform(1.0, 2.0, n)
    return np.column_stack([a, 6.0 - 2 * a, rng.uniform(0.0, 0.2, n)])


def _small_ensemble(seed=0, **kwargs):
    members = [Autoencoder(hidden=(2,), epochs=150, seed=seed + i) for i in range(3)]
    return AutoencoderEnsemble(members, seed=seed, **kwargs)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AutoencoderEnsemble([])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            _small_ensemble(weights=[1.0])  # wrong length
        with pytest.raises(ValueError):
            _small_ensemble(weights=[-1.0, 1.0, 1.0])

    def test_weights_normalised(self):
        ens = _small_ensemble(weights=[1.0, 1.0, 2.0])
        assert ens.weights.sum() == pytest.approx(1.0)
        assert ens.weights[2] == pytest.approx(0.5)

    def test_default_members_are_magnifiers(self):
        from repro.nn.autoencoder import MagnifierAutoencoder

        ens = AutoencoderEnsemble(seed=1)
        assert ens.n_members == 3
        assert all(isinstance(ae, MagnifierAutoencoder) for ae in ens.autoencoders)

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            AutoencoderEnsemble(threshold_margin=0.0)


class TestFitAndPredict:
    def setup_method(self):
        self.ens = _small_ensemble(seed=3).fit(_data())

    def test_thresholds_calibrated(self):
        assert self.ens.thresholds_.shape == (3,)
        assert (self.ens.thresholds_ > 0).all()

    def test_errors_matrix_shape(self):
        errs = self.ens.reconstruction_errors(_data(10, seed=4))
        assert errs.shape == (10, 3)

    def test_benign_mostly_pass(self):
        assert self.ens.predict(_data(seed=5)).mean() < 0.2

    def test_anomalies_mostly_flagged(self):
        assert self.ens.predict(_anomalies()).mean() >= 0.7

    def test_vote_scores_unit_interval(self):
        v = self.ens.vote_scores(_anomalies())
        assert (v >= 0).all() and (v <= 1).all()

    def test_predict_matches_vote_rule(self):
        x = np.vstack([_data(20, seed=6), _anomalies(20, seed=7)])
        np.testing.assert_array_equal(
            self.ens.predict(x), (self.ens.vote_scores(x) > 0.5).astype(int)
        )

    def test_margin_widens_tube(self):
        x = _anomalies()
        self.ens.calibrate(_data(), margin=1.0)
        flagged_strict = self.ens.predict(x).mean()
        self.ens.calibrate(_data(), margin=50.0)
        flagged_loose = self.ens.predict(x).mean()
        assert flagged_loose <= flagged_strict

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            _small_ensemble().vote_scores(np.ones((1, 3)))


class TestDistillationHelpers:
    def setup_method(self):
        self.ens = _small_ensemble(seed=8).fit(_data())

    def test_expected_errors_is_columnwise_mean(self):
        x = _data(25, seed=9)
        np.testing.assert_allclose(
            self.ens.expected_errors(x),
            self.ens.reconstruction_errors(x).mean(axis=0),
        )

    def test_label_from_expected_errors(self):
        low = np.zeros(3)
        high = self.ens.thresholds_ * 10
        assert self.ens.label_from_expected_errors(low) == 0
        assert self.ens.label_from_expected_errors(high) == 1

    def test_label_margin_override(self):
        borderline = self.ens.base_thresholds_ * 1.5
        assert self.ens.label_from_expected_errors(borderline, margin=1.0) == 1
        assert self.ens.label_from_expected_errors(borderline, margin=2.0) == 0

    def test_label_shape_validation(self):
        with pytest.raises(ValueError):
            self.ens.label_from_expected_errors(np.zeros(5))

    def test_set_thresholds(self):
        self.ens.set_thresholds([0.1, 0.2, 0.3])
        np.testing.assert_allclose(self.ens.thresholds_, [0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            self.ens.set_thresholds([0.1])
