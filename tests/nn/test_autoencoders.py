"""Tests for autoencoders (symmetric, Magnifier, VAE)."""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder, MagnifierAutoencoder
from repro.nn.network import MLP
from repro.nn.vae import VariationalAutoencoder
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


def _manifold_data(n=300, seed=0):
    """2-D latent embedded in 5-D with correlations: y = (a, 2a, b, a+b, 3b)."""
    rng = as_rng(seed)
    a = rng.uniform(1.0, 2.0, size=n)
    b = rng.uniform(0.0, 1.0, size=n)
    return np.column_stack([a, 2 * a, b, a + b, 3 * b])


def _off_manifold(n=50, seed=1):
    """Same marginal ranges, broken correlations."""
    rng = as_rng(seed)
    cols = [
        rng.uniform(1.0, 2.0, n),
        rng.uniform(2.0, 4.0, n),
        rng.uniform(0.0, 1.0, n),
        rng.uniform(0.0, 1.0, n),  # should be col0+col2 but is not
        rng.uniform(0.0, 3.0, n),
    ]
    return np.column_stack(cols)


class TestMLP:
    def test_layer_size_validation(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_activation_count_validation(self):
        with pytest.raises(ValueError):
            MLP([4, 3, 4], activations=["relu"])

    def test_training_reduces_loss(self):
        x = _manifold_data(100)
        x = (x - x.min(0)) / (x.max(0) - x.min(0))
        net = MLP([5, 3, 5], activations=["tanh", "sigmoid"], seed=0)
        history = net.fit_reconstruction(x, epochs=60, lr=5e-3)
        assert history[-1] < history[0] * 0.7


class TestAutoencoder:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Autoencoder().reconstruction_errors(np.ones((1, 3)))

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError):
            Autoencoder(hidden=())

    def test_off_manifold_scores_higher(self):
        ae = Autoencoder(hidden=(4, 2), epochs=120, seed=1, log_scale=False)
        ae.fit(_manifold_data())
        on = ae.reconstruction_errors(_manifold_data(seed=2)).mean()
        off = ae.reconstruction_errors(_off_manifold()).mean()
        assert off > on * 1.5

    def test_anomaly_scores_alias(self):
        ae = Autoencoder(hidden=(3,), epochs=10, seed=2).fit(_manifold_data(60))
        x = _manifold_data(10, seed=3)
        np.testing.assert_array_equal(
            ae.anomaly_scores(x), ae.reconstruction_errors(x)
        )

    def test_errors_nonnegative(self):
        ae = Autoencoder(hidden=(3,), epochs=10, seed=3).fit(_manifold_data(60))
        assert (ae.reconstruction_errors(_off_manifold()) >= 0).all()

    def test_log_scale_changes_errors(self):
        x = _manifold_data(80) * 1000.0
        a = Autoencoder(hidden=(3,), epochs=10, seed=4, log_scale=True).fit(x)
        b = Autoencoder(hidden=(3,), epochs=10, seed=4, log_scale=False).fit(x)
        assert not np.allclose(
            a.reconstruction_errors(x), b.reconstruction_errors(x)
        )


class TestMagnifier:
    def test_asymmetric_layer_structure(self):
        mag = MagnifierAutoencoder(encoder_hidden=(16, 8, 3), epochs=5, seed=5)
        mag.fit(_manifold_data(60))
        sizes = [layer.weights.shape for layer in mag.net_.layers]
        # deep encoder 5->16->8->3, single-jump decoder 3->5
        assert sizes == [(5, 16), (16, 8), (8, 3), (3, 5)]

    def test_detects_off_manifold(self):
        mag = MagnifierAutoencoder(epochs=150, seed=6, log_scale=False)
        mag.fit(_manifold_data())
        on = mag.reconstruction_errors(_manifold_data(seed=7)).mean()
        off = mag.reconstruction_errors(_off_manifold(seed=8)).mean()
        assert off > on * 1.5


class TestVAE:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VariationalAutoencoder(latent_dim=0)
        with pytest.raises(ValueError):
            VariationalAutoencoder(beta=-0.1)

    def test_training_reduces_loss(self):
        vae = VariationalAutoencoder(hidden=(8,), latent_dim=2, epochs=60, seed=9)
        vae.fit(_manifold_data(150))
        assert vae.history_[-1] < vae.history_[0]

    def test_scoring_deterministic(self):
        vae = VariationalAutoencoder(hidden=(8,), latent_dim=2, epochs=20, seed=10)
        vae.fit(_manifold_data(100))
        x = _off_manifold(10)
        np.testing.assert_array_equal(
            vae.reconstruction_errors(x), vae.reconstruction_errors(x)
        )

    def test_detects_off_manifold(self):
        vae = VariationalAutoencoder(epochs=150, seed=11, log_scale=False)
        vae.fit(_manifold_data())
        on = vae.reconstruction_errors(_manifold_data(seed=12)).mean()
        off = vae.reconstruction_errors(_off_manifold(seed=13)).mean()
        assert off > on
