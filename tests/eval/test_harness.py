"""Unit tests for harness plumbing (fast paths only)."""

import numpy as np
import pytest

from repro.core.deployment import rule_domain
from repro.core.rules import BENIGN, RuleSet, WhitelistRule
from repro.datasets.splits import make_trace_split
from repro.eval.harness import (
    ADVERSARIAL_VARIANTS,
    TestbedConfig,
    _train_features,
    build_pipeline,
)
from repro.utils.box import Box


class TestRuleDomain:
    def test_includes_finite_bounds(self):
        x = np.array([[1.0, 1.0], [2.0, 2.0]])
        rules = RuleSet(
            [WhitelistRule(box=Box((0.5, 0.5), (9.0, 9.0)), label=BENIGN)],
            outer_box=Box((0.0, 0.0), (10.0, 10.0)),
        )
        domain = rule_domain(x, rules)
        assert domain[:, 0].min() == 0.5
        assert domain[:, 0].max() == 9.0

    def test_infinite_bounds_filled_from_data(self):
        x = np.array([[1.0], [2.0]])
        rules = RuleSet(
            [WhitelistRule(box=Box((-np.inf,), (np.inf,)), label=BENIGN)],
            outer_box=Box.full(1),
        )
        domain = rule_domain(x, rules)
        assert np.all(np.isfinite(domain))


class TestTrainFeatures:
    def test_truncation_applied(self):
        split = make_trace_split("Mirai", n_benign_flows=60, seed=71)
        config = TestbedConfig(pkt_count_threshold=4)
        x, extractor = _train_features(split, config)
        assert x[:, 0].max() <= 4  # pkt_count capped
        assert extractor.feature_set == "switch"


class TestBuildPipeline:
    def test_without_pl_model(self):
        split = make_trace_split("OS scan", n_benign_flows=80, seed=72)
        config = TestbedConfig(
            n_benign_flows=80,
            use_pl_model=False,
            rule_cells=256,
            iforest_params={"n_trees": 10, "subsample_size": 32, "contamination": 0.1},
        )
        pipeline, controller, model = build_pipeline(
            "iforest", split, config=config, seed=73
        )
        assert pipeline.pl_table is None
        assert controller.pipeline is pipeline
        # Early packets are benign by default without a PL model.
        from repro.datasets.packet import PROTO_UDP, FiveTuple, Packet

        decision = pipeline.process(
            Packet(FiveTuple(9, 9, 9, 9, PROTO_UDP), 0.0, 100)
        )
        assert decision.predicted_malicious == 0

    def test_unknown_model_rejected(self):
        split = make_trace_split("OS scan", n_benign_flows=60, seed=74)
        with pytest.raises(ValueError, match="model must be"):
            build_pipeline("magic", split, seed=75)


class TestVariants:
    def test_expected_variant_names(self):
        assert set(ADVERSARIAL_VARIANTS) == {
            "lowrate_100",
            "evasion_1to2",
            "evasion_1to4",
            "poison_2pct",
            "poison_10pct",
        }

    def test_poison_fractions(self):
        assert ADVERSARIAL_VARIANTS["poison_2pct"][1] == 0.02
        assert ADVERSARIAL_VARIANTS["poison_10pct"][1] == 0.10
        assert ADVERSARIAL_VARIANTS["lowrate_100"][1] == 0.0
