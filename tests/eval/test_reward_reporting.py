"""Tests for the testbed reward and reporting helpers."""

import numpy as np
import pytest

from repro.eval.metrics import DetectionMetrics
from repro.eval.reporting import (
    format_distribution_summary,
    format_improvement_summary,
    format_metric_table,
    histogram_overlap,
)
from repro.eval.reward import testbed_reward as reward_for


def _metrics(f1=0.8, roc=0.9, pr=0.7):
    return DetectionMetrics(macro_f1=f1, roc_auc=roc, pr_auc=pr, accuracy=0.85)


class TestReward:
    def test_alpha_balance(self):
        m = _metrics()
        quality = (0.8 + 0.7 + 0.9) / 3
        assert reward_for(m, memory_fraction=0.2, alpha=0.5) == pytest.approx(
            0.5 * quality + 0.5 * 0.8
        )

    def test_memory_penalty_monotone(self):
        m = _metrics()
        assert reward_for(m, 0.1) > reward_for(m, 0.5)

    def test_alpha_one_ignores_memory(self):
        m = _metrics()
        assert reward_for(m, 0.1, alpha=1.0) == reward_for(m, 0.9, alpha=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            reward_for(_metrics(), memory_fraction=1.5)


class TestReporting:
    def test_metric_table_contains_all_cells(self):
        rows = {"Mirai": {"iforest": _metrics(0.4, 0.5, 0.3), "iguard": _metrics()}}
        text = format_metric_table(rows, models=["iforest", "iguard"], title="Fig 5")
        assert "Fig 5" in text and "Mirai" in text
        assert "0.400" in text and "0.800" in text

    def test_metric_table_missing_model(self):
        rows = {"Mirai": {"iguard": _metrics()}}
        text = format_metric_table(rows, models=["iforest", "iguard"])
        assert "--" in text

    def test_improvement_summary_signs(self):
        rows = {
            "A": {"base": _metrics(0.5, 0.5, 0.5), "new": _metrics(0.75, 0.6, 0.55)},
        }
        text = format_improvement_summary(rows, "base", "new")
        assert "+50.0%" in text

    def test_histogram_overlap_identical_is_one(self):
        x = np.random.default_rng(0).normal(size=500)
        assert histogram_overlap(x, x) == pytest.approx(1.0)

    def test_histogram_overlap_disjoint_is_zero(self):
        a = np.zeros(100)
        b = np.ones(100) * 10
        assert histogram_overlap(a, b) == pytest.approx(0.0, abs=0.02)

    def test_distribution_summary_renders(self):
        rng = np.random.default_rng(1)
        text = format_distribution_summary(
            "Mirai", rng.normal(5, 1, 200), rng.normal(6, 1, 200)
        )
        assert "Mirai" in text and "overlap=" in text
