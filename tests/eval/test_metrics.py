"""Tests for the from-scratch metrics, incl. brute-force property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    confusion_counts,
    detection_metrics,
    f1_score,
    macro_f1,
    pr_auc,
    roc_auc,
    roc_curve,
)


def _brute_force_roc_auc(y, s):
    """P(score_pos > score_neg) + 0.5 P(tie) over all pairs."""
    pos = s[y == 1]
    neg = s[y == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    return wins / (len(pos) * len(neg))


class TestConfusion:
    def test_counts(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        c = confusion_counts(y, p)
        assert (c.tp, c.fn, c.tn, c.fp) == (2, 1, 1, 1)
        assert c.total == 5
        assert c.accuracy == pytest.approx(0.6)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            confusion_counts([0, 2], [0, 1])
        with pytest.raises(ValueError):
            confusion_counts([0, 1], [0])


class TestF1:
    def test_perfect(self):
        y = np.array([0, 1, 0, 1])
        assert f1_score(y, y) == 1.0
        assert macro_f1(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([0, 1])
        assert macro_f1(y, 1 - y) == 0.0

    def test_known_value(self):
        y = np.array([1, 1, 0, 0])
        p = np.array([1, 0, 0, 0])
        # malicious: tp=1 fp=0 fn=1 → 2/3; benign: tp=2 fp=1 fn=0 → 4/5
        assert macro_f1(y, p) == pytest.approx(0.5 * (2 / 3 + 4 / 5))

    def test_degenerate_all_positive_predictions(self):
        y = np.array([0, 0, 0, 1])
        p = np.ones(4, dtype=int)
        assert 0.0 <= macro_f1(y, p) <= 1.0


class TestRocAuc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(y, s) == 1.0

    def test_inverted(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, s) == 0.0

    def test_all_ties_is_half(self):
        y = np.array([0, 1, 0, 1])
        assert roc_auc(y, np.ones(4)) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(4, dtype=int), np.arange(4.0))

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 5)), min_size=4, max_size=30
        )
    )
    def test_matches_brute_force(self, pairs):
        y = np.array([a for a, _ in pairs])
        s = np.array([b for _, b in pairs], dtype=float)
        if y.min() == y.max():
            return
        assert roc_auc(y, s) == pytest.approx(_brute_force_roc_auc(y, s))


class TestPrAuc:
    def test_perfect(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert pr_auc(y, s) == 1.0

    def test_random_equals_prevalence(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        s = rng.uniform(size=4000)
        assert pr_auc(y, s) == pytest.approx(y.mean(), abs=0.05)

    def test_needs_positives(self):
        with pytest.raises(ValueError):
            pr_auc(np.zeros(4, dtype=int), np.arange(4.0))

    def test_monotone_in_separation(self):
        y = np.array([0] * 50 + [1] * 50)
        rng = np.random.default_rng(1)
        weak = np.concatenate([rng.normal(0, 1, 50), rng.normal(0.5, 1, 50)])
        strong = np.concatenate([rng.normal(0, 1, 50), rng.normal(3, 1, 50)])
        assert pr_auc(y, strong) > pr_auc(y, weak)


class TestRocCurve:
    def test_starts_at_origin_ends_at_one(self):
        y = np.array([0, 1, 0, 1, 1])
        s = np.array([0.1, 0.9, 0.3, 0.6, 0.2])
        fpr, tpr = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert (np.diff(fpr) >= 0).all() and (np.diff(tpr) >= 0).all()

    def test_trapezoid_matches_auc(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=200)
        s = rng.normal(size=200) + y
        fpr, tpr = roc_curve(y, s)
        assert np.trapezoid(tpr, fpr) == pytest.approx(roc_auc(y, s), abs=1e-9)


class TestBundle:
    def test_detection_metrics_fields(self):
        y = np.array([0, 1, 0, 1])
        p = np.array([0, 1, 0, 0])
        s = np.array([0.1, 0.9, 0.2, 0.4])
        m = detection_metrics(y, p, s)
        assert m.macro_f1 == macro_f1(y, p)
        assert m.roc_auc == roc_auc(y, s)
        assert m.pr_auc == pr_auc(y, s)
        assert m.mean_of_three == pytest.approx((m.macro_f1 + m.roc_auc + m.pr_auc) / 3)
