"""Tests for the grid-search utilities (tiny grids for speed)."""

import numpy as np
import pytest

from repro.datasets.splits import make_attack_split
from repro.eval.gridsearch import (
    grid_search_iforest,
    grid_search_iguard,
    tune_detector_threshold,
)
from repro.eval.metrics import macro_f1
from repro.nn.autoencoder import Autoencoder
from repro.nn.ensemble import AutoencoderEnsemble


@pytest.fixture(scope="module")
def split():
    return make_attack_split("UDP DDoS", n_benign_flows=200, seed=41)


class TestIForestSearch:
    def test_returns_best_config(self, split):
        grid = {
            "n_trees": (20,),
            "subsample_size": (32, 64),
            "contamination": (0.05, 0.2),
        }
        result = grid_search_iforest(
            split.x_train, split.x_val, split.y_val, grid=grid, seed=1
        )
        assert result.params["subsample_size"] in (32, 64)
        assert result.params["contamination"] in (0.05, 0.2)
        assert 0.0 <= result.val_metrics.macro_f1 <= 1.0
        # Winner model is refitted with the winning contamination.
        assert result.model.contamination == result.params["contamination"]

    def test_objective_validation(self, split):
        with pytest.raises(ValueError):
            grid_search_iforest(
                split.x_train, split.x_val, split.y_val,
                grid={"n_trees": (5,), "subsample_size": (16,), "contamination": (0.1,)},
                objective="nope",
            )


class TestIGuardSearch:
    def test_shared_oracle_reused(self, split):
        members = [Autoencoder(hidden=(4,), epochs=40, seed=i) for i in range(2)]
        oracle = AutoencoderEnsemble(members, seed=2).fit(split.x_train)
        grid = {
            "n_trees": (3,),
            "subsample_size": (48,),
            "k_aug": (32,),
            "threshold_margin": (2.0,),
            "distil_margin": (1.0, 1.2),
        }
        result = grid_search_iguard(
            split.x_train, split.x_val, split.y_val, grid=grid, oracle=oracle, seed=3
        )
        assert result.model.oracle is oracle
        assert result.params["distil_margin"] in (1.0, 1.2)
        assert result.val_metrics.mean_of_three > 0.3


class TestThresholdTuning:
    def test_picks_separating_threshold(self):
        scores_val = np.array([0.1, 0.2, 0.3, 5.0, 6.0])
        y_val = np.array([0, 0, 0, 1, 1])
        t = tune_detector_threshold(scores_val, y_val, scores_train=np.linspace(0, 1, 100))
        pred = (scores_val > t).astype(int)
        assert macro_f1(y_val, pred) == 1.0
