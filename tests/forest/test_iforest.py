"""Tests for the conventional Isolation Forest baseline."""

import numpy as np
import pytest

from repro.forest.iforest import IsolationForest
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


def _benign_cluster(n=300, seed=0):
    return as_rng(seed).normal(0.0, 1.0, size=(n, 5))


def _outliers(n=40, seed=1):
    return as_rng(seed).normal(8.0, 1.0, size=(n, 5))


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IsolationForest(n_trees=0)
        with pytest.raises(ValueError):
            IsolationForest(subsample_size=1)
        with pytest.raises(ValueError):
            IsolationForest(contamination=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IsolationForest().decision_function(np.ones((1, 2)))


class TestScoring:
    def setup_method(self):
        self.x = _benign_cluster()
        self.forest = IsolationForest(
            n_trees=50, subsample_size=64, contamination=0.1, seed=7
        ).fit(self.x)

    def test_scores_in_unit_interval(self):
        s = self.forest.decision_function(self.x)
        assert (s > 0).all() and (s < 1).all()

    def test_outliers_score_higher(self):
        s_in = self.forest.decision_function(self.x).mean()
        s_out = self.forest.decision_function(_outliers()).mean()
        assert s_out > s_in

    def test_outliers_have_shorter_paths(self):
        h_in = self.forest.expected_path_length(self.x).mean()
        h_out = self.forest.expected_path_length(_outliers()).mean()
        assert h_out < h_in

    def test_contamination_controls_training_flag_rate(self):
        flagged = self.forest.predict(self.x).mean()
        assert flagged == pytest.approx(0.1, abs=0.05)

    def test_predict_binary(self):
        pred = self.forest.predict(_outliers())
        assert set(np.unique(pred)) <= {0, 1}
        assert pred.mean() > 0.8  # far outliers almost all flagged

    def test_path_length_threshold_consistent_with_score(self):
        """score > τ  ⟺  expected path length < path-length threshold."""
        x_all = np.vstack([self.x, _outliers()])
        scores = self.forest.decision_function(x_all)
        paths = self.forest.expected_path_length(x_all)
        cutoff = self.forest.path_length_threshold()
        np.testing.assert_array_equal(
            scores > self.forest.score_threshold(), paths < cutoff
        )

    def test_deterministic_with_seed(self):
        a = IsolationForest(n_trees=10, subsample_size=32, seed=3).fit(self.x)
        b = IsolationForest(n_trees=10, subsample_size=32, seed=3).fit(self.x)
        np.testing.assert_allclose(
            a.decision_function(self.x), b.decision_function(self.x)
        )

    def test_subsample_capped_at_dataset(self):
        forest = IsolationForest(n_trees=5, subsample_size=10_000, seed=4).fit(self.x)
        assert forest.psi_ == len(self.x)
