"""Vectorised leaf-label routing must match per-row routing exactly."""

import numpy as np
import pytest

from repro.forest.iforest import IsolationForest
from repro.forest.rules import ScoreLabeledForest
from repro.utils.rng import as_rng


class TestLeafLabels:
    def setup_method(self):
        rng = as_rng(0)
        self.x = rng.normal(size=(150, 4))
        forest = IsolationForest(
            n_trees=15, subsample_size=48, contamination=0.1, seed=3
        ).fit(self.x)
        self.labeled = ScoreLabeledForest(forest)

    def test_unfitted_raises(self):
        from repro.forest.itree import IsolationTree

        with pytest.raises(RuntimeError):
            IsolationTree(max_depth=3).leaf_labels(self.x)

    def test_matches_per_row_routing(self):
        probe = np.vstack([self.x, as_rng(1).normal(0, 4, size=(60, 4))])
        for tree in self.labeled.trees_:
            fast = tree.leaf_labels(probe)
            slow = np.array([tree.leaf_for(row).label for row in probe])
            np.testing.assert_array_equal(fast, slow)

    def test_vote_fraction_uses_same_labels(self):
        probe = as_rng(2).normal(0, 3, size=(40, 4))
        vf = self.labeled.vote_fraction(probe)
        manual = np.zeros(len(probe))
        for tree in self.labeled.trees_:
            manual += np.array([tree.leaf_for(row).label for row in probe])
        np.testing.assert_allclose(vf, manual / len(self.labeled.trees_))

    def test_unlabelled_leaves_default_benign(self):
        from repro.forest.itree import IsolationTree

        tree = IsolationTree(max_depth=4, seed=5).fit(self.x)
        labels = tree.leaf_labels(self.x)  # no labelling applied
        assert (labels == 0).all()
