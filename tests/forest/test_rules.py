"""Tests for the score-labelled (HorusEye-style) baseline forest."""

import numpy as np
import pytest

from repro.forest.iforest import IsolationForest
from repro.forest.rules import ScoreLabeledForest
from repro.utils.rng import as_rng
from repro.utils.validation import NotFittedError


def _data(seed=0):
    rng = as_rng(seed)
    return rng.normal(0.0, 1.0, size=(200, 4))


class TestScoreLabeledForest:
    def setup_method(self):
        self.x = _data()
        self.forest = IsolationForest(
            n_trees=40, subsample_size=64, contamination=0.1, seed=5
        ).fit(self.x)
        self.labeled = ScoreLabeledForest(self.forest)

    def test_requires_fitted_forest(self):
        with pytest.raises(NotFittedError):
            ScoreLabeledForest(IsolationForest())

    def test_every_leaf_labeled(self):
        for per_tree in self.labeled.labeled_leaves():
            for _box, label in per_tree:
                assert label in (0, 1)

    def test_leaf_labels_match_score_threshold(self):
        """Leaf label 1 ⟺ implied path length below the forest cutoff."""
        cutoff = self.forest.path_length_threshold()
        for tree in self.labeled.trees_:
            for leaf, _box in tree.leaves():
                implied = leaf.depth + leaf.path_adjustment()
                assert leaf.label == int(implied < cutoff)

    def test_vote_fraction_in_unit_interval(self):
        vf = self.labeled.vote_fraction(self.x)
        assert (vf >= 0).all() and (vf <= 1).all()

    def test_predict_is_majority_of_votes(self):
        vf = self.labeled.vote_fraction(self.x)
        np.testing.assert_array_equal(self.labeled.predict(self.x), (vf > 0.5).astype(int))

    def test_far_outliers_predicted_malicious(self):
        outliers = np.full((10, 4), 9.0)
        assert self.labeled.predict(outliers).mean() > 0.8

    def test_bulk_data_mostly_benign(self):
        assert self.labeled.predict(self.x).mean() < 0.4

    def test_split_boundaries_shape(self):
        bounds = self.labeled.split_boundaries()
        assert len(bounds) == 4
        assert any(len(b) > 0 for b in bounds)

    def test_counts(self):
        assert self.labeled.n_leaves() > 40  # more leaves than trees
        assert self.labeled.max_depth() >= 1
