"""Tests for the isolation tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest.itree import IsolationTree, average_path_length, harmonic_number
from repro.utils.rng import as_rng


class TestPathLengthMath:
    def test_c_of_small_n(self):
        assert average_path_length(0) == 0.0
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0

    def test_c_monotone(self):
        values = [average_path_length(n) for n in range(2, 200)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_c_matches_formula(self):
        n = 256
        expected = 2 * harmonic_number(n - 1) - 2 * (n - 1) / n
        assert average_path_length(n) == pytest.approx(expected)


class TestIsolationTree:
    def setup_method(self):
        rng = as_rng(0)
        self.x = rng.normal(size=(128, 4))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            IsolationTree(max_depth=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            IsolationTree(max_depth=3).path_lengths(self.x)

    def test_height_cap_respected(self):
        tree = IsolationTree(max_depth=5, seed=1).fit(self.x)
        assert tree.max_leaf_depth() <= 5

    def test_path_lengths_bounded(self):
        tree = IsolationTree(max_depth=7, seed=2).fit(self.x)
        h = tree.path_lengths(self.x)
        # depth <= 7, plus c(leaf size) <= c(n)
        assert h.max() <= 7 + average_path_length(len(self.x))
        assert h.min() >= 0.0

    def test_constant_data_single_leaf(self):
        x = np.ones((32, 3))
        tree = IsolationTree(max_depth=6, seed=3).fit(x)
        assert tree.n_leaves() == 1

    def test_outlier_has_shorter_path(self):
        x = np.vstack([self.x, [[50.0, 50.0, 50.0, 50.0]]])
        tree = IsolationTree(max_depth=8, seed=4).fit(x)
        h = tree.path_lengths(x)
        assert h[-1] < np.median(h[:-1])

    def test_leaf_for_matches_path_lengths(self):
        tree = IsolationTree(max_depth=6, seed=5).fit(self.x)
        for row in self.x[:10]:
            leaf = tree.leaf_for(row)
            h = tree.path_lengths(row.reshape(1, -1))[0]
            assert h == pytest.approx(leaf.depth + leaf.path_adjustment())

    def test_leaves_partition_sizes(self):
        tree = IsolationTree(max_depth=6, seed=6).fit(self.x)
        total = sum(leaf.size for leaf, _box in tree.leaves())
        assert total == len(self.x)

    def test_leaf_boxes_partition_space(self):
        """Every sample falls in exactly one leaf box."""
        tree = IsolationTree(max_depth=5, seed=7).fit(self.x)
        leaves = tree.leaves()
        for row in self.x[:20]:
            hits = sum(bool(box.contains(row.reshape(1, -1))[0]) for _leaf, box in leaves)
            assert hits == 1

    def test_split_boundaries_sorted_per_feature(self):
        tree = IsolationTree(max_depth=6, seed=8).fit(self.x)
        for values in tree.split_boundaries():
            assert values == sorted(values)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=64))
    def test_isolation_terminates_every_size(self, n):
        x = as_rng(n).normal(size=(n, 3))
        tree = IsolationTree(max_depth=8, seed=n).fit(x)
        assert tree.n_leaves() >= 1
        assert np.all(tree.path_lengths(x) > 0)
