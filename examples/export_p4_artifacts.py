#!/usr/bin/env python3
"""Export deployable P4 artifacts for a trained iGuard model.

Trains iGuard on the 13 switch-extractable flow features (the paper's
§4.2 setting), compiles and quantises its whitelist rules, and writes
two artifacts next to this script:

* ``iguard_whitelist.p4``  — a P4-16 (v1model) program implementing the
  blacklist + whitelist pipeline;
* ``iguard_entries.json``  — the control-plane table entries, one
  range-match entry per whitelist rule in quantised integer units.

Run:  python examples/export_p4_artifacts.py
"""

import os

import numpy as np

from repro.core import IGuard
from repro.datasets import generate_benign_flows
from repro.features import FlowFeatureExtractor, IntegerQuantizer, SWITCH_FEATURES
from repro.switch import write_artifacts

SEED = 23
OUT_DIR = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    print("== exporting P4 artifacts ==")
    flows = generate_benign_flows(320, seed=SEED)
    extractor = FlowFeatureExtractor(
        feature_set="switch", pkt_count_threshold=8, timeout=5.0
    )
    x_train, _ = extractor.extract_flows(flows)
    print(f"training iGuard on {x_train.shape[0]} benign flows "
          f"({x_train.shape[1]} switch features) ...")
    model = IGuard(n_trees=11, subsample_size=96, k_aug=96, tau_split=0.0,
                   seed=SEED).fit(x_train)

    ruleset = model.to_rules(max_cells=1024, seed=SEED)
    print(f"compiled {len(ruleset)} whitelist rules")

    quantizer = IntegerQuantizer(bits=16, space="log").fit(x_train)
    q_rules = ruleset.quantize(quantizer)

    p4_path = os.path.join(OUT_DIR, "iguard_whitelist.p4")
    entries_path = os.path.join(OUT_DIR, "iguard_entries.json")
    write_artifacts(q_rules, p4_path, entries_path, SWITCH_FEATURES)
    print(f"wrote {p4_path}")
    print(f"wrote {entries_path}  ({len(q_rules)} entries)")


if __name__ == "__main__":
    main()
