#!/usr/bin/env python3
"""Switch deployment: run a UDP DDoS through the simulated data plane.

Reproduces the paper's §4.2 testbed flow on one attack: train both
models on the 13 switch-extractable FL features (truncated at the
packet-count threshold n and timeout δ), compile and quantise their
whitelist rules, install them in the simulated Tofino pipeline alongside
the early-packet PL rules, replay the mixed test trace packet by packet,
and report per-packet detection, path usage, switch resources, and
control-plane digest load.

Run:  python examples/switch_deployment.py
"""

from repro.datasets import make_trace_split
from repro.eval import TestbedConfig, run_testbed_experiment

SEED = 11
ATTACK = "UDP DDoS"


def main() -> None:
    print(f"== iGuard switch deployment — {ATTACK} ==")
    config = TestbedConfig(n_benign_flows=320)
    split = make_trace_split(ATTACK, n_benign_flows=config.n_benign_flows, seed=SEED)
    print(f"test trace: {len(split.test_trace)} packets, "
          f"{split.test_trace.malicious_fraction():.1%} malicious, "
          f"{split.test_trace.duration:.1f} s")

    for model in ("iforest", "iguard"):
        name = "iForest [15]" if model == "iforest" else "iGuard"
        print(f"\n-- deploying {name} --")
        result = run_testbed_experiment(
            ATTACK, model, config=config, split=split, seed=SEED + 1
        )
        m = result.metrics
        print(f"  per-packet macro F1 = {m.macro_f1:.3f}  "
              f"ROC = {m.roc_auc:.3f}  PR = {m.pr_auc:.3f}")
        print(f"  whitelist rules: {result.n_rules}")
        r = result.resources
        print(f"  resources: TCAM {r.tcam_pct:.2f}%  SRAM {r.sram_pct:.2f}%  "
              f"sALU {r.salu_pct:.2f}%  VLIW {r.vliw_pct:.2f}%  "
              f"stages {r.stages}")
        print(f"  reward (α=0.5): {result.reward:.3f}")
        paths = result.replay.path_counts()
        print("  packet paths: " + "  ".join(f"{k}={v}" for k, v in sorted(paths.items())))
        print(f"  dropped {result.replay.dropped_fraction():.1%} of packets, "
              f"{result.pipeline.digests_emitted} digests to the controller, "
              f"{len(result.pipeline.blacklist)} blacklist entries installed")


if __name__ == "__main__":
    main()
