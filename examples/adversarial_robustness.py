#!/usr/bin/env python3
"""Adversarial robustness: low-rate, evasion, and poisoning attackers.

Reproduces the paper's Tables 2-3 threat model on a small scale: a
black-box adversary reshapes their TCP DDoS (slowing to 1/100 rate, or
padding malicious packets with benign-mimicking filler at a 1:2
benign:malicious ratio) or contaminates the benign training capture with
10% Mirai.  On this synthetic traffic iGuard shrugs off the low-rate and
poisoning adversaries where the conventional iForest collapses; the
evasion row reproduces only partially (see EXPERIMENTS.md).

Run:  python examples/adversarial_robustness.py
"""

from repro.eval import TestbedConfig, run_adversarial_experiment, run_testbed_experiment

SEED = 13

SCENARIOS = [
    ("baseline (no adversary)", "TCP DDoS", None),
    ("low rate 1/100", "TCP DDoS", "lowrate_100"),
    ("evasion 1:2 padding", "TCP DDoS", "evasion_1to2"),
    ("poisoning 10% (Mirai)", "Mirai", "poison_10pct"),
]


def main() -> None:
    print("== adversarial robustness: iGuard vs iForest on the switch ==")
    config = TestbedConfig(n_benign_flows=300)
    for label, attack, variant in SCENARIOS:
        print(f"\n-- {label} ({attack}) --")
        for model in ("iforest", "iguard"):
            if variant is None:
                result = run_testbed_experiment(attack, model, config=config, seed=SEED)
            else:
                result = run_adversarial_experiment(
                    attack, model, variant, config=config, seed=SEED
                )
            name = "iForest [15]" if model == "iforest" else "iGuard"
            m = result.metrics
            print(f"  {name:<12s} macro F1 {m.macro_f1:.3f}  "
                  f"ROC {m.roc_auc:.3f}  PR {m.pr_auc:.3f}")


if __name__ == "__main__":
    main()
