#!/usr/bin/env python3
"""Quickstart: train iGuard on benign IoT traffic and detect an attack.

Walks the paper's §3.2 pipeline end to end on a synthetic Mirai
workload:

1. generate benign traffic and extract flow features;
2. train the autoencoder ensemble and the guided isolation forest,
   distilling the ensemble's knowledge into leaf labels;
3. evaluate on held-out traffic (benign + 20% Mirai);
4. compile the model into switch whitelist rules and check consistency.

Run:  python examples/quickstart.py
"""

from repro.core import IGuard
from repro.datasets import make_attack_split
from repro.eval import detection_metrics

SEED = 7


def main() -> None:
    print("== iGuard quickstart ==")
    print("generating benign IoT traffic + Mirai test traffic ...")
    split = make_attack_split("Mirai", n_benign_flows=400, seed=SEED)
    print(f"  train: {split.x_train.shape[0]} benign flows, "
          f"{split.n_features} features")
    print(f"  test:  {len(split.y_test)} flows "
          f"({int(split.y_test.sum())} malicious)")

    print("training iGuard (autoencoder ensemble → guided forest → distillation) ...")
    model = IGuard(n_trees=11, subsample_size=96, k_aug=96, tau_split=0.0,
                   seed=SEED).fit(split.x_train)

    metrics = detection_metrics(
        split.y_test, model.predict(split.x_test), model.vote_fraction(split.x_test)
    )
    print(f"  macro F1 = {metrics.macro_f1:.3f}")
    print(f"  ROC AUC  = {metrics.roc_auc:.3f}")
    print(f"  PR AUC   = {metrics.pr_auc:.3f}")

    print("compiling whitelist rules for the switch ...")
    rules = model.to_rules(max_cells=2048, seed=SEED)
    consistency = model.consistency(rules, split.x_test)
    print(f"  {len(rules)} whitelist rules "
          f"(benign-region boxes; unmatched traffic is dropped)")
    print(f"  rule/model consistency C = {consistency:.3f}  (paper: 0.992-0.996)")

    example = rules.rules[0]
    print("  first rule's ranges (feature: [low, high)):")
    for name, lo, hi in list(
        zip(split.feature_names, example.box.lows, example.box.highs)
    )[:5]:
        print(f"    {name:<12s} [{lo:.3g}, {hi:.3g})")
    print("done.")


if __name__ == "__main__":
    main()
