#!/usr/bin/env python3
"""Candidate comparison: which unsupervised model should guide iForest?

Reproduces the paper's App. A study (Fig 10) on a few attacks: kNN, PCA,
X-means, a conventional iForest, a VAE, and the Magnifier-style
asymmetric autoencoder are each fine-tuned on the validation set and
compared by test macro F1.  Magnifier's win on average is why it is
iGuard's knowledge-distillation oracle.

Run:  python examples/candidate_comparison.py
"""

import numpy as np

from repro.baselines import KNNDetector, PCADetector, XMeansDetector
from repro.datasets import make_attack_split
from repro.eval import macro_f1
from repro.eval.gridsearch import tune_detector_threshold
from repro.forest import IsolationForest
from repro.nn import MagnifierAutoencoder, VariationalAutoencoder

SEED = 17
ATTACKS = ("Mirai", "UDP DDoS", "Keylogging")


def tuned_f1(detector, split) -> float:
    """Fit on benign, tune the threshold on validation, score on test."""
    detector.fit(split.x_train)
    threshold = tune_detector_threshold(
        detector.anomaly_scores(split.x_val),
        split.y_val,
        scores_train=detector.anomaly_scores(split.x_train),
    )
    pred = (detector.anomaly_scores(split.x_test) > threshold).astype(int)
    return macro_f1(split.y_test, pred)


def main() -> None:
    print("== guiding-candidate comparison (paper App. A / Fig 10) ==")
    candidates = {
        "kNN": lambda: KNNDetector(k=5),
        "PCA": lambda: PCADetector(),
        "X-means": lambda: XMeansDetector(seed=SEED),
        "VAE": lambda: VariationalAutoencoder(epochs=120, seed=SEED),
        "Magnifier": lambda: MagnifierAutoencoder(epochs=150, seed=SEED),
    }
    table = {name: [] for name in list(candidates) + ["iForest"]}
    for attack in ATTACKS:
        split = make_attack_split(attack, n_benign_flows=320, seed=SEED)
        forest = IsolationForest(
            n_trees=100, subsample_size=128, contamination=0.15, seed=SEED
        ).fit(split.x_train)
        table["iForest"].append(macro_f1(split.y_test, forest.predict(split.x_test)))
        for name, factory in candidates.items():
            table[name].append(tuned_f1(factory(), split))

    header = f"{'model':<12s}" + "".join(f"{a:>14s}" for a in ATTACKS) + f"{'average':>10s}"
    print(header)
    print("-" * len(header))
    for name, scores in table.items():
        row = f"{name:<12s}" + "".join(f"{s:>14.3f}" for s in scores)
        print(row + f"{np.mean(scores):>10.3f}")
    print("\nMagnifier's average win is why the paper distils *its* knowledge "
          "into iGuard's leaves.")


if __name__ == "__main__":
    main()
