"""Closed-loop mitigation: declarative policies + a graduated response engine.

iGuard's pipeline *detects* malicious flows; this package closes the
loop.  A :class:`~repro.mitigation.policy.Policy` (dataclasses + a
one-line text DSL mirroring :mod:`repro.scenarios`) declares an
escalation ladder (MONITOR → RATE_LIMIT → DROP), idle-timeout TTLs,
per-tenant quotas, protected prefixes, and a benign-collateral budget;
a :class:`~repro.mitigation.engine.PolicyEngine` attached to the
switch's controller turns detection verdicts into graduated data-plane
responses and meters its own efficacy (time-to-block, attack leakage,
benign collateral) against scenario ground truth.
"""

from repro.mitigation.policy import (
    ACTION_DROP,
    ACTION_MONITOR,
    ACTION_RATE_LIMIT,
    AllowPrefix,
    GuardSpec,
    LADDER_ACTIONS,
    POLICY_PRESETS,
    Policy,
    QuotaSpec,
    RateLimitSpec,
    get_policy,
    parse_policy,
)
from repro.mitigation.engine import (
    MitigationMeter,
    PolicyEngine,
    attach_policy,
    flow_key,
    parse_flow_key,
)

__all__ = [
    "ACTION_DROP",
    "ACTION_MONITOR",
    "ACTION_RATE_LIMIT",
    "AllowPrefix",
    "GuardSpec",
    "LADDER_ACTIONS",
    "MitigationMeter",
    "POLICY_PRESETS",
    "Policy",
    "PolicyEngine",
    "QuotaSpec",
    "RateLimitSpec",
    "attach_policy",
    "flow_key",
    "get_policy",
    "parse_flow_key",
    "parse_policy",
]
