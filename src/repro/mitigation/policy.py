"""Declarative mitigation policies: escalation ladder, TTL, quotas, guard.

A :class:`Policy` is a pure description of how the control plane should
respond to malicious verdicts — it carries no state.  Like scenario
specs (:mod:`repro.scenarios.spec`), every policy has two equivalent
forms: the dataclasses below and a parseable one-line text form::

    name=strict;ladder=rate_limit/drop;idle_timeout=30;memory=120;
    rate_limit:keep_one_in=8;
    quota:tenant_bits=8,max_blocks=64;
    allow:prefix=10.0.0.0/8;
    guard:benign_drop_budget=500

``parse_policy`` also accepts a preset name from
:data:`POLICY_PRESETS` (optionally followed by ``;key=value``
overrides), so ``repro serve --policy drop_fast`` and
``--policy "drop_fast;idle_timeout=10"`` both work.
``Policy.to_spec()`` round-trips a spec back to its text form.

Semantics (enforced by :class:`repro.mitigation.engine.PolicyEngine`):

``ladder``
    The graduated response: a flow's *n*-th malicious verdict maps to
    the *n*-th rung (clamped at the top).  ``monitor`` is pure
    observation — bit-transparent to the data plane; ``rate_limit``
    installs a keep-one-in-N pass filter; ``drop`` installs a
    blacklist entry (the red path).
``idle_timeout``
    IIDS-for-SDN-style idle TTL: an enforced entry that sees no
    traffic for this long is removed and the flow re-admitted.
``memory``
    How long re-offense memory (the strike count) outlives the last
    activity.  A flow that re-offends within memory resumes the ladder
    where it left off instead of starting over.
``quota``
    Per-tenant bound on *concurrent* enforced entries (tenants are the
    top ``tenant_bits`` of the canonical source address); requests past
    the bound are refused, not queued.
``allow``
    Protected prefixes: verdicts against flows touching them are
    refused outright (never rate-limited or dropped).
``guard``
    Collateral-damage bound: once the engine has dropped more than
    ``benign_drop_budget`` ground-truth-benign packets, it trips — all
    enforcement is demoted to MONITOR and stays latched for the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

ACTION_MONITOR = "monitor"
ACTION_RATE_LIMIT = "rate_limit"
ACTION_DROP = "drop"
#: Escalation rungs understood by the engine, in increasing severity.
LADDER_ACTIONS = (ACTION_MONITOR, ACTION_RATE_LIMIT, ACTION_DROP)


@dataclass(frozen=True)
class RateLimitSpec:
    """Shape of the RATE_LIMIT rung: forward one packet in every
    ``keep_one_in``, drop the rest (deterministic per-flow counter)."""

    keep_one_in: int = 8

    def __post_init__(self) -> None:
        if self.keep_one_in < 2:
            raise ValueError(
                f"keep_one_in must be >= 2 (1 would forward everything), "
                f"got {self.keep_one_in}"
            )


@dataclass(frozen=True)
class QuotaSpec:
    """Per-tenant bound on concurrent enforced (rate-limit/drop) entries.

    A tenant is the top ``tenant_bits`` of the flow's canonical source
    address; ``max_blocks=0`` disables the bound.
    """

    tenant_bits: int = 8
    max_blocks: int = 256

    def __post_init__(self) -> None:
        if not 0 <= self.tenant_bits <= 32:
            raise ValueError(f"tenant_bits must be in [0, 32], got {self.tenant_bits}")
        if self.max_blocks < 0:
            raise ValueError(f"max_blocks must be >= 0, got {self.max_blocks}")


@dataclass(frozen=True)
class AllowPrefix:
    """One protected CIDR prefix (``network`` is the address as an int)."""

    network: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.bits <= 32:
            raise ValueError(f"prefix length must be in [0, 32], got {self.bits}")
        if not 0 <= self.network < 2**32:
            raise ValueError(f"network address out of range: {self.network}")

    @property
    def _mask(self) -> int:
        return 0 if self.bits == 0 else (0xFFFFFFFF << (32 - self.bits)) & 0xFFFFFFFF

    def covers(self, ip: int) -> bool:
        return (ip & self._mask) == (self.network & self._mask)

    @classmethod
    def parse(cls, text: str) -> "AllowPrefix":
        """Parse ``a.b.c.d/len`` or ``<int>/len`` (no ``/`` means /32)."""
        addr, _, bits = text.partition("/")
        if "." in addr:
            parts = addr.split(".")
            if len(parts) != 4 or any(not p.isdigit() or int(p) > 255 for p in parts):
                raise ValueError(f"bad dotted-quad address {addr!r}")
            network = 0
            for p in parts:
                network = (network << 8) | int(p)
        else:
            network = int(addr)
        return cls(network=network, bits=int(bits) if bits else 32)

    def to_text(self) -> str:
        quads = ".".join(str((self.network >> s) & 0xFF) for s in (24, 16, 8, 0))
        return f"{quads}/{self.bits}"


@dataclass(frozen=True)
class GuardSpec:
    """Benign-collateral bound: trip (demote everything to MONITOR,
    latched) once more than ``benign_drop_budget`` ground-truth-benign
    packets have been dropped by mitigation.  ``0`` disables the guard.
    """

    benign_drop_budget: int = 1000

    def __post_init__(self) -> None:
        if self.benign_drop_budget < 0:
            raise ValueError(
                f"benign_drop_budget must be >= 0, got {self.benign_drop_budget}"
            )


@dataclass(frozen=True)
class Policy:
    """A complete mitigation policy (see module docstring for semantics)."""

    name: str = "policy"
    ladder: Tuple[str, ...] = (ACTION_RATE_LIMIT, ACTION_DROP)
    idle_timeout_s: float = 30.0
    memory_s: float = 120.0
    rate_limit: RateLimitSpec = field(default_factory=RateLimitSpec)
    quota: QuotaSpec = field(default_factory=QuotaSpec)
    allow: Tuple[AllowPrefix, ...] = ()
    guard: GuardSpec = field(default_factory=GuardSpec)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("policy ladder needs at least one rung")
        for rung in self.ladder:
            if rung not in LADDER_ACTIONS:
                raise ValueError(
                    f"ladder rung must be one of {LADDER_ACTIONS}, got {rung!r}"
                )
        severity = [LADDER_ACTIONS.index(r) for r in self.ladder]
        if severity != sorted(severity) or len(set(severity)) != len(severity):
            raise ValueError(
                f"ladder must be strictly increasing in severity, got {self.ladder}"
            )
        if self.idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be > 0, got {self.idle_timeout_s}")
        if self.memory_s < self.idle_timeout_s:
            raise ValueError(
                f"memory_s ({self.memory_s}) must be >= idle_timeout_s "
                f"({self.idle_timeout_s}) — memory outlives enforcement"
            )

    @property
    def monitor_only(self) -> bool:
        return self.ladder == (ACTION_MONITOR,)

    # -- text form -----------------------------------------------------------

    def to_spec(self) -> str:
        """Render the policy as its one-line DSL text form."""
        parts = [
            f"name={self.name}",
            "ladder=" + "/".join(self.ladder),
            f"idle_timeout={_num(self.idle_timeout_s)}",
            f"memory={_num(self.memory_s)}",
        ]
        if self.rate_limit != RateLimitSpec():
            parts.append(f"rate_limit:keep_one_in={self.rate_limit.keep_one_in}")
        if self.quota != QuotaSpec():
            parts.append(
                f"quota:tenant_bits={self.quota.tenant_bits}"
                f",max_blocks={self.quota.max_blocks}"
            )
        for prefix in self.allow:
            parts.append(f"allow:prefix={prefix.to_text()}")
        if self.guard != GuardSpec():
            parts.append(f"guard:benign_drop_budget={self.guard.benign_drop_budget}")
        return ";".join(parts)


def _num(x: float) -> str:
    """Compact numeric rendering: drop a trailing ``.0``."""
    return str(int(x)) if float(x) == int(x) else str(x)


def _parse_kv(body: str, clause: str) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"expected key=value in {clause!r}, got {item!r}")
        key, value = item.split("=", 1)
        kv[key.strip()] = value.strip()
    return kv


def _parse_rate_limit(body: str, clause: str) -> RateLimitSpec:
    kv = _parse_kv(body, clause)
    spec = RateLimitSpec(keep_one_in=int(kv.pop("keep_one_in", 8)))
    if kv:
        raise ValueError(f"unknown rate_limit keys {sorted(kv)} in {clause!r}")
    return spec


def _parse_quota(body: str, clause: str) -> QuotaSpec:
    kv = _parse_kv(body, clause)
    spec = QuotaSpec(
        tenant_bits=int(kv.pop("tenant_bits", 8)),
        max_blocks=int(kv.pop("max_blocks", 256)),
    )
    if kv:
        raise ValueError(f"unknown quota keys {sorted(kv)} in {clause!r}")
    return spec


def _parse_allow(body: str, clause: str) -> AllowPrefix:
    kv = _parse_kv(body, clause)
    if "prefix" not in kv:
        raise ValueError(f"allow clause needs prefix=...: {clause!r}")
    prefix = AllowPrefix.parse(kv.pop("prefix"))
    if kv:
        raise ValueError(f"unknown allow keys {sorted(kv)} in {clause!r}")
    return prefix


def _parse_guard(body: str, clause: str) -> GuardSpec:
    kv = _parse_kv(body, clause)
    spec = GuardSpec(benign_drop_budget=int(kv.pop("benign_drop_budget", 1000)))
    if kv:
        raise ValueError(f"unknown guard keys {sorted(kv)} in {clause!r}")
    return spec


def parse_policy(spec: str) -> Policy:
    """Parse a DSL string — or a preset name with optional overrides.

    Grammar mirrors :func:`repro.scenarios.spec.parse_scenario`:
    ``;``-separated clauses.  A clause is either a top-level
    ``key=value`` (``name``, ``ladder``, ``idle_timeout``, ``memory``),
    a ``rate_limit:…`` / ``quota:…`` / ``allow:…`` / ``guard:…`` block
    of comma-separated pairs, or — only as the first clause — a preset
    name from :data:`POLICY_PRESETS`, which seeds the policy that later
    clauses then override or extend (``allow:`` clauses append).
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty policy spec")

    clauses = [c.strip() for c in text.split(";") if c.strip()]
    base: Policy = Policy()
    overrides: Dict[str, object] = {}
    first = clauses[0]
    if ":" not in first and "=" not in first:
        base = get_policy(first)
        clauses = clauses[1:]

    top: Dict[str, str] = {}
    allow: List[AllowPrefix] = []
    for clause in clauses:
        head, _, body = clause.partition(":")
        if head == "rate_limit":
            overrides["rate_limit"] = _parse_rate_limit(body, clause)
        elif head == "quota":
            overrides["quota"] = _parse_quota(body, clause)
        elif head == "allow":
            allow.append(_parse_allow(body, clause))
        elif head == "guard":
            overrides["guard"] = _parse_guard(body, clause)
        elif "=" in clause and ":" not in clause:
            key, value = clause.split("=", 1)
            top[key.strip()] = value.strip()
        else:
            raise ValueError(
                f"unknown clause {clause!r} "
                f"(expected rate_limit:/quota:/allow:/guard:/key=value)"
            )

    known = {"name", "ladder", "idle_timeout", "memory"}
    unknown = set(top) - known
    if unknown:
        raise ValueError(f"unknown policy keys {sorted(unknown)}")

    if "name" in top:
        overrides["name"] = top["name"]
    if "ladder" in top:
        overrides["ladder"] = tuple(r for r in top["ladder"].split("/") if r)
    if "idle_timeout" in top:
        overrides["idle_timeout_s"] = float(top["idle_timeout"])
    if "memory" in top:
        overrides["memory_s"] = float(top["memory"])
    if allow:
        overrides["allow"] = base.allow + tuple(allow)
    return replace(base, **overrides)


#: Named policies ``repro serve --policy NAME`` accepts out of the box.
POLICY_PRESETS: Dict[str, Policy] = {
    # Pure observation — bit-transparent to the data plane (the
    # differential-lock baseline).
    "monitor_only": Policy(name="monitor_only", ladder=(ACTION_MONITOR,)),
    # Block on first verdict; the shortest time-to-block.
    "drop_fast": Policy(name="drop_fast", ladder=(ACTION_DROP,)),
    # Throttle first, block repeat offenders.
    "rate_limit_then_drop": Policy(
        name="rate_limit_then_drop", ladder=(ACTION_RATE_LIMIT, ACTION_DROP)
    ),
    # The full ladder: observe, throttle, then block.
    "graduated": Policy(
        name="graduated",
        ladder=(ACTION_MONITOR, ACTION_RATE_LIMIT, ACTION_DROP),
    ),
}


def get_policy(name: str) -> Policy:
    try:
        return POLICY_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown policy preset {name!r} "
            f"(known: {', '.join(sorted(POLICY_PRESETS))})"
        ) from None
