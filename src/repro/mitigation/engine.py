"""The policy engine: graduated responses between verdicts and tables.

:class:`PolicyEngine` sits between detection verdicts (controller
digests) and the data-plane tables.  On each malicious verdict it walks
the policy's escalation ladder for that flow — MONITOR observes,
RATE_LIMIT installs a keep-one-in-N entry in the pipeline's
:class:`~repro.switch.tables.RateLimitTable`, DROP installs a blacklist
entry (the red path) — subject to the allowlist guard and per-tenant
quotas.  :meth:`tick`, called at chunk boundaries by the stream driver
and shard workers, expires idle enforcement (IIDS-for-SDN-style idle
TTL) while retaining re-offense memory, so a flow that comes back
resumes the ladder where it left off.

Efficacy is metered against scenario ground truth
(``Packet.malicious``): attack packets forwarded before a block lands
(*leakage*), benign packets dropped by mitigation (*collateral*, which
feeds the guard budget), and per-flow time-to-block.  Ground-truth
labels are a simulator measurement — a real deployment sees only the
detector's verdicts; the meter exists to evaluate policies, not to
drive them (only the guard budget closes that loop, deliberately).

Transparency invariant (locked by the differential suite): a
MONITOR-only policy performs no installs, no storage releases, emits no
events, and leaves every published counter identical to a run with no
policy engine attached — observation is free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datasets.packet import FiveTuple
from repro.mitigation.policy import (
    ACTION_DROP,
    ACTION_MONITOR,
    ACTION_RATE_LIMIT,
    Policy,
    parse_policy,
)
from repro.telemetry import get_registry

#: Rungs that install a data-plane artifact (and count against quotas).
ENFORCED_ACTIONS = (ACTION_RATE_LIMIT, ACTION_DROP)

#: Engine counter names (fixed set: the shm transport freezes the
#: counter layout pre-fork, so every key must exist from construction).
COUNTER_NAMES = (
    "mitigation.escalations",
    "mitigation.blocks_installed",
    "mitigation.rate_limits_installed",
    "mitigation.expiries",
    "mitigation.unblocks",
    "mitigation.quota_refusals",
    "mitigation.allowlist_refusals",
    "mitigation.guard_trips",
    "mitigation.guard_demotions",
)


def flow_key(five_tuple: FiveTuple) -> str:
    """Render a flow as the dash-separated key the ops surface uses
    (``src-dst-sport-dport-proto``, canonical direction)."""
    t = five_tuple.canonical().as_tuple()
    return "-".join(str(v) for v in t)


def parse_flow_key(key: str) -> FiveTuple:
    parts = key.split("-")
    if len(parts) != 5 or any(not p.isdigit() for p in parts):
        raise ValueError(
            f"bad flow key {key!r} (expected src-dst-sport-dport-proto ints)"
        )
    return FiveTuple(*(int(p) for p in parts)).canonical()


class MitigationMeter:
    """Cumulative efficacy tallies against scenario ground truth."""

    __slots__ = ("attack_leaked", "benign_dropped", "attack_dropped")

    def __init__(self) -> None:
        self.attack_leaked = 0
        self.benign_dropped = 0
        self.attack_dropped = 0

    def to_obj(self) -> List[int]:
        return [self.attack_leaked, self.benign_dropped, self.attack_dropped]

    def load(self, obj: List[int]) -> None:
        self.attack_leaked, self.benign_dropped, self.attack_dropped = (
            int(v) for v in obj
        )


class _FlowRecord:
    """Per-flow ladder state.  ``action`` is the currently enforced rung
    (None once expired — strikes persist as re-offense memory)."""

    __slots__ = ("strikes", "action", "first_offense_ts", "last_active", "blocked_at")

    def __init__(self, first_offense_ts: float) -> None:
        self.strikes = 0
        self.action: Optional[str] = None
        self.first_offense_ts = first_offense_ts
        self.last_active = first_offense_ts
        self.blocked_at: Optional[float] = None


class PolicyEngine:
    """Stateful enforcement of one :class:`~repro.mitigation.policy.Policy`.

    Attach to a pipeline with :func:`attach_policy` (sets
    ``controller.policy`` and creates the pipeline's rate-limit table).
    All state is per-engine: cluster shards each run their own engine
    over their own flow partition.
    """

    def __init__(self, policy) -> None:
        self.policy: Policy = parse_policy(policy) if isinstance(policy, str) else policy
        self.pipeline = None  # set by attach()
        self.flows: Dict[FiveTuple, _FlowRecord] = {}
        self.tenant_blocks: Dict[int, int] = {}
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.meter = MitigationMeter()
        self.guard_tripped = False
        self.block_latencies: List[float] = []

    # -- wiring --------------------------------------------------------------

    def attach(self, pipeline) -> "PolicyEngine":
        from repro.switch.tables import RateLimitTable

        if pipeline.controller is None:
            raise ValueError(
                "policy engine needs a controller attached to the pipeline "
                "(digests are its verdict source); construct Controller(pipeline) first"
            )
        self.pipeline = pipeline
        pipeline.controller.policy = self
        if pipeline.rate_limiter is None:
            pipeline.rate_limiter = RateLimitTable(
                keep_one_in=self.policy.rate_limit.keep_one_in
            )
        pipeline.blacklist.track_hits = True
        return self

    def clone_fresh(self) -> "PolicyEngine":
        """Same policy, empty state — one per cluster shard."""
        return PolicyEngine(self.policy)

    # -- helpers -------------------------------------------------------------

    def _tenant(self, ft: FiveTuple) -> int:
        bits = self.policy.quota.tenant_bits
        if bits == 0:
            return 0
        return ft.src_ip >> (32 - bits)

    def _allowlisted(self, ft: FiveTuple) -> bool:
        for prefix in self.policy.allow:
            if prefix.covers(ft.src_ip) or prefix.covers(ft.dst_ip):
                return True
        return False

    def _quota_full(self, tenant: int) -> bool:
        limit = self.policy.quota.max_blocks
        return limit > 0 and self.tenant_blocks.get(tenant, 0) >= limit

    def _remove_artifact(self, ft: FiveTuple, action: str) -> None:
        if action == ACTION_DROP:
            self.pipeline.blacklist.remove(ft)
        elif action == ACTION_RATE_LIMIT:
            self.pipeline.rate_limiter.remove(ft)

    def _release_enforcement(self, ft: FiveTuple, rec: _FlowRecord) -> None:
        """Drop the data-plane artifact and give back the quota slot."""
        self._remove_artifact(ft, rec.action)
        tenant = self._tenant(ft)
        n = self.tenant_blocks.get(tenant, 0) - 1
        if n > 0:
            self.tenant_blocks[tenant] = n
        else:
            self.tenant_blocks.pop(tenant, None)

    # -- the verdict path ----------------------------------------------------

    def on_verdict(self, five_tuple: FiveTuple, ts: float) -> bool:
        """One malicious verdict for *five_tuple* at time *ts*.

        Returns True when enforcement was installed/refreshed and the
        flow's stateful storage should be released (so the flow
        re-tracks and repeat offenses climb the ladder); False for
        MONITOR and refusals (bit-transparent to the data plane).
        """
        ft = five_tuple.canonical()
        registry = get_registry()
        if self._allowlisted(ft):
            self.counters["mitigation.allowlist_refusals"] += 1
            if registry.enabled:
                registry.event(
                    "mitigation.refuse", flow=flow_key(ft), reason="allowlist", ts=ts
                )
            return False

        rec = self.flows.get(ft)
        if rec is None:
            rec = _FlowRecord(first_offense_ts=ts)
            self.flows[ft] = rec
        rec.strikes += 1
        rec.last_active = ts

        ladder = self.policy.ladder
        target = ladder[min(rec.strikes - 1, len(ladder) - 1)]
        if self.guard_tripped:
            target = ACTION_MONITOR

        if target == ACTION_MONITOR:
            if rec.action is None:
                rec.action = ACTION_MONITOR
            return False

        if rec.action == target:
            # Re-offense at the current rung (e.g. the blacklist entry was
            # capacity-evicted, or the limited flow re-classified): refresh
            # the artifact without counting an escalation.
            self._install_artifact(ft, rec, target, ts, registry, escalated=False)
            return True

        newly_enforced = rec.action not in ENFORCED_ACTIONS
        if newly_enforced:
            tenant = self._tenant(ft)
            if self._quota_full(tenant):
                self.counters["mitigation.quota_refusals"] += 1
                if rec.action is None:
                    rec.action = ACTION_MONITOR
                if registry.enabled:
                    registry.event(
                        "mitigation.refuse",
                        flow=flow_key(ft),
                        reason="quota",
                        tenant=tenant,
                        ts=ts,
                    )
                return False
            self.tenant_blocks[tenant] = self.tenant_blocks.get(tenant, 0) + 1
        elif rec.action is not None:
            # Upgrading rate_limit → drop: swap artifacts, keep the slot.
            self._remove_artifact(ft, rec.action)

        self._install_artifact(ft, rec, target, ts, registry, escalated=True)
        return True

    def _install_artifact(
        self, ft: FiveTuple, rec: _FlowRecord, action: str, ts: float, registry, escalated: bool
    ) -> None:
        if action == ACTION_RATE_LIMIT:
            self.pipeline.rate_limiter.install(ft, ts)
            if escalated:
                self.counters["mitigation.rate_limits_installed"] += 1
        else:
            self.pipeline.blacklist.install(ft)
            if escalated:
                self.counters["mitigation.blocks_installed"] += 1
                if rec.blocked_at is None:
                    rec.blocked_at = ts
                    latency = ts - rec.first_offense_ts
                    self.block_latencies.append(latency)
                    if registry.enabled:
                        registry.histogram("mitigation.time_to_block_s").observe(latency)
                        registry.event(
                            "mitigation.block",
                            flow=flow_key(ft),
                            ts=ts,
                            time_to_block_s=latency,
                        )
        prev = rec.action
        rec.action = action
        if escalated:
            self.counters["mitigation.escalations"] += 1
            if registry.enabled:
                registry.event(
                    "mitigation.escalate",
                    flow=flow_key(ft),
                    action=action,
                    previous=prev,
                    strikes=rec.strikes,
                    ts=ts,
                )

    # -- chunk-boundary maintenance ------------------------------------------

    def tick(self, now: Optional[float]) -> int:
        """Expire idle enforcement and prune stale memory at time *now*.

        Called at chunk boundaries (stream driver / shard workers).
        Enforced entries idle past ``idle_timeout_s`` are removed and
        the flow re-admitted (strikes retained — re-offense memory);
        records idle past ``memory_s`` are forgotten entirely.  Returns
        the number of expired enforcement entries.
        """
        if now is None:
            return 0
        policy = self.policy
        blacklist = self.pipeline.blacklist if self.pipeline is not None else None
        limiter = self.pipeline.rate_limiter if self.pipeline is not None else None
        expired = 0
        registry = get_registry()
        for ft, rec in list(self.flows.items()):
            # Refresh activity from the data-plane hit trackers: an entry
            # still absorbing traffic is not idle.
            if rec.action == ACTION_DROP and blacklist is not None:
                hit = blacklist.last_hit.get(ft)
                if hit is not None and hit > rec.last_active:
                    rec.last_active = hit
            elif rec.action == ACTION_RATE_LIMIT and limiter is not None:
                hit = limiter.last_seen(ft)
                if hit is not None and hit > rec.last_active:
                    rec.last_active = hit
            idle = now - rec.last_active
            if rec.action in ENFORCED_ACTIONS and idle > policy.idle_timeout_s:
                action = rec.action
                self._release_enforcement(ft, rec)
                rec.action = None
                expired += 1
                self.counters["mitigation.expiries"] += 1
                if registry.enabled:
                    registry.counter("mitigation.expiries").inc()
                    registry.event(
                        "mitigation.expire",
                        flow=flow_key(ft),
                        action=action,
                        idle_s=idle,
                        ts=now,
                    )
                continue
            if rec.action in (None, ACTION_MONITOR) and idle > policy.memory_s:
                del self.flows[ft]
        if registry.enabled:
            self.publish_gauges(registry)
        return expired

    # -- operator surface ----------------------------------------------------

    def unblock(self, five_tuple: FiveTuple, ts: Optional[float] = None) -> str:
        """Operator pardon: lift enforcement and forget the flow.

        Unlike TTL expiry, an unblock clears the strike memory too —
        the flow starts the ladder from the bottom if it re-offends.
        """
        ft = five_tuple.canonical()
        rec = self.flows.pop(ft, None)
        if rec is None:
            return "not_blocked"
        if rec.action in ENFORCED_ACTIONS:
            self._release_enforcement(ft, rec)
        self.counters["mitigation.unblocks"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("mitigation.unblocks").inc()
            registry.event(
                "mitigation.unblock", flow=flow_key(ft), action=rec.action, ts=ts
            )
        return "unblocked"

    # -- efficacy metering ---------------------------------------------------

    def account(
        self, attack_leaked: int, benign_dropped: int, attack_dropped: int
    ) -> None:
        """Fold one replay's ground-truth tallies into the meter and
        check the collateral guard (enforced at replay granularity)."""
        self.meter.attack_leaked += int(attack_leaked)
        self.meter.benign_dropped += int(benign_dropped)
        self.meter.attack_dropped += int(attack_dropped)
        budget = self.policy.guard.benign_drop_budget
        if self.guard_tripped or budget <= 0:
            return
        if self.meter.benign_dropped > budget:
            self._trip_guard()

    def _trip_guard(self) -> None:
        """Latch the guard: demote every enforced entry to MONITOR."""
        self.guard_tripped = True
        self.counters["mitigation.guard_trips"] += 1
        demoted = 0
        for ft, rec in self.flows.items():
            if rec.action in ENFORCED_ACTIONS:
                self._release_enforcement(ft, rec)
                rec.action = ACTION_MONITOR
                demoted += 1
        self.counters["mitigation.guard_demotions"] += demoted
        registry = get_registry()
        if registry.enabled:
            registry.event(
                "mitigation.guard_trip",
                benign_dropped=self.meter.benign_dropped,
                budget=self.policy.guard.benign_drop_budget,
                demoted=demoted,
            )

    # -- telemetry -----------------------------------------------------------

    def telemetry_counters(self) -> Dict[str, int]:
        """Monotonic engine counters (merged into the controller's)."""
        return dict(self.counters)

    def _active_counts(self) -> Tuple[int, int, int]:
        drops = limits = monitors = 0
        for rec in self.flows.values():
            if rec.action == ACTION_DROP:
                drops += 1
            elif rec.action == ACTION_RATE_LIMIT:
                limits += 1
            elif rec.action == ACTION_MONITOR:
                monitors += 1
        return drops, limits, monitors

    @property
    def active_blocks(self) -> int:
        return self._active_counts()[0]

    @property
    def active_rate_limits(self) -> int:
        return self._active_counts()[1]

    def telemetry_gauges(self) -> Dict[str, float]:
        """Point-in-time levels (merged into the pipeline's gauges)."""
        drops, limits, monitors = self._active_counts()
        budget = self.policy.guard.benign_drop_budget
        return {
            "mitigation.active_blocks": float(drops),
            "mitigation.active_rate_limits": float(limits),
            "mitigation.monitored_flows": float(monitors),
            "mitigation.attack_leaked_packets": float(self.meter.attack_leaked),
            "mitigation.benign_dropped_packets": float(self.meter.benign_dropped),
            "mitigation.attack_dropped_packets": float(self.meter.attack_dropped),
            "mitigation.guard_budget_remaining": float(
                max(0, budget - self.meter.benign_dropped)
            ),
        }

    def publish_gauges(self, registry) -> None:
        for name, value in self.telemetry_gauges().items():
            registry.gauge(name).set(value)

    def status(self, max_blocks: int = 50) -> Dict:
        """The ``GET /mitigation`` document: policy, guard, meter, blocks."""
        drops, limits, monitors = self._active_counts()
        budget = self.policy.guard.benign_drop_budget
        blocks = []
        for ft, rec in self.flows.items():
            if rec.action not in ENFORCED_ACTIONS:
                continue
            blocks.append(
                {
                    "flow": flow_key(ft),
                    "action": rec.action,
                    "strikes": rec.strikes,
                    "last_active": rec.last_active,
                    "blocked_at": rec.blocked_at,
                }
            )
            if len(blocks) >= max_blocks:
                break
        latencies = self.block_latencies
        return {
            "policy": self.policy.to_spec(),
            "guard": {
                "tripped": self.guard_tripped,
                "benign_dropped": self.meter.benign_dropped,
                "budget": budget,
                "remaining": max(0, budget - self.meter.benign_dropped),
            },
            "meter": {
                "attack_leaked_packets": self.meter.attack_leaked,
                "benign_dropped_packets": self.meter.benign_dropped,
                "attack_dropped_packets": self.meter.attack_dropped,
            },
            "active": {
                "drop": drops,
                "rate_limit": limits,
                "monitor": monitors,
                "remembered": len(self.flows),
            },
            "tenants": {str(t): n for t, n in sorted(self.tenant_blocks.items())},
            "counters": dict(self.counters),
            "time_to_block_s": {
                "count": len(latencies),
                "mean": (sum(latencies) / len(latencies)) if latencies else None,
                "max": max(latencies) if latencies else None,
            },
            "blocks": blocks,
        }

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict:
        """Serialise the engine (policy + every bit of mutable state).

        Flow records are emitted in insertion order and restored in the
        same order, so a round trip is bit-identical (the checkpoint
        suite asserts ``state_dict() == restored.state_dict()``).
        """
        return {
            "spec": self.policy.to_spec(),
            "flows": [
                [
                    list(ft.as_tuple()),
                    rec.strikes,
                    rec.action,
                    rec.first_offense_ts,
                    rec.last_active,
                    rec.blocked_at,
                ]
                for ft, rec in self.flows.items()
            ],
            "guard_tripped": self.guard_tripped,
            "meter": self.meter.to_obj(),
            "counters": dict(self.counters),
            "block_latencies": list(self.block_latencies),
        }

    def load_state(self, obj: Dict) -> None:
        self.flows.clear()
        self.tenant_blocks.clear()
        for key, strikes, action, first_ts, last_active, blocked_at in obj["flows"]:
            ft = FiveTuple(*(int(v) for v in key))
            rec = _FlowRecord(first_offense_ts=float(first_ts))
            rec.strikes = int(strikes)
            rec.action = action
            rec.last_active = float(last_active)
            rec.blocked_at = None if blocked_at is None else float(blocked_at)
            self.flows[ft] = rec
            if rec.action in ENFORCED_ACTIONS:
                tenant = self._tenant(ft)
                self.tenant_blocks[tenant] = self.tenant_blocks.get(tenant, 0) + 1
        self.guard_tripped = bool(obj["guard_tripped"])
        self.meter.load(obj["meter"])
        self.counters = {name: int(obj["counters"].get(name, 0)) for name in COUNTER_NAMES}
        self.block_latencies = [float(v) for v in obj["block_latencies"]]

    @classmethod
    def from_state(cls, obj: Dict) -> "PolicyEngine":
        engine = cls(obj["spec"])
        engine.load_state(obj)
        return engine


def attach_policy(pipeline, policy) -> PolicyEngine:
    """Build a :class:`PolicyEngine` for *policy* (a
    :class:`~repro.mitigation.policy.Policy`, preset name, or DSL
    string) and attach it to *pipeline*'s controller."""
    engine = policy if isinstance(policy, PolicyEngine) else PolicyEngine(policy)
    return engine.attach(pipeline)
