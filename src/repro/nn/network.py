"""Sequential MLP with a mini-batch training loop."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Dense
from repro.nn.optim import Adam
from repro.telemetry import get_registry
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.validation import check_2d


class MLP:
    """A stack of :class:`Dense` layers trained with Adam on MSE.

    Parameters
    ----------
    layer_sizes:
        Unit counts including input and output, e.g. ``(13, 8, 4, 8, 13)``.
    activations:
        Per-layer activation names (len = len(layer_sizes) − 1); default
        relu everywhere with identity output.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activations: Optional[Sequence[str]] = None,
        seed: SeedLike = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output sizes")
        n_layers = len(layer_sizes) - 1
        if activations is None:
            activations = ["relu"] * (n_layers - 1) + ["identity"]
        if len(activations) != n_layers:
            raise ValueError(
                f"need {n_layers} activations for {len(layer_sizes)} layer sizes, "
                f"got {len(activations)}"
            )
        rng = as_rng(seed)
        seeds = spawn_seeds(rng, n_layers)
        self.layers: List[Dense] = [
            Dense(layer_sizes[i], layer_sizes[i + 1], activations[i], seed=seeds[i])
            for i in range(n_layers)
        ]
        self._rng = rng

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run x through every layer (train=True caches for backward)."""
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate dL/d(output); returns dL/d(input)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        """All trainable arrays, layer by layer (shared with optimisers)."""
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> List[np.ndarray]:
        """Current gradients matching :meth:`parameters` order."""
        return [g for layer in self.layers for g in layer.gradients()]

    def fit_reconstruction(
        self,
        x: np.ndarray,
        targets: Optional[np.ndarray] = None,
        epochs: int = 200,
        batch_size: int = 32,
        lr: float = 1e-3,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> List[float]:
        """Train with MSE toward *targets* (defaults to *x*: autoencoding).

        Returns the per-epoch mean training loss (useful for convergence
        tests).
        """
        x = check_2d(x, "X")
        y = x if targets is None else check_2d(targets, "targets")
        if y.shape[0] != x.shape[0]:
            raise ValueError("targets must have the same number of rows as X")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        optimizer = Adam(self.parameters(), lr=lr)
        history: List[float] = []
        n = x.shape[0]
        # Telemetry handles fetched once; no-ops when disabled.
        registry = get_registry()
        telemetry_on = registry.enabled
        if telemetry_on:
            loss_hist = registry.histogram("nn.epoch_loss")
            epoch_counter = registry.counter("nn.epochs")
        for epoch in range(epochs):
            order = self._rng.permutation(n) if shuffle else np.arange(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], y[idx]
                pred = self.forward(xb, train=True)
                diff = pred - yb
                losses.append(float(np.mean(diff**2)))
                # d/dpred of mean squared error over the batch elements.
                self.backward(2.0 * diff / diff.shape[1])
                optimizer.step(self.gradients())
            history.append(float(np.mean(losses)))
            if telemetry_on:
                loss_hist.observe(history[-1])
                epoch_counter.inc()
            if verbose and (epoch % max(1, epochs // 10) == 0):
                print(f"epoch {epoch:4d}  loss {history[-1]:.6f}")
        if telemetry_on and history:
            registry.counter("nn.fits").inc()
            registry.gauge("nn.last_fit_final_loss").set(history[-1])
            registry.event(
                "nn.fit",
                epochs=epochs,
                first_loss=round(history[0], 8),
                final_loss=round(history[-1], 8),
            )
        return history
