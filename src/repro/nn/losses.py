"""Loss functions for the numpy neural substrate."""

from __future__ import annotations

import numpy as np


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.mean((pred - target) ** 2))


def mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Gradient of :func:`mse` with respect to *pred* (per-feature mean)."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return 2.0 * (pred - target) / pred.shape[-1]


def rmse_per_sample(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Row-wise RMSE — the paper's reconstruction error RE_u(x)."""
    pred = np.atleast_2d(np.asarray(pred, dtype=float))
    target = np.atleast_2d(np.asarray(target, dtype=float))
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return np.sqrt(np.mean((pred - target) ** 2, axis=1))
