"""Weighted autoencoder ensemble — the paper's guidance oracle (§3.2.1).

An ensemble of r autoencoders with weights w_u (Σ w_u = 1) and RMSE
thresholds T_u.  A sample is malicious when the weighted vote exceeds ½:

    predict(x) = 1{ Σ_u w_u · 1{RE_u(x) > T_u} > 0.5 }

Thresholds are calibrated per-autoencoder on benign data (a quantile of
benign reconstruction errors, controlled by a false-positive budget) or
can be set directly — the T of the paper's grid search (§4.1 fn 10).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.autoencoder import Autoencoder, MagnifierAutoencoder
from repro.telemetry import get_registry, span
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.validation import check_2d, check_fitted, check_probability


class AutoencoderEnsemble:
    """r independently trained autoencoders voting with weights w_u.

    Parameters
    ----------
    autoencoders:
        Pre-constructed (unfitted) detectors following the contract of
        :class:`~repro.nn.autoencoder.Autoencoder`.  Defaults to three
        Magnifier-style autoencoders with distinct seeds.
    weights:
        w_u ≥ 0; normalised to sum to 1.  Defaults to uniform.
    threshold_quantile:
        Benign-error quantile at which each T_u is anchored during fit
        (e.g. 0.98 → ~2% benign false-positive budget per member).
    threshold_margin:
        Multiplier applied on top of the anchored quantile.  T_u defines
        the radius of the "benign tube" around the manifold: margins > 1
        widen the tube so that near-manifold synthetic points (iGuard's
        augmentation probes) stay benign while genuinely anomalous
        traffic — whose reconstruction errors are typically several times
        the benign maximum — is still rejected.  This is the paper's
        grid-searched T (§4.1 fn 10).
    bootstrap:
        When True each member trains on a bootstrap resample, increasing
        ensemble diversity.
    """

    def __init__(
        self,
        autoencoders: Optional[Sequence] = None,
        weights: Optional[Sequence[float]] = None,
        threshold_quantile: float = 0.98,
        threshold_margin: float = 1.0,
        bootstrap: bool = True,
        seed: SeedLike = None,
    ) -> None:
        check_probability(threshold_quantile, "threshold_quantile")
        if threshold_margin <= 0:
            raise ValueError(f"threshold_margin must be > 0, got {threshold_margin}")
        self.seed = seed
        rng = as_rng(seed)
        if autoencoders is None:
            member_seeds = spawn_seeds(rng, 3)
            autoencoders = [MagnifierAutoencoder(seed=s) for s in member_seeds]
        self.autoencoders = list(autoencoders)
        if not self.autoencoders:
            raise ValueError("ensemble needs at least one autoencoder")
        if weights is None:
            weights = [1.0 / len(self.autoencoders)] * len(self.autoencoders)
        w = np.asarray(weights, dtype=float)
        if len(w) != len(self.autoencoders):
            raise ValueError("weights and autoencoders must have the same length")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self.weights = w / w.sum()
        self.threshold_quantile = threshold_quantile
        self.threshold_margin = threshold_margin
        self.bootstrap = bootstrap
        self._fit_rng = rng
        self.thresholds_: Optional[np.ndarray] = None
        self.base_thresholds_: Optional[np.ndarray] = None

    @property
    def n_members(self) -> int:
        return len(self.autoencoders)

    def fit(self, x_benign: np.ndarray) -> "AutoencoderEnsemble":
        """Train each member on (a resample of) the benign set and
        calibrate its RMSE threshold T_u on the full benign set."""
        x = check_2d(x_benign, "x_benign")
        registry = get_registry()
        for i, ae in enumerate(self.autoencoders):
            with span("nn.member_fit", member=i):
                if self.bootstrap and x.shape[0] > 1:
                    idx = self._fit_rng.integers(x.shape[0], size=x.shape[0])
                    ae.fit(x[idx])
                else:
                    ae.fit(x)
            registry.counter("nn.members_trained").inc()
        self.calibrate(x, self.threshold_quantile)
        return self

    def calibrate(
        self,
        x_benign: np.ndarray,
        quantile: Optional[float] = None,
        margin: Optional[float] = None,
    ) -> None:
        """(Re)place every T_u at margin × the benign-error quantile."""
        q = self.threshold_quantile if quantile is None else quantile
        m = self.threshold_margin if margin is None else margin
        check_probability(q, "quantile")
        if m <= 0:
            raise ValueError(f"margin must be > 0, got {m}")
        x = check_2d(x_benign, "x_benign")
        self.base_thresholds_ = np.array(
            [
                float(np.quantile(ae.reconstruction_errors(x), q))
                for ae in self.autoencoders
            ]
        )
        self.thresholds_ = m * self.base_thresholds_
        registry = get_registry()
        if registry.enabled:
            registry.counter("nn.calibrations").inc()
            registry.gauge("nn.threshold_margin").set(m)
            registry.event(
                "nn.calibrated",
                quantile=q,
                margin=m,
                thresholds=[round(t, 8) for t in self.thresholds_],
            )

    def set_thresholds(self, thresholds: Sequence[float]) -> None:
        """Directly set T_u (the grid-search path of §4.1)."""
        t = np.asarray(thresholds, dtype=float)
        if len(t) != self.n_members:
            raise ValueError("one threshold per ensemble member required")
        self.thresholds_ = t
        self.base_thresholds_ = t.copy()

    def reconstruction_errors(self, x: np.ndarray) -> np.ndarray:
        """(n_samples, r) matrix of per-member RE_u(x)."""
        x = check_2d(x, "X")
        return np.column_stack([ae.reconstruction_errors(x) for ae in self.autoencoders])

    def vote_scores(self, x: np.ndarray) -> np.ndarray:
        """Weighted vote Σ w_u·1{RE_u > T_u} in [0, 1]."""
        check_fitted(self, "thresholds_")
        errors = self.reconstruction_errors(x)
        votes = (errors > self.thresholds_).astype(float)
        return votes @ self.weights

    def predict(self, x: np.ndarray) -> np.ndarray:
        """The paper's Autoencoders.predict: 1 when weighted vote > ½."""
        return (self.vote_scores(x) > 0.5).astype(int)

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        """Continuous score for AUC metrics: weighted mean margin above
        threshold (monotone in how anomalous the members find x)."""
        check_fitted(self, "thresholds_")
        errors = self.reconstruction_errors(x)
        margins = errors - self.thresholds_
        return margins @ self.weights

    def expected_errors(self, x: np.ndarray) -> np.ndarray:
        """Per-member mean reconstruction error over the rows of *x* —
        the RE_leaf_u of the distillation step (Eq 5)."""
        return self.reconstruction_errors(x).mean(axis=0)

    def label_from_expected_errors(
        self, expected: np.ndarray, margin: Optional[float] = None
    ) -> int:
        """Leaf label from expected errors (Eq 6).

        *margin* overrides the calibrated threshold margin — iGuard's
        distillation labels leaves with a strict margin (1.0) even when
        training-time guidance used a wider benign tube.
        """
        check_fitted(self, "thresholds_")
        expected = np.asarray(expected, dtype=float)
        thresholds = (
            self.thresholds_
            if margin is None
            else margin * getattr(self, "base_thresholds_", self.thresholds_)
        )
        if expected.shape != thresholds.shape:
            raise ValueError("expected errors must be one value per member")
        vote = float(((expected > thresholds).astype(float) @ self.weights))
        return int(vote > 0.5)
