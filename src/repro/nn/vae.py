"""Variational autoencoder (Fig 10 candidate).

A numpy VAE with the reparameterisation trick: the encoder emits
``[mu, logvar]``, a latent is sampled as ``z = mu + eps·exp(logvar/2)``,
and the decoder reconstructs.  The loss is MSE + β·KL(q(z|x) ‖ N(0, I)).
Anomaly score is the deterministic (mean-latent) reconstruction RMSE so
that scoring is noise-free and reproducible.

The paper's App. A uses a VAE "similar to Magnifier, except for the use
of asymmetricity and dilated convolutions"; here that translates to a
symmetric dense encoder/decoder around a small latent.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.features.scaling import MinMaxScaler
from repro.nn.network import MLP
from repro.nn.optim import Adam
from repro.utils.rng import SeedLike, as_rng, spawn_seeds
from repro.utils.validation import check_2d, check_fitted


class VariationalAutoencoder:
    """Dense VAE anomaly detector with the shared detector contract."""

    def __init__(
        self,
        hidden: Sequence[int] = (16, 8),
        latent_dim: int = 3,
        beta: float = 0.1,
        epochs: int = 200,
        batch_size: int = 32,
        lr: float = 3e-3,
        log_scale: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if latent_dim < 1:
            raise ValueError(f"latent_dim must be >= 1, got {latent_dim}")
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        self.hidden = tuple(int(h) for h in hidden)
        self.latent_dim = latent_dim
        self.beta = beta
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.log_scale = log_scale
        self.seed = seed
        self.scaler_: Optional[MinMaxScaler] = None
        self.encoder_: Optional[MLP] = None
        self.decoder_: Optional[MLP] = None
        self.history_: Optional[list] = None

    def _preprocess(self, x: np.ndarray) -> np.ndarray:
        if not self.log_scale:
            return x
        return np.sign(x) * np.log1p(np.abs(x))

    def fit(self, x: np.ndarray) -> "VariationalAutoencoder":
        """Train encoder and decoder on benign data (ELBO with β·KL)."""
        x = self._preprocess(check_2d(x, "X"))
        rng = as_rng(self.seed)
        enc_seed, dec_seed = spawn_seeds(rng, 2)
        self.scaler_ = MinMaxScaler().fit(x)
        xs = self.scaler_.transform(x)
        m = x.shape[1]

        enc_sizes = (m,) + self.hidden + (2 * self.latent_dim,)
        dec_sizes = (self.latent_dim,) + tuple(reversed(self.hidden)) + (m,)
        self.encoder_ = MLP(
            enc_sizes, ["tanh"] * (len(enc_sizes) - 2) + ["identity"], seed=enc_seed
        )
        self.decoder_ = MLP(
            dec_sizes, ["tanh"] * (len(dec_sizes) - 2) + ["sigmoid"], seed=dec_seed
        )
        params = self.encoder_.parameters() + self.decoder_.parameters()
        optimizer = Adam(params, lr=self.lr)

        n = xs.shape[0]
        self.history_ = []
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, self.batch_size):
                xb = xs[order[start : start + self.batch_size]]
                loss = self._train_step(xb, rng, optimizer)
                losses.append(loss)
            self.history_.append(float(np.mean(losses)))
        return self

    def _train_step(
        self, xb: np.ndarray, rng: np.random.Generator, optimizer: Adam
    ) -> float:
        stats = self.encoder_.forward(xb, train=True)
        mu = stats[:, : self.latent_dim]
        logvar = np.clip(stats[:, self.latent_dim :], -10.0, 10.0)
        eps = rng.standard_normal(mu.shape)
        std = np.exp(0.5 * logvar)
        z = mu + eps * std

        recon = self.decoder_.forward(z, train=True)
        diff = recon - xb
        recon_loss = float(np.mean(diff**2))
        kl = 0.5 * np.mean(np.sum(np.exp(logvar) + mu**2 - 1.0 - logvar, axis=1))
        loss = recon_loss + self.beta * float(kl)

        # Backprop reconstruction term through decoder to z.
        grad_z = self.decoder_.backward(2.0 * diff / diff.shape[1])
        # Reparameterisation: dz/dmu = 1, dz/dlogvar = eps·std/2.
        grad_mu = grad_z + self.beta * mu / mu.shape[1]
        grad_logvar = (
            grad_z * eps * std * 0.5
            + self.beta * 0.5 * (np.exp(logvar) - 1.0) / logvar.shape[1]
        )
        self.encoder_.backward(np.concatenate([grad_mu, grad_logvar], axis=1))
        optimizer.step(self.encoder_.gradients() + self.decoder_.gradients())
        return loss

    def reconstruction_errors(self, x: np.ndarray) -> np.ndarray:
        """Deterministic RMSE through the mean latent (no sampling noise)."""
        check_fitted(self, "encoder_")
        xs = self.scaler_.transform(self._preprocess(check_2d(x, "X")))
        stats = self.encoder_.forward(xs)
        mu = stats[:, : self.latent_dim]
        recon = self.decoder_.forward(mu)
        return np.sqrt(np.mean((recon - xs) ** 2, axis=1))

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        """Detector-contract alias of :meth:`reconstruction_errors`."""
        return self.reconstruction_errors(x)
