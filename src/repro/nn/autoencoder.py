"""Autoencoder anomaly detectors.

The detector contract shared by every model in this package (and by the
classic baselines in :mod:`repro.baselines`):

* ``fit(x_benign)`` — learn the benign manifold (unsupervised).
* ``reconstruction_errors(x)`` — per-sample RMSE in scaled feature space,
  the paper's RE_u(x) = sqrt(mean_i (AE(x)_i − x_i)^2).
* ``anomaly_scores(x)`` — alias of reconstruction error (higher = more
  anomalous).

Each autoencoder owns a :class:`~repro.features.scaling.MinMaxScaler`
so callers pass raw features; errors are computed in [0, 1] space where
RMSE thresholds are comparable across features.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.features.scaling import MinMaxScaler
from repro.nn.network import MLP
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_2d, check_fitted


class Autoencoder:
    """Symmetric MLP autoencoder.

    Parameters
    ----------
    hidden:
        Encoder layer sizes after the input; mirrored for the decoder.
        ``(8, 4)`` on 13 features gives 13→8→4→8→13.
    epochs / batch_size / lr:
        Training-loop knobs.
    seed:
        Weight-init and shuffling seed.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (8, 4),
        epochs: int = 150,
        batch_size: int = 32,
        lr: float = 3e-3,
        log_scale: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if not hidden:
            raise ValueError("hidden must contain at least one layer size")
        self.hidden = tuple(int(h) for h in hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.log_scale = log_scale
        self.seed = seed
        self.scaler_: Optional[MinMaxScaler] = None
        self.net_: Optional[MLP] = None
        self.history_: Optional[list] = None

    def _preprocess(self, x: np.ndarray) -> np.ndarray:
        """log1p compression of heavy-tailed traffic features.

        Flow statistics span six orders of magnitude (bytes totals vs
        millisecond IPDs); in log space the benign manifold's proportional
        relationships (dispersion ∝ mean) become additive and min-max
        scaling no longer crushes them.  Negative values (none in our
        feature sets, but allowed by the contract) pass through signed.
        """
        if not self.log_scale:
            return x
        return np.sign(x) * np.log1p(np.abs(x))

    def _layer_sizes(self, n_features: int) -> Tuple[int, ...]:
        encoder = (n_features,) + self.hidden
        decoder = tuple(reversed(self.hidden[:-1])) + (n_features,)
        return encoder + decoder

    def _activations(self, n_layers: int) -> list:
        # tanh hidden layers: these are small bottleneck nets where ReLU
        # units die (a unit whose pre-activation goes negative for every
        # sample never recovers); sigmoid output keeps reconstructions
        # inside the scaled [0,1] cube.
        return ["tanh"] * (n_layers - 1) + ["sigmoid"]

    def fit(self, x: np.ndarray) -> "Autoencoder":
        """Train the reconstruction network on benign features."""
        x = self._preprocess(check_2d(x, "X"))
        self.scaler_ = MinMaxScaler().fit(x)
        xs = self.scaler_.transform(x)
        sizes = self._layer_sizes(x.shape[1])
        self.net_ = MLP(sizes, self._activations(len(sizes) - 1), seed=self.seed)
        self.history_ = self.net_.fit_reconstruction(
            xs, epochs=self.epochs, batch_size=self.batch_size, lr=self.lr
        )
        return self

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Reconstruction in the scaled [0,1] space."""
        check_fitted(self, "net_")
        xs = self.scaler_.transform(self._preprocess(check_2d(x, "X")))
        return self.net_.forward(xs)

    def reconstruction_errors(self, x: np.ndarray) -> np.ndarray:
        """Per-sample RMSE in scaled space — the paper's RE_u(x)."""
        check_fitted(self, "net_")
        xs = self.scaler_.transform(self._preprocess(check_2d(x, "X")))
        recon = self.net_.forward(xs)
        return np.sqrt(np.mean((recon - xs) ** 2, axis=1))

    def anomaly_scores(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`reconstruction_errors` (detector contract)."""
        return self.reconstruction_errors(x)


class MagnifierAutoencoder(Autoencoder):
    """Asymmetric autoencoder standing in for Magnifier (HorusEye [15]).

    Magnifier pairs a deep dilated-convolution encoder with a light
    decoder; on flat flow features the matching construction is a deep
    encoder (three nonlinear stages) and a single-layer decoder.  The
    asymmetry regularises the decoder so reconstructions stay close to
    the benign manifold, sharpening the error on off-manifold samples.
    """

    def __init__(
        self,
        encoder_hidden: Sequence[int] = (16, 8, 3),
        epochs: int = 200,
        batch_size: int = 32,
        lr: float = 3e-3,
        log_scale: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            hidden=encoder_hidden,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            log_scale=log_scale,
            seed=seed,
        )

    def _layer_sizes(self, n_features: int) -> Tuple[int, ...]:
        # Deep encoder, single-jump decoder: m→16→8→3→m.
        return (n_features,) + self.hidden + (n_features,)

    def _activations(self, n_layers: int) -> list:
        return ["tanh"] * (n_layers - 1) + ["sigmoid"]
