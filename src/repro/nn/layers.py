"""Neural-network layers in pure numpy.

Minimal but complete: dense layers with cached activations for
backpropagation.  Weight init follows He (relu) / Glorot (others).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0).astype(z.dtype)


def sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def sigmoid_grad(z: np.ndarray) -> np.ndarray:
    s = sigmoid(z)
    return s * (1.0 - s)


def tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def tanh_grad(z: np.ndarray) -> np.ndarray:
    t = np.tanh(z)
    return 1.0 - t * t


def identity(z: np.ndarray) -> np.ndarray:
    return z


def identity_grad(z: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


ACTIVATIONS: Dict[str, Tuple[Callable, Callable]] = {
    "relu": (relu, relu_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "identity": (identity, identity_grad),
}


class Dense:
    """Fully connected layer: ``a = act(x @ W + b)``.

    ``forward`` caches the input and pre-activation; ``backward`` consumes
    the upstream gradient and stores ``dW``/``db`` for the optimiser.
    """

    def __init__(
        self, n_in: int, n_out: int, activation: str = "relu", seed: SeedLike = None
    ) -> None:
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {sorted(ACTIVATIONS)}, got {activation!r}"
            )
        if n_in < 1 or n_out < 1:
            raise ValueError("layer dimensions must be >= 1")
        rng = as_rng(seed)
        if activation == "relu":
            scale = np.sqrt(2.0 / n_in)  # He init
        else:
            scale = np.sqrt(1.0 / n_in)  # Glorot-ish
        self.weights = rng.normal(0.0, scale, size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self.activation = activation
        self._act, self._act_grad = ACTIVATIONS[activation]
        self.d_weights = np.zeros_like(self.weights)
        self.d_bias = np.zeros_like(self.bias)
        self._x: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Affine transform + activation; caches inputs when train=True."""
        z = x @ self.weights + self.bias
        if train:
            self._x, self._z = x, z
        return self._act(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate *grad_out* (dL/da) back; returns dL/dx."""
        if self._x is None or self._z is None:
            raise RuntimeError("backward called before forward(train=True)")
        grad_z = grad_out * self._act_grad(self._z)
        self.d_weights = self._x.T @ grad_z / self._x.shape[0]
        self.d_bias = grad_z.mean(axis=0)
        return grad_z @ self.weights.T

    def parameters(self) -> List[np.ndarray]:
        """Trainable arrays (weight matrix, bias vector)."""
        return [self.weights, self.bias]

    def gradients(self) -> List[np.ndarray]:
        """Gradients from the last backward pass, matching parameters."""
        return [self.d_weights, self.d_bias]
