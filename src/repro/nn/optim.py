"""Optimisers for the numpy neural substrate."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[np.ndarray], lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self.params]

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one (momentum-)SGD update in place."""
        if len(grads) != len(self.params):
            raise ValueError("gradient list length does not match parameters")
        for p, g, v in zip(self.params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam:
    """Adam optimiser (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        self._t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one bias-corrected Adam update in place."""
        if len(grads) != len(self.params):
            raise ValueError("gradient list length does not match parameters")
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
