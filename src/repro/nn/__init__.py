"""Pure-numpy neural substrate: dense nets, autoencoders (symmetric,
Magnifier-style asymmetric, variational) and the weighted autoencoder
ensemble that guides iGuard's training (paper §3.2.1)."""

from repro.nn.autoencoder import Autoencoder, MagnifierAutoencoder
from repro.nn.ensemble import AutoencoderEnsemble
from repro.nn.layers import ACTIVATIONS, Dense
from repro.nn.losses import mse, mse_grad, rmse_per_sample
from repro.nn.network import MLP
from repro.nn.optim import SGD, Adam
from repro.nn.vae import VariationalAutoencoder

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "Autoencoder",
    "AutoencoderEnsemble",
    "Dense",
    "MLP",
    "MagnifierAutoencoder",
    "SGD",
    "VariationalAutoencoder",
    "mse",
    "mse_grad",
    "rmse_per_sample",
]
