"""iGuard reproduction: autoencoder-distilled isolation forests compiled
to switch whitelist rules, with a behavioural Tofino data-plane simulator
and the full CoNEXT 2024 evaluation harness.

Quickstart
----------
>>> from repro import IGuard, make_attack_split
>>> split = make_attack_split("Mirai", n_benign_flows=400, seed=7)
>>> model = IGuard(seed=7).fit(split.x_train)
>>> verdicts = model.predict(split.x_test)          # 0 benign / 1 malicious
>>> rules = model.to_rules()                        # switch whitelist rules

See the examples/ directory for full scenarios including switch
deployment and adversarial robustness.
"""

from repro.core import IGuard, RuleSet, WhitelistRule
from repro.datasets import (
    attack_names,
    generate_attack_flows,
    generate_benign_flows,
    make_attack_split,
    make_trace_split,
)
from repro.eval import (
    detection_metrics,
    run_adversarial_experiment,
    run_cpu_experiment,
    run_testbed_experiment,
)
from repro.forest import IsolationForest
from repro.nn import AutoencoderEnsemble, MagnifierAutoencoder
from repro.switch import SwitchPipeline, replay_trace
from repro.telemetry import run_report, span, use_registry

__version__ = "1.0.0"

__all__ = [
    "AutoencoderEnsemble",
    "IGuard",
    "IsolationForest",
    "MagnifierAutoencoder",
    "RuleSet",
    "SwitchPipeline",
    "WhitelistRule",
    "__version__",
    "attack_names",
    "detection_metrics",
    "generate_attack_flows",
    "generate_benign_flows",
    "make_attack_split",
    "make_trace_split",
    "replay_trace",
    "run_adversarial_experiment",
    "run_cpu_experiment",
    "run_report",
    "run_testbed_experiment",
    "span",
    "use_registry",
]
