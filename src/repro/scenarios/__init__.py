"""Scenario foundry: composable streaming workload generation.

Declarative :class:`Scenario` specs (benign load curves + attack
campaigns + mid-stream evasion phases) compile to bounded-memory,
seed-deterministic packet streams (:class:`ScenarioStream`) that feed
``repro serve`` and the runtime benchmarks without ever materialising a
full trace.  See DESIGN.md §2.17.
"""

from repro.scenarios.engine import ScenarioStream, WindowSummary
from repro.scenarios.families import (
    DEVICE_MIXES,
    FAMILY_FACTORIES,
    device_mixture,
    family_names,
    flow_factory,
)
from repro.scenarios.registry import SCENARIO_PRESETS, get_scenario, scenario_names
from repro.scenarios.spec import (
    CURVE_KINDS,
    EVASION_KINDS,
    SHAPE_KINDS,
    BenignLoad,
    Campaign,
    EvasionPhase,
    LoadCurve,
    Scenario,
    parse_scenario,
)

__all__ = [
    "BenignLoad",
    "CURVE_KINDS",
    "Campaign",
    "DEVICE_MIXES",
    "EVASION_KINDS",
    "EvasionPhase",
    "FAMILY_FACTORIES",
    "LoadCurve",
    "SCENARIO_PRESETS",
    "SHAPE_KINDS",
    "Scenario",
    "ScenarioStream",
    "WindowSummary",
    "device_mixture",
    "family_names",
    "flow_factory",
    "get_scenario",
    "parse_scenario",
    "scenario_names",
]
