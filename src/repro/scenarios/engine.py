"""Chunked scenario generation: a bounded-memory deterministic stream.

The engine turns a :class:`~repro.scenarios.spec.Scenario` plus a seed
into a time-ordered packet stream without ever materialising the full
trace.  Three properties are load-bearing (locked by
``tests/scenarios/``):

**Seed determinism.**  Every window of every component draws from its
own generator seeded by ``SeedSequence((seed, kind, index, window))`` —
the stream is a pure function of ``(spec, seed)``, independent of how
the consumer chunks it and of any other component's draws.

**Chunk-size invariance.**  Generation is windowed by the *scenario
clock* (``window_s``), not by the consumer's chunk size; ``iter_chunks``
merely buffers the packet stream into fixed-size slices.  The same
scenario + seed therefore yields bit-identical packets for chunk sizes
1, 64, 4096, and for the materialised small-trace path
(``materialise()`` is just the concatenation of the stream).

**O(window) memory.**  Flows are generated in the window their *start*
falls into; packets are staged in a min-heap and flushed as soon as the
window edge guarantees no earlier packet can still arrive (flow starts
are monotone per window, so after window *w* every staged packet with
``timestamp < (w+1)·window_s`` is final).  The heap holds only flows
overlapping a window boundary — bounded by offered load × max flow
duration, independent of the scenario's total length, which is what
lets a hundred-million-packet scenario stream through ``repro serve``
in constant memory.

Mechanically each window does Poisson *thinning*: candidate flow starts
arrive at the component's envelope (peak) rate and are accepted with
probability ``rate(t)/peak`` — exact for inhomogeneous Poisson arrivals,
and it keeps diurnal curves, ramps, and pulse trains all on the same
code path.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.adversarial import evasion_flows, low_rate_flows
from repro.datasets.packet import Packet
from repro.datasets.trace import Trace
from repro.scenarios.families import device_mixture, flow_factory
from repro.scenarios.spec import BenignLoad, Campaign, Scenario
from repro.telemetry import get_registry

#: Component kind codes mixed into the per-window seed entropy.
_KIND_BENIGN = 0
_KIND_CAMPAIGN = 1


@dataclass(frozen=True)
class WindowSummary:
    """One preview row: what the scenario offers in ``[t0, t1)``."""

    t0: float
    t1: float
    n_packets: int
    n_bytes: int
    n_attack_packets: int
    n_flows: int
    active_campaigns: Tuple[str, ...]

    @property
    def attack_fraction(self) -> float:
        return self.n_attack_packets / self.n_packets if self.n_packets else 0.0

    @property
    def offered_pps(self) -> float:
        span = self.t1 - self.t0
        return self.n_packets / span if span > 0 else 0.0


class ScenarioStream:
    """One-pass deterministic packet stream over a scenario spec.

    Every ``iter_packets``/``iter_chunks`` call starts an independent
    pass producing the identical stream (generation is stateless given
    ``(spec, seed)``), so a resumed serve can simply re-open the stream
    and skip the packets it already served.
    """

    def __init__(self, scenario: Scenario, seed: Optional[int] = None) -> None:
        self.scenario = scenario
        self.seed = int(scenario.seed if seed is None else seed)
        # Validate families/mixes eagerly so typos fail at build time,
        # not thousands of windows into a stream.
        for load in scenario.benign:
            device_mixture(load.mix)
        for campaign in scenario.campaigns:
            flow_factory(campaign.family)

    # -- generation ----------------------------------------------------------

    def _window_rng(self, kind: int, index: int, window: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, kind, index, window))
        )

    def _starts(
        self,
        rng: np.random.Generator,
        w_start: float,
        w_len: float,
        peak: float,
        accept_prob,
    ) -> np.ndarray:
        """Thinned Poisson flow starts inside ``[w_start, w_start + w_len)``."""
        if peak <= 0 or w_len <= 0:
            return np.empty(0)
        n_cand = int(rng.poisson(peak * w_len))
        if n_cand == 0:
            return np.empty(0)
        times = w_start + np.sort(rng.uniform(0.0, w_len, size=n_cand))
        keep = rng.random(n_cand) < np.array([accept_prob(t) for t in times])
        return times[keep]

    def _benign_flows(
        self, index: int, load: BenignLoad, window: int, w_start: float, w_len: float
    ) -> Iterator[List[Packet]]:
        rng = self._window_rng(_KIND_BENIGN, index, window)
        curve = load.curve
        peak = curve.peak_rate
        starts = self._starts(
            rng, w_start, w_len, peak,
            lambda t: curve.rate_at(t) / peak if peak > 0 else 0.0,
        )
        if starts.size == 0:
            return
        mixture = device_mixture(load.mix)
        weights = np.asarray(mixture.weights, dtype=float)
        for t in starts:
            idx = int(rng.choice(len(mixture.profiles), p=weights))
            yield mixture.profiles[idx].sample_flow(rng, float(t))

    def _campaign_flows(
        self, index: int, campaign: Campaign, window: int, w_start: float, w_len: float
    ) -> Iterator[List[Packet]]:
        # Skip windows entirely outside the campaign, cheaply.
        if campaign.end_s <= w_start or campaign.start_s >= w_start + w_len:
            return
        rng = self._window_rng(_KIND_CAMPAIGN, index, window)
        factory = flow_factory(campaign.family)
        starts = self._starts(
            rng, w_start, w_len, campaign.rate, campaign.intensity_at
        )
        for t in starts:
            flow = factory(rng, float(t))
            flow = self._apply_evasion(campaign.family, float(t), flow, rng)
            yield flow

    def _apply_evasion(
        self, family: str, t: float, flow: List[Packet], rng: np.random.Generator
    ) -> List[Packet]:
        for phase in self.scenario.evasions:
            if not phase.covers(family, t):
                continue
            if phase.kind == "low_rate":
                return low_rate_flows([flow], phase.factor)[0]
            return evasion_flows([flow], phase.factor, seed=rng)[0]
        return flow

    def iter_packets(self) -> Iterator[Packet]:
        """The scenario's packets in timestamp order, one pass."""
        s = self.scenario
        window_s = s.window_s
        n_windows = max(1, int(math.ceil(s.duration_s / window_s)))
        heap: List[Tuple[float, int, Packet]] = []
        seq = 0
        for w in range(n_windows):
            w_start = w * window_s
            w_len = min(window_s, s.duration_s - w_start)
            for i, load in enumerate(s.benign):
                for flow in self._benign_flows(i, load, w, w_start, w_len):
                    for pkt in flow:
                        heapq.heappush(heap, (pkt.timestamp, seq, pkt))
                        seq += 1
            for j, campaign in enumerate(s.campaigns):
                for flow in self._campaign_flows(j, campaign, w, w_start, w_len):
                    for pkt in flow:
                        heapq.heappush(heap, (pkt.timestamp, seq, pkt))
                        seq += 1
            # Flow starts are monotone in window index, so everything
            # staged below the next window edge is final.
            edge = w_start + w_len
            while heap and heap[0][0] < edge:
                yield heapq.heappop(heap)[2]
        while heap:
            yield heapq.heappop(heap)[2]

    # -- consumers -----------------------------------------------------------

    def iter_chunks(self, chunk_size: int) -> Iterator[Trace]:
        """Fixed-size :class:`Trace` chunks of the stream (last = tail).

        Chunk boundaries land exactly where
        :func:`repro.runtime.stream.iter_chunks` would put them on the
        materialised trace, so the streaming and small-trace serve paths
        replay bit-identically.  Publishes ``scenario.*`` telemetry per
        chunk when a metric registry is active.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        buf: List[Packet] = []
        for pkt in self.iter_packets():
            buf.append(pkt)
            if len(buf) == chunk_size:
                yield self._emit_chunk(buf)
                buf = []
        if buf:
            yield self._emit_chunk(buf)

    def _emit_chunk(self, packets: List[Packet]) -> Trace:
        chunk = Trace(packets)
        registry = get_registry()
        if registry.enabled:
            n = len(packets)
            n_attack = sum(1 for p in packets if p.malicious)
            t_end = packets[-1].timestamp
            active = [c.family for c in self.scenario.campaigns if c.active_at(t_end)]
            span = t_end - packets[0].timestamp
            registry.counter("scenario.packets").inc(n)
            registry.counter("scenario.attack_packets").inc(n_attack)
            registry.gauge("scenario.attack_fraction").set(n_attack / n)
            registry.gauge("scenario.active_campaigns").set(float(len(active)))
            if span > 0:
                registry.gauge("scenario.offered_pps").set(n / span)
        return chunk

    def materialise(self, max_packets: int = 5_000_000) -> Trace:
        """The whole scenario as one in-memory trace (small runs only).

        Guarded by *max_packets* so a hundred-million-packet spec fails
        fast instead of filling RAM — stream it instead.
        """
        packets: List[Packet] = []
        for pkt in self.iter_packets():
            packets.append(pkt)
            if len(packets) > max_packets:
                raise MemoryError(
                    f"scenario {self.scenario.name!r} exceeds max_packets="
                    f"{max_packets}; use the streaming path (iter_chunks)"
                )
        return Trace(packets)

    def training_flows(self, n_flows: int, seed: Optional[int] = None):
        """Benign-only flows drawn from the scenario's tenant populations.

        The warm-up capture a model is fitted on before serving the
        scenario: every benign load contributes its device mixture,
        weighted by the load's base rate.  Raises for attack-only
        scenarios (nothing benign to learn).
        """
        s = self.scenario
        if not s.benign:
            raise ValueError(
                f"scenario {s.name!r} has no benign loads to train on"
            )
        profiles = []
        weights: List[float] = []
        for load in s.benign:
            mixture = device_mixture(load.mix)
            share = max(load.curve.rate, 1e-9)
            for profile, weight in zip(mixture.profiles, mixture.weights):
                profiles.append(profile)
                weights.append(share * weight)
        from repro.datasets.profiles import ProfileMixture

        mixture = ProfileMixture(profiles, weights)
        train_seed = self.seed + 1 if seed is None else seed
        return mixture.generate_flows(n_flows, seed=train_seed, flow_arrival_rate=4.0)

    def preview(self, every_s: float = 5.0) -> Iterator[WindowSummary]:
        """Per-window offered-load summaries, one generation pass.

        Flow counts are distinct 5-tuples *within* each summary window
        (bounded memory; a flow spanning windows counts once per
        window).
        """
        if every_s <= 0:
            raise ValueError(f"every_s must be > 0, got {every_s}")
        bucket = 0
        n = n_bytes = n_attack = 0
        flows: set = set()
        any_packets = False
        for pkt in self.iter_packets():
            any_packets = True
            b = int(pkt.timestamp // every_s)
            if b > bucket and (n or flows):
                yield self._summary(bucket, every_s, n, n_bytes, n_attack, len(flows))
                n = n_bytes = n_attack = 0
                flows = set()
            if b > bucket:
                bucket = b
            n += 1
            n_bytes += pkt.size
            if pkt.malicious:
                n_attack += 1
            flows.add(pkt.five_tuple.canonical())
        if any_packets and n:
            yield self._summary(bucket, every_s, n, n_bytes, n_attack, len(flows))

    def _summary(
        self, bucket: int, every_s: float, n: int, n_bytes: int, n_attack: int,
        n_flows: int,
    ) -> WindowSummary:
        t0, t1 = bucket * every_s, (bucket + 1) * every_s
        active = tuple(
            c.family
            for c in self.scenario.campaigns
            if c.start_s < t1 and c.end_s > t0
        )
        return WindowSummary(
            t0=t0, t1=t1, n_packets=n, n_bytes=n_bytes,
            n_attack_packets=n_attack, n_flows=n_flows, active_campaigns=active,
        )
