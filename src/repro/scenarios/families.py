"""Campaign flow factories and tenant device mixes.

The engine places *flow starts* on the timeline; a factory turns one
start into one flow's packets.  Factories wrap the attack signatures in
:mod:`repro.datasets.attacks` — profile-based families sample from the
exported :data:`~repro.datasets.attacks.ATTACK_PROFILES`, the
reflection and fragmentation families call their structured generators
— so the scenario foundry and the paper harnesses share one catalogue
of attack behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.datasets.attacks import (
    ATTACK_PROFILES,
    DNS_AMPLIFICATION,
    NTP_AMPLIFICATION,
    fragmentation_flow,
    reflection_flow,
)
from repro.datasets.benign import DEVICE_WEIGHTS, device_profiles
from repro.datasets.packet import Packet
from repro.datasets.profiles import FlowProfile, ProfileMixture

#: One generated flow from one timeline start: ``(rng, start_time) -> packets``.
FlowFactory = Callable[[np.random.Generator, float], List[Packet]]

#: Tenant device-population subsets by name (indices into
#: :func:`repro.datasets.benign.device_profiles`).  ``chatty`` and
#: ``heavy`` mirror the drift split's phase-A/phase-B mixes so a
#: device-mix-shift scenario exercises exactly the shift the runtime's
#: drift tests recover from.
DEVICE_MIXES: Dict[str, Tuple[int, ...]] = {
    "all": tuple(range(8)),
    "chatty": (0, 1, 4, 5, 7),
    "heavy": (2, 3, 6),
}


def device_mixture(mix: str) -> ProfileMixture:
    """The weighted benign profile mixture for tenant population *mix*."""
    try:
        indices = DEVICE_MIXES[mix]
    except KeyError:
        raise KeyError(
            f"unknown device mix {mix!r}; valid mixes: {sorted(DEVICE_MIXES)}"
        ) from None
    profiles = device_profiles()
    return ProfileMixture(
        [profiles[i] for i in indices], [DEVICE_WEIGHTS[i] for i in indices]
    )


def _profile_factory(profile: FlowProfile) -> FlowFactory:
    def factory(rng: np.random.Generator, start_time: float) -> List[Packet]:
        return profile.sample_flow(rng, start_time)

    return factory


#: Campaign family → flow factory.  Profile families reuse the attack
#: catalogue's signatures; reflection/fragmentation families are
#: structured generators.
FAMILY_FACTORIES: Dict[str, FlowFactory] = {
    "syn_flood": _profile_factory(ATTACK_PROFILES["TCP DDoS"]),
    "udp_flood": _profile_factory(ATTACK_PROFILES["UDP DDoS"]),
    "http_flood": _profile_factory(ATTACK_PROFILES["HTTP DDoS"]),
    "ack_flood": _profile_factory(ATTACK_PROFILES["ACK flood"]),
    "mirai_botnet": _profile_factory(ATTACK_PROFILES["Mirai"]),
    "bashlite_flood": _profile_factory(ATTACK_PROFILES["Bashlite"]),
    "os_scan": _profile_factory(ATTACK_PROFILES["OS scan"]),
    "data_theft": _profile_factory(ATTACK_PROFILES["Data theft"]),
    "dns_amplification": lambda rng, t: reflection_flow(rng, t, DNS_AMPLIFICATION),
    "ntp_amplification": lambda rng, t: reflection_flow(rng, t, NTP_AMPLIFICATION),
    "fragmentation": fragmentation_flow,
}


def family_names() -> List[str]:
    """All campaign family names the DSL accepts."""
    return sorted(FAMILY_FACTORIES)


def flow_factory(family: str) -> FlowFactory:
    """The factory for *family*, with a helpful error on a typo."""
    try:
        return FAMILY_FACTORIES[family]
    except KeyError:
        raise KeyError(
            f"unknown campaign family {family!r}; valid families: {family_names()}"
        ) from None
