"""Named scenario presets shared by tests, benchmarks, and the CLI.

Each preset is a complete :class:`~repro.scenarios.spec.Scenario` tuned
so its default form finishes in CI-scale seconds; ``get_scenario``'s
``duration_s``/``intensity`` knobs (via :meth:`Scenario.scaled`) stretch
the same shape to soak-test or hundred-million-packet sizes without
changing what the scenario *is*.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.scenarios.spec import (
    BenignLoad,
    Campaign,
    EvasionPhase,
    LoadCurve,
    Scenario,
)

SCENARIO_PRESETS: Dict[str, Scenario] = {
    # Pure benign control: steady offered load, every device class.  The
    # no-drift baseline the runtime's monitors must stay silent on.
    "steady_benign": Scenario(
        name="steady_benign",
        duration_s=60.0,
        seed=7,
        benign=(BenignLoad(curve=LoadCurve(kind="constant", rate=40.0)),),
    ),
    # Two tenant populations on phase-shifted day/night cycles — the
    # chatty mix peaks while the heavy mix troughs, so the aggregate
    # feature mixture rotates continuously without any attack.
    "diurnal_multitenant": Scenario(
        name="diurnal_multitenant",
        duration_s=60.0,
        seed=7,
        benign=(
            BenignLoad(
                curve=LoadCurve(
                    kind="diurnal", rate=25.0, amplitude=0.8, period_s=40.0
                ),
                mix="chatty",
            ),
            BenignLoad(
                curve=LoadCurve(
                    kind="diurnal", rate=18.0, amplitude=0.8, period_s=40.0,
                    phase=0.5,
                ),
                mix="heavy",
            ),
        ),
    ),
    # Pulse-wave SYN flood over steady benign: bursts at full rate for
    # 40% of every 6 s period.  The on/off edges are what drift monitors
    # and conservative hot-swap policies must react to.
    "pulse_wave_syn": Scenario(
        name="pulse_wave_syn",
        duration_s=60.0,
        seed=7,
        benign=(BenignLoad(curve=LoadCurve(kind="constant", rate=30.0)),),
        campaigns=(
            Campaign(
                family="syn_flood", rate=35.0, start_s=15.0, end_s=55.0,
                shape="pulse", period_s=6.0, duty=0.4,
            ),
        ),
    ),
    # Reflection/amplification: DNS first, NTP overlapping later.  The
    # interesting property is fan-in asymmetry — few large response
    # packets toward one victim from many reflectors — plus the
    # direction-consistency contract the shard router relies on.
    "amplification_campaign": Scenario(
        name="amplification_campaign",
        duration_s=60.0,
        seed=7,
        benign=(BenignLoad(curve=LoadCurve(kind="constant", rate=25.0)),),
        campaigns=(
            Campaign(family="dns_amplification", rate=6.0, start_s=10.0, end_s=45.0),
            Campaign(family="ntp_amplification", rate=4.0, start_s=30.0, end_s=55.0),
        ),
    ),
    # Botnet recruitment: Mirai flow arrivals ramp linearly from zero to
    # peak across the campaign window (bots joining over time), over a
    # diurnal benign baseline.
    "botnet_rampup": Scenario(
        name="botnet_rampup",
        duration_s=60.0,
        seed=7,
        benign=(
            BenignLoad(
                curve=LoadCurve(kind="diurnal", rate=25.0, amplitude=0.4,
                                period_s=60.0),
            ),
        ),
        campaigns=(
            Campaign(family="mirai_botnet", rate=30.0, start_s=10.0, end_s=55.0,
                     shape="ramp"),
        ),
    ),
    # Mid-stream evasion: a UDP flood runs plainly, then at t=30 the
    # attacker switches to 4x low-rate sending, then at t=45 to benign
    # padding — the detector sees the same campaign change its own
    # signature twice.
    "evasion_midstream": Scenario(
        name="evasion_midstream",
        duration_s=60.0,
        seed=7,
        benign=(BenignLoad(curve=LoadCurve(kind="constant", rate=30.0)),),
        campaigns=(
            Campaign(family="udp_flood", rate=18.0, start_s=10.0, end_s=58.0),
        ),
        evasions=(
            EvasionPhase(kind="low_rate", factor=4.0, start_s=30.0, end_s=45.0,
                         families=("udp_flood",)),
            EvasionPhase(kind="padding", factor=2.0, start_s=45.0, end_s=58.0,
                         families=("udp_flood",)),
        ),
    ),
}


def scenario_names() -> List[str]:
    """All registered preset names."""
    return sorted(SCENARIO_PRESETS)


def get_scenario(
    name: str,
    seed: Optional[int] = None,
    duration_s: Optional[float] = None,
    intensity: float = 1.0,
) -> Scenario:
    """A preset by name, optionally re-seeded and re-scaled."""
    try:
        scenario = SCENARIO_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid scenarios: {scenario_names()}"
        ) from None
    if duration_s is not None or intensity != 1.0:
        scenario = scenario.scaled(duration_s=duration_s, intensity=intensity)
    if seed is not None:
        scenario = replace(scenario, seed=int(seed))
    return scenario
