"""Declarative scenario specs: load curves, campaigns, evasion phases.

A :class:`Scenario` is a pure description of a traffic timeline — benign
*load curves* (how many flows per second each tenant population offers,
as a function of time) composed with attack *campaigns* (an attack
family, a peak rate, a time window, and an intensity shape) and optional
mid-stream *evasion phases* (the :mod:`repro.datasets.adversarial`
transforms scheduled over a window).  Specs carry no packets; the
chunked generator (:mod:`repro.scenarios.engine`) turns a spec plus a
seed into a deterministic packet stream.

Every spec has two equivalent forms: the Python dataclasses below and a
parseable one-line text form (the DSL the CLI accepts)::

    name=demo;duration=60;seed=7;
    benign:curve=diurnal,rate=40,amplitude=0.5,period=30,mix=chatty;
    campaign:family=syn_flood,shape=pulse,start=20,end=50,rate=30,period=6,duty=0.4;
    evasion:kind=low_rate,factor=4,start=30,end=45

``parse_scenario`` also accepts a preset name from
:mod:`repro.scenarios.registry` (optionally followed by ``;key=value``
overrides), so ``repro serve --scenario pulse_wave_syn`` and
``--scenario "pulse_wave_syn;seed=11;duration=120"`` both work.
``Scenario.to_spec()`` round-trips a spec back to its text form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Load-curve kinds understood by :meth:`LoadCurve.rate_at`.
CURVE_KINDS = ("constant", "diurnal", "step")
#: Campaign intensity shapes understood by :meth:`Campaign.intensity_at`.
SHAPE_KINDS = ("constant", "ramp", "pulse")
#: Evasion transform kinds (see repro.datasets.adversarial).
EVASION_KINDS = ("low_rate", "padding")


@dataclass(frozen=True)
class LoadCurve:
    """Offered flow-arrival rate (flows/second) as a function of time.

    ``constant``
        ``rate`` throughout.
    ``diurnal``
        ``rate * (1 + amplitude * sin(2π(t/period + phase)))`` clamped
        at zero — a compressed day/night cycle (``period_s`` stands in
        for 24 h).
    ``step``
        Piecewise-constant: ``rate`` until the first step time, then the
        rate of the latest step at or before *t* (``steps`` is a sorted
        tuple of ``(time_s, rate)`` pairs).
    """

    kind: str = "constant"
    rate: float = 10.0
    amplitude: float = 0.5
    period_s: float = 60.0
    phase: float = 0.0
    steps: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CURVE_KINDS:
            raise ValueError(f"curve kind must be one of {CURVE_KINDS}, got {self.kind!r}")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.kind == "diurnal" and not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.kind == "step" and list(self.steps) != sorted(self.steps):
            raise ValueError("step times must be sorted")

    def rate_at(self, t: float) -> float:
        if self.kind == "constant":
            return self.rate
        if self.kind == "diurnal":
            value = self.rate * (
                1.0 + self.amplitude * math.sin(2.0 * math.pi * (t / self.period_s + self.phase))
            )
            return max(0.0, value)
        rate = self.rate
        for step_t, step_rate in self.steps:
            if t >= step_t:
                rate = step_rate
            else:
                break
        return rate

    @property
    def peak_rate(self) -> float:
        """Upper bound of :meth:`rate_at` (the thinning envelope)."""
        if self.kind == "constant":
            return self.rate
        if self.kind == "diurnal":
            return self.rate * (1.0 + self.amplitude)
        return max([self.rate] + [r for _, r in self.steps])


@dataclass(frozen=True)
class BenignLoad:
    """One tenant population: a device mix driven by a load curve.

    ``mix`` names a device-population subset from
    :data:`repro.scenarios.families.DEVICE_MIXES` (``all``, ``chatty``,
    ``heavy``) — multi-tenant scenarios compose several loads with
    different mixes and phase-shifted curves.
    """

    curve: LoadCurve = field(default_factory=LoadCurve)
    mix: str = "all"


@dataclass(frozen=True)
class Campaign:
    """One attack campaign: a family, a window, a peak rate, a shape.

    ``family`` names a flow factory from
    :data:`repro.scenarios.families.FAMILY_FACTORIES` (``syn_flood``,
    ``dns_amplification``, ``mirai_botnet``, …).  ``rate`` is the peak
    flow-arrival rate; the effective rate at time *t* is
    ``rate * intensity_at(t)``:

    ``constant``
        1 inside ``[start_s, end_s)``.
    ``ramp``
        Linear 0 → 1 across the window (a botnet recruiting bots).
    ``pulse``
        Square wave: 1 for the first ``duty`` fraction of every
        ``period_s`` within the window (pulse-wave DDoS).
    """

    family: str
    rate: float = 10.0
    start_s: float = 0.0
    end_s: float = math.inf
    shape: str = "constant"
    period_s: float = 10.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.shape not in SHAPE_KINDS:
            raise ValueError(f"shape must be one of {SHAPE_KINDS}, got {self.shape!r}")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.end_s <= self.start_s:
            raise ValueError(f"campaign window is empty: [{self.start_s}, {self.end_s})")
        if self.shape == "pulse":
            if self.period_s <= 0:
                raise ValueError(f"pulse period must be > 0, got {self.period_s}")
            if not 0.0 < self.duty <= 1.0:
                raise ValueError(f"duty must be in (0, 1], got {self.duty}")

    def intensity_at(self, t: float) -> float:
        if not self.start_s <= t < self.end_s:
            return 0.0
        if self.shape == "constant":
            return 1.0
        if self.shape == "ramp":
            span = self.end_s - self.start_s
            if not math.isfinite(span):
                return 1.0
            return (t - self.start_s) / span
        return 1.0 if ((t - self.start_s) % self.period_s) < self.duty * self.period_s else 0.0

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class EvasionPhase:
    """Adversarial transform scheduled over a window of the timeline.

    Applies to every campaign flow *starting* inside
    ``[start_s, end_s)`` whose family is in ``families`` (empty tuple =
    every campaign).  ``low_rate`` stretches the flow's gaps by
    ``factor`` (:func:`repro.datasets.adversarial.low_rate_flows`);
    ``padding`` injects ``factor`` benign-mimicking packets per original
    packet (:func:`repro.datasets.adversarial.evasion_flows`).
    """

    kind: str = "low_rate"
    factor: float = 4.0
    start_s: float = 0.0
    end_s: float = math.inf
    families: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVASION_KINDS:
            raise ValueError(f"evasion kind must be one of {EVASION_KINDS}, got {self.kind!r}")
        if self.factor <= 0 or (self.kind == "low_rate" and self.factor < 1.0):
            raise ValueError(f"bad evasion factor {self.factor} for kind {self.kind!r}")
        if self.end_s <= self.start_s:
            raise ValueError(f"evasion window is empty: [{self.start_s}, {self.end_s})")

    def covers(self, family: str, t: float) -> bool:
        if not self.start_s <= t < self.end_s:
            return False
        return not self.families or family in self.families


@dataclass(frozen=True)
class Scenario:
    """A complete workload timeline: benign loads + campaigns + evasions.

    ``duration_s`` bounds flow *starts*; tail packets of flows started
    near the end may extend slightly past it.  ``window_s`` is the
    engine's generation granularity and part of the spec's deterministic
    identity (per-window RNG seeding): the same spec + seed always
    yields the same stream, while changing ``window_s`` yields a
    *different* draw of the same scenario distribution.  The consumer's
    chunk size, by contrast, never affects the stream.
    """

    name: str = "scenario"
    duration_s: float = 60.0
    seed: int = 7
    window_s: float = 1.0
    benign: Tuple[BenignLoad, ...] = ()
    campaigns: Tuple[Campaign, ...] = ()
    evasions: Tuple[EvasionPhase, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if not self.benign and not self.campaigns:
            raise ValueError("scenario needs at least one benign load or campaign")

    def stream(self, seed: Optional[int] = None):
        """A fresh :class:`repro.scenarios.engine.ScenarioStream` over
        this spec (each stream is an independent one-pass generator)."""
        from repro.scenarios.engine import ScenarioStream

        return ScenarioStream(self, seed=seed)

    def scaled(self, duration_s: Optional[float] = None, intensity: float = 1.0) -> "Scenario":
        """Copy with the timeline stretched and/or the rates scaled.

        Stretching to a new ``duration_s`` rescales every time quantity
        (campaign windows, curve periods and steps, evasion windows)
        proportionally, preserving the scenario's shape; ``intensity``
        multiplies every offered rate (the knob that turns a CI-sized
        scenario into a hundred-million-packet run).
        """
        f = 1.0 if duration_s is None else duration_s / self.duration_s
        if f <= 0 or intensity < 0:
            raise ValueError("duration_s must be > 0 and intensity >= 0")

        def _curve(c: LoadCurve) -> LoadCurve:
            return replace(
                c,
                rate=c.rate * intensity,
                period_s=c.period_s * f,
                steps=tuple((t * f, r * intensity) for t, r in c.steps),
            )

        def _clip(t: float) -> float:
            return t * f if math.isfinite(t) else t

        return replace(
            self,
            duration_s=self.duration_s * f,
            benign=tuple(replace(b, curve=_curve(b.curve)) for b in self.benign),
            campaigns=tuple(
                replace(
                    c,
                    rate=c.rate * intensity,
                    start_s=c.start_s * f,
                    end_s=_clip(c.end_s),
                    period_s=c.period_s * f,
                )
                for c in self.campaigns
            ),
            evasions=tuple(
                replace(e, start_s=e.start_s * f, end_s=_clip(e.end_s))
                for e in self.evasions
            ),
        )

    # -- text form -----------------------------------------------------------

    def to_spec(self) -> str:
        """Render the scenario as its one-line DSL text form."""
        parts = [f"name={self.name}", f"duration={_num(self.duration_s)}",
                 f"seed={self.seed}"]
        if self.window_s != 1.0:
            parts.append(f"window={_num(self.window_s)}")
        for b in self.benign:
            kv = [f"curve={b.curve.kind}", f"rate={_num(b.curve.rate)}"]
            if b.curve.kind == "diurnal":
                kv += [f"amplitude={_num(b.curve.amplitude)}",
                       f"period={_num(b.curve.period_s)}"]
                if b.curve.phase:
                    kv.append(f"phase={_num(b.curve.phase)}")
            if b.curve.kind == "step":
                kv.append("steps=" + "/".join(
                    f"{_num(t)}:{_num(r)}" for t, r in b.curve.steps))
            if b.mix != "all":
                kv.append(f"mix={b.mix}")
            parts.append("benign:" + ",".join(kv))
        for c in self.campaigns:
            kv = [f"family={c.family}", f"rate={_num(c.rate)}",
                  f"start={_num(c.start_s)}"]
            if math.isfinite(c.end_s):
                kv.append(f"end={_num(c.end_s)}")
            if c.shape != "constant":
                kv.append(f"shape={c.shape}")
            if c.shape == "pulse":
                kv += [f"period={_num(c.period_s)}", f"duty={_num(c.duty)}"]
            parts.append("campaign:" + ",".join(kv))
        for e in self.evasions:
            kv = [f"kind={e.kind}", f"factor={_num(e.factor)}",
                  f"start={_num(e.start_s)}"]
            if math.isfinite(e.end_s):
                kv.append(f"end={_num(e.end_s)}")
            if e.families:
                kv.append("families=" + "/".join(e.families))
            parts.append("evasion:" + ",".join(kv))
        return ";".join(parts)


def _num(x: float) -> str:
    """Compact numeric rendering: drop a trailing ``.0``."""
    return str(int(x)) if float(x) == int(x) else str(x)


def _parse_kv(body: str, clause: str) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"expected key=value in {clause!r}, got {item!r}")
        key, value = item.split("=", 1)
        kv[key.strip()] = value.strip()
    return kv


def _pop_float(kv: Dict[str, str], key: str, default: float) -> float:
    return float(kv.pop(key)) if key in kv else default


def _parse_benign(body: str, clause: str) -> BenignLoad:
    kv = _parse_kv(body, clause)
    steps: Tuple[Tuple[float, float], ...] = ()
    if "steps" in kv:
        steps = tuple(
            (float(t), float(r))
            for t, r in (pair.split(":", 1) for pair in kv.pop("steps").split("/"))
        )
    curve = LoadCurve(
        kind=kv.pop("curve", "constant"),
        rate=_pop_float(kv, "rate", 10.0),
        amplitude=_pop_float(kv, "amplitude", 0.5),
        period_s=_pop_float(kv, "period", 60.0),
        phase=_pop_float(kv, "phase", 0.0),
        steps=steps,
    )
    load = BenignLoad(curve=curve, mix=kv.pop("mix", "all"))
    if kv:
        raise ValueError(f"unknown benign keys {sorted(kv)} in {clause!r}")
    return load


def _parse_campaign(body: str, clause: str) -> Campaign:
    kv = _parse_kv(body, clause)
    if "family" not in kv:
        raise ValueError(f"campaign clause needs family=...: {clause!r}")
    campaign = Campaign(
        family=kv.pop("family"),
        rate=_pop_float(kv, "rate", 10.0),
        start_s=_pop_float(kv, "start", 0.0),
        end_s=_pop_float(kv, "end", math.inf),
        shape=kv.pop("shape", "constant"),
        period_s=_pop_float(kv, "period", 10.0),
        duty=_pop_float(kv, "duty", 0.5),
    )
    if kv:
        raise ValueError(f"unknown campaign keys {sorted(kv)} in {clause!r}")
    return campaign


def _parse_evasion(body: str, clause: str) -> EvasionPhase:
    kv = _parse_kv(body, clause)
    families: Tuple[str, ...] = ()
    if "families" in kv:
        families = tuple(f for f in kv.pop("families").split("/") if f)
    phase = EvasionPhase(
        kind=kv.pop("kind", "low_rate"),
        factor=_pop_float(kv, "factor", 4.0),
        start_s=_pop_float(kv, "start", 0.0),
        end_s=_pop_float(kv, "end", math.inf),
        families=families,
    )
    if kv:
        raise ValueError(f"unknown evasion keys {sorted(kv)} in {clause!r}")
    return phase


def parse_scenario(spec: str) -> Scenario:
    """Parse a DSL string — or a preset name with optional overrides.

    Grammar: ``;``-separated clauses.  A clause is either a top-level
    ``key=value`` (``name``, ``duration``, ``seed``, ``window``,
    ``intensity``), a ``benign:…`` / ``campaign:…`` / ``evasion:…``
    block of comma-separated ``key=value`` pairs, or — only as the first
    clause — a preset name from the scenario registry, which seeds the
    spec that later clauses then override or extend.
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty scenario spec")

    clauses = [c.strip() for c in text.split(";") if c.strip()]
    base: Optional[Scenario] = None
    first = clauses[0]
    if ":" not in first and "=" not in first:
        from repro.scenarios.registry import get_scenario

        base = get_scenario(first)
        clauses = clauses[1:]

    top: Dict[str, str] = {}
    benign: List[BenignLoad] = []
    campaigns: List[Campaign] = []
    evasions: List[EvasionPhase] = []
    for clause in clauses:
        head, _, body = clause.partition(":")
        if head == "benign":
            benign.append(_parse_benign(body, clause))
        elif head == "campaign":
            campaigns.append(_parse_campaign(body, clause))
        elif head == "evasion":
            evasions.append(_parse_evasion(body, clause))
        elif "=" in clause and ":" not in clause:
            key, value = clause.split("=", 1)
            top[key.strip()] = value.strip()
        else:
            raise ValueError(
                f"unknown clause {clause!r} (expected benign:/campaign:/evasion:/key=value)"
            )

    known = {"name", "duration", "seed", "window", "intensity"}
    unknown = set(top) - known
    if unknown:
        raise ValueError(f"unknown scenario keys {sorted(unknown)}")

    if base is not None:
        scenario = base
        if "duration" in top or "intensity" in top:
            scenario = scenario.scaled(
                duration_s=float(top["duration"]) if "duration" in top else None,
                intensity=float(top.get("intensity", 1.0)),
            )
        return replace(
            scenario,
            name=top.get("name", scenario.name),
            seed=int(top.get("seed", scenario.seed)),
            window_s=float(top.get("window", scenario.window_s)),
            benign=scenario.benign + tuple(benign),
            campaigns=scenario.campaigns + tuple(campaigns),
            evasions=scenario.evasions + tuple(evasions),
        )

    scenario = Scenario(
        name=top.get("name", "scenario"),
        duration_s=float(top.get("duration", 60.0)),
        seed=int(top.get("seed", 7)),
        window_s=float(top.get("window", 1.0)),
        benign=tuple(benign),
        campaigns=tuple(campaigns),
        evasions=tuple(evasions),
    )
    if "intensity" in top:
        scenario = scenario.scaled(intensity=float(top["intensity"]))
    return scenario
