"""Feature scaling and integer quantisation.

Two transforms bridge the model world and the switch world:

* :class:`MinMaxScaler` — maps training features to [0, 1] for the
  autoencoders (reconstruction error is only meaningful on a common
  scale).
* :class:`IntegerQuantizer` — maps features to unsigned fixed-width
  integers.  Switch pipelines match on integer register values, so
  whitelist rules are expressed in quantised units; the quantiser is the
  single source of truth for that mapping in both the compiler
  (model → rules) and the simulator (packet → match key).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.utils.validation import check_2d, check_fitted


class MinMaxScaler:
    """Per-feature min-max scaling to [0, 1] with clipping at transform.

    Degenerate features (constant in the training data) map to 0.
    """

    def __init__(self) -> None:
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = check_2d(x, "X")
        self.data_min_ = x.min(axis=0)
        self.data_max_ = x.max(axis=0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "data_min_")
        x = check_2d(x, "X")
        span = np.where(
            self.data_max_ > self.data_min_, self.data_max_ - self.data_min_, 1.0
        )
        scaled = (x - self.data_min_) / span
        return np.clip(scaled, 0.0, 1.0)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, "data_min_")
        x = check_2d(x, "X")
        return x * (self.data_max_ - self.data_min_) + self.data_min_


class IntegerQuantizer:
    """Map real features to unsigned *bits*-wide integers and back.

    The mapping is affine per feature over the fitted range, with
    saturation outside it — the same behaviour a P4 pipeline gets from
    shifting/clamping register values.  ``dequantize`` returns bin-centre
    values, so ``quantize(dequantize(q)) == q`` for all in-range codes
    (a property test relies on this round trip).

    ``space="log"`` places the codes uniformly in signed-log domain
    instead: traffic features are heavy-tailed, and a linear codebook
    spends almost all of its resolution on the outlier tail, collapsing
    the near-zero region — where dispersion features discriminate attacks
    — onto a handful of codes.  A log codebook is still a fixed monotone
    value → code map, so range rules remain range rules; on hardware it
    is the standard mapping-table/range-lookup trick (IIsy-style), not a
    per-packet logarithm.
    """

    def __init__(self, bits: int = 16, space: str = "linear") -> None:
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        if space not in ("linear", "log"):
            raise ValueError(f"space must be 'linear' or 'log', got {space!r}")
        self.bits = bits
        self.space = space
        self.levels = (1 << bits) - 1
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def _warp(self, x: np.ndarray) -> np.ndarray:
        if self.space == "linear":
            return np.asarray(x, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.sign(x) * np.log1p(np.abs(x))

    def _unwarp(self, x: np.ndarray) -> np.ndarray:
        if self.space == "linear":
            return np.asarray(x, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.sign(x) * np.expm1(np.abs(x))

    def fit(self, x: np.ndarray) -> "IntegerQuantizer":
        x = self._warp(check_2d(x, "X"))
        self.data_min_ = x.min(axis=0)
        self.data_max_ = x.max(axis=0)
        return self

    @property
    def span_(self) -> np.ndarray:
        check_fitted(self, "data_min_")
        return np.where(self.data_max_ > self.data_min_, self.data_max_ - self.data_min_, 1.0)

    def fingerprint(self) -> str:
        """Stable identity of the fitted codebook.

        Hashes (bits, space, per-feature domain); two quantizers agree
        exactly on every value → code mapping iff their fingerprints
        match.  :meth:`RuleSet.quantize <repro.core.rules.RuleSet.quantize>`
        stamps this onto the compiled rule set so the switch pipeline can
        reject a table whose match keys would be produced by a different
        codebook than its rules were compiled with.
        """
        check_fitted(self, "data_min_")
        h = hashlib.sha256()
        h.update(f"{self.bits}|{self.space}|".encode())
        h.update(np.ascontiguousarray(self.data_min_, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(self.data_max_, dtype=np.float64).tobytes())
        return h.hexdigest()[:16]

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real features → integer codes.

        In-domain values map to [1, 2^bits − 2]; the two extreme codes
        are reserved sentinels for out-of-domain values (0 below, 2^bits
        − 1 above).  Rule boundaries are quantised with
        :meth:`quantize_bound` into the in-domain band, so traffic
        outside the fitted domain can never satisfy a rule whose range
        merely touches the domain edge — it stays "unmatched → malicious"
        exactly as in real feature space.
        """
        check_fitted(self, "data_min_")
        x = self._warp(check_2d(x, "X"))
        scaled = (x - self.data_min_) / self.span_
        codes = 1 + np.round(scaled * (self.levels - 2))
        codes = np.clip(codes, 1, self.levels - 1)
        codes = np.where(scaled < 0.0, 0, codes)
        codes = np.where(scaled > 1.0, self.levels, codes)
        return codes.astype(np.int64)

    def quantize_value(self, value: float, feature: int) -> int:
        """Quantise a single scalar with the same sentinel semantics as
        :meth:`quantize`."""
        check_fitted(self, "data_min_")
        value = float(self._warp(np.array([value]))[0])
        span = self.span_[feature]
        scaled = (value - self.data_min_[feature]) / span
        if not np.isfinite(scaled):
            scaled = 1.0 if scaled > 0 else 0.0
        if scaled < 0.0:
            return 0
        if scaled > 1.0:
            return self.levels
        return int(np.clip(1 + round(scaled * (self.levels - 2)), 1, self.levels - 1))

    def quantize_bound(self, value: float, feature: int) -> int:
        """Quantise a rule boundary.

        Finite boundaries are clipped into the in-domain band so the
        sentinel codes stay exclusive to out-of-domain traffic; infinite
        boundaries (unbounded hypercube dimensions) take the sentinel
        codes themselves, so the rule keeps matching beyond the domain
        exactly as the forest does.
        """
        if np.isinf(value):
            return self.levels if value > 0 else 0
        return int(np.clip(self.quantize_value(value, feature), 1, self.levels - 1))

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """Integer codes → real feature values (bin centres)."""
        check_fitted(self, "data_min_")
        q = np.asarray(q, dtype=float)
        scaled = (np.clip(q, 1, self.levels - 1) - 1) / (self.levels - 2)
        return self._unwarp(scaled * self.span_ + self.data_min_)
