"""Streaming flow statistics.

The switch cannot buffer a flow's packets: it keeps running accumulators
in register memory and derives the 13 FL features when the flow's class
is decided (n-th packet or timeout).  :class:`StreamingFlowStats` is the
software model of those registers — constant-space updates from which
the exact same feature vector as the batch extractor falls out.  A
property test pins the equivalence, which is why variances use Welford's
algorithm rather than the naive sum-of-squares (the latter cancels
catastrophically on near-constant streams such as equal-gap floods —
precisely the traffic this system classifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datasets.packet import Packet
from repro.features.flow_features import SWITCH_FEATURES


@dataclass
class _Welford:
    """Stable streaming mean/variance (population variance, like np.var)."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    total: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.mean = self.m2 = self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


@dataclass
class StreamingFlowStats:
    """Constant-space accumulator producing the 13 switch FL features."""

    sizes: _Welford = field(default_factory=_Welford)
    ipds: _Welford = field(default_factory=_Welford)
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    @property
    def count(self) -> int:
        return self.sizes.count

    def update(self, pkt: Packet) -> None:
        """Fold one packet into the accumulators (switch register update)."""
        self.update_raw(pkt.timestamp, pkt.size)

    def update_raw(self, timestamp: float, size: float) -> None:
        """Fold one (timestamp, size) observation in."""
        if self.last_time is not None:
            self.ipds.update(timestamp - self.last_time)
        else:
            self.first_time = timestamp
        self.last_time = timestamp
        self.sizes.update(size)

    @property
    def idle_since(self) -> Optional[float]:
        """Timestamp of the last packet (None before any packet)."""
        return self.last_time

    def features(self) -> np.ndarray:
        """The 13-feature vector in :data:`SWITCH_FEATURES` order.

        Matches the batch extractor exactly, including its conventions for
        single-packet flows (all IPD statistics zero, duration zero).
        """
        if self.count == 0:
            raise ValueError("no packets accumulated yet")
        if self.ipds.count > 0:
            ipd_mean = self.ipds.mean
            ipd_var = self.ipds.variance
            ipd_min, ipd_max = self.ipds.minimum, self.ipds.maximum
            duration = self.last_time - self.first_time
        else:
            ipd_mean = ipd_var = ipd_min = ipd_max = 0.0
            duration = 0.0
        size_var = self.sizes.variance
        values = {
            "pkt_count": float(self.count),
            "size_total": self.sizes.total,
            "size_mean": self.sizes.mean,
            "size_std": float(np.sqrt(size_var)),
            "size_var": size_var,
            "size_min": self.sizes.minimum,
            "size_max": self.sizes.maximum,
            "ipd_mean": ipd_mean,
            "ipd_min": ipd_min,
            "ipd_var": ipd_var,
            "ipd_std": float(np.sqrt(ipd_var)),
            "ipd_max": ipd_max,
            "duration": duration,
        }
        return np.array([values[name] for name in SWITCH_FEATURES], dtype=float)

    def reset(self) -> None:
        """Clear all accumulators (storage release on the switch)."""
        self.sizes.reset()
        self.ipds.reset()
        self.first_time = self.last_time = None
