"""Packet-level (PL) feature extraction.

The paper handles early packets of a flow — before the packet-count
threshold or timeout makes FL features reliable — with a conventional
iForest over four header fields available on packet one: destination
port, protocol, packet length, and TTL (§3.3.1, §4.2).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.datasets.packet import Packet

PACKET_FEATURES: Tuple[str, ...] = ("dst_port", "protocol", "length", "ttl")


def packet_feature_vector(pkt: Packet) -> np.ndarray:
    """The 4-dimensional PL feature vector of one packet."""
    return np.array(
        [
            float(pkt.five_tuple.dst_port),
            float(pkt.five_tuple.protocol),
            float(pkt.size),
            float(pkt.ttl),
        ],
        dtype=float,
    )


def extract_packet_features(packets: Sequence[Packet]) -> Tuple[np.ndarray, np.ndarray]:
    """Feature matrix and ground-truth labels, one row per packet."""
    if not packets:
        raise ValueError("cannot extract features from an empty packet list")
    x = np.vstack([packet_feature_vector(p) for p in packets])
    y = np.array([int(p.malicious) for p in packets], dtype=int)
    return x, y


def extract_first_packets(
    flows: Sequence[Sequence[Packet]], per_flow: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """PL features of each flow's first *per_flow* packets.

    This is the training set for the early-packet iForest: the samples the
    switch will score on the brown path before FL state matures.
    """
    if per_flow < 1:
        raise ValueError(f"per_flow must be >= 1, got {per_flow}")
    packets = [p for flow in flows for p in flow[:per_flow]]
    return extract_packet_features(packets)
