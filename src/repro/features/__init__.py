"""Feature extraction: flow-level (FL) and packet-level (PL) features,
streaming accumulators matching the switch registers, and the scaling /
quantisation transforms bridging models and the data plane."""

from repro.features.flow_features import (
    FEATURE_SETS,
    MAGNIFIER_FEATURES,
    SWITCH_FEATURES,
    FlowFeatureExtractor,
    truncate_flow,
)
from repro.features.packet_features import (
    PACKET_FEATURES,
    extract_first_packets,
    extract_packet_features,
    packet_feature_vector,
)
from repro.features.scaling import IntegerQuantizer, MinMaxScaler
from repro.features.streaming import StreamingFlowStats

__all__ = [
    "FEATURE_SETS",
    "MAGNIFIER_FEATURES",
    "PACKET_FEATURES",
    "SWITCH_FEATURES",
    "FlowFeatureExtractor",
    "IntegerQuantizer",
    "MinMaxScaler",
    "StreamingFlowStats",
    "extract_first_packets",
    "extract_packet_features",
    "packet_feature_vector",
    "truncate_flow",
]
