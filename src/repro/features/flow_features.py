"""Flow-level (FL) feature extraction.

Two feature sets are provided, mirroring the paper's two evaluation
settings:

* ``SWITCH_FEATURES`` — the 13 statistics the Tofino pipeline can compute
  (§4.2): per-flow packet count; total/average/std/variance/min/max of
  packet size; average/min/variance/std/max of inter-packet delay; and
  flow duration.
* ``MAGNIFIER_FEATURES`` — the richer CPU-side set used for the §4.1
  experiments (the switch set plus protocol/port/TTL/median/rate
  statistics that Magnifier consumes but a data plane cannot extract).

Per §3.3.1, extraction can be truncated at a per-flow packet-count
threshold *n* and an idle timeout *δ* so that the model is trained on
exactly the features the switch will have when it makes its decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.packet import Packet

SWITCH_FEATURES: Tuple[str, ...] = (
    "pkt_count",
    "size_total",
    "size_mean",
    "size_std",
    "size_var",
    "size_min",
    "size_max",
    "ipd_mean",
    "ipd_min",
    "ipd_var",
    "ipd_std",
    "ipd_max",
    "duration",
)

MAGNIFIER_FEATURES: Tuple[str, ...] = SWITCH_FEATURES + (
    "protocol",
    "dst_port",
    "ttl_mean",
    "size_median",
    "ipd_median",
    "bytes_per_second",
    "pkts_per_second",
)

FEATURE_SETS: Dict[str, Tuple[str, ...]] = {
    "switch": SWITCH_FEATURES,
    "magnifier": MAGNIFIER_FEATURES,
}


def _flow_stats(packets: Sequence[Packet]) -> Dict[str, float]:
    """Compute every supported statistic for one (possibly truncated) flow."""
    sizes = np.array([p.size for p in packets], dtype=float)
    times = np.array([p.timestamp for p in packets], dtype=float)
    ipds = np.diff(times) if len(times) > 1 else np.zeros(1)
    duration = float(times[-1] - times[0]) if len(times) > 1 else 0.0
    safe_duration = max(duration, 1e-9)
    return {
        "pkt_count": float(len(packets)),
        "size_total": float(sizes.sum()),
        "size_mean": float(sizes.mean()),
        "size_std": float(sizes.std()),
        "size_var": float(sizes.var()),
        "size_min": float(sizes.min()),
        "size_max": float(sizes.max()),
        "ipd_mean": float(ipds.mean()),
        "ipd_min": float(ipds.min()),
        "ipd_var": float(ipds.var()),
        "ipd_std": float(ipds.std()),
        "ipd_max": float(ipds.max()),
        "duration": duration,
        "protocol": float(packets[0].five_tuple.protocol),
        "dst_port": float(packets[0].five_tuple.dst_port),
        "ttl_mean": float(np.mean([p.ttl for p in packets])),
        "size_median": float(np.median(sizes)),
        "ipd_median": float(np.median(ipds)),
        "bytes_per_second": float(sizes.sum() / safe_duration) if len(packets) > 1 else 0.0,
        "pkts_per_second": float(len(packets) / safe_duration) if len(packets) > 1 else 0.0,
    }


def truncate_flow(
    packets: Sequence[Packet],
    pkt_count_threshold: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[Packet]:
    """Apply the switch's truncation semantics to a flow.

    Keeps at most *pkt_count_threshold* packets and stops at the first
    idle gap exceeding *timeout* seconds — the moment the data plane would
    have released the flow's stateful storage (§3.3.1).
    """
    out: List[Packet] = []
    for i, pkt in enumerate(packets):
        if timeout is not None and out and pkt.timestamp - out[-1].timestamp > timeout:
            break
        out.append(pkt)
        if pkt_count_threshold is not None and len(out) >= pkt_count_threshold:
            break
    return out


@dataclass(frozen=True)
class FlowFeatureExtractor:
    """Extract a fixed FL feature vector per flow.

    Parameters
    ----------
    feature_set:
        ``"switch"`` (13 data-plane features) or ``"magnifier"`` (full
        CPU set).
    pkt_count_threshold:
        Truncate each flow to its first *n* packets (switch threshold
        *n*); ``None`` disables truncation.
    timeout:
        Idle timeout *δ* in seconds; ``None`` disables it.
    """

    feature_set: str = "magnifier"
    pkt_count_threshold: Optional[int] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.feature_set not in FEATURE_SETS:
            raise ValueError(
                f"feature_set must be one of {sorted(FEATURE_SETS)}, got {self.feature_set!r}"
            )
        if self.pkt_count_threshold is not None and self.pkt_count_threshold < 1:
            raise ValueError("pkt_count_threshold must be >= 1 when given")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0 when given")

    @property
    def feature_names(self) -> Tuple[str, ...]:
        return FEATURE_SETS[self.feature_set]

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def extract_flow(self, packets: Sequence[Packet]) -> np.ndarray:
        """Feature vector for one flow (after truncation)."""
        if not packets:
            raise ValueError("cannot extract features from an empty flow")
        truncated = truncate_flow(packets, self.pkt_count_threshold, self.timeout)
        stats = _flow_stats(truncated)
        return np.array([stats[name] for name in self.feature_names], dtype=float)

    def extract_flows(
        self, flows: Sequence[Sequence[Packet]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature matrix and ground-truth labels for a list of flows.

        A flow is labelled malicious when any of its packets carries the
        ground-truth bit (flows are homogeneous in our generators).
        """
        rows = []
        labels = []
        for flow in flows:
            if not flow:
                continue
            rows.append(self.extract_flow(flow))
            labels.append(int(any(p.malicious for p in flow)))
        if not rows:
            raise ValueError("no non-empty flows to extract")
        return np.vstack(rows), np.array(labels, dtype=int)
