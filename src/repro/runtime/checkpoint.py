"""Crash-safe checkpoint/restore for the online detection service.

A checkpoint captures *everything* the serving loop's future depends on:
the live (and previous) whitelist table generations, every flow-store
slot with its streaming accumulators, the blacklist in eviction order,
all pipeline/controller counters, the retrainer's reservoir and RNG
states, the drift monitor's windows, the serve report so far, and the
fault plan's injector states.  Restoring from it and replaying the
remaining chunks therefore produces decisions and counters
*bit-identical* to the uninterrupted run — the invariant the
kill-and-resume tests assert.

Durability protocol: :class:`CheckpointManager` serialises to JSON,
writes a temp file, fsyncs, and ``os.replace``\\ s it over
``checkpoint.json`` — a crash mid-write leaves the previous checkpoint
intact.  Each save also appends one line to ``journal.jsonl`` (chunk
count, packet count, verdict totals, status) so post-mortems can see
the save history without parsing full checkpoints.

Floats round-trip exactly: JSON decimal repr of a double is re-read to
the same bits (Python emits ``repr``-faithful floats), and ±Infinity in
the Welford min/max accumulators is emitted natively via
``allow_nan=True``.  NumPy RNGs round-trip through
``Generator.bit_generator.state`` (plain dicts of ints).

Not persisted: :attr:`ServeReport.decisions` (the per-packet
:class:`PacketDecision` objects — evaluation sugar, unbounded in size)
and the retrainer's ``last_model_`` (the compiled tables it produced
are already live).  A resumed report has ``decisions == []``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.datasets.packet import FiveTuple, Packet
from repro.features.streaming import StreamingFlowStats, _Welford
from repro.io import quantizer_from_dict, quantizer_to_dict, ruleset_from_dict, ruleset_to_dict
from repro.runtime.drift import DriftMonitor
from repro.runtime.retrain import Retrainer
from repro.runtime.service import (
    OnlineDetectionService,
    RuntimeConfig,
    ServeReport,
    SwapEvent,
)
from repro.runtime.stream import ChunkStats
from repro.switch.controller import Controller, ControllerStats
from repro.switch.hashing import Slot
from repro.switch.pipeline import PipelineConfig, SwitchPipeline, _TableSet
from repro.switch.storage import FlowState

SCHEMA = "repro.checkpoint/v1"

PathLike = Union[str, Path]


# --------------------------------------------------------------------------
# Leaf serialisers
# --------------------------------------------------------------------------


def _packet_to_obj(pkt: Packet) -> list:
    ft = pkt.five_tuple
    return [
        ft.src_ip,
        ft.dst_ip,
        ft.src_port,
        ft.dst_port,
        ft.protocol,
        pkt.timestamp,
        pkt.size,
        pkt.ttl,
        pkt.tcp_flags,
        int(pkt.malicious),
    ]


def _packet_from_obj(obj: list) -> Packet:
    return Packet(
        five_tuple=FiveTuple(*(int(v) for v in obj[:5])),
        timestamp=float(obj[5]),
        size=int(obj[6]),
        ttl=int(obj[7]),
        tcp_flags=int(obj[8]),
        malicious=bool(obj[9]),
    )


def _welford_to_obj(w: _Welford) -> list:
    return [w.count, w.mean, w.m2, w.minimum, w.maximum, w.total]


def _welford_from_obj(obj: list) -> _Welford:
    # No float() coercion: min/max keep whatever numeric type update()
    # gave them (an all-int size stream leaves them int), and JSON
    # preserves the int/float distinction — coercing would make a
    # restored accumulator re-serialise differently than the original.
    return _Welford(
        count=int(obj[0]),
        mean=obj[1],
        m2=obj[2],
        minimum=obj[3],
        maximum=obj[4],
        total=obj[5],
    )


def _stats_to_obj(stats: StreamingFlowStats) -> dict:
    return {
        "sizes": _welford_to_obj(stats.sizes),
        "ipds": _welford_to_obj(stats.ipds),
        "first_time": stats.first_time,
        "last_time": stats.last_time,
    }


def _stats_from_obj(obj: dict) -> StreamingFlowStats:
    stats = StreamingFlowStats(
        sizes=_welford_from_obj(obj["sizes"]),
        ipds=_welford_from_obj(obj["ipds"]),
    )
    stats.first_time = obj["first_time"]
    stats.last_time = obj["last_time"]
    return stats


def _flow_state_to_obj(state: FlowState) -> dict:
    return {"label": state.label, "stats": _stats_to_obj(state.stats)}


def _flow_state_from_obj(obj: dict) -> FlowState:
    return FlowState(label=int(obj["label"]), stats=_stats_from_obj(obj["stats"]))


def _rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _rng_from_state(state: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


def _tableset_to_obj(tables: Optional[_TableSet]) -> Optional[dict]:
    if tables is None:
        return None
    return {
        "fl_rules": ruleset_to_dict(tables.fl_rules),
        "fl_quantizer": quantizer_to_dict(tables.fl_quantizer),
        "pl_rules": None
        if tables.pl_rules is None
        else ruleset_to_dict(tables.pl_rules),
        "pl_quantizer": None
        if tables.pl_quantizer is None
        else quantizer_to_dict(tables.pl_quantizer),
    }


def _tableset_from_obj(obj: Optional[dict]) -> Optional[_TableSet]:
    if obj is None:
        return None
    return _TableSet(
        fl_rules=ruleset_from_dict(obj["fl_rules"]),
        fl_quantizer=quantizer_from_dict(obj["fl_quantizer"]),
        pl_rules=None
        if obj["pl_rules"] is None
        else ruleset_from_dict(obj["pl_rules"]),
        pl_quantizer=None
        if obj["pl_quantizer"] is None
        else quantizer_from_dict(obj["pl_quantizer"]),
    )


# --------------------------------------------------------------------------
# Pipeline (tables + flow store + blacklist + counters)
# --------------------------------------------------------------------------


def _pipeline_to_obj(pipeline: SwitchPipeline) -> dict:
    store = pipeline.store
    slots = [
        [t, pos, list(slot.flow_id.as_tuple()), _flow_state_to_obj(slot.state)]
        for t, table in enumerate(store.table._tables)
        for pos, slot in enumerate(table)
        if slot is not None
    ]
    blacklist = pipeline.blacklist
    controller = None
    if pipeline.controller is not None:
        engine = getattr(pipeline.controller, "policy", None)
        controller = {
            "install_blacklist": pipeline.controller.install_blacklist,
            "stats": asdict(pipeline.controller.stats),
            "policy": None if engine is None else engine.state_dict(),
        }
    limiter = pipeline.rate_limiter
    rate_limiter = None
    if limiter is not None:
        rate_limiter = {
            "keep_one_in": limiter.keep_one_in,
            "entries": limiter.state_obj(),
            "installs": limiter.installs,
            "forwarded": limiter.forwarded,
            "dropped": limiter.dropped,
        }
    return {
        "config": asdict(pipeline.config),
        "live": _tableset_to_obj(pipeline._live_tables()),
        "previous": _tableset_to_obj(pipeline._previous),
        "fl_lookups": pipeline.fl_table.lookup_count,
        "pl_lookups": None
        if pipeline.pl_table is None
        else pipeline.pl_table.lookup_count,
        "path_counts": dict(pipeline.path_counts),
        "mirrored_packets": pipeline.mirrored_packets,
        "digests_emitted": pipeline.digests_emitted,
        "degraded_packets": pipeline.degraded_packets,
        "table_swaps": pipeline.table_swaps,
        "table_rollbacks": pipeline.table_rollbacks,
        "store": {
            "slots": slots,
            "collisions": store.table.collision_count,
            "evictions": store.table.eviction_count,
            "forced_evictions": store.forced_evictions,
            "label_wipes": store.label_wipes,
        },
        "blacklist": {
            "entries": [list(ft.as_tuple()) for ft in blacklist._entries],
            "installs": blacklist.installs,
            "evictions": blacklist.evictions,
            "version": blacklist.version,
            "track_hits": blacklist.track_hits,
            "last_hit": [
                [list(ft.as_tuple()), ts] for ft, ts in blacklist.last_hit.items()
            ],
        },
        "rate_limiter": rate_limiter,
        "controller": controller,
    }


def _pipeline_from_obj(obj: dict) -> SwitchPipeline:
    live = _tableset_from_obj(obj["live"])
    pipeline = SwitchPipeline(
        fl_rules=live.fl_rules,
        fl_quantizer=live.fl_quantizer,
        pl_rules=live.pl_rules,
        pl_quantizer=live.pl_quantizer,
        config=PipelineConfig(**obj["config"]),
    )
    pipeline._previous = _tableset_from_obj(obj["previous"])
    pipeline.fl_table.lookup_count = int(obj["fl_lookups"])
    if pipeline.pl_table is not None and obj["pl_lookups"] is not None:
        pipeline.pl_table.lookup_count = int(obj["pl_lookups"])
    pipeline.path_counts.update({k: int(v) for k, v in obj["path_counts"].items()})
    pipeline.mirrored_packets = int(obj["mirrored_packets"])
    pipeline.digests_emitted = int(obj["digests_emitted"])
    pipeline.degraded_packets = int(obj["degraded_packets"])
    pipeline.table_swaps = int(obj["table_swaps"])
    pipeline.table_rollbacks = int(obj["table_rollbacks"])

    store_doc = obj["store"]
    for t, pos, ft, state in store_doc["slots"]:
        flow_id = FiveTuple(*(int(v) for v in ft))
        pipeline.store.table._tables[int(t)][int(pos)] = Slot(
            flow_id=flow_id, state=_flow_state_from_obj(state)
        )
    pipeline.store.table.collision_count = int(store_doc["collisions"])
    pipeline.store.table.eviction_count = int(store_doc["evictions"])
    pipeline.store.forced_evictions = int(store_doc["forced_evictions"])
    pipeline.store.label_wipes = int(store_doc["label_wipes"])

    bl_doc = obj["blacklist"]
    for ft in bl_doc["entries"]:
        pipeline.blacklist._entries[FiveTuple(*(int(v) for v in ft))] = True
    pipeline.blacklist.installs = int(bl_doc["installs"])
    pipeline.blacklist.evictions = int(bl_doc["evictions"])
    pipeline.blacklist.version = int(bl_doc["version"])
    # .get: checkpoints written before the mitigation engine existed.
    pipeline.blacklist.track_hits = bool(bl_doc.get("track_hits", False))
    for ft, ts in bl_doc.get("last_hit", []):
        pipeline.blacklist.last_hit[FiveTuple(*(int(v) for v in ft))] = float(ts)

    rl_doc = obj.get("rate_limiter")
    if rl_doc is not None:
        from repro.switch.tables import RateLimitTable

        limiter = RateLimitTable(keep_one_in=int(rl_doc["keep_one_in"]))
        limiter.load_state(rl_doc["entries"])
        limiter.installs = int(rl_doc["installs"])
        limiter.forwarded = int(rl_doc["forwarded"])
        limiter.dropped = int(rl_doc["dropped"])
        pipeline.rate_limiter = limiter

    if obj["controller"] is not None:
        controller = Controller(
            pipeline, install_blacklist=bool(obj["controller"]["install_blacklist"])
        )
        controller.stats = ControllerStats(
            **{k: int(v) for k, v in obj["controller"]["stats"].items()}
        )
        policy_doc = obj["controller"].get("policy")
        if policy_doc is not None:
            from repro.mitigation import PolicyEngine

            # Restore the engine state first, then attach: the restored
            # rate limiter above is already in place, so attach() leaves
            # it (and its counters) untouched.
            PolicyEngine.from_state(policy_doc).attach(pipeline)
    return pipeline


# --------------------------------------------------------------------------
# Retrainer / drift monitor / report
# --------------------------------------------------------------------------


def _retrainer_to_obj(retrainer: Retrainer) -> dict:
    reservoir = retrainer.reservoir
    return {
        "pkt_count_threshold": retrainer.pkt_count_threshold,
        "timeout": retrainer.timeout,
        "quantizer_bits": retrainer.quantizer_bits,
        "rule_cells": retrainer.rule_cells,
        "use_pl_model": retrainer.use_pl_model,
        "retrains": retrainer.retrains,
        "rng": _rng_state(retrainer._rng),
        "reservoir": {
            "capacity": reservoir.capacity,
            "seen": reservoir.seen,
            "rng": _rng_state(reservoir._rng),
            "flows": [
                [_packet_to_obj(p) for p in flow] for flow in reservoir._flows
            ],
        },
    }


def _retrainer_from_obj(obj: dict, model_factory=None) -> Retrainer:
    retrainer = Retrainer(
        pkt_count_threshold=int(obj["pkt_count_threshold"]),
        timeout=float(obj["timeout"]),
        quantizer_bits=int(obj["quantizer_bits"]),
        rule_cells=int(obj["rule_cells"]),
        use_pl_model=bool(obj["use_pl_model"]),
        reservoir_size=int(obj["reservoir"]["capacity"]),
        model_factory=model_factory,
        seed=0,
    )
    retrainer.retrains = int(obj["retrains"])
    retrainer._rng = _rng_from_state(obj["rng"])
    reservoir_doc = obj["reservoir"]
    retrainer.reservoir.seen = int(reservoir_doc["seen"])
    retrainer.reservoir._rng = _rng_from_state(reservoir_doc["rng"])
    retrainer.reservoir._flows = [
        [_packet_from_obj(p) for p in flow] for flow in reservoir_doc["flows"]
    ]
    return retrainer


def _chunk_stats_to_obj(stats: ChunkStats) -> dict:
    return {
        "n_packets": stats.n_packets,
        "malicious_rate": stats.malicious_rate,
        "path_fractions": dict(stats.path_fractions),
    }


def _chunk_stats_from_obj(obj: dict) -> ChunkStats:
    return ChunkStats(
        n_packets=int(obj["n_packets"]),
        malicious_rate=float(obj["malicious_rate"]),
        path_fractions={k: float(v) for k, v in obj["path_fractions"].items()},
    )


def _monitor_to_obj(monitor: Optional[DriftMonitor]) -> Optional[dict]:
    if monitor is None:
        return None
    return {
        "window": monitor.window,
        "baseline_window": monitor.baseline_window,
        "threshold": monitor.threshold,
        "min_packets": monitor.min_packets,
        "warmup_chunks": monitor.warmup_chunks,
        "seen": monitor._seen,
        "baseline": [_chunk_stats_to_obj(s) for s in monitor._baseline],
        "recent": [_chunk_stats_to_obj(s) for s in monitor._recent],
        "last_score": monitor.last_score,
        "last_rate": monitor.last_rate,
        "signals": monitor.signals,
    }


def _monitor_from_obj(obj: Optional[dict]) -> Optional[DriftMonitor]:
    if obj is None:
        return None
    monitor = DriftMonitor(
        window=int(obj["window"]),
        baseline_window=int(obj["baseline_window"]),
        threshold=float(obj["threshold"]),
        min_packets=int(obj["min_packets"]),
        warmup_chunks=int(obj.get("warmup_chunks", 0)),
    )
    # Checkpoints written before warm-up existed carry no "seen"; any
    # resumed monitor has already served past its warm-up, so treat the
    # warm-up as spent rather than re-applying it mid-stream.
    monitor._seen = int(obj.get("seen", monitor.warmup_chunks))
    monitor._baseline.extend(_chunk_stats_from_obj(s) for s in obj["baseline"])
    monitor._recent.extend(_chunk_stats_from_obj(s) for s in obj["recent"])
    monitor.last_score = float(obj["last_score"])
    monitor.last_rate = float(obj["last_rate"])
    monitor.signals = int(obj["signals"])
    return monitor


def report_to_dict(report: ServeReport) -> dict:
    """Serialise a serve report (``decisions`` excluded, see module doc)."""
    return {
        "n_chunks": report.n_chunks,
        "n_packets": report.n_packets,
        "drift_signals": report.drift_signals,
        "retrains": report.retrains,
        "retrain_failures": report.retrain_failures,
        "fault_counts": dict(report.fault_counts),
        "swap_events": [asdict(e) for e in report.swap_events],
        "chunk_stats": [_chunk_stats_to_obj(s) for s in report.chunk_stats],
        "chunk_offsets": list(report.chunk_offsets),
        "control_events": [dict(t) for t in report.control_events],
        "y_true": [int(v) for v in report.y_true],
        "y_pred": [int(v) for v in report.y_pred],
    }


def report_from_dict(obj: dict) -> ServeReport:
    return ServeReport(
        n_chunks=int(obj["n_chunks"]),
        n_packets=int(obj["n_packets"]),
        drift_signals=int(obj["drift_signals"]),
        retrains=int(obj["retrains"]),
        retrain_failures=int(obj["retrain_failures"]),
        fault_counts={k: int(v) for k, v in obj["fault_counts"].items()},
        swap_events=[SwapEvent(**e) for e in obj["swap_events"]],
        chunk_stats=[_chunk_stats_from_obj(s) for s in obj["chunk_stats"]],
        chunk_offsets=[int(v) for v in obj["chunk_offsets"]],
        # .get: checkpoints written before the ops surface lack the key.
        control_events=[dict(t) for t in obj.get("control_events", [])],
        y_true=np.asarray(obj["y_true"], dtype=int),
        y_pred=np.asarray(obj["y_pred"], dtype=int),
    )


# --------------------------------------------------------------------------
# Whole-service snapshot
# --------------------------------------------------------------------------


def service_to_dict(
    service: OnlineDetectionService,
    report: ServeReport,
    meta: Optional[Dict] = None,
) -> dict:
    """One self-contained document capturing the full serving state."""
    faults = None
    if service.faults is not None:
        faults = service.faults.state_dict()
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "config": asdict(service.config),
        "report": report_to_dict(report),
        "pipeline": _pipeline_to_obj(service.pipeline),
        "retrainer": _retrainer_to_obj(service.retrainer),
        "monitor": _monitor_to_obj(service.monitor),
        "faults": faults,
    }


def restore_service(
    doc: dict,
    model_factory=None,
    faults="auto",
) -> Tuple[OnlineDetectionService, ServeReport]:
    """Rebuild ``(service, report)`` from a checkpoint document.

    ``model_factory`` re-attaches the retrainer's model builder
    (callables cannot be persisted; None selects the default serving
    factory).  ``faults`` controls the fault plan: the default
    ``"auto"`` rebuilds it from the stored spec (and restores injector
    RNG states, so the resumed run continues the uninterrupted fault
    schedule); pass an explicit :class:`~repro.faults.FaultPlan` to
    substitute one, or ``None`` to resume fault-free.
    """
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ValueError(f"not a {SCHEMA} checkpoint document")
    pipeline = _pipeline_from_obj(doc["pipeline"])
    retrainer = _retrainer_from_obj(doc["retrainer"], model_factory=model_factory)
    monitor = _monitor_from_obj(doc["monitor"])
    config = RuntimeConfig(**doc["config"])

    plan = None
    faults_doc = doc.get("faults")
    if faults == "auto":
        if faults_doc is not None:
            spec = faults_doc.get("spec")
            if spec is None:
                raise ValueError(
                    "checkpoint holds a fault plan built without a spec; pass "
                    "the plan object via restore_service(..., faults=plan)"
                )
            from repro.faults import FaultPlan

            plan = FaultPlan.from_spec(spec)
            plan.load_state(faults_doc)
    elif faults is not None:
        plan = faults
        if faults_doc is not None:
            plan.load_state(faults_doc)

    service = OnlineDetectionService(
        pipeline,
        retrainer=retrainer,
        monitor=monitor,
        config=config,
        faults=plan,
    )
    return service, report_from_dict(doc["report"])


# --------------------------------------------------------------------------
# Durable checkpoint files
# --------------------------------------------------------------------------


class CheckpointManager:
    """Journaled, atomically-replaced checkpoints in one directory.

    ``checkpoint.json`` always holds the latest consistent snapshot
    (tmp-write + fsync + ``os.replace``); ``journal.jsonl`` accumulates
    one line per save.  ``every`` thins saves to every N-th chunk
    boundary (the final save of a completed serve always happens).
    """

    FILENAME = "checkpoint.json"
    JOURNAL = "journal.jsonl"

    def __init__(
        self, directory: PathLike, every: int = 1, meta: Optional[Dict] = None
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.meta = dict(meta or {})
        self.saves = 0

    def maybe_save(self, service: OnlineDetectionService, report: ServeReport) -> bool:
        """Save when the report sits on an ``every``-th chunk boundary."""
        if report.n_chunks % self.every != 0:
            return False
        self.save(service, report)
        return True

    def _document(self, service, report) -> dict:
        """Build the snapshot document; subclasses (the cluster manager)
        swap this out while inheriting the durability protocol."""
        return service_to_dict(service, report, meta=self.meta)

    def save(
        self,
        service: OnlineDetectionService,
        report: ServeReport,
        complete: bool = False,
    ) -> Path:
        doc = self._document(service, report)
        doc["status"] = "complete" if complete else "in_progress"
        path = self.directory / self.FILENAME
        tmp = self.directory / (self.FILENAME + ".tmp")
        payload = json.dumps(doc, allow_nan=True)
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        entry = {
            "n_chunks": report.n_chunks,
            "n_packets": report.n_packets,
            "benign": int(np.sum(report.y_pred == 0)),
            "malicious": int(np.sum(report.y_pred == 1)),
            "status": doc["status"],
        }
        with open(self.directory / self.JOURNAL, "a") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.saves += 1
        return path

    @staticmethod
    def exists(directory: PathLike) -> bool:
        return (Path(directory) / CheckpointManager.FILENAME).is_file()

    @staticmethod
    def load(directory: PathLike) -> dict:
        """The latest checkpoint document of *directory* (raw dict)."""
        path = Path(directory) / CheckpointManager.FILENAME
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            raise ValueError(f"{path} is not a {SCHEMA} checkpoint")
        return doc
