"""Reservoir sampling and model refit for the serving control plane.

On a retrain signal the control plane needs a training set that reflects
*recent* traffic without storing the stream: a classic algorithm-R
reservoir over completed bidirectional flows.  All observed flows are
admitted — the runtime has no ground truth, and filtering by the current
model's own verdicts would symmetrically exclude drifted-but-benign
flows, blocking exactly the adaptation a retrain is for.  iGuard's
training is robust to the resulting contamination by design (the paper's
poisoning experiments, Table 3): malicious flows are off the benign
manifold, so the autoencoder oracle refuses to whitelist their region.

:class:`Retrainer` turns the reservoir into install-ready
:class:`~repro.core.deployment.SwitchArtifacts` with the same
compile/quantise path as the offline harness.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.deployment import SwitchArtifacts, compile_switch_artifacts
from repro.core.iguard import IGuard
from repro.datasets.trace import Trace
from repro.features.flow_features import FlowFeatureExtractor
from repro.nn.autoencoder import MagnifierAutoencoder
from repro.nn.ensemble import AutoencoderEnsemble
from repro.utils.rng import SeedLike, as_rng, spawn_seeds


def default_model_factory(seed: SeedLike = None) -> IGuard:
    """A serving-grade iGuard: smaller forest and a two-member ensemble
    with a reduced epoch budget, so a retrain completes within a few
    chunks of serving rather than minutes."""
    rng = as_rng(seed)
    oracle_seed, model_seed = spawn_seeds(rng, 2)
    member_seeds = spawn_seeds(as_rng(oracle_seed), 2)
    oracle = AutoencoderEnsemble(
        autoencoders=[MagnifierAutoencoder(epochs=80, seed=s) for s in member_seeds],
        threshold_margin=2.0,
        seed=oracle_seed,
    )
    return IGuard(
        n_trees=9,
        subsample_size=96,
        k_aug=64,
        tau_split=0.0,
        threshold_margin=2.0,
        distil_margin=1.2,
        oracle=oracle,
        seed=model_seed,
    )


class FlowReservoir:
    """Uniform reservoir (algorithm R) over flows seen on the stream."""

    def __init__(self, capacity: int = 512, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = as_rng(seed)
        self._flows: List[Sequence] = []
        self.seen = 0

    def __len__(self) -> int:
        return len(self._flows)

    def add(self, flow: Sequence) -> None:
        """Offer one flow; kept with probability capacity / seen."""
        self.seen += 1
        if len(self._flows) < self.capacity:
            self._flows.append(flow)
            return
        slot = int(self._rng.integers(self.seen))
        if slot < self.capacity:
            self._flows[slot] = flow

    def add_trace(self, trace: Trace) -> None:
        """Offer every bidirectional flow of a chunk trace."""
        for flow in trace.bidirectional_flows().values():
            self.add(flow)

    def flows(self) -> List[Sequence]:
        return list(self._flows)


class Retrainer:
    """Refit-and-recompile step of the serving control plane.

    Parameters mirror the deployment knobs of
    :class:`~repro.eval.harness.TestbedConfig` so a runtime-retrained
    model is compiled exactly like an offline one.  ``model_factory``
    builds a fresh unfitted model per retrain (anything with ``fit(x)``
    and the ``to_rules`` compile contract); defaults to
    :func:`default_model_factory`.
    """

    def __init__(
        self,
        pkt_count_threshold: int = 8,
        timeout: float = 5.0,
        quantizer_bits: int = 16,
        rule_cells: int = 1024,
        use_pl_model: bool = True,
        reservoir_size: int = 512,
        model_factory: Optional[Callable[[SeedLike], object]] = None,
        seed: SeedLike = None,
    ) -> None:
        self.pkt_count_threshold = pkt_count_threshold
        self.timeout = timeout
        self.quantizer_bits = quantizer_bits
        self.rule_cells = rule_cells
        self.use_pl_model = use_pl_model
        self.model_factory = model_factory or default_model_factory
        self._rng = as_rng(seed)
        reservoir_seed = spawn_seeds(self._rng, 1)[0]
        self.reservoir = FlowReservoir(capacity=reservoir_size, seed=reservoir_seed)
        self.retrains = 0
        self.last_model_ = None

    def __len__(self) -> int:
        return len(self.reservoir)

    def observe(self, chunk_trace: Trace) -> None:
        """Fold one served chunk's flows into the reservoir."""
        self.reservoir.add_trace(chunk_trace)

    def retrain(self) -> SwitchArtifacts:
        """Refit on the reservoir and recompile install-ready artifacts."""
        flows = self.reservoir.flows()
        if not flows:
            raise RuntimeError("retrain() with an empty reservoir")
        extractor = FlowFeatureExtractor(
            feature_set="switch",
            pkt_count_threshold=self.pkt_count_threshold,
            timeout=self.timeout,
        )
        x_train, _ = extractor.extract_flows(flows)
        fit_seed, compile_seed = spawn_seeds(self._rng, 2)
        model = self.model_factory(fit_seed)
        model.fit(np.asarray(x_train, dtype=float))
        self.last_model_ = model
        self.retrains += 1
        return compile_switch_artifacts(
            model,
            x_train,
            train_flows=flows,
            quantizer_bits=self.quantizer_bits,
            rule_cells=self.rule_cells,
            use_pl_model=self.use_pl_model,
            seed=compile_seed,
        )
