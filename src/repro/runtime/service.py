"""The online detection service: serve, watch, retrain, hot-swap.

State machine per serving loop (documented in DESIGN.md §"Serving
runtime"):

    SERVING --(drift signal / cadence due)--> STAGING
    STAGING --(install-time checks pass)----> SWAP  --> SERVING
    STAGING --(validation fails)------------> ROLLBACK --> SERVING

SERVING replays chunks through the live tables; STAGING compiles and
validates a new table generation while the live tables keep serving;
SWAP flips the staged generation in between chunks (flow state, the
blacklist, and verdict registers all survive); ROLLBACK rejects a
generation that fails the install-time checks, keeping the current
tables.  Swap pause — the wall-clock cost of stage+flip, what a Tofino
control plane would spend writing TCAM entries — is measured around the
table flip and reported both in telemetry
(``runtime.swap_pause_s``) and in the serve report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.trace import Trace
from repro.faults.errors import RetrainFaultError, TransientFaultError
from repro.faults.retry import retry_with_backoff
from repro.runtime.control import OpsControlMixin
from repro.runtime.drift import DriftMonitor
from repro.runtime.retrain import Retrainer
from repro.runtime.stream import ChunkStats, PacketSource, StreamDriver
from repro.switch.pipeline import PacketDecision, SwitchPipeline
from repro.telemetry import get_registry, span
from repro.utils.rng import SeedLike


@dataclass
class RuntimeConfig:
    """Knobs of the serving loop.

    chunk_size / mode:
        Streaming granularity and replay engine.
    drift_threshold:
        Drift score that triggers a retrain; 0 disables drift-triggered
        retrains entirely.
    drift_window / baseline_window / min_drift_packets:
        :class:`~repro.runtime.drift.DriftMonitor` shape.
    drift_warmup_chunks:
        Chunks discarded before the drift baseline forms, so a cold
        flow store's maturation transient (pending slots draining into
        decided paths over the first seconds of a realistic-IPD stream)
        is not frozen into the reference distribution.  0 keeps the
        historical immediate-baseline behaviour.
    cadence:
        Retrain every N chunks regardless of drift; 0 disables.
    min_retrain_flows:
        Reservoir size below which retrain requests are deferred (a
        forest fitted on a handful of flows whitelists almost nothing).
    max_swaps:
        Hard cap on table swaps per :meth:`OnlineDetectionService.serve`
        call (None = unlimited); the CI smoke uses 1.
    stage_retries / stage_backoff_s / stage_deadline_s:
        Retry budget for the stage+flip control-plane operation: up to
        ``stage_retries`` re-attempts after a transient install failure,
        exponential backoff starting at ``stage_backoff_s`` seconds,
        aborted once ``stage_deadline_s`` of wall clock would be
        exceeded (None = no deadline).  Deterministic validation
        rejections are never retried — they roll back immediately.
    """

    chunk_size: int = 2048
    mode: str = "batch"
    drift_threshold: float = 0.25
    drift_window: int = 4
    baseline_window: int = 4
    min_drift_packets: int = 64
    drift_warmup_chunks: int = 0
    cadence: int = 0
    min_retrain_flows: int = 24
    max_swaps: Optional[int] = None
    stage_retries: int = 2
    stage_backoff_s: float = 0.02
    stage_deadline_s: Optional[float] = None


@dataclass(frozen=True)
class SwapEvent:
    """One staged table update: why, how long the flip paused serving,
    and whether validation rejected it."""

    chunk_index: int
    reason: str  # "drift" or "cadence"
    duration_s: float
    rolled_back: bool
    #: Table-install attempts made (>1 means transient flakes were retried).
    attempts: int = 1


@dataclass
class ServeReport:
    """Outcome of one :meth:`OnlineDetectionService.serve` call."""

    n_chunks: int = 0
    n_packets: int = 0
    drift_signals: int = 0
    retrains: int = 0
    #: Retrain attempts aborted by an injected/observed retrain fault.
    retrain_failures: int = 0
    #: ``faults.* -> fired`` totals from the run's FaultPlan (empty
    #: when no plan was attached or nothing fired).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    swap_events: List[SwapEvent] = field(default_factory=list)
    chunk_stats: List[ChunkStats] = field(default_factory=list)
    #: Start offset of each chunk in the concatenated decision arrays.
    chunk_offsets: List[int] = field(default_factory=list)
    #: Operator control tickets applied during the run (ops surface).
    control_events: List[Dict] = field(default_factory=list)
    decisions: List[PacketDecision] = field(default_factory=list)
    y_true: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    y_pred: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_swaps(self) -> int:
        return sum(1 for e in self.swap_events if not e.rolled_back)

    @property
    def n_rollbacks(self) -> int:
        return sum(1 for e in self.swap_events if e.rolled_back)

    def packet_offset_of_chunk(self, chunk_index: int) -> int:
        """Concatenated-array offset where *chunk_index* begins."""
        return self.chunk_offsets[chunk_index]


class OnlineDetectionService(OpsControlMixin):
    """Continuous serving loop around one :class:`SwitchPipeline`.

    The pipeline serves every chunk through its live tables; between
    chunks the service consults the drift monitor and the retrain
    cadence, and on a signal runs retrain → stage → hot-swap.  A staged
    generation that fails the install-time checks is rolled back (the
    live tables are never touched) and serving continues.

    ``faults`` attaches a :class:`repro.faults.FaultPlan`: its digest
    channel is installed on the pipeline at serve start, chunk injectors
    fire at chunk boundaries, and the retrain/artifact/install hooks
    wrap the control-plane path.  Transient install failures are retried
    with exponential backoff (``stage_retries``/``stage_backoff_s``);
    exhausted retries degrade to a rollback and serving continues on the
    old generation.
    """

    def __init__(
        self,
        pipeline: SwitchPipeline,
        retrainer: Optional[Retrainer] = None,
        monitor: Optional[DriftMonitor] = None,
        config: Optional[RuntimeConfig] = None,
        seed: SeedLike = None,
        faults=None,
        policy=None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.pipeline = pipeline
        self.faults = faults
        if policy is not None:
            # A policy spec/Policy/PolicyEngine attaches the graduated
            # mitigation engine (repro.mitigation) to the pipeline's
            # controller; an engine already attached (e.g. by a
            # checkpoint restore) is left alone.
            from repro.mitigation import attach_policy

            if getattr(pipeline.controller, "policy", None) is None:
                attach_policy(pipeline, policy)
        self._init_control_plane()
        # ``is not None`` rather than ``or``: Retrainer defines __len__
        # (reservoir size), so a freshly-built one with an empty
        # reservoir is falsy and ``or`` would silently discard it.
        self.retrainer = retrainer if retrainer is not None else Retrainer(
            pkt_count_threshold=pipeline.config.pkt_count_threshold,
            timeout=pipeline.config.timeout,
            use_pl_model=pipeline.pl_table is not None,
            seed=seed,
        )
        drift_on = self.config.drift_threshold > 0
        if monitor is not None:
            self.monitor = monitor
        else:
            self.monitor = (
                DriftMonitor(
                    window=self.config.drift_window,
                    baseline_window=self.config.baseline_window,
                    threshold=self.config.drift_threshold,
                    min_packets=self.config.min_drift_packets,
                    warmup_chunks=self.config.drift_warmup_chunks,
                )
                if drift_on
                else None
            )

    def _swap_allowed(self, report: ServeReport) -> bool:
        cap = self.config.max_swaps
        return cap is None or report.n_swaps < cap

    def _retrain_and_swap(
        self, chunk_index: int, reason: str, report: ServeReport
    ) -> None:
        cfg = self.config
        registry = get_registry()
        try:
            if self.faults is not None:
                self.faults.before_retrain()
            with span("retrain", reason=reason, chunk=chunk_index):
                artifacts = self.retrainer.retrain()
        except RetrainFaultError:
            # The retrain job died; nothing was staged, the live tables
            # keep serving, and the next signal will try again.
            report.retrain_failures += 1
            if registry.enabled:
                registry.counter("degraded.retrain_skipped").inc()
            return
        report.retrains += 1
        if registry.enabled:
            registry.counter("runtime.retrains").inc()
        if self.faults is not None:
            artifacts = self.faults.corrupt_artifacts(artifacts)

        attempts = 0

        def _install() -> None:
            nonlocal attempts
            attempts += 1
            if self.faults is not None:
                self.faults.before_table_install()
            self.pipeline.stage_tables(
                artifacts.fl_rules,
                artifacts.fl_quantizer,
                pl_rules=artifacts.pl_rules,
                pl_quantizer=artifacts.pl_quantizer,
            )
            self.pipeline.hot_swap()

        def _on_retry(attempt: int, err: Exception) -> None:
            if registry.enabled:
                registry.counter("runtime.stage_retries").inc()

        rolled_back = False
        start = time.perf_counter()
        try:
            retry_with_backoff(
                _install,
                retries=cfg.stage_retries,
                base_delay=cfg.stage_backoff_s,
                deadline_s=cfg.stage_deadline_s,
                on_retry=_on_retry,
            )
        except ValueError:
            # Install-time validation rejected the staged generation —
            # deterministic, so never retried.  Drop the candidate; the
            # live tables were never touched and keep serving.
            self.pipeline.reject_staged()
            rolled_back = True
            if registry.enabled:
                registry.counter("switch.table.rollbacks").inc()
        except TransientFaultError:
            # Retries/deadline exhausted on a flaky install.  Degrade:
            # abandon this generation and keep serving the old one.
            self.pipeline.reject_staged()
            rolled_back = True
            if registry.enabled:
                registry.counter("switch.table.rollbacks").inc()
                registry.counter("degraded.swap_aborted").inc()
        duration = time.perf_counter() - start

        report.swap_events.append(
            SwapEvent(
                chunk_index=chunk_index,
                reason=reason,
                duration_s=duration,
                rolled_back=rolled_back,
                attempts=attempts,
            )
        )
        if registry.enabled:
            registry.histogram("runtime.swap_pause_s").observe(duration)
            if rolled_back:
                registry.counter("runtime.rollbacks").inc()
            else:
                registry.counter("runtime.swaps").inc()
                # Mirror the pipeline's own swap counter: swaps happen
                # between replay calls, so the per-replay counter-delta
                # publication never observes them.
                registry.counter("switch.table.swaps").inc()
            registry.event(
                "runtime.swap",
                chunk=chunk_index,
                reason=reason,
                rolled_back=rolled_back,
                duration_s=round(duration, 6),
                n_fl_rules=artifacts.n_fl_rules,
            )
        if not rolled_back and self.monitor is not None:
            # The old reference distribution described the displaced
            # tables; re-form the baseline under the new generation.
            self.monitor.reset()

    # -- operator control (see repro.runtime.control / repro.ops) ------------

    def _apply_control(self, ticket: Dict, chunk_index: int, report) -> str:
        """Route one queued ops verb through the drift loop's own paths."""
        verb = ticket["verb"]
        if verb == "retrain":
            if not self._swap_allowed(report):
                return "skipped:max_swaps"
            if len(self.retrainer) < self.config.min_retrain_flows:
                return "skipped:reservoir_too_small"
            before = len(report.swap_events)
            self._retrain_and_swap(chunk_index, "manual", report)
            if len(report.swap_events) == before:
                return "skipped:retrain_failed"
            return (
                "rolled_back" if report.swap_events[-1].rolled_back else "swapped"
            )
        if verb == "rollback":
            if not self.pipeline.can_rollback:
                return "skipped:no_previous_generation"
            self.pipeline.rollback()
            registry = get_registry()
            if registry.enabled:
                # Mirror the pipeline counter: the flip happens between
                # replay calls, invisible to per-replay delta publication.
                registry.counter("switch.table.rollbacks").inc()
                registry.counter("ops.rollbacks").inc()
            if self.monitor is not None:
                # The baseline described the rolled-forward generation.
                self.monitor.reset()
            return "rolled_back"
        if verb == "drain":
            return "unsupported:not_a_cluster"
        if verb == "unblock":
            engine = getattr(self.pipeline.controller, "policy", None)
            if engine is None:
                return "skipped:no_policy"
            from repro.mitigation import parse_flow_key

            try:
                five_tuple = parse_flow_key(ticket.get("flow") or "")
            except ValueError:
                return "rejected:bad_flow_key"
            return engine.unblock(five_tuple)
        return f"unsupported:{verb}"

    def mitigation_status(self) -> Optional[Dict]:
        """Live :meth:`~repro.mitigation.PolicyEngine.status` snapshot,
        or ``None`` when no policy engine is attached."""
        engine = getattr(self.pipeline.controller, "policy", None)
        return None if engine is None else engine.status()

    def _ops_extra(self) -> Dict:
        engine = getattr(self.pipeline.controller, "policy", None)
        return {
            "kind": "service",
            "generation": self.pipeline.table_swaps,
            "can_rollback": self.pipeline.can_rollback,
            "reservoir_flows": len(self.retrainer),
            "drift_score": (
                self.monitor.last_score if self.monitor is not None else None
            ),
            "mitigation": (
                None
                if engine is None
                else {
                    "policy": engine.policy.name,
                    "active_blocks": engine.active_blocks,
                    "active_rate_limits": engine.active_rate_limits,
                    "guard_tripped": engine.guard_tripped,
                }
            ),
        }

    def serve(
        self,
        trace: PacketSource,
        checkpoint=None,
        resume_report: Optional[ServeReport] = None,
    ) -> ServeReport:
        """Stream *trace* through the pipeline with the full control loop.

        *trace* may be a materialised :class:`Trace` or any streaming
        packet source (e.g. a :class:`repro.scenarios.ScenarioStream`) —
        the streaming path holds only one chunk in memory at a time, so
        arbitrarily long scenarios serve in bounded RSS, and chunk
        boundaries match the materialised path packet-for-packet.

        ``checkpoint`` (a :class:`repro.runtime.checkpoint.CheckpointManager`)
        journals the full service state at chunk boundaries; pass the
        restored report as ``resume_report`` to continue a killed run —
        *trace* must be the same full trace (or a fresh stream of the
        same scenario + seed), and serving picks up at the first chunk
        the checkpoint had not yet covered.
        """
        cfg = self.config
        report = resume_report if resume_report is not None else ServeReport()
        # Skip the packets a checkpointed run already served; chunk
        # boundaries are packet-count-aligned so this resumes exactly at
        # the next chunk edge.
        skip_packets = report.n_packets
        registry = get_registry()
        driver = StreamDriver(
            self.pipeline,
            chunk_size=cfg.chunk_size,
            mode=cfg.mode,
            faults=self.faults,
            start_index=report.n_chunks,
        )
        if self.faults is not None:
            self.faults.install(self.pipeline)
        self._serve_begin(report)
        try:
            with span("serve", chunk_size=cfg.chunk_size, mode=cfg.mode):
                chunk_start = time.perf_counter()
                for chunk in driver.run(trace, skip_packets=skip_packets):
                    report.chunk_offsets.append(report.n_packets)
                    report.n_chunks += 1
                    report.n_packets += chunk.stats.n_packets
                    report.chunk_stats.append(chunk.stats)
                    report.decisions.extend(chunk.replay.decisions)
                    report.y_true = np.concatenate([report.y_true, chunk.replay.y_true])
                    report.y_pred = np.concatenate([report.y_pred, chunk.replay.y_pred])
                    self.retrainer.observe(chunk.trace)

                    drifted = False
                    if self.monitor is not None:
                        drifted = self.monitor.observe(chunk.stats)
                        if drifted:
                            report.drift_signals += 1
                    if registry.enabled:
                        registry.counter("runtime.chunks").inc()
                        registry.counter("runtime.packets").inc(chunk.stats.n_packets)
                        if self.monitor is not None:
                            registry.gauge("runtime.drift.score").set(
                                self.monitor.last_score
                            )
                            registry.gauge("runtime.drift.malicious_rate").set(
                                chunk.stats.malicious_rate
                            )
                            if drifted:
                                registry.counter("runtime.drift.signals").inc()

                    cadence_due = (
                        cfg.cadence > 0 and (chunk.index + 1) % cfg.cadence == 0
                    )
                    if (
                        (drifted or cadence_due)
                        and self._swap_allowed(report)
                        and len(self.retrainer) >= cfg.min_retrain_flows
                    ):
                        self._retrain_and_swap(
                            chunk.index, "drift" if drifted else "cadence", report
                        )
                    self._apply_pending_controls(chunk.index, report)
                    self._note_chunk(
                        chunk.index,
                        chunk.stats.n_packets,
                        time.perf_counter() - chunk_start,
                    )
                    if checkpoint is not None:
                        checkpoint.maybe_save(self, report)
                    chunk_start = time.perf_counter()
        finally:
            self._serve_end()
        if self.faults is not None:
            self.faults.finalize()
            report.fault_counts = self.faults.counts()
        if checkpoint is not None:
            checkpoint.save(self, report, complete=True)
        return report
