"""Online serving runtime: streaming ingestion, drift monitoring, and
staged whitelist hot-swap.

The evaluation harness exercises one train → compile → quantise → replay
pass; a deployed iGuard is a *service* — the data plane keeps classifying
at line rate while the control plane watches the traffic distribution,
refits the AE-guided forest on recent traffic, and pushes recompiled
whitelist tables into the running pipeline.  This package is that
control loop over the simulator:

* :class:`~repro.runtime.stream.StreamDriver` — feeds a trace through
  the batch replay engine in fixed-size chunks, carrying flow/blacklist
  state across chunks (chunked replay with no swaps is bit-identical to
  one replay call; the differential suite asserts it).
* :class:`~repro.runtime.drift.DriftMonitor` — sliding-window
  benign-rate and path-distribution statistics; raises a retrain signal
  on distribution shift.
* :class:`~repro.runtime.retrain.Retrainer` — reservoir-samples recent
  flows, refits the model, and recompiles install-ready artifacts via
  :func:`repro.core.deployment.compile_switch_artifacts`.
* :class:`~repro.runtime.service.OnlineDetectionService` — ties them
  together around :meth:`SwitchPipeline.stage_tables` /
  :meth:`~repro.switch.pipeline.SwitchPipeline.hot_swap`, with the state
  machine SERVING → STAGING → SWAP (→ ROLLBACK on validation failure).

* :class:`~repro.runtime.checkpoint.CheckpointManager` /
  :func:`~repro.runtime.checkpoint.restore_service` — journaled,
  atomically-replaced snapshots of the whole service; a killed serve
  loop resumes bit-identically from the last chunk boundary
  (``repro resume``).

Surfaced on the command line as ``repro serve`` / ``repro resume``.
"""

from repro.runtime.checkpoint import (
    CheckpointManager,
    report_from_dict,
    restore_service,
    service_to_dict,
)
from repro.runtime.drift import DriftMonitor
from repro.runtime.retrain import FlowReservoir, Retrainer, default_model_factory
from repro.runtime.service import (
    OnlineDetectionService,
    RuntimeConfig,
    ServeReport,
    SwapEvent,
)
from repro.runtime.stream import (
    ChunkResult,
    ChunkStats,
    PacketSource,
    StreamDriver,
    as_chunk_iter,
    iter_chunks,
)

__all__ = [
    "CheckpointManager",
    "ChunkResult",
    "ChunkStats",
    "DriftMonitor",
    "FlowReservoir",
    "OnlineDetectionService",
    "PacketSource",
    "Retrainer",
    "RuntimeConfig",
    "ServeReport",
    "StreamDriver",
    "SwapEvent",
    "as_chunk_iter",
    "default_model_factory",
    "iter_chunks",
    "report_from_dict",
    "restore_service",
    "service_to_dict",
]
