"""Streaming ingestion: replay a trace chunk-by-chunk through one
pipeline.

The batch replay engine precomputes per call and mutates the pipeline's
own stateful objects (flow store, blacklist, counters), so driving it
with consecutive slices of a trace is *exactly* the same computation as
one call over the whole trace — flow state, timeouts (which are
packet-timestamp-driven), and verdict registers all carry across chunk
boundaries for free.  That identity is what makes chunking safe as a
serving loop: the control plane gets a natural between-chunks point to
observe statistics and hot-swap tables, at zero cost to decision
fidelity (asserted by the differential suite).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Union

import numpy as np

from repro.datasets.packet import Packet
from repro.datasets.trace import Trace
from repro.switch.pipeline import SwitchPipeline
from repro.switch.runner import ReplayResult, replay_trace

#: Anything the serve loop can ingest: a materialised trace, an object
#: exposing ``iter_chunks(chunk_size)`` (e.g. a scenario stream), or a
#: plain iterable of packets in timestamp order.
PacketSource = Union[Trace, Iterable[Packet]]


def chunk_ranges(n_packets: int, chunk_size: int) -> Iterator[tuple]:
    """Consecutive ``(start, stop)`` row ranges of fixed-size chunks.

    The index-space twin of :func:`iter_chunks`, used by the columnar
    serve path where chunks are array slices rather than packet lists.
    The last range holds the remainder; ``n_packets == 0`` yields
    nothing.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, n_packets, chunk_size):
        yield start, min(start + chunk_size, n_packets)


def iter_chunks(trace: Trace, chunk_size: int) -> Iterator[Trace]:
    """Split a trace into consecutive fixed-size packet chunks.

    The last chunk holds the remainder; an empty trace yields nothing.
    """
    packets = trace.packets
    for start, stop in chunk_ranges(len(packets), chunk_size):
        yield Trace(packets[start:stop])


def _source_packets(source: PacketSource, chunk_size: int) -> Iterator[Packet]:
    """Flatten a streaming source to its packet sequence.

    Sources exposing ``iter_chunks`` (scenario streams) are driven at
    the consumer's chunk size so their per-chunk telemetry fires at the
    serve cadence; anything else is treated as a packet iterable.
    """
    if hasattr(source, "iter_chunks"):
        for chunk in source.iter_chunks(chunk_size):
            yield from chunk.packets
    else:
        yield from source


def as_chunk_iter(
    source: PacketSource, chunk_size: int, skip_packets: int = 0
) -> Iterator[Trace]:
    """Normalise any packet source into fixed-size :class:`Trace` chunks.

    This is the single ingestion point of the serve path: a materialised
    :class:`Trace` is sliced (zero-copy of packet objects), and a
    streaming source — a scenario stream or any timestamp-ordered packet
    iterable — is buffered into *exact* ``chunk_size`` chunks.  Chunk
    boundaries therefore land at identical packet offsets on both paths,
    which is what makes streaming-vs-materialised replays bit-identical.

    ``skip_packets`` drops that many leading packets first (checkpoint
    resume: boundaries are packet-count-aligned, so skipping a chunk
    multiple re-aligns the stream with the uninterrupted run).  Only the
    skipped prefix of a streaming source is regenerated and discarded —
    memory stays O(chunk).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if skip_packets < 0:
        raise ValueError(f"skip_packets must be >= 0, got {skip_packets}")
    if isinstance(source, Trace):
        packets = source.packets[skip_packets:] if skip_packets else source.packets
        for start, stop in chunk_ranges(len(packets), chunk_size):
            yield Trace(packets[start:stop])
        return
    packet_iter = _source_packets(source, chunk_size)
    if skip_packets:
        packet_iter = itertools.islice(packet_iter, skip_packets, None)
    buf: List[Packet] = []
    for pkt in packet_iter:
        buf.append(pkt)
        if len(buf) == chunk_size:
            yield Trace(buf)
            buf = []
    if buf:
        yield Trace(buf)


@dataclass(frozen=True)
class ChunkStats:
    """Distribution summary of one chunk, the drift monitor's input.

    ``malicious_rate`` is the *predicted* malicious fraction — the only
    label the deployed system can observe about itself — and
    ``path_fractions`` the per-chunk execution-path mix (from the
    pipeline's own ``switch.path.*`` counter deltas).
    """

    n_packets: int
    malicious_rate: float
    path_fractions: Dict[str, float] = field(default_factory=dict)


@dataclass
class ChunkResult:
    """One served chunk: its replay outcome plus per-chunk counter deltas."""

    index: int
    trace: Trace
    replay: ReplayResult
    counters: Dict[str, int]
    stats: ChunkStats


def _path_fractions(counter_deltas: Dict[str, int], n_packets: int) -> Dict[str, float]:
    if n_packets <= 0:
        return {}
    return {
        name.split("switch.path.", 1)[1]: count / n_packets
        for name, count in counter_deltas.items()
        if name.startswith("switch.path.") and count > 0
    }


class StreamDriver:
    """Feed a trace through *pipeline* as a stream of chunk replays.

    Each :meth:`run` iteration replays one chunk (batch engine by
    default) and yields a :class:`ChunkResult` carrying the decisions
    and the delta of every pipeline counter over that chunk.  The driver
    itself publishes nothing to the telemetry registry — the per-replay
    publication inside :func:`~repro.switch.runner.replay_trace` already
    telescopes to the one-shot totals, and keeping the driver pure is
    what lets the differential test demand exact counter equality.

    Between iterations the pipeline is untouched, which is the
    designated window for :meth:`SwitchPipeline.hot_swap`.

    ``faults`` (a :class:`repro.faults.FaultPlan`) hooks the chunk
    boundary: after each chunk's counter deltas are taken, the plan's
    chunk injectors and digest-channel clock edge run, so injected state
    damage lands in the inter-chunk window exactly where a hot swap
    would.  ``start_index`` offsets chunk indices for checkpoint resume
    — a resumed driver numbers its chunks as the uninterrupted run did,
    keeping every index-keyed schedule (cadence, ``at=`` faults)
    aligned.
    """

    def __init__(
        self,
        pipeline: SwitchPipeline,
        chunk_size: int = 2048,
        mode: str = "batch",
        faults=None,
        start_index: int = 0,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.pipeline = pipeline
        self.chunk_size = chunk_size
        self.mode = mode
        self.faults = faults
        self.start_index = start_index
        self.chunks_processed = 0
        self.packets_processed = 0

    def run(self, source: PacketSource, skip_packets: int = 0) -> Iterator[ChunkResult]:
        """Yield one :class:`ChunkResult` per chunk of *source*.

        *source* is anything :func:`as_chunk_iter` accepts — a
        materialised :class:`Trace` or a streaming packet source (e.g. a
        :class:`repro.scenarios.ScenarioStream`); memory stays bounded
        by the chunk size on the streaming path.  ``skip_packets``
        resumes mid-stream (see :func:`as_chunk_iter`).
        """
        for offset, chunk in enumerate(
            as_chunk_iter(source, self.chunk_size, skip_packets=skip_packets)
        ):
            index = self.start_index + offset
            before = self.pipeline.telemetry_counters()
            replay = replay_trace(chunk, self.pipeline, mode=self.mode)
            after = self.pipeline.telemetry_counters()
            deltas = {k: after[k] - before.get(k, 0) for k in after}
            if self.faults is not None:
                self.faults.on_chunk_end(self.pipeline, index)
            # Mitigation TTL tick: the chunk boundary is the control
            # plane's window, so idle-timeout expiry (and re-admission)
            # happens here, clocked by stream time — the last packet's
            # timestamp — never wall time.
            policy = getattr(self.pipeline.controller, "policy", None)
            if policy is not None:
                policy.tick(chunk.packets[-1].timestamp)
            n = len(chunk)
            stats = ChunkStats(
                n_packets=n,
                malicious_rate=float(np.mean(replay.y_pred)) if n else 0.0,
                path_fractions=_path_fractions(deltas, n),
            )
            self.chunks_processed += 1
            self.packets_processed += n
            yield ChunkResult(
                index=index, trace=chunk, replay=replay, counters=deltas, stats=stats
            )
