"""Operator control plane shared by the single service and the cluster.

The live ops surface (:mod:`repro.ops`) runs on background HTTP threads
while ``serve()`` owns the pipeline on the serving thread, so control
verbs can never act on the service directly — a mid-chunk table flip
would break the "swap between replay calls" contract every generation
invariant rests on.  Instead the mixin gives both services a thread-safe
**command queue**: :meth:`request_control` enqueues a ticket from any
thread, and the serving loop drains the queue at chunk boundaries —
exactly where the drift loop itself acts — routing each verb through the
same retrain/rollback machinery a drift signal would use.  Applied
tickets are appended to the serve report (``control_events``) and
recorded in the telemetry event log (``ops.control``), so a run's
control history survives into ``telemetry.json`` and checkpoints.

A service that is not serving still accepts tickets; they apply at the
first chunk boundary of the next ``serve()`` call.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.telemetry import get_registry

#: Verbs the ops surface may enqueue.
CONTROL_VERBS = ("retrain", "rollback", "drain", "unblock")


class OpsControlMixin:
    """Queue-and-apply control plane plus the live status snapshot.

    Subclasses call :meth:`_init_control_plane` in ``__init__``,
    :meth:`_serve_begin` / :meth:`_serve_end` around the serve loop,
    :meth:`_note_chunk` + :meth:`_apply_pending_controls` at each chunk
    boundary, and implement ``_apply_control(ticket, chunk_index,
    report) -> str`` returning the outcome label.
    """

    def _init_control_plane(self) -> None:
        self._control_lock = threading.Lock()
        self._pending_controls: List[Dict] = []
        self._control_seq = 0
        self._live_report = None
        self._serving = False
        self._serve_started_at: Optional[float] = None
        self._last_chunk: Dict = {}

    # -- enqueue (any thread) ------------------------------------------------

    def request_control(
        self,
        verb: str,
        shard: Optional[int] = None,
        source: str = "api",
        flow: Optional[str] = None,
    ) -> Dict:
        """Queue *verb* for the next chunk boundary; returns the ticket.

        The returned dict is a copy — the queued ticket itself is updated
        in place when applied (status/outcome/chunk), and surfaces in the
        report's ``control_events``.  ``flow`` carries the operand of
        flow-addressed verbs (``unblock``) as a
        :func:`repro.mitigation.flow_key` string.
        """
        if verb not in CONTROL_VERBS:
            raise ValueError(f"unknown control verb {verb!r}; expected {CONTROL_VERBS}")
        with self._control_lock:
            ticket = {
                "id": self._control_seq,
                "verb": verb,
                "shard": shard,
                "source": source,
                "flow": flow,
                "status": "queued",
            }
            self._control_seq += 1
            self._pending_controls.append(ticket)
        return dict(ticket)

    def pending_controls(self) -> List[Dict]:
        with self._control_lock:
            return [dict(t) for t in self._pending_controls]

    # -- apply (serving thread, chunk boundaries) ----------------------------

    def _apply_pending_controls(self, chunk_index: int, report) -> None:
        with self._control_lock:
            taken, self._pending_controls = self._pending_controls, []
        registry = get_registry()
        for ticket in taken:
            outcome = self._apply_control(ticket, chunk_index, report)
            ticket.update(status="applied", outcome=outcome, chunk=chunk_index)
            report.control_events.append(dict(ticket))
            if registry.enabled:
                registry.event(
                    "ops.control",
                    verb=ticket["verb"],
                    shard=ticket["shard"],
                    flow=ticket.get("flow"),
                    outcome=outcome,
                    chunk=chunk_index,
                    source=ticket["source"],
                )

    def _apply_control(self, ticket: Dict, chunk_index: int, report) -> str:
        raise NotImplementedError

    # -- live status ---------------------------------------------------------

    def _serve_begin(self, report) -> None:
        self._live_report = report
        self._serving = True
        self._serve_started_at = time.time()

    def _serve_end(self) -> None:
        self._serving = False

    def _note_chunk(self, index: int, n_packets: int, duration_s: float) -> None:
        self._last_chunk = {
            "index": index,
            "n_packets": n_packets,
            "duration_s": duration_s,
        }

    def ops_status(self) -> Dict:
        """Point-in-time service state for the ops surface.

        Read from HTTP threads while the serving thread appends — every
        field is either an immutable scalar or copied here, and list
        reads under the GIL see a prefix of the live list, so the
        snapshot is safe (if momentarily behind).  Touches no registry
        instruments and no executor: a status poll can never perturb the
        run it is watching.
        """
        report = self._live_report
        status = {
            "serving": self._serving,
            "uptime_s": (
                time.time() - self._serve_started_at
                if self._serve_started_at is not None
                else 0.0
            ),
            "n_chunks": report.n_chunks if report is not None else 0,
            "n_packets": report.n_packets if report is not None else 0,
            "drift_signals": report.drift_signals if report is not None else 0,
            "retrains": report.retrains if report is not None else 0,
            "swaps": report.n_swaps if report is not None else 0,
            "rollbacks": report.n_rollbacks if report is not None else 0,
            "last_chunk": dict(self._last_chunk),
            "swap_events": (
                [self._swap_event_dict(e) for e in list(report.swap_events)]
                if report is not None
                else []
            ),
            "control_events": (
                [dict(t) for t in list(report.control_events)]
                if report is not None
                else []
            ),
            "pending_controls": self.pending_controls(),
        }
        status.update(self._ops_extra())
        return status

    @staticmethod
    def _swap_event_dict(event) -> Dict:
        from dataclasses import asdict

        return asdict(event)

    def _ops_extra(self) -> Dict:
        """Subclass hook: service-kind-specific status fields."""
        return {}
