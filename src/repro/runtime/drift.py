"""Drift detection over the serving stream.

The deployed system cannot see ground truth, so drift is read from what
the data plane *does* observe about itself: the predicted-malicious rate
and the execution-path mix (``switch.path.*`` counter deltas).  Both
shift hard when the benign device mix changes — traffic from unseen
device types falls outside the whitelist boxes, so the malicious rate
inflates and flow-path proportions (brown/blue/purple) move — which is
exactly the situation that calls for a retrain.

The monitor is a two-window comparator: the first ``baseline_window``
chunks after (re)start form the reference distribution, and a sliding
window of the most recent chunks is compared against it.  The drift
score is the larger of the absolute malicious-rate shift and the total
variation distance between path mixes; a score above ``threshold``
raises the retrain signal.  After a hot-swap the service resets the
monitor so the baseline re-forms under the new tables.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.runtime.stream import ChunkStats


def _mean_rate(window: Deque[ChunkStats]) -> float:
    total = sum(s.n_packets for s in window)
    if total == 0:
        return 0.0
    return sum(s.malicious_rate * s.n_packets for s in window) / total


def _mean_paths(window: Deque[ChunkStats]) -> Dict[str, float]:
    total = sum(s.n_packets for s in window)
    if total == 0:
        return {}
    mix: Dict[str, float] = {}
    for s in window:
        for path, frac in s.path_fractions.items():
            mix[path] = mix.get(path, 0.0) + frac * s.n_packets
    return {path: v / total for path, v in mix.items()}


def total_variation(p: Dict[str, float], q: Dict[str, float]) -> float:
    """TV distance ½·Σ|p−q| over the union of path keys."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


class DriftMonitor:
    """Sliding-window drift score over per-chunk serving statistics.

    Parameters
    ----------
    window:
        Recent chunks compared against the baseline.
    baseline_window:
        Chunks (after construction or :meth:`reset`) that form the
        reference distribution.
    threshold:
        Drift score above which :meth:`observe` returns True.
    min_packets:
        Chunks smaller than this are folded into the statistics but
        never trigger on their own incomplete window.
    warmup_chunks:
        Observations discarded before the baseline starts forming.  A
        cold flow store matures for as long as flows take to reach the
        packet-count decision threshold — on realistic inter-packet
        gaps that is tens of seconds during which the path mix shifts
        monotonically (pending slots drain into decided ones).  A
        baseline formed during that transient makes every mature chunk
        afterwards score as drift.  Warm-up is a cold-start property of
        the *store*, not the tables, so :meth:`reset` after a hot-swap
        does not re-apply it.
    """

    def __init__(
        self,
        window: int = 4,
        baseline_window: int = 4,
        threshold: float = 0.25,
        min_packets: int = 64,
        warmup_chunks: int = 0,
    ) -> None:
        if window < 1 or baseline_window < 1:
            raise ValueError("window and baseline_window must be >= 1")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if warmup_chunks < 0:
            raise ValueError(f"warmup_chunks must be >= 0, got {warmup_chunks}")
        self.window = window
        self.baseline_window = baseline_window
        self.threshold = threshold
        self.min_packets = min_packets
        self.warmup_chunks = warmup_chunks
        self._seen = 0
        self._baseline: Deque[ChunkStats] = deque()
        self._recent: Deque[ChunkStats] = deque(maxlen=window)
        self.last_score: float = 0.0
        self.last_rate: float = 0.0
        self.signals = 0

    @property
    def has_baseline(self) -> bool:
        return len(self._baseline) >= self.baseline_window

    def reset(self) -> None:
        """Forget everything; the baseline re-forms from the next chunks.

        Called by the service after a hot-swap — the old reference
        distribution describes the displaced tables' behaviour.
        """
        self._baseline.clear()
        self._recent.clear()
        self.last_score = 0.0

    def observe(self, stats: ChunkStats) -> bool:
        """Fold one chunk in; True when the drift score crosses threshold."""
        self.last_rate = stats.malicious_rate
        self._seen += 1
        if self._seen <= self.warmup_chunks:
            self.last_score = 0.0
            return False
        if not self.has_baseline:
            self._baseline.append(stats)
            self.last_score = 0.0
            return False
        self._recent.append(stats)
        if len(self._recent) < self.window:
            self.last_score = 0.0
            return False
        if sum(s.n_packets for s in self._recent) < self.min_packets:
            self.last_score = 0.0
            return False
        rate_shift = abs(_mean_rate(self._recent) - _mean_rate(self._baseline))
        path_shift = total_variation(
            _mean_paths(self._recent), _mean_paths(self._baseline)
        )
        self.last_score = max(rate_shift, path_shift)
        if self.last_score > self.threshold:
            self.signals += 1
            return True
        return False
