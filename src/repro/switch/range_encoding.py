"""Range → TCAM prefix expansion.

TCAMs match ternary (value, mask) entries, not arbitrary integer ranges,
so each per-feature range of a whitelist rule must be expanded into
aligned power-of-two blocks.  The canonical greedy expansion emits at
most 2w − 2 prefixes for a w-bit range; a d-feature rule costs the
*product* of its per-feature expansion counts in TCAM entries.  This is
the unit in which :mod:`repro.switch.resources` accounts TCAM usage —
and why the paper's τ_split (fewer, coarser leaves → fewer, wider
ranges) shows up directly as lower TCAM occupancy in Table 1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def range_to_prefixes(lo: int, hi: int, bits: int) -> List[Tuple[int, int]]:
    """Expand the inclusive integer range [lo, hi] into ternary prefixes.

    Returns (value, mask) pairs where *mask* has 1s in the fixed bit
    positions; an entry matches x iff ``x & mask == value``.  The union
    of entries covers exactly [lo, hi] with no overlap.
    """
    if bits < 1 or bits > 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    top = (1 << bits) - 1
    if not 0 <= lo <= hi <= top:
        raise ValueError(f"need 0 <= lo <= hi <= {top}, got [{lo}, {hi}]")
    prefixes: List[Tuple[int, int]] = []
    cur = lo
    while cur <= hi:
        # Largest aligned block starting at cur that stays within [cur, hi].
        size = 1
        while (
            cur % (size * 2) == 0
            and cur + size * 2 - 1 <= hi
            and size * 2 <= (1 << bits)
        ):
            size *= 2
        span_bits = size.bit_length() - 1
        mask = (top >> span_bits) << span_bits & top
        prefixes.append((cur, mask))
        cur += size
    return prefixes


def prefix_count(lo: int, hi: int, bits: int) -> int:
    """Number of prefixes the range expands to (without materialising)."""
    return len(range_to_prefixes(lo, hi, bits))


def rule_tcam_entries(
    lows: Sequence[int], highs: Sequence[int], bits: int, mode: str = "per_field"
) -> int:
    """TCAM entries consumed by one multi-field range rule.

    ``"per_field"`` (default) models the HorusEye/IIsy-style encoding the
    paper's deployments use: each feature gets its own range-match table
    whose hits set a per-rule bitmap, so a rule costs the *sum* of its
    per-field prefix expansions.  ``"cross_product"`` is the classic
    single-table expansion (the product), which blows up beyond a couple
    of range fields and is provided for analysis only.  Full-domain
    fields ([0, 2^bits − 1]) cost a single wildcard entry either way.
    """
    if len(lows) != len(highs):
        raise ValueError("lows and highs must have the same length")
    counts = [prefix_count(int(lo), int(hi), bits) for lo, hi in zip(lows, highs)]
    if mode == "per_field":
        return sum(counts)
    if mode == "cross_product":
        total = 1
        for c in counts:
            total *= c
        return total
    raise ValueError(f"mode must be 'per_field' or 'cross_product', got {mode!r}")


def ruleset_tcam_entries(q_ruleset, bits: int = None, mode: str = "per_field") -> int:
    """Total TCAM entries for a :class:`~repro.core.rules.QuantizedRuleSet`."""
    b = q_ruleset.bits if bits is None else bits
    return sum(rule_tcam_entries(r.lows, r.highs, b, mode=mode) for r in q_ruleset)
