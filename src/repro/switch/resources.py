"""Switch resource accounting model (Table 1).

A parametric model of a Tofino-1-class pipeline, calibrated so that the
paper's deployment (t iTrees compiled to whitelist rules, double-hashed
flow state, 12-stage layout) lands near Table 1's reported fractions:

============  ==========================  ============================
resource      capacity model              consumed by
============  ==========================  ============================
TCAM          12 stages × 24 blocks         whitelist rules after
              × 512 entries                 range→prefix expansion
SRAM          12 stages × 80 blocks         flow-state registers,
              × 16 KB                       blacklist, rule actions
sALUs         12 stages × 4                 stateful register updates
VLIW slots    12 stages × 32                per-path action sets
stages        12                            fixed pipeline layout
============  ==========================  ============================

Absolute capacities are order-of-magnitude public figures for this ASIC
class; the *comparison* between iGuard and the baseline (same pipeline,
different rule sets) is what Table 1 reports and what this model
preserves exactly: both consume identical SRAM/sALU/VLIW/stages and
differ in TCAM through their rule counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.switch.pipeline import SwitchPipeline

TCAM_CAPACITY_ENTRIES = 12 * 24 * 512  # 147,456 ternary entries
SRAM_CAPACITY_BYTES = 12 * 80 * 16 * 1024  # ~15.7 MB
SALU_CAPACITY = 12 * 4
VLIW_CAPACITY = 12 * 32
PIPELINE_STAGES = 12

#: Stateful register arrays updated per packet (×2 hash tables):
#: packet count, last-seen, 8 feature accumulators, flow label, flow ID.
_SALU_REGISTERS_PER_TABLE = 9
#: One-off stateful resources: digest sequencing, mirror session state.
_SALU_FIXED = 1

#: VLIW action-instruction estimate: 6 paths × ~6 primitive actions each
#: plus header rewrite/mirror/digest actions.
_VLIW_INSTRUCTIONS = 40


@dataclass(frozen=True)
class ResourceReport:
    """Resource fractions in the style of Table 1."""

    tcam_pct: float
    sram_pct: float
    salu_pct: float
    vliw_pct: float
    stages: int
    tcam_entries: int
    sram_bytes: int

    def row(self, name: str) -> str:
        """Fixed-width table row matching the paper's layout."""
        return (
            f"{name:<12s} {self.tcam_pct:6.2f}% {self.sram_pct:7.2f}% "
            f"{self.salu_pct:7.2f}% {self.vliw_pct:6.2f}% {self.stages:6d}"
        )


def resource_report(pipeline: SwitchPipeline) -> ResourceReport:
    """Account one deployed pipeline's resource consumption."""
    tcam_entries = pipeline.fl_table.tcam_entries()
    if pipeline.pl_table is not None:
        tcam_entries += pipeline.pl_table.tcam_entries()

    sram = (
        pipeline.store.sram_bytes()
        + pipeline.blacklist.sram_bytes()
        # Action/metadata SRAM for the whitelist tables (per logical rule).
        + 16 * (len(pipeline.fl_table) + (len(pipeline.pl_table) if pipeline.pl_table else 0))
    )

    salus = 2 * _SALU_REGISTERS_PER_TABLE + _SALU_FIXED

    return ResourceReport(
        tcam_pct=100.0 * tcam_entries / TCAM_CAPACITY_ENTRIES,
        sram_pct=100.0 * sram / SRAM_CAPACITY_BYTES,
        salu_pct=100.0 * salus / SALU_CAPACITY,
        vliw_pct=100.0 * _VLIW_INSTRUCTIONS / VLIW_CAPACITY,
        stages=PIPELINE_STAGES,
        tcam_entries=tcam_entries,
        sram_bytes=sram,
    )


def memory_fraction(report: ResourceReport) -> float:
    """ρ of §4.2.1 — the memory-footprint term of the testbed reward,
    taken as the mean of the TCAM and SRAM fractions."""
    return (report.tcam_pct + report.sram_pct) / 200.0
