"""Multi-checkpoint classification — the paper's fn 9 future-work design.

A single packet-count threshold n is gameable: "some malicious flow
samples may manifest after the packet count threshold n ... one solution
could be using 2-3 threshold points instead of a single value.  We would
prefer to block the flow as malicious if it is judged malicious on at
least any one of the points."

:class:`MultiCheckpointPipeline` implements exactly that: the flow's
streaming features are matched against a checkpoint-specific whitelist at
each n_i ∈ checkpoints.  A malicious verdict at any checkpoint is final
(blacklist + digest); a benign verdict is provisional until the last
checkpoint, after which the flow-label register is set benign.  Each
checkpoint needs rules trained at its own truncation horizon, built by
:func:`build_checkpoint_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.iguard import IGuard
from repro.core.rules import QuantizedRuleSet, RuleSet
from repro.datasets.packet import Packet
from repro.features.flow_features import FlowFeatureExtractor
from repro.features.scaling import IntegerQuantizer
from repro.switch.pipeline import (
    PATH_BLUE,
    PacketDecision,
    PipelineConfig,
    SwitchPipeline,
)
from repro.switch.storage import LABEL_BENIGN, LABEL_MALICIOUS, FlowState
from repro.utils.rng import SeedLike, as_rng, spawn_seeds


@dataclass
class Checkpoint:
    """One classification point: rules + quantiser at horizon n."""

    n: int
    rules: QuantizedRuleSet
    quantizer: IntegerQuantizer


class MultiCheckpointPipeline(SwitchPipeline):
    """Pipeline classifying at several packet-count horizons.

    The base class's single FL table plays the role of the *last*
    checkpoint; earlier checkpoints are provisional — only their
    *malicious* verdicts act (fn 9's any-point blocking).
    """

    def __init__(
        self,
        checkpoints: Sequence[Checkpoint],
        pl_rules=None,
        pl_quantizer=None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        if not checkpoints:
            raise ValueError("need at least one checkpoint")
        ordered = sorted(checkpoints, key=lambda c: c.n)
        if len({c.n for c in ordered}) != len(ordered):
            raise ValueError("checkpoint horizons must be distinct")
        last = ordered[-1]
        config = config or PipelineConfig()
        config.pkt_count_threshold = last.n
        super().__init__(
            fl_rules=last.rules,
            fl_quantizer=last.quantizer,
            pl_rules=pl_rules,
            pl_quantizer=pl_quantizer,
            config=config,
        )
        self.checkpoints = ordered
        self.checkpoint_flags = [0] * len(ordered)

    def process(self, pkt: Packet) -> PacketDecision:
        """Base pipeline plus provisional checks at the early horizons.

        The early checkpoints run just before the base class's walk so a
        malicious hit at n_i finalises the flow label and lets the base
        logic's purple/red paths take over for subsequent packets.
        """
        state = self.store.lookup(pkt.five_tuple)
        if (
            state is not None
            and not state.is_decided()
            and state.pkt_count > 0
        ):
            next_count = state.pkt_count + 1
            for i, checkpoint in enumerate(self.checkpoints[:-1]):
                if next_count == checkpoint.n:
                    # Provisional check on the state including this packet.
                    features = self._peek_features(state, pkt)
                    q = checkpoint.quantizer.quantize(features.reshape(1, -1))[0]
                    label, _idx = checkpoint.rules.match_one(q)
                    if label == LABEL_MALICIOUS:
                        state.stats.update(pkt)
                        state.label = LABEL_MALICIOUS
                        self.checkpoint_flags[i] += 1
                        self.path_counts[PATH_BLUE] += 1
                        digest = self._emit_digest(pkt, LABEL_MALICIOUS)
                        self._mirror_loopback()
                        return PacketDecision(
                            packet=pkt,
                            path=PATH_BLUE,
                            action=self._action(LABEL_MALICIOUS),
                            predicted_malicious=1,
                            digest=digest,
                            mirrored=True,
                        )
                    break
        decision = super().process(pkt)
        if decision.path == PATH_BLUE and decision.digest is not None:
            if decision.predicted_malicious:
                self.checkpoint_flags[-1] += 1
        return decision

    @staticmethod
    def _peek_features(state: FlowState, pkt: Packet) -> np.ndarray:
        """Feature vector as if *pkt* were folded in, without mutating the
        live registers (the ASIC computes this in the same stage as the
        register update)."""
        import copy

        stats = copy.deepcopy(state.stats)
        stats.update(pkt)
        return stats.features()


def build_checkpoint_rules(
    train_flows,
    checkpoints: Sequence[int],
    timeout: float = 5.0,
    iguard_params: Optional[dict] = None,
    rule_cells: int = 1024,
    quantizer_bits: int = 16,
    seed: SeedLike = None,
) -> List[Checkpoint]:
    """Train one iGuard per horizon n_i and compile its quantised rules.

    Each model sees the benign training flows truncated at its own
    horizon, so its whitelist describes what benign traffic looks like
    after exactly n_i packets.
    """
    from repro.core.deployment import quantize_ruleset

    rng = as_rng(seed)
    params = dict(iguard_params or {})
    out: List[Checkpoint] = []
    for n, fit_seed in zip(checkpoints, spawn_seeds(rng, len(checkpoints))):
        extractor = FlowFeatureExtractor(
            feature_set="switch", pkt_count_threshold=n, timeout=timeout
        )
        x_train, _ = extractor.extract_flows(train_flows)
        model = IGuard(seed=fit_seed, **params).fit(x_train)
        ruleset = model.to_rules(max_cells=rule_cells, seed=fit_seed)
        rules, quantizer = quantize_ruleset(ruleset, x_train, bits=quantizer_bits)
        out.append(Checkpoint(n=n, rules=rules, quantizer=quantizer))
    return out
