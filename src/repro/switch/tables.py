"""Match-action tables: exact-match blacklist and TCAM whitelist.

The blacklist is an exact-match (SRAM) table on the 5-tuple, populated
by the controller from digests; the whitelist is a TCAM range table
holding the compiled rules in quantised integer space.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.core.rules import QuantizedRuleSet
from repro.datasets.packet import FiveTuple
from repro.switch.range_encoding import ruleset_tcam_entries


class BlacklistTable:
    """Exact-match table keyed on the canonical 5-tuple.

    Capacity-bounded with FIFO or LRU eviction (§3.3.2: "the controller
    can also delete old rules from the blacklist table based on FIFO or
    LRU").
    """

    def __init__(self, capacity: int = 4096, eviction: str = "fifo") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if eviction not in ("fifo", "lru"):
            raise ValueError(f"eviction must be 'fifo' or 'lru', got {eviction!r}")
        self.capacity = capacity
        self.eviction = eviction
        self._entries: "OrderedDict[FiveTuple, bool]" = OrderedDict()
        self.installs = 0
        self.evictions = 0
        #: Bumped whenever membership changes (install/evict/remove), so
        #: replay engines can cache per-flow membership between changes.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, five_tuple: FiveTuple) -> None:
        """Add a blacklist rule, evicting the oldest entry when full."""
        key = five_tuple.canonical()
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = True
        self.installs += 1
        self.version += 1

    def matches(self, five_tuple: FiveTuple) -> bool:
        """True when the packet's flow is blacklisted (red path)."""
        key = five_tuple.canonical()
        hit = key in self._entries
        if hit and self.eviction == "lru":
            self._entries.move_to_end(key)
        return hit

    def remove(self, five_tuple: FiveTuple) -> bool:
        hit = self._entries.pop(five_tuple.canonical(), None) is not None
        if hit:
            self.version += 1
        return hit

    def sram_bytes(self) -> int:
        """SRAM cost: 13 B key + 1 B action per installed entry, sized at
        capacity (the table is pre-allocated on the ASIC)."""
        return self.capacity * 14


class WhitelistTable:
    """TCAM range table over quantised features with first-match lookup."""

    def __init__(self, ruleset: QuantizedRuleSet) -> None:
        self.ruleset = ruleset
        self.lookup_count = 0

    def __len__(self) -> int:
        return len(self.ruleset)

    def lookup(self, q_features: np.ndarray) -> Tuple[int, Optional[int]]:
        """(label, matched rule index or None) for one feature vector."""
        self.lookup_count += 1
        return self.ruleset.match_one(q_features)

    def predict(self, q_features: np.ndarray) -> np.ndarray:
        """Vectorised first-match labels (evaluation convenience)."""
        return self.ruleset.predict(q_features)

    def tcam_entries(self) -> int:
        """TCAM entries after range-to-prefix expansion."""
        return ruleset_tcam_entries(self.ruleset)
