"""Match-action tables: exact-match blacklist and TCAM whitelist.

The blacklist is an exact-match (SRAM) table on the 5-tuple, populated
by the controller from digests; the whitelist is a TCAM range table
holding the compiled rules in quantised integer space.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.core.rules import QuantizedRuleSet
from repro.datasets.packet import FiveTuple
from repro.switch.range_encoding import ruleset_tcam_entries


class BlacklistTable:
    """Exact-match table keyed on the canonical 5-tuple.

    Capacity-bounded with FIFO or LRU eviction (§3.3.2: "the controller
    can also delete old rules from the blacklist table based on FIFO or
    LRU").
    """

    def __init__(self, capacity: int = 4096, eviction: str = "fifo") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if eviction not in ("fifo", "lru"):
            raise ValueError(f"eviction must be 'fifo' or 'lru', got {eviction!r}")
        self.capacity = capacity
        self.eviction = eviction
        self._entries: "OrderedDict[FiveTuple, bool]" = OrderedDict()
        self.installs = 0
        self.evictions = 0
        #: Bumped whenever membership changes (install/evict/remove), so
        #: replay engines can cache per-flow membership between changes.
        self.version = 0
        #: Idle-TTL support for the mitigation engine: when enabled, every
        #: match records the packet timestamp so the control plane can tell
        #: an entry still absorbing traffic from one whose flow went away.
        #: Off by default — the bare table costs nothing extra.
        self.track_hits = False
        self.last_hit: "OrderedDict[FiveTuple, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, five_tuple: FiveTuple) -> None:
        """Add a blacklist rule, evicting the oldest entry when full."""
        key = five_tuple.canonical()
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.last_hit.pop(evicted, None)
            self.evictions += 1
        self._entries[key] = True
        self.installs += 1
        self.version += 1

    def matches(self, five_tuple: FiveTuple, ts: Optional[float] = None) -> bool:
        """True when the packet's flow is blacklisted (red path)."""
        key = five_tuple.canonical()
        hit = key in self._entries
        if hit:
            if self.eviction == "lru":
                self._entries.move_to_end(key)
            if self.track_hits and ts is not None:
                self.last_hit[key] = ts
        return hit

    def remove(self, five_tuple: FiveTuple) -> bool:
        key = five_tuple.canonical()
        hit = self._entries.pop(key, None) is not None
        self.last_hit.pop(key, None)
        if hit:
            self.version += 1
        return hit

    def sram_bytes(self) -> int:
        """SRAM cost: 13 B key + 1 B action per installed entry, sized at
        capacity (the table is pre-allocated on the ASIC)."""
        return self.capacity * 14


class RateLimitTable:
    """Exact-match keep-one-in-N throttle, the RATE_LIMIT rung's table.

    Each entry holds a per-flow packet counter; :meth:`should_drop`
    forwards the first packet of every ``keep_one_in`` and drops the
    rest — a deterministic stand-in for a token bucket, chosen so the
    scalar walk and the batch replay engine agree bit-for-bit.  Entries
    are installed/removed by the mitigation engine
    (:mod:`repro.mitigation.engine`); the pipeline only consults them.
    """

    def __init__(self, keep_one_in: int = 8) -> None:
        if keep_one_in < 2:
            raise ValueError(f"keep_one_in must be >= 2, got {keep_one_in}")
        self.keep_one_in = keep_one_in
        # key (canonical 5-tuple) -> [packets_seen, last_seen_ts]
        self._entries: "OrderedDict[FiveTuple, list]" = OrderedDict()
        self.installs = 0
        self.forwarded = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, five_tuple: FiveTuple, ts: Optional[float] = None) -> None:
        """Start (or refresh) limiting a flow; the counter survives a
        refresh so repeat installs don't reset the pass phase."""
        key = five_tuple.canonical()
        if key not in self._entries:
            self._entries[key] = [0, ts]
            self.installs += 1
        elif ts is not None:
            self._entries[key][1] = ts

    def remove(self, five_tuple: FiveTuple) -> bool:
        return self._entries.pop(five_tuple.canonical(), None) is not None

    def last_seen(self, five_tuple: FiveTuple) -> Optional[float]:
        entry = self._entries.get(five_tuple.canonical())
        return None if entry is None else entry[1]

    def should_drop(self, key: FiveTuple, ts: float) -> bool:
        """Count one packet of *key* (must already be canonical) against
        its limiter; True when this packet is shed."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry[0] += 1
        entry[1] = ts
        if (entry[0] - 1) % self.keep_one_in == 0:
            self.forwarded += 1
            return False
        self.dropped += 1
        return True

    def state_obj(self) -> list:
        """Entries in insertion order, for checkpointing."""
        return [
            [list(ft.as_tuple()), int(count), last]
            for ft, (count, last) in self._entries.items()
        ]

    def load_state(self, obj: list) -> None:
        self._entries.clear()
        for key, count, last in obj:
            ft = FiveTuple(*(int(v) for v in key))
            self._entries[ft] = [int(count), None if last is None else float(last)]


class WhitelistTable:
    """TCAM range table over quantised features with first-match lookup."""

    def __init__(self, ruleset: QuantizedRuleSet) -> None:
        self.ruleset = ruleset
        self.lookup_count = 0

    def __len__(self) -> int:
        return len(self.ruleset)

    def lookup(self, q_features: np.ndarray) -> Tuple[int, Optional[int]]:
        """(label, matched rule index or None) for one feature vector."""
        self.lookup_count += 1
        return self.ruleset.match_one(q_features)

    def predict(self, q_features: np.ndarray) -> np.ndarray:
        """Vectorised first-match labels (evaluation convenience)."""
        return self.ruleset.predict(q_features)

    def tcam_entries(self) -> int:
        """TCAM entries after range-to-prefix expansion."""
        return ruleset_tcam_entries(self.ruleset)
