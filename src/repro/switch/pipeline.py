"""The iGuard data-plane pipeline — Fig 4's six packet execution paths.

Paths (colour names follow the paper):

* **red** — 5-tuple hits the blacklist: drop immediately.
* **brown** — tracked flow, 1..n−1-th packet, no timeout: update the
  stateful storage, score only the packet's PL features against the PL
  whitelist rules.
* **blue** — n-th packet or idle timeout: update storage, derive FL
  features from the accumulators, match the FL whitelist rules, set the
  flow-label register, emit a digest to the controller, mirror to the
  loopback port.
* **orange** — hash collision: if the resident flow is already decided,
  evict it and start tracking the new flow (mirror to loopback to
  initialise the flow ID); either way the packet itself is scored on PL
  features.
* **purple** — tracked flow whose label register is already 0/1: apply
  the stored verdict with no further work.
* **green** — loopback (mirrored) packets updating the flow-label / flow
  ID registers; simulated synchronously but counted for the mirror-load
  statistics.

The pipeline holds two whitelist tables (PL rules for early packets, FL
rules for classification time), the blacklist, and the double-hashed
stateful storage.  Digests go to an attached
:class:`~repro.switch.controller.Controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.rules import QuantizedRuleSet
from repro.datasets.packet import FiveTuple, Packet
from repro.features.packet_features import packet_feature_vector
from repro.features.scaling import IntegerQuantizer
from repro.switch.storage import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDECIDED,
    FlowState,
    FlowStateStore,
)
from repro.switch.tables import BlacklistTable, WhitelistTable

PATH_RED = "red"
PATH_BROWN = "brown"
PATH_BLUE = "blue"
PATH_ORANGE = "orange"
PATH_PURPLE = "purple"
PATH_GREEN = "green"

ACTION_FORWARD = "forward"
ACTION_DROP = "drop"


def _check_table_quantizer(
    name: str, rules: QuantizedRuleSet, quantizer: IntegerQuantizer
) -> None:
    """Reject (rules, quantizer) pairs that would silently mis-score.

    The whitelist table matches integer codes produced by *quantizer*
    against boundaries compiled by some quantizer at rule-compile time;
    if those differ the table still "works" but scores garbage.  Checked
    here once at installation instead of per packet.
    """
    if quantizer.data_min_ is None:
        raise ValueError(f"{name} quantizer must be fitted before installation")
    if rules.bits != quantizer.bits:
        raise ValueError(
            f"{name} rules were quantized at {rules.bits} bits but the attached "
            f"quantizer produces {quantizer.bits}-bit codes"
        )
    if len(rules.rules) > 0:
        width = len(rules.rules[0].lows)
        if width != int(np.asarray(quantizer.data_min_).shape[0]):
            raise ValueError(
                f"{name} rules match {width} features but the attached quantizer "
                f"is fitted for {int(np.asarray(quantizer.data_min_).shape[0])}"
            )
    fingerprint = getattr(rules, "quantizer_fingerprint", None)
    if fingerprint is not None and fingerprint != quantizer.fingerprint():
        raise ValueError(
            f"{name} rules were compiled with a different quantizer than the one "
            "attached to the table (codebook fingerprints differ); re-quantize the "
            "rule set with the installed quantizer"
        )


@dataclass(frozen=True)
class _TableSet:
    """One validated generation of whitelist tables and quantisers.

    Held by the pipeline while staged (pre-swap) and as the previous
    generation (post-swap, for rollback).  Immutable: staging never
    touches the live tables.
    """

    fl_rules: QuantizedRuleSet
    fl_quantizer: IntegerQuantizer
    pl_rules: Optional[QuantizedRuleSet] = None
    pl_quantizer: Optional[IntegerQuantizer] = None


@dataclass(frozen=True)
class Digest:
    """Flow verdict sent to the controller: 13 B 5-tuple + 1-bit label."""

    five_tuple: FiveTuple
    label: int
    timestamp: float

    #: Wire size used by the control-plane overhead model (App. B.2).
    WIRE_BYTES = 14


@dataclass
class PacketDecision:
    """Per-packet outcome record used by the evaluation harness.

    ``rate_limited`` marks packets shed by the mitigation engine's
    RATE_LIMIT rung: the walk itself chose ``forward``, then the
    rate-limit table overrode the action to ``drop``.
    """

    packet: Packet
    path: str
    action: str
    predicted_malicious: int
    digest: Optional[Digest] = None
    mirrored: bool = False
    rate_limited: bool = False


@dataclass
class PipelineConfig:
    """Deployment knobs of §3.3.1.

    pkt_count_threshold:
        n — the packet count at which FL features are deemed reliable.
    timeout:
        δ — idle seconds after which a flow's storage is released and the
        flow is classified with what it has.
    n_slots:
        Per-hash-table register array length.
    blacklist_capacity / blacklist_eviction:
        Exact-match table sizing and FIFO/LRU policy.
    drop_on_malicious:
        Whether malicious verdicts drop the packet (True on the paper's
        inline deployment) or only mark it (mirror/monitor deployments).
    overflow_policy:
        Degradation policy for untracked flow-store overflow (the orange
        path's no-slot case): ``"score"`` (default — PL-score the packet,
        the paper's behaviour), ``"fail_open"`` (forward as benign), or
        ``"fail_closed"`` (treat as malicious).  Non-default policies
        count every affected packet in ``degraded.store_overflow``.
    """

    pkt_count_threshold: int = 8
    timeout: float = 5.0
    n_slots: int = 8192
    blacklist_capacity: int = 4096
    blacklist_eviction: str = "fifo"
    drop_on_malicious: bool = True
    overflow_policy: str = "score"


class SwitchPipeline:
    """Behavioural model of the iGuard Tofino pipeline.

    Parameters
    ----------
    fl_rules / fl_quantizer:
        Whitelist rules over the 13 FL features, in quantised space, and
        the quantiser that maps raw features to match keys.
    pl_rules / pl_quantizer:
        Early-packet rules over the 4 PL features.
    config:
        Deployment knobs (thresholds, table sizes).
    """

    def __init__(
        self,
        fl_rules: QuantizedRuleSet,
        fl_quantizer: IntegerQuantizer,
        pl_rules: Optional[QuantizedRuleSet] = None,
        pl_quantizer: Optional[IntegerQuantizer] = None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        if self.config.overflow_policy not in ("score", "fail_open", "fail_closed"):
            raise ValueError(
                "overflow_policy must be 'score', 'fail_open', or 'fail_closed', "
                f"got {self.config.overflow_policy!r}"
            )
        _check_table_quantizer("FL", fl_rules, fl_quantizer)
        self.fl_table = WhitelistTable(fl_rules)
        self.fl_quantizer = fl_quantizer
        if pl_rules is not None:
            if pl_quantizer is None:
                raise ValueError(
                    "pl_rules were installed without a pl_quantizer; the PL table "
                    "would silently score every packet as benign"
                )
            _check_table_quantizer("PL", pl_rules, pl_quantizer)
        self.pl_table = WhitelistTable(pl_rules) if pl_rules is not None else None
        self.pl_quantizer = pl_quantizer
        self.blacklist = BlacklistTable(
            capacity=self.config.blacklist_capacity,
            eviction=self.config.blacklist_eviction,
        )
        self.store = FlowStateStore(n_slots=self.config.n_slots)
        self.controller = None  # attached via Controller(pipeline)
        # Keep-one-in-N throttle consulted after the walk; None until a
        # mitigation policy engine attaches one (repro.mitigation) — the
        # bare pipeline pays nothing for the feature.
        self.rate_limiter = None
        # Optional fault-injectable digest transport (repro.faults); when
        # None digests go straight to the controller, as on the fault-free
        # simulator.
        self.digest_channel = None
        #: Packets decided by a non-default overflow_policy instead of a
        #: table lookup (``degraded.store_overflow``).
        self.degraded_packets = 0
        self.path_counts: Dict[str, int] = {
            p: 0
            for p in (PATH_RED, PATH_BROWN, PATH_BLUE, PATH_ORANGE, PATH_PURPLE, PATH_GREEN)
        }
        self.mirrored_packets = 0
        self.digests_emitted = 0
        # Staged-swap state (control-plane table updates, §3.3.2): a new
        # table generation is validated into ``_staged`` while the live
        # tables keep serving, then flipped in by hot_swap() between
        # packets.  ``_previous`` keeps the displaced generation for
        # rollback.
        self._staged: Optional[_TableSet] = None
        self._previous: Optional[_TableSet] = None
        self.table_swaps = 0
        self.table_rollbacks = 0

    # -- staged table updates ----------------------------------------------

    @property
    def has_staged_tables(self) -> bool:
        return self._staged is not None

    @property
    def can_rollback(self) -> bool:
        return self._previous is not None

    def stage_tables(
        self,
        fl_rules: QuantizedRuleSet,
        fl_quantizer: IntegerQuantizer,
        pl_rules: Optional[QuantizedRuleSet] = None,
        pl_quantizer: Optional[IntegerQuantizer] = None,
    ) -> None:
        """Validate a new table generation without touching the live one.

        Runs the same install-time checks as construction; on failure the
        staged slot is cleared and the live tables are untouched, so a bad
        recompile can never reach the data plane.  Re-staging replaces any
        previously staged (not yet swapped) generation.
        """
        self._staged = None
        _check_table_quantizer("FL", fl_rules, fl_quantizer)
        if pl_rules is not None:
            if pl_quantizer is None:
                raise ValueError(
                    "pl_rules were staged without a pl_quantizer; the PL table "
                    "would silently score every packet as benign"
                )
            _check_table_quantizer("PL", pl_rules, pl_quantizer)
        self._staged = _TableSet(
            fl_rules=fl_rules,
            fl_quantizer=fl_quantizer,
            pl_rules=pl_rules,
            pl_quantizer=pl_quantizer,
        )

    def _build_tables(self, tables: _TableSet):
        """Re-validate and construct the live table objects for *tables*.

        Pure construction: raises (re-running the install-time checks,
        so even a generation corrupted *after* staging is caught) before
        any live attribute is assigned — the exception-safety half of a
        flip.  Lookup counters carry over so ``switch.table.*_lookups``
        stay monotonic across a swap.
        """
        _check_table_quantizer("FL", tables.fl_rules, tables.fl_quantizer)
        fl_table = WhitelistTable(tables.fl_rules)
        fl_table.lookup_count = self.fl_table.lookup_count
        pl_table = None
        if tables.pl_rules is not None:
            if tables.pl_quantizer is None:
                raise ValueError(
                    "table generation holds pl_rules without a pl_quantizer"
                )
            _check_table_quantizer("PL", tables.pl_rules, tables.pl_quantizer)
            pl_table = WhitelistTable(tables.pl_rules)
            if self.pl_table is not None:
                pl_table.lookup_count = self.pl_table.lookup_count
        return fl_table, pl_table

    def _install_tables(self, tables: _TableSet) -> None:
        """Flip *tables* live: build first (may raise), then assign.

        The four live attributes are only written after every table
        object exists, so a failed build can never leave the pipeline
        with mixed generations.
        """
        fl_table, pl_table = self._build_tables(tables)
        self.fl_table = fl_table
        self.fl_quantizer = tables.fl_quantizer
        self.pl_table = pl_table
        self.pl_quantizer = tables.pl_quantizer

    def _live_tables(self) -> _TableSet:
        return _TableSet(
            fl_rules=self.fl_table.ruleset,
            fl_quantizer=self.fl_quantizer,
            pl_rules=self.pl_table.ruleset if self.pl_table is not None else None,
            pl_quantizer=self.pl_quantizer,
        )

    def hot_swap(self) -> None:
        """Atomically flip the staged tables live.

        Only the whitelist tables and their quantisers change hands: the
        stateful storage, blacklist, and path counters are untouched, so
        in-flight flows keep their accumulators and verdicts across the
        swap.  The displaced generation is retained for :meth:`rollback`.
        Call between packets (the batch replay engine reads the tables
        once per call, so swapping between replay calls is safe).
        """
        if self._staged is None:
            raise RuntimeError("hot_swap() without staged tables; call stage_tables() first")
        # Build (and re-validate) before mutating anything: a staged
        # generation that fails here leaves the live tables, _previous,
        # the flow store, and the blacklist exactly as they were.
        staged = self._staged
        fl_table, pl_table = self._build_tables(staged)
        self._previous = self._live_tables()
        self.fl_table = fl_table
        self.fl_quantizer = staged.fl_quantizer
        self.pl_table = pl_table
        self.pl_quantizer = staged.pl_quantizer
        self._staged = None
        self.table_swaps += 1

    def reject_staged(self) -> None:
        """Discard the staged generation after a failed stage/flip.

        The ROLLBACK arm of the serving state machine for a generation
        that never went live: counted under ``table_rollbacks`` (the
        candidate was rejected), with the live tables untouched.
        """
        self._staged = None
        self.table_rollbacks += 1

    def rollback(self) -> None:
        """Restore the table generation displaced by the last hot_swap()."""
        if self._previous is None:
            raise RuntimeError("rollback() without a previous table generation")
        self._install_tables(self._previous)
        self._previous = None
        self.table_rollbacks += 1

    # -- telemetry ----------------------------------------------------------

    def telemetry_counters(self) -> Dict[str, int]:
        """Monotonic counters of the data plane, as flat dotted names.

        Pure reads of accumulated pipeline state — the scalar walk and
        the batch engine mutate the same objects, so both emit identical
        values (asserted by the differential suite).  Published per
        replay (as deltas) by :func:`repro.switch.runner.replay_trace`.
        """
        counters = {f"switch.path.{p}": c for p, c in self.path_counts.items()}
        counters["switch.digests.emitted"] = self.digests_emitted
        counters["switch.mirrored_packets"] = self.mirrored_packets
        counters["switch.table.fl_lookups"] = self.fl_table.lookup_count
        if self.pl_table is not None:
            counters["switch.table.pl_lookups"] = self.pl_table.lookup_count
        counters["switch.store.collisions"] = self.store.collision_count
        counters["switch.store.evictions"] = self.store.eviction_count
        counters["switch.store.forced_evictions"] = self.store.forced_evictions
        counters["switch.store.label_wipes"] = self.store.label_wipes
        counters["degraded.store_overflow"] = self.degraded_packets
        counters["switch.blacklist.installs"] = self.blacklist.installs
        counters["switch.blacklist.evictions"] = self.blacklist.evictions
        counters["switch.blacklist.churn"] = self.blacklist.version
        counters["switch.table.swaps"] = self.table_swaps
        counters["switch.table.rollbacks"] = self.table_rollbacks
        if self.rate_limiter is not None:
            counters["switch.rate_limiter.installs"] = self.rate_limiter.installs
            counters["switch.rate_limiter.forwarded"] = self.rate_limiter.forwarded
            counters["switch.rate_limiter.dropped"] = self.rate_limiter.dropped
        return counters

    def telemetry_gauges(self) -> Dict[str, float]:
        """Point-in-time levels (non-monotonic): storage and table fill.

        When a mitigation policy engine is attached its gauges ride
        along here — deliberately, because the shm transport freezes the
        gauge layout from this method before forking workers."""
        gauges = {
            "switch.store.occupancy": float(self.store.occupancy()),
            "switch.store.fill_fraction": self.store.occupancy()
            / float(2 * self.store.n_slots),
            "switch.blacklist.size": float(len(self.blacklist)),
        }
        if self.rate_limiter is not None:
            gauges["switch.rate_limiter.size"] = float(len(self.rate_limiter))
        policy = getattr(self.controller, "policy", None)
        if policy is not None:
            gauges.update(policy.telemetry_gauges())
        return gauges

    # -- scoring helpers ---------------------------------------------------

    def _match_pl(self, pkt: Packet) -> int:
        """PL whitelist verdict for one packet (benign when no PL table)."""
        if self.pl_table is None or self.pl_quantizer is None:
            return LABEL_BENIGN
        features = packet_feature_vector(pkt).reshape(1, -1)
        q = self.pl_quantizer.quantize(features)[0]
        label, _idx = self.pl_table.lookup(q)
        return label

    def _match_fl(self, state: FlowState) -> int:
        """FL whitelist verdict from the flow's streaming accumulators."""
        features = state.stats.features().reshape(1, -1)
        q = self.fl_quantizer.quantize(features)[0]
        label, _idx = self.fl_table.lookup(q)
        return label

    def _action(self, label: int) -> str:
        if label == LABEL_MALICIOUS and self.config.drop_on_malicious:
            return ACTION_DROP
        return ACTION_FORWARD

    def _emit_digest(self, pkt: Packet, label: int) -> Digest:
        digest = Digest(
            five_tuple=pkt.five_tuple.canonical(), label=label, timestamp=pkt.timestamp
        )
        self.digests_emitted += 1
        if self.digest_channel is not None:
            self.digest_channel.send(digest)
        elif self.controller is not None:
            self.controller.handle_digest(digest)
        return digest

    def _mirror_loopback(self) -> None:
        """Green path: register update via the loopback port.  The update
        itself is applied synchronously by the caller; this accounts for
        the mirrored packet."""
        self.mirrored_packets += 1
        self.path_counts[PATH_GREEN] += 1

    # -- the packet walk ----------------------------------------------------

    def process(self, pkt: Packet) -> PacketDecision:
        """Run one packet through the six-path pipeline, then apply any
        active rate-limit entry (the mitigation engine's RATE_LIMIT rung
        sheds forwarded packets of limited flows, keeping one in N)."""
        decision = self._walk(pkt)
        limiter = self.rate_limiter
        if (
            limiter is not None
            and len(limiter)
            and decision.path != PATH_RED
            and decision.action == ACTION_FORWARD
            and limiter.should_drop(pkt.five_tuple.canonical(), pkt.timestamp)
        ):
            decision.action = ACTION_DROP
            decision.rate_limited = True
        return decision

    def _walk(self, pkt: Packet) -> PacketDecision:
        """The six-path walk proper (reference semantics for the batch
        replay engine, which mirrors it branch for branch)."""
        cfg = self.config

        # Red: blacklist match.
        if self.blacklist.matches(pkt.five_tuple, pkt.timestamp):
            self.path_counts[PATH_RED] += 1
            return PacketDecision(
                packet=pkt, path=PATH_RED, action=ACTION_DROP, predicted_malicious=1
            )

        state, collided, resident = self.store.lookup_or_create(pkt.five_tuple)

        # Orange: both slots held by other flows.
        if collided:
            self.path_counts[PATH_ORANGE] += 1
            if resident is not None and resident.is_decided():
                # Resident is classified: reclaim its slot for the new flow
                # and mirror to loopback to initialise the flow ID register.
                state = self.store.evict_and_track(pkt.five_tuple)
                state.stats.update(pkt)
                self._mirror_loopback()
                label = self._match_pl(pkt)
            elif cfg.overflow_policy == "fail_open":
                # Store is genuinely full for this flow: degrade benign.
                self.degraded_packets += 1
                label = LABEL_BENIGN
            elif cfg.overflow_policy == "fail_closed":
                self.degraded_packets += 1
                label = LABEL_MALICIOUS
            else:
                label = self._match_pl(pkt)
            return PacketDecision(
                packet=pkt,
                path=PATH_ORANGE,
                action=self._action(label),
                predicted_malicious=int(label == LABEL_MALICIOUS),
            )

        # Purple: flow already classified — early decision.
        if state.is_decided():
            self.path_counts[PATH_PURPLE] += 1
            label = state.label
            return PacketDecision(
                packet=pkt,
                path=PATH_PURPLE,
                action=self._action(label),
                predicted_malicious=int(label == LABEL_MALICIOUS),
            )

        # Timeout check before folding the packet in: an idle gap beyond δ
        # means the stored flow should be classified with what it has and
        # the latest packet scored on PL features (green-path semantics).
        timed_out = (
            state.pkt_count > 0
            and state.last_seen is not None
            and pkt.timestamp - state.last_seen > cfg.timeout
        )
        if timed_out:
            self.path_counts[PATH_BLUE] += 1
            label = self._match_fl(state)
            state.label = label
            digest = self._emit_digest(pkt, label)
            self._mirror_loopback()
            # The timed-out packet itself was unaccounted: PL verdict.
            pl_label = self._match_pl(pkt)
            state.stats.reset()
            state.stats.update(pkt)
            return PacketDecision(
                packet=pkt,
                path=PATH_BLUE,
                action=self._action(pl_label),
                predicted_malicious=int(pl_label == LABEL_MALICIOUS),
                digest=digest,
                mirrored=True,
            )

        state.stats.update(pkt)

        # Blue: n-th packet — classify on FL features.
        if state.pkt_count >= cfg.pkt_count_threshold:
            self.path_counts[PATH_BLUE] += 1
            label = self._match_fl(state)
            state.label = label
            digest = self._emit_digest(pkt, label)
            self._mirror_loopback()
            return PacketDecision(
                packet=pkt,
                path=PATH_BLUE,
                action=self._action(label),
                predicted_malicious=int(label == LABEL_MALICIOUS),
                digest=digest,
                mirrored=True,
            )

        # Brown: early packet — PL verdict only.
        self.path_counts[PATH_BROWN] += 1
        label = self._match_pl(pkt)
        return PacketDecision(
            packet=pkt,
            path=PATH_BROWN,
            action=self._action(label),
            predicted_malicious=int(label == LABEL_MALICIOUS),
        )
