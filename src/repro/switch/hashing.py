"""Bi-directional flow hashing and double hash tables (HorusEye [15]).

The data plane indexes per-flow state by hashing the 5-tuple.  Two
details from the paper (§3.3.1):

* **bi-hash** — both directions of a flow must map to the same slot, so
  the hash runs over the direction-canonicalised 5-tuple.
* **double hash tables** — two independent hash functions over two
  register arrays; a flow displaced by a collision in the first table
  gets a second chance in the second, which empirically removes most
  collisions at IoT-scale flow counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.datasets.packet import FiveTuple

T = TypeVar("T")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def bi_hash(five_tuple: FiveTuple, salt: int = 0) -> int:
    """FNV-1a over the canonical 5-tuple — direction independent."""
    canonical = five_tuple.canonical()
    h = _FNV_OFFSET ^ (salt * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
    for field in canonical.as_tuple():
        for _ in range(4):
            h ^= field & 0xFF
            h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            field >>= 8
    return h


@dataclass
class Slot(Generic[T]):
    """One register slot: the owning flow's ID plus attached state."""

    flow_id: FiveTuple
    state: T


class DoubleHashTable(Generic[T]):
    """Two hash-indexed register arrays with second-chance insertion.

    ``lookup`` / ``insert`` operate on canonical flow identity (bi-hash),
    so both directions of a connection share one slot, as on the switch.
    """

    def __init__(self, size: int, salt_a: int = 1, salt_b: int = 2) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if salt_a == salt_b:
            raise ValueError("the two tables need distinct hash salts")
        self.size = size
        self.salts = (salt_a, salt_b)
        self._tables: List[List[Optional[Slot[T]]]] = [
            [None] * size,
            [None] * size,
        ]
        self.collision_count = 0
        self.eviction_count = 0

    def _positions(self, five_tuple: FiveTuple) -> Tuple[int, int]:
        return (
            bi_hash(five_tuple, self.salts[0]) % self.size,
            bi_hash(five_tuple, self.salts[1]) % self.size,
        )

    def lookup(self, five_tuple: FiveTuple) -> Optional[Slot[T]]:
        """The slot owned by this flow, or None."""
        canonical = five_tuple.canonical()
        for table, pos in zip(self._tables, self._positions(canonical)):
            slot = table[pos]
            if slot is not None and slot.flow_id == canonical:
                return slot
        return None

    def insert(self, five_tuple: FiveTuple, state: T) -> Tuple[Optional[Slot[T]], bool]:
        """Insert (or refresh) the flow's slot.

        Returns ``(slot, collided)``: on success the occupied slot and
        False; when both candidate positions are held by *other* flows,
        ``(resident_slot_of_first_table, True)`` — the caller decides
        whether to evict (the orange path's logic).
        """
        canonical = five_tuple.canonical()
        positions = self._positions(canonical)
        # Refresh if already present.
        for table, pos in zip(self._tables, positions):
            slot = table[pos]
            if slot is not None and slot.flow_id == canonical:
                slot.state = state
                return slot, False
        # First empty candidate wins.
        for table, pos in zip(self._tables, positions):
            if table[pos] is None:
                slot = Slot(flow_id=canonical, state=state)
                table[pos] = slot
                return slot, False
        self.collision_count += 1
        return self._tables[0][positions[0]], True

    def evict_and_insert(self, five_tuple: FiveTuple, state: T) -> Slot[T]:
        """Replace the first-table resident with this flow (orange path)."""
        canonical = five_tuple.canonical()
        pos = self._positions(canonical)[0]
        slot = Slot(flow_id=canonical, state=state)
        self._tables[0][pos] = slot
        self.eviction_count += 1
        return slot

    def remove(self, five_tuple: FiveTuple) -> bool:
        """Release the flow's slot (controller cleanup); True if found."""
        canonical = five_tuple.canonical()
        for table, pos in zip(self._tables, self._positions(canonical)):
            slot = table[pos]
            if slot is not None and slot.flow_id == canonical:
                table[pos] = None
                return True
        return False

    def occupancy(self) -> int:
        """Number of occupied slots across both tables."""
        return sum(
            1 for table in self._tables for slot in table if slot is not None
        )
