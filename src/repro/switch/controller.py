"""Control plane: digest handling and blacklist management (§3.3.2).

When the data plane decides a flow's class it sends a digest (13 B
5-tuple + 1-bit label).  The controller clears the flow's stateful
storage and, for malicious flows, installs a blacklist rule; old rules
age out FIFO or LRU.  The controller also tracks digest byte volume for
the App. B.2 overhead comparison — HorusEye-style designs must ship
~52 B of FL features per digest on top, because their detection runs in
the control plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.switch.pipeline import Digest, SwitchPipeline
from repro.switch.storage import LABEL_MALICIOUS

#: Extra per-digest payload for control-plane-detection designs [4, 15].
FEATURE_DIGEST_EXTRA_BYTES = 52


@dataclass
class ControllerStats:
    """Counters for the overhead analysis."""

    digests_received: int = 0
    digest_bytes: int = 0
    blacklist_installs: int = 0
    storage_releases: int = 0

    def overhead_kbps(self, window_seconds: float) -> float:
        """Average control-plane load in KB/s over a window."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        return self.digest_bytes / 1000.0 / window_seconds

    def horuseye_equivalent_bytes(self) -> int:
        """Bytes a control-plane-detection design would have shipped for
        the same digests (each needs FL features attached)."""
        return self.digest_bytes + self.digests_received * FEATURE_DIGEST_EXTRA_BYTES


class Controller:
    """Digest consumer attached to a :class:`SwitchPipeline`."""

    def __init__(self, pipeline: SwitchPipeline, install_blacklist: bool = True) -> None:
        self.pipeline = pipeline
        self.install_blacklist = install_blacklist
        self.stats = ControllerStats()
        # Optional mitigation policy engine (repro.mitigation). When
        # attached it owns the response to malicious verdicts — the
        # legacy always-blacklist path below is bypassed entirely.
        self.policy = None
        pipeline.controller = self

    def handle_digest(self, digest: Digest) -> None:
        """Process one digest: blacklist install + storage cleanup."""
        self.stats.digests_received += 1
        self.stats.digest_bytes += Digest.WIRE_BYTES
        if digest.label != LABEL_MALICIOUS:
            return
        if self.policy is not None:
            # Graduated response: the engine decides between MONITOR
            # (nothing touches the data plane), RATE_LIMIT, and DROP.
            # Enforced flows lose their stateful storage so repeat
            # offenses re-classify and climb the ladder.
            if self.policy.on_verdict(digest.five_tuple, digest.timestamp):
                if self.pipeline.store.release(digest.five_tuple):
                    self.stats.storage_releases += 1
            return
        if self.install_blacklist:
            self.pipeline.blacklist.install(digest.five_tuple)
            self.stats.blacklist_installs += 1
            # Malicious flows lose their stateful storage immediately: the
            # blacklist now covers them and the slot is freed for new flows.
            if self.pipeline.store.release(digest.five_tuple):
                self.stats.storage_releases += 1

    def telemetry_counters(self) -> Dict[str, int]:
        """Control-plane counters mirroring :class:`ControllerStats`.

        Published per replay (as deltas) alongside the pipeline's
        counters by :func:`repro.switch.runner.replay_trace`.
        """
        counters = {
            "controller.digests_received": self.stats.digests_received,
            "controller.digest_bytes": self.stats.digest_bytes,
            "controller.blacklist_installs": self.stats.blacklist_installs,
            "controller.storage_releases": self.stats.storage_releases,
            "controller.horuseye_equivalent_bytes": self.stats.horuseye_equivalent_bytes(),
        }
        if self.policy is not None:
            counters.update(self.policy.telemetry_counters())
        return counters
