"""Vectorized batch replay engine for the data-plane simulator.

The scalar :meth:`~repro.switch.pipeline.SwitchPipeline.process` walk
pays several numpy round trips per packet (PL feature vector build,
quantisation, first-match rule scan), which caps replay at a few tens of
thousands of packets per second.  This module splits a trace replay into
the part that is a pure function of the packet — vectorisable over the
whole trace — and the part that is inherently sequential switch state:

* **Precomputed struct-of-arrays** — direction-canonical 5-tuples,
  per-unique-flow double-hash slot positions (FNV-1a over uint64
  lanes), the quantized PL feature matrix, and PL whitelist verdicts
  resolved by :class:`RangeIntervalMatcher`, a range-encoded interval
  lookup (``np.searchsorted`` over per-feature rule bounds — the
  software analogue of the per-field range tables that
  :mod:`repro.switch.range_encoding` prices for TCAM).
* **Sequential resolution** — storage collisions/evictions, the flow
  label registers, timeouts, digests, and blacklist effects are replayed
  in arrival order in one tight loop over the pre-grouped flow indices,
  mutating the *same* pipeline objects the scalar engine uses.

FL features cannot be precomputed: the accumulators reset on timeouts,
evictions and controller releases, which are only known during the
sequential pass, so classification-time (blue-path) packets compute
features from the live streaming state exactly as the scalar engine
does.  Those events are rare (once per flow), so the hot path stays
vectorised.

The engine is locked to the scalar pipeline by a differential test
suite (``tests/switch/test_batch_differential.py``): path labels,
actions, verdicts, digest streams, and every counter must be
bit-identical on seeded traces from each dataset profile.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.rules import QuantizedRuleSet
from repro.datasets.packet import FiveTuple
from repro.datasets.trace import Trace
from repro.switch.hashing import _FNV_OFFSET, _FNV_PRIME, Slot
from repro.switch.pipeline import (
    ACTION_DROP,
    ACTION_FORWARD,
    PATH_BLUE,
    PATH_BROWN,
    PATH_ORANGE,
    PATH_PURPLE,
    PATH_RED,
    Digest,
    PacketDecision,
    SwitchPipeline,
)
from repro.switch.storage import FlowState, LABEL_BENIGN, LABEL_MALICIOUS, LABEL_UNDECIDED

#: Per-packet path codes in the struct-of-arrays outcome (green is not a
#: per-packet decision path; it only shows up in the mirror counters).
PATH_CODE_NAMES: Tuple[str, ...] = (PATH_RED, PATH_BROWN, PATH_BLUE, PATH_ORANGE, PATH_PURPLE)
CODE_RED, CODE_BROWN, CODE_BLUE, CODE_ORANGE, CODE_PURPLE = range(5)

_U64_LOW_BYTE = np.uint64(0xFF)
_U64_EIGHT = np.uint64(8)
_U64_ONE = np.uint64(1)

#: C-level extractor feeding :meth:`TraceArrays.from_trace`'s single pass.
_PACKET_FIELDS = operator.attrgetter(
    "five_tuple.src_ip",
    "five_tuple.dst_ip",
    "five_tuple.src_port",
    "five_tuple.dst_port",
    "five_tuple.protocol",
    "timestamp",
    "size",
    "ttl",
    "malicious",
)

#: Full-fidelity extractor for :meth:`TraceColumns.from_packets` —
#: every Packet field, so the columnar form round-trips losslessly.
_COLUMN_FIELDS = operator.attrgetter(
    "five_tuple.src_ip",
    "five_tuple.dst_ip",
    "five_tuple.src_port",
    "five_tuple.dst_port",
    "five_tuple.protocol",
    "timestamp",
    "size",
    "ttl",
    "tcp_flags",
    "malicious",
)


@dataclass
class TraceColumns:
    """Lossless struct-of-arrays twin of a packet list.

    This is the zero-copy wire format of the cluster's shared-memory
    transport: six fixed-dtype columns that can live in one
    ``multiprocessing.shared_memory`` segment and be sliced by
    ``(offset, length)`` descriptors without touching a single
    :class:`~repro.datasets.packet.Packet` object.  Tuples keep the
    packet's *own* direction (canonicalisation happens downstream in
    :meth:`TraceArrays.from_columns`, exactly as it does for packets).
    """

    tuples: np.ndarray  #: (n, 5) int64 — src_ip, dst_ip, src_port, dst_port, protocol
    timestamps: np.ndarray  #: (n,) float64 arrival times
    sizes: np.ndarray  #: (n,) int64 frame sizes
    ttls: np.ndarray  #: (n,) int64
    tcp_flags: np.ndarray  #: (n,) int64
    malicious: np.ndarray  #: (n,) uint8 ground-truth bits

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    @classmethod
    def from_packets(cls, packets) -> "TraceColumns":
        """Columnise *packets* in one C-level extraction pass (every
        field is exactly representable in float64)."""
        n = len(packets)
        flat = np.fromiter(
            chain.from_iterable(map(_COLUMN_FIELDS, packets)),
            dtype=np.float64,
            count=10 * n,
        ).reshape(n, 10)
        return cls(
            tuples=flat[:, :5].astype(np.int64),
            timestamps=flat[:, 5].copy(),
            sizes=flat[:, 6].astype(np.int64),
            ttls=flat[:, 7].astype(np.int64),
            tcp_flags=flat[:, 8].astype(np.int64),
            malicious=flat[:, 9].astype(np.uint8),
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceColumns":
        return cls.from_packets(trace.packets)

    def slice(self, start: int, stop: int) -> "TraceColumns":
        """Zero-copy view of rows ``[start, stop)``."""
        return TraceColumns(
            tuples=self.tuples[start:stop],
            timestamps=self.timestamps[start:stop],
            sizes=self.sizes[start:stop],
            ttls=self.ttls[start:stop],
            tcp_flags=self.tcp_flags[start:stop],
            malicious=self.malicious[start:stop],
        )

    def take(self, idx: np.ndarray) -> "TraceColumns":
        """Row-gathered copy (used to group each chunk's rows by shard)."""
        return TraceColumns(
            tuples=self.tuples[idx],
            timestamps=self.timestamps[idx],
            sizes=self.sizes[idx],
            ttls=self.ttls[idx],
            tcp_flags=self.tcp_flags[idx],
            malicious=self.malicious[idx],
        )

    def packet_at(self, i: int):
        """Materialise row *i* as a :class:`Packet` (lazy — only the rare
        digest-emitting packets of a columns replay ever need one)."""
        from repro.datasets.packet import Packet

        t = self.tuples[i]
        return Packet(
            five_tuple=FiveTuple(int(t[0]), int(t[1]), int(t[2]), int(t[3]), int(t[4])),
            timestamp=float(self.timestamps[i]),
            size=int(self.sizes[i]),
            ttl=int(self.ttls[i]),
            tcp_flags=int(self.tcp_flags[i]),
            malicious=bool(self.malicious[i]),
        )

    def to_packets(self) -> list:
        """Rebuild the full packet list (packets compare equal to the
        originals — the columnar form is lossless)."""
        return [self.packet_at(i) for i in range(len(self))]


def bi_hash_batch(fields: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorised :func:`repro.switch.hashing.bi_hash` over many flows.

    *fields* is an ``(n, 5)`` array of **already canonical** 5-tuples in
    ``as_tuple`` order; returns one FNV-1a hash per row, bit-identical
    to the scalar function.
    """
    fields = np.ascontiguousarray(fields, dtype=np.uint64)
    seed = np.uint64(_FNV_OFFSET ^ (salt * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF))
    h = np.full(fields.shape[0], seed, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    for col in range(fields.shape[1]):
        f = fields[:, col].copy()
        for _ in range(4):
            h ^= f & _U64_LOW_BYTE
            h *= prime  # uint64 arithmetic wraps mod 2^64, like the scalar mask
            f >>= _U64_EIGHT
    return h


class RangeIntervalMatcher:
    """Vectorised first-match lookup over a :class:`QuantizedRuleSet`.

    Mirrors the hardware layout behind
    :func:`~repro.switch.range_encoding.rule_tcam_entries`'s per-field
    mode: each feature gets its own range table whose hits form a
    per-rule bitmap.  The feature axis is pre-compiled into elementary
    intervals (between consecutive rule bounds), each carrying the
    bitmap of rules covering it; a lookup is one ``np.searchsorted`` per
    feature, an AND across features, and the lowest set bit — rule
    priority order — decides the verdict.
    """

    def __init__(self, ruleset: QuantizedRuleSet) -> None:
        self.default_label = ruleset.default_label
        rules = list(ruleset)
        self.n_rules = len(rules)
        self.labels = np.array([r.label for r in rules], dtype=np.int64)
        self.n_features = len(rules[0].lows) if rules else 0
        self.n_words = max(1, (self.n_rules + 63) // 64)
        self._starts: List[np.ndarray] = []
        self._masks: List[np.ndarray] = []
        if not rules:
            return
        lows = np.array([r.lows for r in rules], dtype=np.int64)
        highs = np.array([r.highs for r in rules], dtype=np.int64)
        for f in range(self.n_features):
            starts = np.unique(np.concatenate(([0], lows[:, f], highs[:, f] + 1)))
            masks = np.zeros((starts.size, self.n_words), dtype=np.uint64)
            for r in range(self.n_rules):
                i0 = int(np.searchsorted(starts, lows[r, f], side="left"))
                i1 = int(np.searchsorted(starts, highs[r, f] + 1, side="left"))
                masks[i0:i1, r >> 6] |= np.uint64(1) << np.uint64(r & 63)
            self._starts.append(starts)
            self._masks.append(masks)

    def first_match(self, q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(labels, rule_indices)`` per row; index −1 where no rule hit."""
        q = np.atleast_2d(np.asarray(q, dtype=np.int64))
        n = q.shape[0]
        if self.n_rules == 0:
            return (
                np.full(n, self.default_label, dtype=np.int64),
                np.full(n, -1, dtype=np.int64),
            )
        if q.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} feature codes per row, got {q.shape[1]}"
            )
        hit: Optional[np.ndarray] = None
        for f in range(self.n_features):
            idx = np.searchsorted(self._starts[f], q[:, f], side="right") - 1
            # Codes are unsigned, but guard hand-fed negatives anyway.
            masks = self._masks[f][np.clip(idx, 0, None)]
            masks = np.where((idx >= 0)[:, None], masks, np.uint64(0))
            hit = masks if hit is None else hit & masks
        rule = np.full(n, -1, dtype=np.int64)
        unresolved = np.ones(n, dtype=bool)
        for w in range(self.n_words):
            word = hit[:, w]
            found = unresolved & (word != 0)
            if found.any():
                isolated = word[found] & (~word[found] + _U64_ONE)  # lowest set bit
                bitpos = np.log2(isolated.astype(np.float64)).astype(np.int64)
                rule[found] = 64 * w + bitpos
                unresolved[found] = False
            if not unresolved.any():
                break
        labels = np.where(
            rule >= 0, self.labels[np.clip(rule, 0, None)], self.default_label
        )
        return labels, rule

    def predict(self, q: np.ndarray) -> np.ndarray:
        """First-match label per row — same contract as
        :meth:`QuantizedRuleSet.predict`."""
        return self.first_match(q)[0]


@dataclass
class TraceArrays:
    """Struct-of-arrays view of a trace plus pre-grouped flow indices."""

    timestamps: np.ndarray  #: float64 arrival times
    sizes: np.ndarray  #: int64 frame sizes
    malicious: np.ndarray  #: int ground-truth bits
    pl_matrix: np.ndarray  #: (n, 4) raw PL features in PACKET_FEATURES order
    flow_idx: np.ndarray  #: packet → index into :attr:`flow_tuples`
    flow_tuples: List[FiveTuple]  #: canonical 5-tuple per unique flow
    flow_fields: np.ndarray  #: (n_flows, 5) canonical tuples, ``as_tuple`` order

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceArrays":
        pkts = trace.packets
        n = len(pkts)
        # One pass over the packets via a C-level attrgetter chain; every
        # field (32-bit IPs, ports, sizes, TTLs, bool labels) is exactly
        # representable in float64.
        flat = np.fromiter(
            chain.from_iterable(map(_PACKET_FIELDS, pkts)),
            dtype=np.float64,
            count=9 * n,
        ).reshape(n, 9)
        # PL features use the packet's own direction (packet_feature_vector):
        # dst_port, protocol, length, ttl — already float64 columns of flat.
        pl_matrix = np.ascontiguousarray(flat[:, [3, 4, 6, 7]])
        return cls._from_fields(
            src_ip=flat[:, 0].astype(np.int64),
            dst_ip=flat[:, 1].astype(np.int64),
            src_port=flat[:, 2].astype(np.int64),
            dst_port=flat[:, 3].astype(np.int64),
            proto=flat[:, 4].astype(np.int64),
            timestamps=flat[:, 5].copy(),
            sizes=flat[:, 6].astype(np.int64),
            malicious=flat[:, 8].astype(np.int64),
            pl_matrix=pl_matrix,
        )

    @classmethod
    def from_columns(cls, cols: "TraceColumns") -> "TraceArrays":
        """Build the replay view straight from columnar packet data —
        no :class:`Packet` objects anywhere on the path.  Produces
        bit-identical arrays to :meth:`from_trace` of the equivalent
        packet list (same float64 feature matrix, same flow grouping)."""
        n = len(cols)
        pl_matrix = np.empty((n, 4), dtype=np.float64)
        pl_matrix[:, 0] = cols.tuples[:, 3]  # dst_port
        pl_matrix[:, 1] = cols.tuples[:, 4]  # protocol
        pl_matrix[:, 2] = cols.sizes  # length
        pl_matrix[:, 3] = cols.ttls  # ttl
        return cls._from_fields(
            src_ip=np.ascontiguousarray(cols.tuples[:, 0]),
            dst_ip=np.ascontiguousarray(cols.tuples[:, 1]),
            src_port=np.ascontiguousarray(cols.tuples[:, 2]),
            dst_port=np.ascontiguousarray(cols.tuples[:, 3]),
            proto=np.ascontiguousarray(cols.tuples[:, 4]),
            timestamps=cols.timestamps.astype(np.float64, copy=False),
            sizes=cols.sizes.astype(np.int64, copy=False),
            malicious=cols.malicious.astype(np.int64),
            pl_matrix=pl_matrix,
        )

    @classmethod
    def _from_fields(
        cls,
        src_ip: np.ndarray,
        dst_ip: np.ndarray,
        src_port: np.ndarray,
        dst_port: np.ndarray,
        proto: np.ndarray,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        malicious: np.ndarray,
        pl_matrix: np.ndarray,
    ) -> "TraceArrays":
        n = int(timestamps.shape[0])
        # FiveTuple.canonical(): keep the direction whose (src_ip, src_port)
        # is lexicographically smaller.
        swap = (src_ip > dst_ip) | ((src_ip == dst_ip) & (src_port > dst_port))
        c_src_ip = np.where(swap, dst_ip, src_ip)
        c_dst_ip = np.where(swap, src_ip, dst_ip)
        c_src_port = np.where(swap, dst_port, src_port)
        c_dst_port = np.where(swap, src_port, dst_port)
        if n:
            # Group packets by flow: the canonical tuple packs losslessly
            # into two uint64 sort keys (32+32 and 16+16+8 bits), so a
            # two-key lexsort replaces np.unique's row-wise void sort.
            k1 = (c_src_ip.astype(np.uint64) << np.uint64(32)) | c_dst_ip.astype(
                np.uint64
            )
            k2 = (
                (c_src_port.astype(np.uint64) << np.uint64(24))
                | (c_dst_port.astype(np.uint64) << np.uint64(8))
                | proto.astype(np.uint64)
            )
            order = np.lexsort((k2, k1))
            sk1, sk2 = k1[order], k2[order]
            first = np.empty(n, dtype=bool)
            first[0] = True
            first[1:] = (sk1[1:] != sk1[:-1]) | (sk2[1:] != sk2[:-1])
            flow_idx = np.empty(n, dtype=np.int64)
            flow_idx[order] = np.cumsum(first) - 1
            reps = order[first]
            flow_fields = np.stack(
                [
                    c_src_ip[reps],
                    c_dst_ip[reps],
                    c_src_port[reps],
                    c_dst_port[reps],
                    proto[reps],
                ],
                axis=1,
            )
        else:
            flow_fields = np.empty((0, 5), dtype=np.int64)
            flow_idx = np.empty(0, dtype=np.int64)
        flow_tuples = [
            FiveTuple(int(r[0]), int(r[1]), int(r[2]), int(r[3]), int(r[4]))
            for r in flow_fields
        ]
        return cls(
            timestamps=timestamps,
            sizes=sizes,
            malicious=malicious,
            pl_matrix=pl_matrix,
            flow_idx=flow_idx,
            flow_tuples=flow_tuples,
            flow_fields=flow_fields,
        )


@dataclass
class BatchReplayOutcome:
    """Raw struct-of-arrays replay outcome (no per-packet objects)."""

    path_codes: np.ndarray  #: int8, indexes :data:`PATH_CODE_NAMES`
    y_true: np.ndarray
    y_pred: np.ndarray
    digests: Dict[int, Digest]  #: packet index → emitted digest
    rate_limited: np.ndarray = None  #: bool, packets shed by the RATE_LIMIT rung

    @property
    def n_packets(self) -> int:
        return int(self.path_codes.shape[0])

    def path_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.path_codes, minlength=len(PATH_CODE_NAMES))
        return {
            name: int(c) for name, c in zip(PATH_CODE_NAMES, counts) if c
        }


def _precompute_pl_labels(
    pipeline: SwitchPipeline, pl_matrix: np.ndarray
) -> Optional[List[int]]:
    """PL whitelist verdict per packet, or None when no PL table."""
    if pipeline.pl_table is None or pipeline.pl_quantizer is None:
        return None
    q = pipeline.pl_quantizer.quantize(pl_matrix)
    matcher = RangeIntervalMatcher(pipeline.pl_table.ruleset)
    return matcher.predict(q).tolist()


def replay_arrays(trace: Trace, pipeline: SwitchPipeline) -> BatchReplayOutcome:
    """Batch-replay *trace* through *pipeline*, returning the SoA outcome.

    Mutates the pipeline's tables, storage, counters, and attached
    controller exactly as the scalar walk would.
    """
    _check_batchable(pipeline)
    if not trace.packets:
        return _empty_outcome()
    return _replay_sequential(
        TraceArrays.from_trace(trace), pipeline, trace.packets.__getitem__
    )


def replay_columns(cols: TraceColumns, pipeline: SwitchPipeline) -> BatchReplayOutcome:
    """Batch-replay columnar packet data — the cluster's shared-memory
    serve path.  Identical pipeline mutations and outcome to
    :func:`replay_arrays` over the equivalent packet list, but no
    :class:`Packet` objects are built except for the rare blue-path
    packets that emit a digest.
    """
    _check_batchable(pipeline)
    if not len(cols):
        return _empty_outcome()
    return _replay_sequential(TraceArrays.from_columns(cols), pipeline, cols.packet_at)


def _check_batchable(pipeline: SwitchPipeline) -> None:
    if type(pipeline).process is not SwitchPipeline.process:
        raise TypeError(
            "batch replay reproduces SwitchPipeline.process exactly; "
            f"{type(pipeline).__name__} overrides the packet walk — replay it "
            "with the scalar engine"
        )


def _empty_outcome() -> BatchReplayOutcome:
    return BatchReplayOutcome(
        path_codes=np.empty(0, dtype=np.int8),
        y_true=np.empty(0, dtype=int),
        y_pred=np.empty(0, dtype=int),
        digests={},
        rate_limited=np.empty(0, dtype=bool),
    )


def _replay_sequential(
    arrays: TraceArrays, pipeline: SwitchPipeline, packet_at
) -> BatchReplayOutcome:
    """The sequential state loop shared by the packet-list and columnar
    entry points; *packet_at* materialises packet *i* on demand (only
    digest-emitting packets ever call it on the columnar path)."""
    n = int(arrays.timestamps.shape[0])
    table = pipeline.store.table
    salt_a, salt_b = table.salts
    size = np.uint64(table.size)
    pos0 = (bi_hash_batch(arrays.flow_fields, salt_a) % size).astype(np.int64).tolist()
    pos1 = (bi_hash_batch(arrays.flow_fields, salt_b) % size).astype(np.int64).tolist()
    pl_labels = _precompute_pl_labels(pipeline, arrays.pl_matrix)

    # Locals for the sequential loop.
    flow_idx = arrays.flow_idx.tolist()
    flow_tuples = arrays.flow_tuples
    ts = arrays.timestamps.tolist()
    sizes = arrays.sizes.tolist()
    cfg = pipeline.config
    n_threshold = cfg.pkt_count_threshold
    timeout = cfg.timeout
    overflow_fail_open = cfg.overflow_policy == "fail_open"
    overflow_fail_closed = cfg.overflow_policy == "fail_closed"
    drop_on = cfg.drop_on_malicious
    degraded = 0
    blacklist = pipeline.blacklist
    bl_entries = blacklist._entries
    bl_lru = blacklist.eviction == "lru"
    bl_track = blacklist.track_hits
    bl_last_hit = blacklist.last_hit
    # Per-flow blacklist membership cache, valid while the table's
    # version is unchanged — skips a FiveTuple hash per packet.
    n_flows = len(flow_tuples)
    flow_bl_ver = [-1] * n_flows
    flow_bl_hit = [False] * n_flows
    t0, t1 = table._tables
    pl_table = pipeline.pl_table
    match_fl = pipeline._match_fl
    emit_digest = pipeline._emit_digest
    mirror = pipeline._mirror_loopback
    path_counts = pipeline.path_counts

    # Python lists: element writes are cheaper than numpy setitem in the
    # per-packet loop; converted to arrays once at the end.
    path_codes = [0] * n
    preds = [0] * n
    digests: Dict[int, Digest] = {}
    rate_limited = [False] * n

    # Rate-limit shed (the mitigation engine's RATE_LIMIT rung): mirrors
    # the scalar wrapper in SwitchPipeline.process — consulted only for
    # non-red packets the walk chose to forward.  Callers guard on
    # `rl_entries` being non-empty, so the bare pipeline pays one dict
    # truthiness check per packet.
    limiter = pipeline.rate_limiter
    rl_entries = limiter._entries if limiter is not None else None
    rl_keep = limiter.keep_one_in if limiter is not None else 0

    def _rl_shed(i, ft, t):
        # Inline RateLimitTable.should_drop.
        ent = rl_entries.get(ft)
        if ent is None:
            return
        ent[0] += 1
        ent[1] = t
        if (ent[0] - 1) % rl_keep:
            limiter.dropped += 1
            rate_limited[i] = True
        else:
            limiter.forwarded += 1

    for i in range(n):
        fi = flow_idx[i]
        ft = flow_tuples[fi]

        # Red: blacklist match (ft is already canonical).
        v = blacklist.version
        if flow_bl_ver[fi] == v:
            bl_hit = flow_bl_hit[fi]
        else:
            bl_hit = ft in bl_entries
            flow_bl_ver[fi] = v
            flow_bl_hit[fi] = bl_hit
        if bl_hit:
            if bl_lru:
                bl_entries.move_to_end(ft)
            if bl_track:
                bl_last_hit[ft] = ts[i]
            path_counts[PATH_RED] += 1
            path_codes[i] = CODE_RED
            preds[i] = 1
            continue

        # Storage lookup / insert with precomputed slot positions.
        p0 = pos0[fi]
        slot = t0[p0]
        if slot is not None and (slot.flow_id is ft or slot.flow_id == ft):
            state = slot.state
        else:
            slot1 = t1[pos1[fi]]
            if slot1 is not None and (slot1.flow_id is ft or slot1.flow_id == ft):
                state = slot1.state
            elif slot is None:
                state = FlowState()
                t0[p0] = Slot(flow_id=ft, state=state)
            elif slot1 is None:
                state = FlowState()
                t1[pos1[fi]] = Slot(flow_id=ft, state=state)
            else:
                # Orange: both candidate slots held by other flows.
                table.collision_count += 1
                path_counts[PATH_ORANGE] += 1
                if slot.state.label != LABEL_UNDECIDED:
                    fresh = FlowState()
                    t0[p0] = Slot(flow_id=ft, state=fresh)
                    table.eviction_count += 1
                    fresh.stats.update_raw(ts[i], sizes[i])
                    mirror()
                    if pl_labels is None:
                        label = LABEL_BENIGN
                    else:
                        label = pl_labels[i]
                        pl_table.lookup_count += 1
                elif overflow_fail_open:
                    # Untracked overflow under a degradation policy — the
                    # scalar walk's overflow_policy branch, vectorised.
                    degraded += 1
                    label = LABEL_BENIGN
                elif overflow_fail_closed:
                    degraded += 1
                    label = LABEL_MALICIOUS
                elif pl_labels is None:
                    label = LABEL_BENIGN
                else:
                    label = pl_labels[i]
                    pl_table.lookup_count += 1
                path_codes[i] = CODE_ORANGE
                pred = 1 if label == LABEL_MALICIOUS else 0
                preds[i] = pred
                if rl_entries and not (drop_on and pred):
                    _rl_shed(i, ft, ts[i])
                continue

        # Purple: flow already classified.
        label = state.label
        if label != LABEL_UNDECIDED:
            path_counts[PATH_PURPLE] += 1
            path_codes[i] = CODE_PURPLE
            pred = 1 if label == LABEL_MALICIOUS else 0
            preds[i] = pred
            if rl_entries and not (drop_on and pred):
                _rl_shed(i, ft, ts[i])
            continue

        stats = state.stats
        t = ts[i]
        last = stats.last_time
        if stats.sizes.count > 0 and last is not None and t - last > timeout:
            # Blue (timeout): classify on what accumulated, re-seed with
            # the late packet, which itself gets the PL verdict.
            path_counts[PATH_BLUE] += 1
            fl_label = match_fl(state)
            state.label = fl_label
            digest = emit_digest(packet_at(i), fl_label)
            mirror()
            if pl_labels is None:
                label = LABEL_BENIGN
            else:
                label = pl_labels[i]
                pl_table.lookup_count += 1
            stats.reset()
            stats.update_raw(t, sizes[i])
            digests[i] = digest
            path_codes[i] = CODE_BLUE
            pred = 1 if label == LABEL_MALICIOUS else 0
            preds[i] = pred
            if rl_entries and not (drop_on and pred):
                _rl_shed(i, ft, t)
            continue

        stats.update_raw(t, sizes[i])

        if stats.sizes.count >= n_threshold:
            # Blue (n-th packet): classify on FL features.
            path_counts[PATH_BLUE] += 1
            fl_label = match_fl(state)
            state.label = fl_label
            digest = emit_digest(packet_at(i), fl_label)
            mirror()
            digests[i] = digest
            path_codes[i] = CODE_BLUE
            pred = 1 if fl_label == LABEL_MALICIOUS else 0
            preds[i] = pred
            if rl_entries and not (drop_on and pred):
                _rl_shed(i, ft, t)
            continue

        # Brown: early packet, PL verdict only.
        path_counts[PATH_BROWN] += 1
        if pl_labels is None:
            label = LABEL_BENIGN
        else:
            label = pl_labels[i]
            pl_table.lookup_count += 1
        path_codes[i] = CODE_BROWN
        pred = 1 if label == LABEL_MALICIOUS else 0
        preds[i] = pred
        if rl_entries and not (drop_on and pred):
            _rl_shed(i, ft, t)

    if degraded:
        pipeline.degraded_packets += degraded

    codes_arr = np.array(path_codes, dtype=np.int8)
    preds_arr = np.array(preds, dtype=int)
    rl_arr = np.array(rate_limited, dtype=bool)
    outcome = BatchReplayOutcome(
        path_codes=codes_arr,
        y_true=arrays.malicious.astype(int),
        y_pred=preds_arr,
        digests=digests,
        rate_limited=rl_arr,
    )
    # Efficacy metering against ground truth (mitigation engine only):
    # leaked = attack packets that went out; collateral = benign packets
    # shed by mitigation itself (red path + rate-limit), which feeds the
    # engine's benign-drop guard.  The scalar path does the same sums in
    # repro.switch.runner.
    controller = pipeline.controller
    engine = getattr(controller, "policy", None)
    if engine is not None:
        mitigated = (codes_arr == CODE_RED) | rl_arr
        dropped = mitigated | (preds_arr != 0) if drop_on else mitigated
        attack = arrays.malicious != 0
        engine.account(
            attack_leaked=int(np.count_nonzero(attack & ~dropped)),
            benign_dropped=int(np.count_nonzero(~attack & mitigated)),
            attack_dropped=int(np.count_nonzero(attack & mitigated)),
        )
    return outcome


def replay_trace_batch(trace: Trace, pipeline: SwitchPipeline):
    """Drop-in replacement for scalar replay: same
    :class:`~repro.switch.runner.ReplayResult`, identical decisions."""
    from repro.switch.runner import ReplayResult

    outcome = replay_arrays(trace, pipeline)
    codes = outcome.path_codes
    n = int(codes.shape[0])
    # Columns first, then one C-level map over the PacketDecision
    # constructor — much cheaper than a per-packet comprehension.
    paths = list(map(PATH_CODE_NAMES.__getitem__, codes.tolist()))
    # Red always drops; any other malicious verdict drops only on the
    # inline deployment; rate-limited packets were shed by the
    # mitigation engine after a forward verdict.
    drop_mask = (codes == CODE_RED) | outcome.rate_limited
    if pipeline.config.drop_on_malicious:
        drop_mask = drop_mask | (outcome.y_pred != 0)
    actions = list(
        map((ACTION_FORWARD, ACTION_DROP).__getitem__, drop_mask.view(np.int8).tolist())
    )
    digest_col: List[Optional[Digest]] = [None] * n
    for i, digest in outcome.digests.items():
        digest_col[i] = digest
    mirrored = (codes == CODE_BLUE).tolist()
    decisions = list(
        map(
            PacketDecision,
            trace.packets,
            paths,
            actions,
            outcome.y_pred.tolist(),
            digest_col,
            mirrored,
            outcome.rate_limited.tolist(),
        )
    )
    result = ReplayResult(
        decisions=decisions, y_true=outcome.y_true, y_pred=outcome.y_pred
    )
    # Seed the result's aggregate caches from the vectorised outcome so
    # path_counts()/dropped_fraction() never re-walk the decision list.
    result._path_counts = outcome.path_counts()
    result._dropped_fraction = float(drop_mask.mean()) if n else 0.0
    return result
