"""Stateful per-flow storage — the register arrays of Fig 4.

Each tracked flow owns one :class:`FlowState`: the flow-label register
(−1 = undecided, 0 = benign, 1 = malicious), packet count, timeout
bookkeeping, and the streaming FL feature accumulators.  The
:class:`FlowStateStore` wraps the double hash tables with the lookup /
insert / collision semantics the pipeline paths need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.datasets.packet import FiveTuple, Packet
from repro.features.streaming import StreamingFlowStats
from repro.switch.hashing import DoubleHashTable, Slot

LABEL_UNDECIDED = -1
LABEL_BENIGN = 0
LABEL_MALICIOUS = 1


@dataclass
class FlowState:
    """Register contents for one tracked flow."""

    label: int = LABEL_UNDECIDED
    stats: StreamingFlowStats = field(default_factory=StreamingFlowStats)

    @property
    def pkt_count(self) -> int:
        return self.stats.count

    @property
    def last_seen(self) -> Optional[float]:
        return self.stats.idle_since

    def is_decided(self) -> bool:
        return self.label in (LABEL_BENIGN, LABEL_MALICIOUS)


class FlowStateStore:
    """Flow-indexed stateful storage with bi-hash double tables.

    Parameters
    ----------
    n_slots:
        Register-array length per hash table (two tables total).
    """

    def __init__(self, n_slots: int = 4096) -> None:
        self.table = DoubleHashTable[FlowState](n_slots)
        self.n_slots = n_slots
        #: Slots reclaimed by the store-pressure fault injector.
        self.forced_evictions = 0
        #: Decided labels wiped by the register-saturation fault injector.
        self.label_wipes = 0

    def lookup(self, five_tuple: FiveTuple) -> Optional[FlowState]:
        slot = self.table.lookup(five_tuple)
        return slot.state if slot is not None else None

    def lookup_or_create(
        self, five_tuple: FiveTuple
    ) -> Tuple[Optional[FlowState], bool, Optional[FlowState]]:
        """State for this flow, creating a slot when absent.

        Returns ``(state, collided, resident_state)``:

        * ``(state, False, None)`` — flow tracked (existing or fresh slot);
        * ``(None, True, resident)`` — both candidate slots are held by
          other flows; *resident* is the first-table occupant whose label
          decides the orange path's behaviour.
        """
        slot = self.table.lookup(five_tuple)
        if slot is not None:
            return slot.state, False, None
        state = FlowState()
        slot, collided = self.table.insert(five_tuple, state)
        if collided:
            return None, True, slot.state
        return slot.state, False, None

    def evict_and_track(self, five_tuple: FiveTuple) -> FlowState:
        """Orange path: replace a decided resident with the new flow."""
        state = FlowState()
        self.table.evict_and_insert(five_tuple, state)
        return state

    def release(self, five_tuple: FiveTuple) -> bool:
        """Controller cleanup: free the flow's slot."""
        return self.table.remove(five_tuple)

    # -- fault hooks (repro.faults) ----------------------------------------

    def _occupied_positions(self, predicate):
        """(table_index, slot_index) of occupied slots passing *predicate*,
        in deterministic table-scan order."""
        return [
            (t, i)
            for t, tbl in enumerate(self.table._tables)
            for i, slot in enumerate(tbl)
            if slot is not None and predicate(slot.state)
        ]

    def force_evict(self, rng, fraction: float, undecided_only: bool = True) -> int:
        """Store-pressure fault: reclaim a seeded *fraction* of slots.

        Evicted flows lose their accumulators and re-track from scratch
        — the behaviour of the register arrays thrashing under a
        flow-count burst.  ``undecided_only`` (default) spares decided
        flows: their verdict register is the valuable state, and slot
        reclaim on the switch prefers unfinished flows.  Returns the
        number of slots reclaimed.
        """
        if undecided_only:
            candidates = self._occupied_positions(
                lambda s: s.label == LABEL_UNDECIDED
            )
        else:
            candidates = self._occupied_positions(lambda s: True)
        if not candidates:
            return 0
        k = min(len(candidates), max(1, round(fraction * len(candidates))))
        picks = rng.choice(len(candidates), size=k, replace=False)
        for j in sorted(int(v) for v in picks):
            t, i = candidates[j]
            self.table._tables[t][i] = None
        self.forced_evictions += k
        return k

    def saturate_labels(self, rng, fraction: float) -> int:
        """Verdict-register saturation fault: wipe decided labels.

        A seeded *fraction* of decided flows revert to undecided — their
        register was reclaimed — so they re-classify on their next
        packet.  Returns the number of labels wiped.
        """
        candidates = self._occupied_positions(
            lambda s: s.label != LABEL_UNDECIDED
        )
        if not candidates:
            return 0
        k = min(len(candidates), max(1, round(fraction * len(candidates))))
        picks = rng.choice(len(candidates), size=k, replace=False)
        for j in sorted(int(v) for v in picks):
            t, i = candidates[j]
            self.table._tables[t][i].state.label = LABEL_UNDECIDED
        self.label_wipes += k
        return k

    @property
    def collision_count(self) -> int:
        return self.table.collision_count

    @property
    def eviction_count(self) -> int:
        """Decided residents evicted on the orange path."""
        return self.table.eviction_count

    def occupancy(self) -> int:
        return self.table.occupancy()

    def bytes_per_slot(self) -> int:
        """SRAM cost of one slot in bytes (resource model input).

        13 B flow ID + 1 B label + 4 B packet count + 8 B last-seen
        timestamp + 8 accumulators × 4 B + first-seen 8 B ≈ 66 B.
        """
        return 13 + 1 + 4 + 8 + 8 * 4 + 8

    def sram_bytes(self) -> int:
        """Total register SRAM across both hash tables."""
        return 2 * self.n_slots * self.bytes_per_slot()
