"""Trace replay and testbed-style measurement (§4.2, App. B.1).

:func:`replay_trace` drives a packet trace through a
:class:`~repro.switch.pipeline.SwitchPipeline` and collects per-packet
ground truth vs verdicts — the paper's per-packet metrics [2].  Two
engines are available behind ``mode=``: the scalar per-packet walk
(``"scalar"``, the reference semantics) and the numpy-vectorised batch
engine (``"batch"``, :mod:`repro.switch.batch`), which produces
bit-identical results and is locked to the scalar engine by the
differential suite in ``tests/switch/test_batch_differential.py``.

:func:`throughput_latency_model` is the line-rate service model standing
in for the 40 Gbps tcpreplay measurement: packets that stay in the data
plane cost one fixed pipeline traversal; designs that detour flows to
the control plane for detection (HorusEye-style) stall those flows on
the controller round trip, which is what the paper's 66.47% throughput
advantage reflects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.trace import Trace
from repro.switch.pipeline import ACTION_DROP, PacketDecision, SwitchPipeline
from repro.telemetry import get_registry, span

#: Fixed pipeline traversal latency (the paper measures ~532.8 ns).
PIPELINE_LATENCY_NS = 532.8
#: Controller round-trip for control-plane detection designs (a LAN
#: round trip to a co-located controller).
CONTROL_PLANE_RTT_NS = 50_000.0


@dataclass
class ReplayResult:
    """Per-packet outcomes of one replay.

    ``path_counts`` and ``dropped_fraction`` are derived aggregates over
    every decision; they are computed once on first access and cached
    (the batch engine seeds them from its vectorised outcome), so
    repeated calls — the throughput model, reporting, telemetry — stay
    O(1) instead of re-walking the decision list.
    """

    decisions: List[PacketDecision]
    y_true: np.ndarray
    y_pred: np.ndarray
    _path_counts: Optional[Dict[str, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _dropped_fraction: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_packets(self) -> int:
        return len(self.decisions)

    def path_counts(self) -> Dict[str, int]:
        if self._path_counts is None:
            counts: Dict[str, int] = {}
            for d in self.decisions:
                counts[d.path] = counts.get(d.path, 0) + 1
            self._path_counts = counts
        return dict(self._path_counts)

    def dropped_fraction(self) -> float:
        if self._dropped_fraction is None:
            if not self.decisions:
                self._dropped_fraction = 0.0
            else:
                self._dropped_fraction = sum(
                    d.action == ACTION_DROP for d in self.decisions
                ) / len(self.decisions)
        return self._dropped_fraction

    def merge(self, others: List["ReplayResult"]) -> "ReplayResult":
        """Concatenate this result with *others*, in order.

        The combined result reads as one replay of the concatenated
        traces: decisions and verdict arrays are joined end-to-end, and
        if every input already has its ``path_counts`` cache the merged
        cache is the summed counts (so chunked offline analyses don't
        re-walk millions of decisions).  ``self`` and *others* are left
        untouched.
        """
        results = [self, *others]
        merged = ReplayResult(
            decisions=[d for r in results for d in r.decisions],
            y_true=np.concatenate([r.y_true for r in results]),
            y_pred=np.concatenate([r.y_pred for r in results]),
        )
        if all(r._path_counts is not None for r in results):
            counts: Dict[str, int] = {}
            for r in results:
                for path, c in r._path_counts.items():
                    counts[path] = counts.get(path, 0) + c
            merged._path_counts = counts
        return merged


#: Replay engine names accepted by :func:`replay_trace`.
REPLAY_MODES = ("scalar", "batch")


def _account_mitigation(
    pipeline: SwitchPipeline, decisions: List[PacketDecision]
) -> None:
    """Scalar-path efficacy metering for an attached mitigation engine:
    the same per-replay ground-truth sums the batch engine computes at
    the end of :func:`repro.switch.batch._replay_sequential`."""
    controller = pipeline.controller
    engine = getattr(controller, "policy", None)
    if engine is None:
        return
    attack_leaked = benign_dropped = attack_dropped = 0
    for d in decisions:
        mitigated = d.path == "red" or d.rate_limited
        if d.packet.malicious:
            if mitigated:
                attack_dropped += 1
            elif d.action != ACTION_DROP:
                attack_leaked += 1
        elif mitigated:
            benign_dropped += 1
    engine.account(
        attack_leaked=attack_leaked,
        benign_dropped=benign_dropped,
        attack_dropped=attack_dropped,
    )


def _publish_replay_telemetry(
    registry,
    pipeline: SwitchPipeline,
    before: Dict[str, int],
) -> None:
    """Emit this replay's data-plane counter deltas plus level gauges.

    Counters come from :meth:`SwitchPipeline.telemetry_counters` (and
    the attached controller's), diffed against the pre-replay snapshot
    so multiple replays on one pipeline accumulate correctly.  Both
    engines mutate the same pipeline objects, so the emitted values are
    engine-independent by construction.
    """
    after = dict(pipeline.telemetry_counters())
    if pipeline.controller is not None:
        after.update(pipeline.controller.telemetry_counters())
    for name, value in after.items():
        delta = value - before.get(name, 0)
        if delta:
            registry.counter(name).inc(delta)
    for name, value in pipeline.telemetry_gauges().items():
        registry.gauge(name).set(value)


def replay_trace(
    trace: Trace, pipeline: SwitchPipeline, mode: str = "scalar"
) -> ReplayResult:
    """Run every packet of *trace* through *pipeline* in arrival order.

    ``mode="scalar"`` walks the six-path pipeline one packet at a time;
    ``mode="batch"`` precomputes hashes, quantized feature matrices, and
    whitelist verdicts for the whole trace and resolves only the
    sequential state in a tight loop — same outputs, much faster.

    When telemetry is enabled (:mod:`repro.telemetry`), the replay runs
    under a ``replay`` span and publishes the pipeline's and
    controller's counter deltas plus occupancy gauges afterwards; with
    the default null registry the only cost is one ``enabled`` check.
    """
    if mode not in REPLAY_MODES:
        raise ValueError(f"mode must be one of {REPLAY_MODES}, got {mode!r}")
    registry = get_registry()
    before: Dict[str, int] = {}
    if registry.enabled:
        before = dict(pipeline.telemetry_counters())
        if pipeline.controller is not None:
            before.update(pipeline.controller.telemetry_counters())
    with span("replay", mode=mode, packets=len(trace)):
        if mode == "batch" and type(pipeline).process is SwitchPipeline.process:
            from repro.switch.batch import replay_trace_batch

            result = replay_trace_batch(trace, pipeline)
        else:
            # Pipeline subclasses with a custom packet walk (e.g. the
            # multipoint extension) always take the scalar engine the
            # walk defines.
            decisions = [pipeline.process(pkt) for pkt in trace]
            y_true = np.array([int(d.packet.malicious) for d in decisions], dtype=int)
            y_pred = np.array([d.predicted_malicious for d in decisions], dtype=int)
            result = ReplayResult(decisions=decisions, y_true=y_true, y_pred=y_pred)
            _account_mitigation(pipeline, decisions)
    if registry.enabled:
        _publish_replay_telemetry(registry, pipeline, before)
        registry.counter("replay.packets").inc(len(trace))
    return result


@dataclass(frozen=True)
class ThroughputReport:
    """Line-rate service model outputs (App. B.1)."""

    offered_gbps: float
    achieved_gbps: float
    mean_latency_ns: float

    @property
    def efficiency(self) -> float:
        return self.achieved_gbps / self.offered_gbps if self.offered_gbps else 0.0


def throughput_latency_model(
    result: ReplayResult,
    offered_gbps: float = 40.0,
    control_plane_detection: bool = False,
    control_plane_fraction: Optional[float] = None,
) -> ThroughputReport:
    """Apply the service model to a replay.

    With in-data-plane detection (iGuard) every packet costs one
    pipeline traversal and the link runs at essentially line rate (the
    only loss is the mirrored loopback packets re-using ingress
    bandwidth).  With control-plane detection, the packets that needed a
    controller verdict (the classification-time packets — the blue-path
    fraction, or an explicit *control_plane_fraction*) stall on the
    controller RTT, cutting effective throughput.
    """
    n = max(result.n_packets, 1)
    paths = result.path_counts()
    blue_fraction = paths.get("blue", 0) / n
    green_fraction = paths.get("green", 0) / n

    if control_plane_detection:
        detour = control_plane_fraction if control_plane_fraction is not None else blue_fraction
        mean_latency = (
            PIPELINE_LATENCY_NS * (1.0 - detour)
            + (PIPELINE_LATENCY_NS + CONTROL_PLANE_RTT_NS) * detour
        )
        achieved = offered_gbps * PIPELINE_LATENCY_NS / mean_latency
    else:
        mean_latency = PIPELINE_LATENCY_NS
        # Loopback mirrors consume a sliver of ingress capacity.
        achieved = offered_gbps * (1.0 - 0.5 * green_fraction / max(1.0, n / n))
        achieved = min(achieved, offered_gbps)
    return ThroughputReport(
        offered_gbps=offered_gbps,
        achieved_gbps=float(achieved),
        mean_latency_ns=float(mean_latency),
    )
