"""Behavioural Tofino data-plane simulator: match-action tables, TCAM
range rules with prefix expansion, bi-hash double-hashed flow state, the
six-path packet pipeline of Fig 4, the control plane, and the resource
accounting model behind Table 1."""

from repro.switch.batch import (
    BatchReplayOutcome,
    RangeIntervalMatcher,
    TraceArrays,
    bi_hash_batch,
    replay_arrays,
    replay_trace_batch,
)
from repro.switch.controller import (
    FEATURE_DIGEST_EXTRA_BYTES,
    Controller,
    ControllerStats,
)
from repro.switch.hashing import DoubleHashTable, Slot, bi_hash
from repro.switch.multipoint import (
    Checkpoint,
    MultiCheckpointPipeline,
    build_checkpoint_rules,
)
from repro.switch.p4gen import (
    generate_p4_program,
    generate_table_entries,
    write_artifacts,
)
from repro.switch.pipeline import (
    ACTION_DROP,
    ACTION_FORWARD,
    PATH_BLUE,
    PATH_BROWN,
    PATH_GREEN,
    PATH_ORANGE,
    PATH_PURPLE,
    PATH_RED,
    Digest,
    PacketDecision,
    PipelineConfig,
    SwitchPipeline,
)
from repro.switch.range_encoding import (
    prefix_count,
    range_to_prefixes,
    rule_tcam_entries,
    ruleset_tcam_entries,
)
from repro.switch.resources import (
    PIPELINE_STAGES,
    ResourceReport,
    memory_fraction,
    resource_report,
)
from repro.switch.runner import (
    PIPELINE_LATENCY_NS,
    REPLAY_MODES,
    ReplayResult,
    ThroughputReport,
    replay_trace,
    throughput_latency_model,
)
from repro.switch.storage import (
    LABEL_BENIGN,
    LABEL_MALICIOUS,
    LABEL_UNDECIDED,
    FlowState,
    FlowStateStore,
)
from repro.switch.tables import BlacklistTable, WhitelistTable

__all__ = [
    "ACTION_DROP",
    "ACTION_FORWARD",
    "FEATURE_DIGEST_EXTRA_BYTES",
    "LABEL_BENIGN",
    "LABEL_MALICIOUS",
    "LABEL_UNDECIDED",
    "PATH_BLUE",
    "PATH_BROWN",
    "PATH_GREEN",
    "PATH_ORANGE",
    "PATH_PURPLE",
    "PATH_RED",
    "PIPELINE_LATENCY_NS",
    "PIPELINE_STAGES",
    "REPLAY_MODES",
    "BatchReplayOutcome",
    "BlacklistTable",
    "Checkpoint",
    "Controller",
    "ControllerStats",
    "Digest",
    "DoubleHashTable",
    "FlowState",
    "FlowStateStore",
    "MultiCheckpointPipeline",
    "PacketDecision",
    "PipelineConfig",
    "RangeIntervalMatcher",
    "ReplayResult",
    "ResourceReport",
    "Slot",
    "SwitchPipeline",
    "ThroughputReport",
    "TraceArrays",
    "WhitelistTable",
    "bi_hash",
    "bi_hash_batch",
    "build_checkpoint_rules",
    "generate_p4_program",
    "generate_table_entries",
    "memory_fraction",
    "prefix_count",
    "range_to_prefixes",
    "replay_arrays",
    "replay_trace",
    "replay_trace_batch",
    "resource_report",
    "rule_tcam_entries",
    "ruleset_tcam_entries",
    "throughput_latency_model",
    "write_artifacts",
]
