"""Evaluation: from-scratch metrics, grid search, the testbed reward,
experiment harnesses for every figure/table, and reporting helpers."""

from repro.eval.gridsearch import (
    IFOREST_GRID,
    IGUARD_GRID,
    SearchResult,
    grid_search_iforest,
    grid_search_iguard,
    tune_detector_threshold,
)
from repro.eval.harness import (
    ADVERSARIAL_VARIANTS,
    CPU_MODELS,
    TESTBED_MODELS,
    CpuExperimentResult,
    TestbedConfig,
    TestbedResult,
    build_pipeline,
    run_adversarial_experiment,
    run_cpu_experiment,
    run_testbed_experiment,
)
from repro.eval.metrics import (
    ConfusionCounts,
    DetectionMetrics,
    confusion_counts,
    detection_metrics,
    f1_score,
    macro_f1,
    pr_auc,
    roc_auc,
    roc_curve,
)
from repro.eval.reporting import (
    format_distribution_summary,
    format_improvement_summary,
    format_metric_table,
    histogram_overlap,
)
from repro.eval.reward import testbed_reward

__all__ = [
    "ADVERSARIAL_VARIANTS",
    "CPU_MODELS",
    "IFOREST_GRID",
    "IGUARD_GRID",
    "TESTBED_MODELS",
    "ConfusionCounts",
    "CpuExperimentResult",
    "DetectionMetrics",
    "SearchResult",
    "TestbedConfig",
    "TestbedResult",
    "build_pipeline",
    "confusion_counts",
    "detection_metrics",
    "f1_score",
    "format_distribution_summary",
    "format_improvement_summary",
    "format_metric_table",
    "grid_search_iforest",
    "grid_search_iguard",
    "histogram_overlap",
    "macro_f1",
    "pr_auc",
    "roc_auc",
    "roc_curve",
    "run_adversarial_experiment",
    "run_cpu_experiment",
    "run_testbed_experiment",
    "testbed_reward",
    "tune_detector_threshold",
]
