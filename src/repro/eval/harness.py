"""End-to-end experiment protocols for the paper's evaluation.

Three harnesses mirror the paper's three experimental settings:

* :func:`run_cpu_experiment` (§4.1, Figs 5/8): full Magnifier feature
  set, grid-searched best versions of iForest, Magnifier, and iGuard,
  reported on the held-out test set.
* :func:`run_testbed_experiment` (§4.2, Figs 6/9, Table 1): the 13
  switch-extractable FL features truncated at (n, δ), models compiled to
  quantised whitelist rules, the test traffic replayed packet-by-packet
  through the data-plane simulator, per-packet metrics and switch
  resources reported.
* :func:`run_adversarial_experiment` (Tables 2/3): the testbed protocol
  under low-rate, poisoning, and evasion transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deployment import compile_pl_artifacts, quantize_ruleset
from repro.core.hypercube import compile_ruleset
from repro.core.iguard import IGuard
from repro.core.rules import RuleSet
from repro.datasets.adversarial import (
    evasion_flows,
    low_rate_flows,
    poison_training_flows,
)
from repro.datasets.attacks import generate_attack_flows
from repro.datasets.splits import DatasetSplit, TraceSplit, make_attack_split, make_trace_split
from repro.eval.gridsearch import (
    grid_search_iforest,
    grid_search_iguard,
    tune_detector_threshold,
)
from repro.eval.metrics import DetectionMetrics, detection_metrics
from repro.eval.reward import testbed_reward
from repro.features.flow_features import FlowFeatureExtractor
from repro.forest.iforest import IsolationForest
from repro.forest.rules import ScoreLabeledForest
from repro.nn.ensemble import AutoencoderEnsemble
from repro.switch.controller import Controller
from repro.switch.pipeline import PipelineConfig, SwitchPipeline
from repro.switch.resources import ResourceReport, memory_fraction, resource_report
from repro.switch.runner import ReplayResult, replay_trace
from repro.telemetry import get_registry, span
from repro.utils.box import Box
from repro.utils.rng import SeedLike, as_rng, spawn_seeds

CPU_MODELS = ("iforest", "magnifier", "iguard")
TESTBED_MODELS = ("iforest", "iguard")


# --------------------------------------------------------------------------
# CPU experiments (§4.1)
# --------------------------------------------------------------------------


@dataclass
class CpuExperimentResult:
    """Test-set metrics of each model's grid-searched best version."""

    attack: str
    metrics: Dict[str, DetectionMetrics]
    best_params: Dict[str, Dict]


def run_cpu_experiment(
    attack: str,
    models: Sequence[str] = CPU_MODELS,
    n_benign_flows: int = 600,
    iforest_grid: Optional[Dict] = None,
    iguard_grid: Optional[Dict] = None,
    seed: SeedLike = None,
) -> CpuExperimentResult:
    """Fig 5/8 protocol for one attack."""
    rng = as_rng(seed)
    split_seed, search_seed, oracle_seed = spawn_seeds(rng, 3)
    with span("dataset", attack=attack):
        split = make_attack_split(
            attack,
            n_benign_flows=n_benign_flows,
            feature_set="magnifier",
            seed=split_seed,
        )
    metrics: Dict[str, DetectionMetrics] = {}
    params: Dict[str, Dict] = {}

    oracle: Optional[AutoencoderEnsemble] = None
    if "magnifier" in models or "iguard" in models:
        with span("train", model="oracle"):
            oracle = AutoencoderEnsemble(seed=oracle_seed).fit(split.x_train)

    if "iforest" in models:
        result = grid_search_iforest(
            split.x_train, split.x_val, split.y_val, grid=iforest_grid, seed=search_seed
        )
        forest: IsolationForest = result.model
        metrics["iforest"] = detection_metrics(
            split.y_test,
            forest.predict(split.x_test),
            forest.decision_function(split.x_test),
        )
        params["iforest"] = result.params

    if "magnifier" in models:
        # Magnifier's only tunable here is its RMSE threshold T: swept via
        # the margin on validation macro F1.
        best_margin, best_f1 = 1.0, -1.0
        for margin in (0.8, 1.0, 1.2, 1.6, 2.0):
            oracle.calibrate(split.x_train, margin=margin)
            from repro.eval.metrics import macro_f1

            f1 = macro_f1(split.y_val, oracle.predict(split.x_val))
            if f1 > best_f1:
                best_margin, best_f1 = margin, f1
        oracle.calibrate(split.x_train, margin=best_margin)
        metrics["magnifier"] = detection_metrics(
            split.y_test,
            oracle.predict(split.x_test),
            oracle.anomaly_scores(split.x_test),
        )
        params["magnifier"] = {"threshold_margin": best_margin}
        oracle.calibrate(split.x_train, margin=1.0)  # reset for iGuard's sweep

    if "iguard" in models:
        result = grid_search_iguard(
            split.x_train,
            split.x_val,
            split.y_val,
            grid=iguard_grid,
            oracle=oracle,
            seed=search_seed,
        )
        model: IGuard = result.model
        metrics["iguard"] = detection_metrics(
            split.y_test, model.predict(split.x_test), model.vote_fraction(split.x_test)
        )
        params["iguard"] = result.params

    return CpuExperimentResult(attack=attack, metrics=metrics, best_params=params)


# --------------------------------------------------------------------------
# Testbed experiments (§4.2)
# --------------------------------------------------------------------------


@dataclass
class TestbedConfig:
    """Deployment and training knobs for the switch experiments."""

    n_benign_flows: int = 500
    pkt_count_threshold: int = 8
    timeout: float = 5.0
    quantizer_bits: int = 16
    rule_cells: int = 1024
    n_slots: int = 8192
    use_pl_model: bool = True
    #: Replay engine for the data-plane simulator — "batch" (vectorised,
    #: differentially verified against the scalar walk) or "scalar".
    replay_mode: str = "batch"
    # Fixed model configurations (the pre-searched best versions; the
    # adversarial and resource benches reuse them so runs stay laptop-fast).
    iforest_params: Dict = field(
        default_factory=lambda: {"n_trees": 100, "subsample_size": 128, "contamination": 0.1}
    )
    iguard_params: Dict = field(
        default_factory=lambda: {
            "n_trees": 15,
            "subsample_size": 96,
            "k_aug": 96,
            "tau_split": 0.0,
            "threshold_margin": 2.0,
            "distil_margin": 1.2,
        }
    )


@dataclass
class TestbedResult:
    """One model's switch deployment outcome for one attack."""

    attack: str
    model: str
    metrics: DetectionMetrics
    resources: ResourceReport
    reward: float
    replay: ReplayResult
    pipeline: SwitchPipeline
    n_rules: int


def _train_features(
    split: TraceSplit, config: TestbedConfig
) -> Tuple[np.ndarray, FlowFeatureExtractor]:
    extractor = FlowFeatureExtractor(
        feature_set="switch",
        pkt_count_threshold=config.pkt_count_threshold,
        timeout=config.timeout,
    )
    x_train, _ = extractor.extract_flows(split.train_flows)
    return x_train, extractor


def _compile_model_rules(
    model_name: str,
    x_train: np.ndarray,
    config: TestbedConfig,
    seed: SeedLike,
) -> Tuple[RuleSet, object]:
    """Fit the named model on switch features and compile its rules."""
    rng = as_rng(seed)
    fit_seed, rule_seed = spawn_seeds(rng, 2)
    if model_name == "iforest":
        with span("train", model="iforest"):
            forest = IsolationForest(seed=fit_seed, **config.iforest_params).fit(
                x_train
            )
            labeled = ScoreLabeledForest(forest)
        with span("compile", model="iforest"):
            box = Box.from_data(x_train, pad=0.05)
            ruleset = compile_ruleset(
                labeled,
                feature_box=box,
                max_cells=config.rule_cells,
                x_ref=x_train,
                seed=rule_seed,
            )
        return ruleset, labeled
    if model_name == "iguard":
        with span("train", model="iguard"):
            model = IGuard(seed=fit_seed, **config.iguard_params).fit(x_train)
        with span("compile", model="iguard"):
            ruleset = model.to_rules(max_cells=config.rule_cells, seed=rule_seed)
        return ruleset, model
    raise ValueError(f"model must be one of {TESTBED_MODELS}, got {model_name!r}")


def build_pipeline(
    model_name: str,
    split: TraceSplit,
    config: Optional[TestbedConfig] = None,
    seed: SeedLike = None,
) -> Tuple[SwitchPipeline, Controller, object]:
    """Train, compile, quantise, and install one model into a pipeline."""
    config = config or TestbedConfig()
    rng = as_rng(seed)
    model_seed, pl_seed = spawn_seeds(rng, 2)

    with span("features"):
        x_train, _extractor = _train_features(split, config)
    ruleset, model = _compile_model_rules(model_name, x_train, config, model_seed)

    with span("quantize", model=model_name):
        # Log-spaced codes, fit over the training data plus every *finite*
        # rule boundary, so rule edges and out-of-distribution traffic
        # quantise distinctly (infinite bounds map to the sentinel codes).
        fl_rules, fl_quantizer = quantize_ruleset(
            ruleset, x_train, bits=config.quantizer_bits
        )

        pl_rules = pl_quantizer = None
        if config.use_pl_model:
            pl_rules, pl_quantizer = compile_pl_artifacts(
                split.train_flows, bits=config.quantizer_bits, seed=pl_seed
            )

    pipeline = SwitchPipeline(
        fl_rules=fl_rules,
        fl_quantizer=fl_quantizer,
        pl_rules=pl_rules,
        pl_quantizer=pl_quantizer,
        config=PipelineConfig(
            pkt_count_threshold=config.pkt_count_threshold,
            timeout=config.timeout,
            n_slots=config.n_slots,
        ),
    )
    controller = Controller(pipeline)
    return pipeline, controller, model


def run_testbed_experiment(
    attack: str,
    model_name: str,
    config: Optional[TestbedConfig] = None,
    split: Optional[TraceSplit] = None,
    seed: SeedLike = None,
) -> TestbedResult:
    """Fig 6/9 + Table 1 protocol for one (attack, model) pair."""
    config = config or TestbedConfig()
    rng = as_rng(seed)
    split_seed, build_seed = spawn_seeds(rng, 2)
    if split is None:
        with span("dataset", attack=attack):
            split = make_trace_split(
                attack, n_benign_flows=config.n_benign_flows, seed=split_seed
            )
    pipeline, _controller, _model = build_pipeline(
        model_name, split, config=config, seed=build_seed
    )
    replay = replay_trace(split.test_trace, pipeline, mode=config.replay_mode)
    with span("metrics"):
        metrics = detection_metrics(
            replay.y_true, replay.y_pred, replay.y_pred.astype(float)
        )
        resources = resource_report(pipeline)
        reward = testbed_reward(metrics, memory_fraction(resources))
    registry = get_registry()
    if registry.enabled:
        registry.counter("eval.testbed_runs").inc()
        registry.gauge("eval.macro_f1").set(metrics.macro_f1)
        registry.gauge("eval.roc_auc").set(metrics.roc_auc)
        registry.gauge("eval.pr_auc").set(metrics.pr_auc)
        registry.gauge("eval.reward").set(reward)
        registry.event(
            "testbed.result",
            attack=attack,
            model=model_name,
            macro_f1=round(metrics.macro_f1, 6),
            reward=round(reward, 6),
            n_rules=len(pipeline.fl_table),
        )
    return TestbedResult(
        attack=attack,
        model=model_name,
        metrics=metrics,
        resources=resources,
        reward=reward,
        replay=replay,
        pipeline=pipeline,
        n_rules=len(pipeline.fl_table),
    )


# --------------------------------------------------------------------------
# Adversarial experiments (Tables 2 and 3)
# --------------------------------------------------------------------------

ADVERSARIAL_VARIANTS = {
    # name: (attack transform on flows, training poison fraction)
    "lowrate_100": (lambda flows, seed: low_rate_flows(flows, 100.0), 0.0),
    # "1:2" / "1:4" — one benign-mimicking filler per 2 / 4 malicious
    # packets (HorusEye's benign:malicious mixing ratios).
    "evasion_1to2": (lambda flows, seed: evasion_flows(flows, 0.5, seed=seed), 0.0),
    "evasion_1to4": (lambda flows, seed: evasion_flows(flows, 0.25, seed=seed), 0.0),
    "poison_2pct": (None, 0.02),
    "poison_10pct": (None, 0.10),
}


def run_adversarial_experiment(
    attack: str,
    model_name: str,
    variant: str,
    config: Optional[TestbedConfig] = None,
    seed: SeedLike = None,
) -> TestbedResult:
    """Tables 2/3 protocol: the testbed pipeline under an adversary.

    * low-rate / evasion — the *test* attack flows are reshaped by the
      adversary before replay;
    * poisoning — the benign *training* capture is contaminated with
      attack flows before the models fit.
    """
    if variant not in ADVERSARIAL_VARIANTS:
        raise KeyError(
            f"unknown variant {variant!r}; options: {sorted(ADVERSARIAL_VARIANTS)}"
        )
    transform, poison_fraction = ADVERSARIAL_VARIANTS[variant]
    config = config or TestbedConfig()
    rng = as_rng(seed)
    split_seed, transform_seed, poison_seed, run_seed = spawn_seeds(rng, 4)

    with span("dataset", attack=attack, variant=variant):
        split = make_trace_split(
            attack, n_benign_flows=config.n_benign_flows, seed=split_seed
        )

    if transform is not None:
        flows = list(split.test_trace.flows().values())
        benign = [f for f in flows if not any(p.malicious for p in f)]
        malicious = [f for f in flows if any(p.malicious for p in f)]
        malicious = transform(malicious, transform_seed)
        from repro.datasets.trace import flows_to_trace

        split = TraceSplit(
            train_flows=split.train_flows,
            val_flows=split.val_flows,
            val_labels=split.val_labels,
            test_trace=flows_to_trace(benign + malicious),
            attack_name=split.attack_name,
        )

    if poison_fraction > 0.0:
        poison_flows = generate_attack_flows(
            attack, max(8, int(len(split.train_flows) * poison_fraction * 2)), seed=poison_seed
        )
        split = TraceSplit(
            train_flows=poison_training_flows(
                split.train_flows, poison_flows, poison_fraction, seed=poison_seed
            ),
            val_flows=split.val_flows,
            val_labels=split.val_labels,
            test_trace=split.test_trace,
            attack_name=split.attack_name,
        )

    return run_testbed_experiment(
        attack, model_name, config=config, split=split, seed=run_seed
    )
