"""Fixed-width reporting helpers.

Every benchmark prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting consistent so
EXPERIMENTS.md entries are diffable run to run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.eval.metrics import DetectionMetrics


def format_metric_table(
    rows: Mapping[str, Mapping[str, DetectionMetrics]],
    models: Sequence[str],
    title: str = "",
) -> str:
    """Attack × model grid of (F1, ROCAUC, PRAUC) triples.

    *rows* maps attack name → model name → metrics.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'attack':<22s}" + "".join(
        f"{m + ' F1':>12s}{m + ' ROC':>12s}{m + ' PR':>12s}" for m in models
    )
    lines.append(header)
    lines.append("-" * len(header))
    for attack, per_model in rows.items():
        cells = []
        for model in models:
            m = per_model.get(model)
            if m is None:
                cells.append(f"{'--':>12s}{'--':>12s}{'--':>12s}")
            else:
                cells.append(f"{m.macro_f1:>12.3f}{m.roc_auc:>12.3f}{m.pr_auc:>12.3f}")
        lines.append(f"{attack:<22s}" + "".join(cells))
    return "\n".join(lines)


def format_improvement_summary(
    rows: Mapping[str, Mapping[str, DetectionMetrics]],
    baseline: str,
    challenger: str,
) -> str:
    """Min-max relative improvement of challenger over baseline, the way
    the paper summarises (e.g. "improves macro F1 by 5-48%")."""
    deltas = {"macro_f1": [], "roc_auc": [], "pr_auc": []}
    for per_model in rows.values():
        base, chal = per_model.get(baseline), per_model.get(challenger)
        if base is None or chal is None:
            continue
        for key in deltas:
            b = getattr(base, key)
            c = getattr(chal, key)
            if b > 0:
                deltas[key].append(100.0 * (c - b) / b)
    lines = [f"{challenger} vs {baseline} (relative %):"]
    for key, values in deltas.items():
        if values:
            lines.append(f"  {key:<9s} {min(values):+7.1f}% .. {max(values):+7.1f}%")
    return "\n".join(lines)


def format_distribution_summary(
    name: str, benign: "np.ndarray", malicious: "np.ndarray", n_bins: int = 10
) -> str:
    """Histogram-style summary of two score distributions (Fig 2 style:
    expected path lengths of benign vs malicious samples) with an overlap
    coefficient."""
    import numpy as np

    lo = min(float(benign.min()), float(malicious.min()))
    hi = max(float(benign.max()), float(malicious.max()))
    edges = np.linspace(lo, hi, n_bins + 1)
    h_b, _ = np.histogram(benign, bins=edges, density=False)
    h_m, _ = np.histogram(malicious, bins=edges, density=False)
    p_b = h_b / max(h_b.sum(), 1)
    p_m = h_m / max(h_m.sum(), 1)
    overlap = float(np.minimum(p_b, p_m).sum())
    lines = [
        f"{name}: benign mean={benign.mean():.2f} malicious mean={malicious.mean():.2f} "
        f"overlap={overlap:.2f}"
    ]
    for i in range(n_bins):
        bar_b = "#" * int(round(30 * p_b[i]))
        bar_m = "*" * int(round(30 * p_m[i]))
        lines.append(
            f"  [{edges[i]:7.2f},{edges[i+1]:7.2f})  benign {bar_b:<30s} malicious {bar_m}"
        )
    return "\n".join(lines)


def format_stage_times(report: Mapping) -> str:
    """One line per top-level telemetry span: where a run spent its time.

    *report* is a telemetry report document
    (:func:`repro.telemetry.build_report` /
    :func:`repro.telemetry.load_report`); benchmarks print this compact
    form under their tables, the full tree is in ``repro report``.
    """
    spans = report.get("spans") or []
    if not spans:
        return "stage times: (no spans recorded)"
    parts = []
    for root in spans:
        parts.append(f"{root['name']}={float(root.get('duration_s', 0.0)):.3f}s")
        for child in root.get("children", ()):
            parts.append(
                f"  {child['name']}={float(child.get('duration_s', 0.0)):.3f}s"
            )
    return "stage times: " + " ".join(p.strip() for p in parts)


def histogram_overlap(benign, malicious, n_bins: int = 20) -> float:
    """Overlap coefficient of two sample distributions in [0, 1]."""
    import numpy as np

    benign = np.asarray(benign, dtype=float)
    malicious = np.asarray(malicious, dtype=float)
    lo = min(benign.min(), malicious.min())
    hi = max(benign.max(), malicious.max())
    if hi <= lo:
        return 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    p_b, _ = np.histogram(benign, bins=edges, density=False)
    p_m, _ = np.histogram(malicious, bins=edges, density=False)
    p_b = p_b / max(p_b.sum(), 1)
    p_m = p_m / max(p_m.sum(), 1)
    return float(np.minimum(p_b, p_m).sum())
