"""Grid search over model hyperparameters on the validation set (§4.1).

The paper tunes iForest on (t, Ψ, contamination) and iGuard on
(t, Ψ, k, T), maximising the validation macro F1 (motivation study) or
the mean of macro F1 / PRAUC / ROCAUC (CPU experiments).  Both searches
exploit structure to stay cheap:

* iForest's anomaly scores do not depend on the contamination parameter,
  so each (t, Ψ) forest is fitted once and the threshold swept over the
  training-score quantiles.
* iGuard's dominant cost is the autoencoder ensemble; it is trained once
  per dataset and shared across all forest configurations, with T swept
  through threshold margins (recalibration only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.iguard import IGuard
from repro.eval.metrics import DetectionMetrics, detection_metrics
from repro.forest.iforest import IsolationForest
from repro.nn.ensemble import AutoencoderEnsemble
from repro.telemetry import get_registry, span
from repro.utils.rng import SeedLike, as_rng, spawn_seeds

#: Default search spaces — intentionally compact so the full benchmark
#: suite runs on a laptop; both are constructor arguments everywhere.
IFOREST_GRID = {
    "n_trees": (50, 100),
    "subsample_size": (64, 128, 256),
    "contamination": (0.02, 0.05, 0.1, 0.15, 0.2, 0.3),
}

IGUARD_GRID = {
    "n_trees": (15,),
    "subsample_size": (96,),
    "k_aug": (96,),
    "threshold_margin": (1.6, 2.0, 2.4),
    "distil_margin": (1.0, 1.2, 1.5),
}


@dataclass
class SearchResult:
    """Winning configuration with its validation and test metrics."""

    params: Dict
    model: object
    val_metrics: DetectionMetrics
    test_metrics: Optional[DetectionMetrics] = None


VALID_OBJECTIVES = ("macro_f1", "mean3")


def _objective(m: DetectionMetrics, objective: str) -> float:
    if objective == "macro_f1":
        return m.macro_f1
    if objective == "mean3":
        return m.mean_of_three
    raise ValueError(f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}")


def _check_objective(objective: str) -> None:
    if objective not in VALID_OBJECTIVES:
        raise ValueError(f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}")


def _record_config(registry, model: str, params: Dict, score: float, improved: bool) -> None:
    """Grid-search progress: one counter/event per evaluated config."""
    if not registry.enabled:
        return
    registry.counter("gridsearch.configs").inc()
    registry.counter(f"gridsearch.{model}.configs").inc()
    if improved:
        registry.gauge(f"gridsearch.{model}.best_objective").set(score)
    registry.event(
        "gridsearch.config",
        model=model,
        score=round(score, 6),
        improved=improved,
        **params,
    )


def grid_search_iforest(
    x_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    grid: Optional[Dict] = None,
    objective: str = "macro_f1",
    seed: SeedLike = None,
) -> SearchResult:
    """Tune a conventional iForest on (t, Ψ, contamination)."""
    _check_objective(objective)
    grid = dict(IFOREST_GRID if grid is None else grid)
    rng = as_rng(seed)
    registry = get_registry()
    best: Optional[SearchResult] = None
    with span("gridsearch", model="iforest"):
        for n_trees in grid["n_trees"]:
            for psi in grid["subsample_size"]:
                forest = IsolationForest(
                    n_trees=n_trees,
                    subsample_size=psi,
                    contamination=grid["contamination"][0],
                    seed=int(rng.integers(2**31 - 1)),
                ).fit(x_train)
                scores = forest.decision_function(x_val)
                train_scores = forest.decision_function(x_train)
                for contamination in grid["contamination"]:
                    threshold = float(np.quantile(train_scores, 1.0 - contamination))
                    pred = (scores > threshold).astype(int)
                    metrics = detection_metrics(y_val, pred, scores)
                    params = {
                        "n_trees": n_trees,
                        "subsample_size": psi,
                        "contamination": contamination,
                    }
                    score = _objective(metrics, objective)
                    improved = best is None or score > _objective(
                        best.val_metrics, objective
                    )
                    _record_config(registry, "iforest", params, score, improved)
                    if improved:
                        forest.contamination = contamination
                        forest.threshold_ = threshold
                        best = SearchResult(
                            params=params, model=forest, val_metrics=metrics
                        )
        # Refit the winner at its own contamination so model state matches params.
        winner = IsolationForest(seed=int(rng.integers(2**31 - 1)), **best.params).fit(
            x_train
        )
    best.model = winner
    return best


def grid_search_iguard(
    x_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    grid: Optional[Dict] = None,
    objective: str = "mean3",
    oracle: Optional[AutoencoderEnsemble] = None,
    seed: SeedLike = None,
) -> SearchResult:
    """Tune iGuard on (t, Ψ, k, T) with a shared pre-trained oracle."""
    _check_objective(objective)
    grid = dict(IGUARD_GRID if grid is None else grid)
    rng = as_rng(seed)
    registry = get_registry()
    if oracle is None:
        oracle = AutoencoderEnsemble(seed=int(rng.integers(2**31 - 1)))
        oracle.fit(x_train)
    best: Optional[SearchResult] = None
    with span("gridsearch", model="iguard"):
        for n_trees in grid["n_trees"]:
            for psi in grid["subsample_size"]:
                for k_aug in grid["k_aug"]:
                    for t_margin in grid["threshold_margin"]:
                        oracle.calibrate(x_train, margin=t_margin)
                        for d_margin in grid["distil_margin"]:
                            model = IGuard(
                                n_trees=n_trees,
                                subsample_size=psi,
                                k_aug=k_aug,
                                tau_split=0.0,
                                threshold_margin=t_margin,
                                distil_margin=d_margin,
                                oracle=oracle,
                                oracle_prefit=True,
                                seed=int(rng.integers(2**31 - 1)),
                            ).fit(x_train)
                            pred = model.predict(x_val)
                            scores = model.vote_fraction(x_val)
                            metrics = detection_metrics(y_val, pred, scores)
                            params = {
                                "n_trees": n_trees,
                                "subsample_size": psi,
                                "k_aug": k_aug,
                                "threshold_margin": t_margin,
                                "distil_margin": d_margin,
                            }
                            score = _objective(metrics, objective)
                            improved = best is None or score > _objective(
                                best.val_metrics, objective
                            )
                            _record_config(registry, "iguard", params, score, improved)
                            if improved:
                                best = SearchResult(
                                    params=params, model=model, val_metrics=metrics
                                )
    # Leave the shared oracle calibrated as the winner expects.
    oracle.calibrate(x_train, margin=best.params["threshold_margin"])
    return best


def tune_detector_threshold(
    scores_val: np.ndarray,
    y_val: np.ndarray,
    quantile_grid: Sequence[float] = (0.8, 0.9, 0.95, 0.98, 0.99, 0.995),
    scores_train: Optional[np.ndarray] = None,
) -> float:
    """Pick a score threshold maximising validation macro F1.

    Shared by the simple detector baselines (kNN/PCA/X-means/AEs) whose
    only tunable is where the decision cut sits.  Candidate thresholds
    are quantiles of the (benign) training scores when provided,
    otherwise of the validation scores.
    """
    from repro.eval.metrics import macro_f1

    base = scores_train if scores_train is not None else scores_val
    best_t, best_f1 = float(np.median(base)), -1.0
    for q in quantile_grid:
        t = float(np.quantile(base, q))
        f1 = macro_f1(y_val, (scores_val > t).astype(int))
        if f1 > best_f1:
            best_t, best_f1 = t, f1
    return best_t
