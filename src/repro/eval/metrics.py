"""Evaluation metrics implemented from scratch (no scikit-learn offline).

The paper reports macro F1 score, ROC AUC, and PR AUC (area under the
precision-recall curve).  Conventions:

* Labels are 0 = benign, 1 = malicious; scores are "higher = more
  anomalous".
* ROC AUC uses the rank statistic (Mann-Whitney U) with tie correction —
  identical to the trapezoidal curve integral and robust to heavily tied
  scores such as majority votes.
* PR AUC is average precision (the step-wise integral sklearn uses),
  again with stable tie handling.
* Macro F1 averages the per-class F1 of both classes, taking F1 = 0 for
  a class with no predictions and no positives only when it has support
  conventions matching sklearn's ``zero_division=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_same_length


def _as_binary(y: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(y).astype(int).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 labels")
    return arr


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts (positive class = malicious = 1)."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionCounts:
    """Compute TP/FP/TN/FN for the malicious class."""
    t = _as_binary(y_true, "y_true")
    p = _as_binary(y_pred, "y_pred")
    check_same_length(t, p, "y_true", "y_pred")
    tp = int(np.sum((t == 1) & (p == 1)))
    fp = int(np.sum((t == 0) & (p == 1)))
    tn = int(np.sum((t == 0) & (p == 0)))
    fn = int(np.sum((t == 1) & (p == 0)))
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def _f1_from_counts(tp: int, fp: int, fn: int) -> float:
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """F1 of one class (default: the malicious class)."""
    c = confusion_counts(y_true, y_pred)
    if positive == 1:
        return _f1_from_counts(c.tp, c.fp, c.fn)
    # Swap roles for the benign class: its "tp" are true negatives.
    return _f1_from_counts(c.tn, c.fn, c.fp)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of the benign-class and malicious-class F1 scores."""
    return 0.5 * (f1_score(y_true, y_pred, positive=1) + f1_score(y_true, y_pred, positive=0))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the tie-corrected rank statistic.

    Raises if only one class is present (AUC undefined).
    """
    t = _as_binary(y_true, "y_true")
    s = np.asarray(scores, dtype=float).ravel()
    check_same_length(t, s, "y_true", "scores")
    n_pos = int(t.sum())
    n_neg = t.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes in y_true")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(t.size, dtype=float)
    sorted_scores = s[order]
    # Average ranks over tied groups (1-based midranks).
    i = 0
    while i < t.size:
        j = i
        while j + 1 < t.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[t == 1].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def pr_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve).

    Uses the step-function integral AP = Σ (R_k − R_{k−1}) · P_k over
    descending unique score thresholds.
    """
    t = _as_binary(y_true, "y_true")
    s = np.asarray(scores, dtype=float).ravel()
    check_same_length(t, s, "y_true", "scores")
    n_pos = int(t.sum())
    if n_pos == 0:
        raise ValueError("pr_auc requires at least one positive in y_true")
    order = np.argsort(-s, kind="mergesort")
    t_sorted = t[order]
    s_sorted = s[order]
    tp_cum = np.cumsum(t_sorted)
    fp_cum = np.cumsum(1 - t_sorted)
    # Evaluate only at the last index of each tied-score block.
    threshold_idx = np.flatnonzero(np.diff(s_sorted) != 0)
    threshold_idx = np.append(threshold_idx, t.size - 1)
    precision = tp_cum[threshold_idx] / (tp_cum[threshold_idx] + fp_cum[threshold_idx])
    recall = tp_cum[threshold_idx] / n_pos
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(FPR, TPR) points at descending unique thresholds, including (0,0)."""
    t = _as_binary(y_true, "y_true")
    s = np.asarray(scores, dtype=float).ravel()
    check_same_length(t, s, "y_true", "scores")
    n_pos = int(t.sum())
    n_neg = t.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve requires both classes in y_true")
    order = np.argsort(-s, kind="mergesort")
    t_sorted = t[order]
    s_sorted = s[order]
    tp_cum = np.cumsum(t_sorted)
    fp_cum = np.cumsum(1 - t_sorted)
    threshold_idx = np.flatnonzero(np.diff(s_sorted) != 0)
    threshold_idx = np.append(threshold_idx, t.size - 1)
    tpr = np.concatenate([[0.0], tp_cum[threshold_idx] / n_pos])
    fpr = np.concatenate([[0.0], fp_cum[threshold_idx] / n_neg])
    return fpr, tpr


@dataclass(frozen=True)
class DetectionMetrics:
    """The paper's metric triple plus accuracy, bundled for reporting."""

    macro_f1: float
    roc_auc: float
    pr_auc: float
    accuracy: float

    @property
    def mean_of_three(self) -> float:
        """Mean of (F1, PRAUC, ROCAUC) — the grid-search objective of §4.1."""
        return (self.macro_f1 + self.roc_auc + self.pr_auc) / 3.0


def detection_metrics(
    y_true: np.ndarray, y_pred: np.ndarray, scores: np.ndarray
) -> DetectionMetrics:
    """Compute the full metric bundle from labels, predictions, scores."""
    return DetectionMetrics(
        macro_f1=macro_f1(y_true, y_pred),
        roc_auc=roc_auc(y_true, scores),
        pr_auc=pr_auc(y_true, scores),
        accuracy=confusion_counts(y_true, y_pred).accuracy,
    )
