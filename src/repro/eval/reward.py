"""Testbed model-selection reward (§4.2.1).

Best versions on the switch are chosen by maximising

    α/3 · (F1 + PRAUC + ROCAUC) + (1 − α) · (1 − ρ)

where ρ is the memory footprint as a fraction of switch resources and
α = 0.5 balances detection quality against footprint.
"""

from __future__ import annotations

from repro.eval.metrics import DetectionMetrics
from repro.utils.validation import check_probability


def testbed_reward(
    metrics: DetectionMetrics, memory_fraction: float, alpha: float = 0.5
) -> float:
    """The paper's reward for one (model, configuration) point."""
    check_probability(alpha, "alpha")
    check_probability(memory_fraction, "memory_fraction")
    quality = (metrics.macro_f1 + metrics.pr_auc + metrics.roc_auc) / 3.0
    return alpha * quality + (1.0 - alpha) * (1.0 - memory_fraction)
