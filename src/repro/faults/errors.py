"""Exception taxonomy of the fault layer.

Three distinct failure shapes, mapped to how the control plane must
react (DESIGN.md §"Failure model"):

* :class:`TransientFaultError` — a controller operation that may succeed
  on retry (table install flake, digest channel hiccup).  Wrapped in
  :func:`repro.faults.retry.retry_with_backoff`.
* :class:`RetrainFaultError` — the refit itself failed (OOM, solver
  divergence).  Not retryable within the same signal: the service skips
  the swap, counts ``degraded.retrain_skipped``, and keeps serving the
  live generation.
* :class:`SimulatedKill` — the process dies.  Deliberately *not* a
  :class:`FaultError` subclass so no ``except FaultError`` handler can
  swallow it; only the checkpoint layer makes this survivable.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class of every injected (recoverable) fault."""


class TransientFaultError(FaultError):
    """A controller operation failed but may succeed if retried."""


class RetrainFaultError(FaultError):
    """The retrain step failed; the current generation keeps serving."""


class SimulatedKill(BaseException):
    """SIGKILL stand-in: unwinds the whole serve loop uncaught.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so the
    runtime's fault handlers cannot accidentally absorb it — recovery is
    the checkpoint's job, not the control loop's.
    """
