"""Seeded fault injectors — the failure modes of a deployed iGuard.

Each injector models one concrete way the Tofino deployment degrades
(DESIGN.md §"Failure model"): the digest channel to the controller
loses/duplicates/reorders/delays reports under load, the flow store and
the verdict registers saturate, a retrain fails, a recompile produces a
corrupt artifact, or a table install flakes mid-write.  Every injector

* owns a private numpy Generator bound by the plan (seeded fan-out from
  the plan seed), so a fault scenario is a pure function of
  ``(spec, trace)``;
* draws from that generator on a schedule that depends only on the
  *position* in the stream (one draw per chunk / per digest when its
  probability is non-zero), never on whether earlier faults fired —
  which is what makes a checkpoint-resumed run consume the exact same
  random stream as an uninterrupted one;
* counts every firing in ``fired`` and the ``faults.<name>`` telemetry
  counter, so the chaos suite can assert no fault goes unobserved.

The zero-probability path never touches the generator and costs one
attribute check, keeping the disabled fault layer under the <2%
throughput budget (``benchmarks/bench_faults.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.deployment import SwitchArtifacts
from repro.faults.errors import RetrainFaultError, SimulatedKill, TransientFaultError
from repro.features.scaling import IntegerQuantizer
from repro.telemetry import get_registry


def _rng_state(rng: Optional[np.random.Generator]) -> Optional[dict]:
    return None if rng is None else rng.bit_generator.state


def _rng_from_state(state: Optional[dict]) -> Optional[np.random.Generator]:
    if state is None:
        return None
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


class FaultInjector:
    """Base injector: a name, a firing counter, and a bound generator."""

    #: Spec-grammar name; also keys the ``faults.<name>`` counter.
    name: str = "fault"
    #: Where the injector hooks in: "digest", "chunk", "retrain",
    #: "artifact", or "install".
    kind: str = "chunk"

    def __init__(self, p: float = 0.0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{self.name}: p must be in [0, 1], got {p}")
        self.p = float(p)
        self.rng: Optional[np.random.Generator] = None
        self.fired = 0

    def bind(self, rng: np.random.Generator) -> None:
        self.rng = rng

    @property
    def counter(self) -> str:
        return f"faults.{self.name}"

    @property
    def active(self) -> bool:
        """Whether this injector can ever fire (spec made it non-trivial)."""
        return self.p > 0.0

    def record(self, n: int = 1) -> None:
        self.fired += n
        registry = get_registry()
        if registry.enabled:
            registry.counter(self.counter).inc(n)

    def applies(self) -> bool:
        """One Bernoulli draw; no generator touch when disabled."""
        if self.p <= 0.0:
            return False
        return float(self.rng.random()) < self.p

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        return {"name": self.name, "fired": self.fired, "rng": _rng_state(self.rng)}

    def load_state(self, doc: dict) -> None:
        if doc.get("name") != self.name:
            raise ValueError(
                f"checkpointed injector {doc.get('name')!r} does not match {self.name!r}"
            )
        self.fired = int(doc["fired"])
        restored = _rng_from_state(doc.get("rng"))
        if restored is not None:
            self.rng = restored


# --------------------------------------------------------------------------
# Digest-channel injectors (consumed by FaultyDigestChannel)
# --------------------------------------------------------------------------


class DigestLoss(FaultInjector):
    """The digest never reaches the controller (channel overrun)."""

    name = "digest_loss"
    kind = "digest"


class DigestDuplication(FaultInjector):
    """The digest is delivered twice (driver-level retransmit)."""

    name = "digest_dup"
    kind = "digest"


class DigestReorder(FaultInjector):
    """The digest is held and delivered after its successor."""

    name = "digest_reorder"
    kind = "digest"


class DigestDelay(FaultInjector):
    """The digest is queued for ``chunks`` chunk boundaries before delivery."""

    name = "digest_delay"
    kind = "digest"

    def __init__(self, p: float = 0.0, chunks: int = 1) -> None:
        super().__init__(p)
        if chunks < 1:
            raise ValueError(f"digest_delay: chunks must be >= 1, got {chunks}")
        self.chunks = int(chunks)


# --------------------------------------------------------------------------
# Chunk-boundary injectors (flow store / verdict registers / kill)
# --------------------------------------------------------------------------


class ChunkFaultInjector(FaultInjector):
    """Fires between chunks: Bernoulli per chunk and/or a pinned chunk.

    ``due`` draws exactly one variate per chunk whenever ``p > 0`` —
    regardless of the ``at`` match — so the generator's position is a
    function of the chunk index alone (resume-safe).
    """

    def __init__(self, p: float = 0.0, at: Optional[int] = None) -> None:
        super().__init__(p)
        self.at = None if at is None else int(at)

    @property
    def active(self) -> bool:
        return self.p > 0.0 or self.at is not None

    def due(self, chunk_index: int) -> bool:
        due = self.at is not None and chunk_index == self.at
        if self.p > 0.0:
            due = (float(self.rng.random()) < self.p) or due
        return due

    def on_chunk_end(self, pipeline, chunk_index: int) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        doc = super().state_dict()
        doc["at"] = self.at
        return doc


class StorePressure(ChunkFaultInjector):
    """Flow-store pressure: force-evict a fraction of tracked flows.

    Models slot churn under a flow-count burst: undecided flows lose
    their accumulators (they re-track from scratch), exactly what
    happens on the switch when the register arrays thrash.
    """

    name = "store_pressure"

    def __init__(
        self, p: float = 0.0, fraction: float = 0.25, at: Optional[int] = None
    ) -> None:
        super().__init__(p, at)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"store_pressure: fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def on_chunk_end(self, pipeline, chunk_index: int) -> None:
        if self.due(chunk_index):
            evicted = pipeline.store.force_evict(self.rng, self.fraction)
            if evicted:
                self.record()


class RegisterSaturation(ChunkFaultInjector):
    """Verdict-register saturation: wipe a fraction of decided labels.

    Decided flows fall back to undecided (their register was reclaimed),
    so they re-classify — the purple fast path degrades to brown/blue.
    """

    name = "register_saturation"

    def __init__(
        self, p: float = 0.0, fraction: float = 0.25, at: Optional[int] = None
    ) -> None:
        super().__init__(p, at)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"register_saturation: fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = float(fraction)

    def on_chunk_end(self, pipeline, chunk_index: int) -> None:
        if self.due(chunk_index):
            wiped = pipeline.store.saturate_labels(self.rng, self.fraction)
            if wiped:
                self.record()


class KillSwitch(ChunkFaultInjector):
    """Process death at a chunk boundary (SIGKILL stand-in).

    ``at`` counts chunks processed *by this process* (not the global
    chunk index): the checkpoint for the killed chunk is never written,
    so a globally-indexed kill would re-fire forever on resume.  Resume
    therefore restarts the countdown — matching a real crash, which is
    external to the replayed stream.
    """

    name = "kill"

    def __init__(self, at: int = 0) -> None:
        super().__init__(0.0, at)
        self._seen = 0

    def on_chunk_end(self, pipeline, chunk_index: int) -> None:
        self._seen += 1
        if self._seen == self.at + 1:
            self.record()
            raise SimulatedKill(f"simulated kill after chunk {chunk_index}")

    def load_state(self, doc: dict) -> None:
        super().load_state(doc)
        self._seen = 0  # the countdown is process-local by design


# --------------------------------------------------------------------------
# Control-plane injectors (retrain / artifacts / table install)
# --------------------------------------------------------------------------


class RetrainFailure(FaultInjector):
    """The refit blows up (OOM, divergence); one draw per retrain signal."""

    name = "retrain_failure"
    kind = "retrain"

    def before_retrain(self) -> None:
        if self.applies():
            self.record()
            raise RetrainFaultError("injected retrain failure")


class ArtifactCorruption(FaultInjector):
    """The recompiled artifacts are corrupt: quantizer codebook garbled.

    The corruption is *detectable* — the FL quantizer's fingerprint no
    longer matches the one the rules were compiled with — so the
    pipeline's install-time validation must catch it and the service
    must take the ROLLBACK arm.  One draw per retrain.
    """

    name = "artifact_corruption"
    kind = "artifact"

    def corrupt(self, artifacts: SwitchArtifacts) -> SwitchArtifacts:
        if not self.applies():
            return artifacts
        self.record()
        good = artifacts.fl_quantizer
        bad = IntegerQuantizer(bits=good.bits, space=good.space)
        bad.data_min_ = np.asarray(good.data_min_, dtype=float).copy()
        # A shifted codebook domain: quantises without error, but the
        # fingerprint diverges from the rules' compile-time quantizer.
        bad.data_max_ = np.asarray(good.data_max_, dtype=float) * 1.5 + 1.0
        return SwitchArtifacts(
            fl_rules=artifacts.fl_rules,
            fl_quantizer=bad,
            pl_rules=artifacts.pl_rules,
            pl_quantizer=artifacts.pl_quantizer,
        )


class TableInstallFlake(FaultInjector):
    """Transient table-install failure: fails ``times`` consecutive tries.

    One draw per install *sequence* (not per retry), then the flake
    holds for ``times`` attempts — so a retry budget of ``times`` or
    more recovers, and a smaller one exhausts and aborts the swap.
    """

    name = "table_install_flake"
    kind = "install"

    def __init__(self, p: float = 0.0, times: int = 1) -> None:
        super().__init__(p)
        if times < 1:
            raise ValueError(f"table_install_flake: times must be >= 1, got {times}")
        self.times = int(times)
        self._remaining = 0

    def before_table_install(self) -> None:
        if self._remaining > 0:
            self._remaining -= 1
            self.record()
            raise TransientFaultError("injected table install flake (retry)")
        if self.applies():
            self._remaining = self.times - 1
            self.record()
            raise TransientFaultError("injected table install flake")

    def state_dict(self) -> dict:
        doc = super().state_dict()
        doc["remaining"] = self._remaining
        return doc

    def load_state(self, doc: dict) -> None:
        super().load_state(doc)
        self._remaining = int(doc.get("remaining", 0))


#: Spec-name → class registry for :meth:`repro.faults.plan.FaultPlan.from_spec`.
INJECTOR_TYPES: Dict[str, type] = {
    cls.name: cls
    for cls in (
        DigestLoss,
        DigestDuplication,
        DigestReorder,
        DigestDelay,
        StorePressure,
        RegisterSaturation,
        KillSwitch,
        RetrainFailure,
        ArtifactCorruption,
        TableInstallFlake,
    )
}
