"""Retry with exponential backoff and deadlines for controller ops.

A Tofino control plane talks to the driver over gRPC: table writes fail
transiently under load, so production controllers wrap every install in
bounded retry.  :func:`retry_with_backoff` is that wrapper for the
simulated control plane — deterministic (no jitter), with an optional
wall-clock deadline so a flapping operation cannot stall serving
forever.

The clock and sleep functions are injectable; the unit tests drive a
virtual clock so backoff schedules are asserted exactly, and the
service passes a near-zero base delay so test suites never sleep for
real.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.faults.errors import TransientFaultError

T = TypeVar("T")


class DeadlineExceeded(TransientFaultError):
    """The retry budget's wall-clock deadline expired before success."""


def backoff_schedule(
    retries: int,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 1.0,
) -> Tuple[float, ...]:
    """The deterministic sleep sequence between attempts.

    ``retries`` is the number of *re*-attempts after the first try, so
    the schedule has ``retries`` entries: base, base*factor, ... capped
    at ``max_delay``.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    return tuple(min(max_delay, base_delay * factor**i) for i in range(retries))


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 1.0,
    deadline_s: Optional[float] = None,
    retryable: Tuple[Type[BaseException], ...] = (TransientFaultError,),
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` up to ``1 + retries`` times, backing off between tries.

    Only exceptions in ``retryable`` are retried; anything else (e.g. a
    ``ValueError`` from install-time validation — a *deterministic*
    rejection that no retry can fix) propagates immediately.  When the
    deadline expires before the next attempt would start, the last
    retryable error is re-raised wrapped in :class:`DeadlineExceeded`.
    ``on_retry(attempt, error)`` fires before each re-attempt, for
    telemetry.
    """
    schedule = backoff_schedule(retries, base_delay, factor, max_delay)
    start = clock()
    attempt = 0
    while True:
        try:
            return fn()
        except retryable as err:
            if attempt >= len(schedule):
                raise
            delay = schedule[attempt]
            if deadline_s is not None and (clock() - start) + delay > deadline_s:
                raise DeadlineExceeded(
                    f"operation still failing after {attempt + 1} attempt(s) "
                    f"with {deadline_s}s deadline: {err}"
                ) from err
            attempt += 1
            if on_retry is not None:
                on_retry(attempt, err)
            if delay > 0:
                sleep(delay)
