"""Deterministic fault injection for the serving runtime.

A :class:`FaultPlan` bundles seeded injectors for the failure modes a
deployed iGuard actually sees — digest-channel loss/dup/reorder/delay,
flow-store pressure, verdict-register saturation, retrain failures,
corrupt recompiled artifacts, flaky table installs, and process death —
and threads them through :class:`~repro.runtime.stream.StreamDriver`
and :class:`~repro.runtime.service.OnlineDetectionService`.  Plans are
pure functions of ``(spec, seed, trace)``: the chaos suite replays the
same scenario bit-identically, and a checkpoint-resumed run continues
the exact fault schedule of the uninterrupted one.

Entry points: ``FaultPlan.from_spec("seed=7;digest_loss:p=0.2;...")``
(the ``repro serve --faults`` grammar), the injector classes for
programmatic plans, and :func:`retry_with_backoff` for hardening
control-plane operations.
"""

from repro.faults.channel import FaultyDigestChannel
from repro.faults.errors import (
    FaultError,
    RetrainFaultError,
    SimulatedKill,
    TransientFaultError,
)
from repro.faults.injectors import (
    INJECTOR_TYPES,
    ArtifactCorruption,
    DigestDelay,
    DigestDuplication,
    DigestLoss,
    DigestReorder,
    FaultInjector,
    KillSwitch,
    RegisterSaturation,
    RetrainFailure,
    StorePressure,
    TableInstallFlake,
)
from repro.faults.plan import FaultPlan, parse_fault_spec
from repro.faults.retry import DeadlineExceeded, backoff_schedule, retry_with_backoff

__all__ = [
    "ArtifactCorruption",
    "DeadlineExceeded",
    "DigestDelay",
    "DigestDuplication",
    "DigestLoss",
    "DigestReorder",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultyDigestChannel",
    "INJECTOR_TYPES",
    "KillSwitch",
    "RegisterSaturation",
    "RetrainFailure",
    "RetrainFaultError",
    "SimulatedKill",
    "StorePressure",
    "TableInstallFlake",
    "TransientFaultError",
    "backoff_schedule",
    "parse_fault_spec",
    "retry_with_backoff",
]
